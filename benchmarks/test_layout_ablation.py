"""Ablation: NCHW vs NCHWc data layout for C2D on the Xeon CPU (§6.3).

The paper states FlexTensor uses the NCHWc layout for CPU convolutions to
exploit vectorization.  This bench quantifies why: on layers whose width
is not a SIMD-friendly multiple, the vector-channel layout lets the
innermost loop always fill the 8-lane AVX2 unit.
"""

from conftest import geomean, once, print_table, save_results

from repro import optimize
from repro.model import XEON_E5_2699V4
from repro.ops import conv2d_compute, conv2d_nchwc_compute

#: (channels, spatial) — mid/late YOLO-style layers where width is 7/14/28
LAYERS = [(64, 28), (128, 14), (256, 14), (512, 7)]
TRIALS = 30


def run_layout_ablation():
    rows = []
    for channels, spatial in LAYERS:
        nchw = optimize(
            conv2d_compute(1, channels, spatial, spatial, channels, 3,
                           padding=1, name="n"),
            XEON_E5_2699V4, trials=TRIALS, num_seeds=8, seed=0,
        )
        nchwc = optimize(
            conv2d_nchwc_compute(1, channels, spatial, spatial, channels, 3,
                                 padding=1, block=8, name="c"),
            XEON_E5_2699V4, trials=TRIALS, num_seeds=8, seed=0,
        )
        rows.append({
            "layer": f"{channels}ch@{spatial}",
            "nchw_gflops": nchw.gflops,
            "nchwc_gflops": nchwc.gflops,
            "gain": nchwc.gflops / nchw.gflops,
        })
    return rows


def test_layout_ablation(benchmark):
    rows = once(benchmark, run_layout_ablation)
    print_table(
        "Ablation — NCHW vs NCHWc on Xeon E5-2699 v4",
        ["layer", "NCHW GF", "NCHWc GF", "gain"],
        [
            [r["layer"], f"{r['nchw_gflops']:.0f}", f"{r['nchwc_gflops']:.0f}",
             f"{r['gain']:.2f}"]
            for r in rows
        ],
    )
    save_results("ablation_layout", rows)

    overall = geomean([r["gain"] for r in rows])
    print(f"geomean NCHWc gain: {overall:.2f}")
    # The blocked layout should clearly win on SIMD-awkward widths.
    assert overall > 1.2, rows
    assert all(r["gain"] > 0.9 for r in rows)
