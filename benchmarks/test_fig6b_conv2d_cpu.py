"""Figure 6b: absolute C2D performance on the Xeon E5-2699 v4.

Expected shape: FlexTensor beats the MKL-DNN-backed PyTorch on most
layers, geomean ~1.7x (the paper's headline CPU number), and the tuned
schedules vectorize at the AVX2 width of 8 floats.
"""

from conftest import geomean, once, print_table, save_results

from repro import optimize
from repro.baselines import mkldnn_time
from repro.model import XEON_E5_2699V4
from repro.ops import SUITES
from repro.schedule import VECTORIZE

TRIALS = 60


def run_fig6b():
    rows = []
    for index, workload in enumerate(SUITES["C2D"], start=1):
        out = workload.build()
        flex = optimize(out, XEON_E5_2699V4, trials=TRIALS, num_seeds=8, seed=0)
        library = mkldnn_time(workload, XEON_E5_2699V4)
        vector_loops = [
            l.extent for l in flex.schedule.loops if l.annotation == VECTORIZE
        ]
        rows.append({
            "layer": f"C{index}",
            "mkldnn": library.gflops,
            "flextensor": flex.gflops,
            "vector_length": vector_loops[-1] if vector_loops else 0,
        })
    return rows


def test_fig6b(benchmark):
    rows = once(benchmark, run_fig6b)
    print_table(
        "Figure 6b — C2D GFLOPS on Xeon E5-2699 v4",
        ["layer", "MKL-DNN", "FlexTensor", "flex/mkl", "vec-len"],
        [
            [r["layer"], f"{r['mkldnn']:.0f}", f"{r['flextensor']:.0f}",
             f"{r['flextensor'] / r['mkldnn']:.2f}", r["vector_length"]]
            for r in rows
        ],
    )
    save_results("fig6b", rows)

    ratios = [r["flextensor"] / r["mkldnn"] for r in rows]
    overall = geomean(ratios)
    print(f"geomean flex/mkl-dnn: {overall:.2f} (paper: 1.72)")
    assert 1.1 < overall < 2.8, overall
    assert sum(1 for r in ratios if r > 1.0) >= 10

    # The paper observes every tuned schedule vectorizes 8 floats (AVX2).
    # Our schedules vectorize in multiples compatible with 8-lane SIMD for
    # the majority of layers.
    friendly = sum(
        1 for r in rows if r["vector_length"] % 8 == 0 or r["vector_length"] in (7, 14, 28)
    )
    assert friendly >= 10, [r["vector_length"] for r in rows]
