"""Table 3: benchmark specifications — the static analyzer's view of every
operator (loop counts, node counts) plus suite sizes and FLOPs ranges."""

from conftest import once, print_table, save_results

from repro.analysis import analyze
from repro.ops import OPERATOR_NAMES, SUITES

# Paper's "Analysis Results" column: #sl/#rl (graph totals) and #node on
# the main path.  GRP/DEP/DIL are reported per main conv node in the paper;
# we list both conventions.
PAPER_ROWS = {
    "GMV": (1, 1, 1), "GMM": (2, 1, 1), "BIL": (2, 2, 1),
    "C1D": (6, 2, 2), "T1D": (9, 2, 3), "C2D": (8, 3, 2), "T2D": (12, 3, 3),
    "C3D": (10, 4, 2), "T3D": (15, 4, 3),
}

PAPER_CASES = {
    "GMV": 6, "GMM": 7, "BIL": 5, "C1D": 7, "T1D": 7, "C2D": 15,
    "T2D": 15, "C3D": 8, "T3D": 8, "GRP": 14, "DEP": 7, "DIL": 11,
}


def run_table3():
    rows = []
    for opname in OPERATOR_NAMES:
        suite = SUITES[opname]
        result = analyze(suite[0].build())
        spatial, reduce_ = result.totals()
        main = result.main()
        flops = [wl.flops() for wl in suite]
        rows.append({
            "operator": opname,
            "sl_rl": f"{spatial}/{reduce_}",
            "main_sl_rl": f"{main.num_spatial}/{main.num_reduce}",
            "nodes": result.num_nodes,
            "cases": len(suite),
            "flops_range": f"{min(flops)/1e6:.2g}M-{max(flops)/1e9:.2g}G",
        })
    return rows


def test_table3(benchmark):
    rows = once(benchmark, run_table3)
    print_table(
        "Table 3 — benchmark specifications (analyzer output)",
        ["op", "#sl/#rl", "main #sl/#rl", "#node", "cases", "FLOPs"],
        [
            [r["operator"], r["sl_rl"], r["main_sl_rl"], r["nodes"], r["cases"], r["flops_range"]]
            for r in rows
        ],
    )
    save_results("table3", rows)

    by_name = {r["operator"]: r for r in rows}
    for opname, (sl, rl, nodes) in PAPER_ROWS.items():
        row = by_name[opname]
        assert row["sl_rl"] == f"{sl}/{rl}", f"{opname}: {row['sl_rl']}"
        assert row["nodes"] == nodes, f"{opname}: {row['nodes']} nodes"
    for opname, cases in PAPER_CASES.items():
        assert by_name[opname]["cases"] == cases, opname
    # GRP and DIL match the paper's per-main-node 4/3 convention.
    assert by_name["GRP"]["main_sl_rl"] == "4/3"
    assert by_name["DIL"]["main_sl_rl"] == "4/3"
