"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark prints the rows/series of the paper artifact it
regenerates and saves the raw numbers to ``benchmarks/results/<name>.json``
so EXPERIMENTS.md can be refreshed from a run.
"""

import json
import math
import os
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def geomean(values):
    values = [v for v in values if v > 0]
    if not values:
        return 0.0
    return math.exp(sum(math.log(v) for v in values) / len(values))


def save_results(name: str, payload) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    with open(RESULTS_DIR / f"{name}.json", "w") as f:
        json.dump(payload, f, indent=2, default=str)


def print_table(title: str, headers, rows) -> None:
    print(f"\n=== {title} ===")
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    print("  ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    for row in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(row, widths)))


def once(benchmark, fn):
    """Run a reproduction exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def results_saver():
    return save_results
