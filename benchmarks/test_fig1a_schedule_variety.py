"""Figure 1a: three near-identical schedules, three input shapes.

The paper's motivation figure shows that schedules differing only in how
the batch dimension is treated (tiled into registers / bound to blocks /
flatly fused) perform noticeably differently, and that their relative
ranking depends on the input shape.  We reproduce both observations on
the simulated V100 with batch-8 C2D on layers C2, C8 and C13.
"""

from conftest import once, print_table, save_results

from repro.model import GpuModel, V100
from repro.ops import yolo_conv2d_workload
from repro.schedule import lower
from repro.space import SplitKnob, build_space, closest_factorization

CASES = {"C2": 2, "C8": 8, "C13": 13}
DEFAULTS = {"reorder": 0, "unroll": 2, "vectorize": 1, "shared": 1}


def snap(space, plan):
    point = []
    for knob in space.knobs:
        if isinstance(knob, SplitKnob):
            point.append(knob.index_of(
                closest_factorization(knob.extent, knob.parts, plan[knob.name])
            ))
        else:
            point.append(DEFAULTS.get(knob.name, 0))
    return space.decode(tuple(point))


def schedule_plans(op):
    _, k, i, j = [a.extent for a in op.axes]
    small_reduce = {
        f"re{idx}": (max(a.extent // 4, 1), min(4, a.extent))
        for idx, a in enumerate(op.reduce_axes)
    }
    big_reduce = {
        f"re{idx}": (max(a.extent // 16, 1), min(16, a.extent))
        for idx, a in enumerate(op.reduce_axes)
    }
    return {
        # schedule-a: split the batch dimension for (register) tiling
        "schedule-a": {
            "sp0": (1, 4, 1, 2), "sp1": (max(k // 32, 1), 1, 32, 1),
            "sp2": (max(i // 2, 1), 1, 2, 1), "sp3": (max(j // 4, 1), 1, 4, 1),
            **small_reduce,
        },
        # schedule-b: bind the batch dimension to thread blocks
        "schedule-b": {
            "sp0": (8, 1, 1, 1), "sp1": (max(k // 128, 1), 1, 64, 2),
            "sp2": (max(i // 2, 1), 1, 2, 1), "sp3": (max(j // 4, 1), 1, 4, 1),
            **small_reduce,
        },
        # schedule-c: simply fuse the loops flat (no batch tiling)
        "schedule-c": {
            "sp0": (1, 1, 2, 4), "sp1": (max(k // 64, 1), 1, 64, 1),
            "sp2": (i, 1, 1, 1), "sp3": (max(j // 4, 1), 1, 4, 1),
            **big_reduce,
        },
    }


def run_figure_1a():
    model = GpuModel(V100)
    table = {}
    for case, index in CASES.items():
        out = yolo_conv2d_workload(index, batch=8).build()
        space = build_space(out, "gpu")
        perfs = {}
        for name, plan in schedule_plans(space.op).items():
            config = snap(space, plan)
            perfs[name] = model.gflops(lower(out, config, "gpu"))
        best = max(perfs.values())
        table[case] = {name: perf / best for name, perf in perfs.items()}
    return table


def test_fig1a(benchmark):
    table = once(benchmark, run_figure_1a)
    rows = [
        [case] + [f"{table[case][s]:.3f}" for s in ("schedule-a", "schedule-b", "schedule-c")]
        for case in CASES
    ]
    print_table(
        "Figure 1a — relative performance of three schedules (V100, batch 8)",
        ["shape", "schedule-a", "schedule-b", "schedule-c"],
        rows,
    )
    save_results("fig1a", table)

    # Small schedule differences cause noticeable performance differences.
    for case, perfs in table.items():
        spread = max(perfs.values()) / max(min(perfs.values()), 1e-9)
        assert spread > 1.25, f"{case}: schedules too similar ({spread:.2f}x)"

    # The relative ranking of schedules depends on the input shape
    # (on C2/C8 the flat-fused variant is second; on C13 the batch-block
    # variant overtakes it).
    rankings = {
        case: tuple(sorted(perfs, key=perfs.get, reverse=True))
        for case, perfs in table.items()
    }
    assert len(set(rankings.values())) > 1, f"rankings identical: {rankings}"
