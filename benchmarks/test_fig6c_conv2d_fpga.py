"""Figure 6c: absolute C2D performance on the VU9P FPGA.

Expected shape: FlexTensor's explored PE/buffer/partition configurations
beat the fixed hand-optimized OpenCL design on every layer, geomean ~1.5x
(the paper's headline FPGA number), because exploration sizes the PE
array and buffering per shape and overlaps communication with compute.
"""

from conftest import geomean, once, print_table, save_results

from repro import optimize
from repro.baselines import fpga_opencl_time
from repro.model import VU9P
from repro.ops import SUITES

TRIALS = 60


def run_fig6c():
    rows = []
    for index, workload in enumerate(SUITES["C2D"], start=1):
        out = workload.build()
        flex = optimize(out, VU9P, trials=TRIALS, num_seeds=8, seed=0)
        baseline = fpga_opencl_time(workload, VU9P)
        rows.append({
            "layer": f"C{index}",
            "hand_optimized": baseline.gflops,
            "flextensor": flex.gflops,
            "num_pe": flex.schedule.parallel_extent,
        })
    return rows


def test_fig6c(benchmark):
    rows = once(benchmark, run_fig6c)
    print_table(
        "Figure 6c — C2D GFLOPS on VU9P FPGA",
        ["layer", "hand-optimized", "FlexTensor", "flex/hand", "#PE"],
        [
            [r["layer"], f"{r['hand_optimized']:.0f}", f"{r['flextensor']:.0f}",
             f"{r['flextensor'] / r['hand_optimized']:.2f}", r["num_pe"]]
            for r in rows
        ],
    )
    save_results("fig6c", rows)

    ratios = [r["flextensor"] / r["hand_optimized"] for r in rows]
    overall = geomean(ratios)
    print(f"geomean flex/hand-optimized: {overall:.2f} (paper: 1.5)")
    assert 1.1 < overall < 3.0, overall
    # FlexTensor should win nearly every layer against the fixed design.
    assert sum(1 for r in ratios if r > 1.0) >= 12
    # Explored PE counts vary per shape — the fixed design uses one size.
    assert len({r["num_pe"] for r in rows}) > 3
    # The PE array never exceeds the DSP budget.
    assert all(r["num_pe"] <= VU9P.max_pes for r in rows)
