"""Benchmark for the multi-tenant tuning service (``repro.serve``).

Not a pytest test — run it directly after a change to the service:

    PYTHONPATH=src python benchmarks/bench_serve.py

Three sections:

* **Lookup QPS** — sustained ``lookup(op, shape, device)`` rate against
  a warm RecordBook, measured in wall-clock time (the read path is the
  one latency-sensitive surface; everything else runs on the simulated
  clock).
* **Concurrent-job throughput** — four jobs from two tenants (each
  tenant pair tunes the same workload) run through one shared service
  store versus the same four jobs as independent serial ``optimize()``
  runs.  The service interleaves slices over one shared EvalCache, so
  overlapping tenants stop paying for duplicate measurements; the
  speedup below is simulated measurement seconds saved, the Figure 6d/7
  quantity.
* **Crash-recovery parity** — the ``selfcheck --serve`` drill inline: a
  scripted daemon kill in the checkpoint-ahead-of-WAL commit window,
  restart, and a bit-identical comparison of every job's outcome
  against an uninterrupted reference run.

Results land in ``BENCH_serve.json`` at the repo root, including the
acceptance booleans:

* warm lookups sustain >= 2000 QPS,
* the shared service store beats the serial sum by >= 1.5x simulated
  seconds on the overlapping-tenant job set, and
* the killed-and-restarted service reaches bit-identical outcomes
  (state, trials, best point, best GFLOPS, measurement count per job).
"""

import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.model import V100                                   # noqa: E402
from repro.ops import conv2d_compute, gemm_compute             # noqa: E402
from repro.optimize import optimize                            # noqa: E402
from repro.serve import (                                      # noqa: E402
    DaemonKilled,
    ServeChaos,
    ServeConfig,
    TuningService,
)

SEED = 0
TRIALS = 6
SLICE_TRIALS = 2
LOOKUP_ROUNDS = 20_000

GEMM = {"n": 64, "k": 64, "m": 64}
CONV = {"batch": 1, "in_channel": 8, "height": 8, "width": 8,
        "out_channel": 8, "kernel": 3, "padding": 1}

#: (tenant, operator, params, method) — both tenants tune both
#: workloads with the same seed, so a shared store dedups half the
#: measurement bill while separate serial runs pay it twice.
JOB_SET = [
    ("alice", "gemm", GEMM, "q"),
    ("bob", "gemm", GEMM, "q"),
    ("alice", "conv2d", CONV, "q"),
    ("bob", "conv2d", CONV, "q"),
]

BUILDERS = {"gemm": gemm_compute, "conv2d": conv2d_compute}


def submit_job_set(service):
    for tenant, operator, params, method in JOB_SET:
        service.submit(tenant, operator, params, "V100",
                       trials=TRIALS, seed=SEED, method=method)


def outcomes(service):
    return {
        job.job_id: (job.state.value, job.trials_done, job.best_gflops,
                     job.best_point, job.num_measurements)
        for job in service.store.jobs.values()
    }


def bench_service(store_dir, chaos=None):
    service = TuningService(store_dir, ServeConfig(slice_trials=SLICE_TRIALS),
                            chaos=chaos)
    submit_job_set(service)
    start = time.perf_counter()
    service.run()
    wall = time.perf_counter() - start
    return service, wall


def main():
    payload = {
        "benchmark": "bench_serve",
        "trials": TRIALS,
        "slice_trials": SLICE_TRIALS,
        "seed": SEED,
        "jobs": len(JOB_SET),
        "tenants": len({tenant for tenant, *_ in JOB_SET}),
    }

    # -- concurrent-job throughput: shared store vs serial sum -------------
    print("== concurrent-job throughput ==")
    serial_sim = 0.0
    serial_wall = 0.0
    for _, operator, params, method in JOB_SET:
        start = time.perf_counter()
        result = optimize(BUILDERS[operator](**params), V100, trials=TRIALS,
                          seed=SEED, method=method)
        serial_wall += time.perf_counter() - start
        serial_sim += result.tuning.exploration_seconds

    with tempfile.TemporaryDirectory() as store:
        service, service_wall = bench_service(Path(store) / "svc")
        stats = service.stats()
        done = outcomes(service)
        service_sim = service.clock
        sim_speedup = serial_sim / service_sim if service_sim else 0.0
        payload["throughput"] = {
            "serial_simulated_seconds": serial_sim,
            "service_simulated_seconds": service_sim,
            "simulated_speedup": sim_speedup,
            "serial_wall_seconds": serial_wall,
            "service_wall_seconds": service_wall,
            "slices_run": stats["slices_run"],
            "jobs_done": sum(1 for state, *_ in done.values() if state == "done"),
            "jobs_per_simulated_kilosecond": (
                1000.0 * len(JOB_SET) / service_sim if service_sim else 0.0
            ),
            "max_queue_wait": stats["max_queue_wait"],
        }
        print(f"  serial  : {serial_sim:8.1f} sim-s for {len(JOB_SET)} jobs")
        print(f"  service : {service_sim:8.1f} sim-s "
              f"({stats['slices_run']} slices, "
              f"max queue wait {stats['max_queue_wait']:.1f} sim-s)")
        print(f"  speedup : {sim_speedup:.2f}x simulated "
              f"(shared EvalCache dedups overlapping tenants)")

        # -- lookup QPS against the warm RecordBook ------------------------
        print("== lookup QPS (warm record book) ==")
        start = time.perf_counter()
        hits = 0
        for i in range(LOOKUP_ROUNDS):
            _, operator, params, _ = JOB_SET[i % len(JOB_SET)]
            if service.lookup(operator, params, "V100") is not None:
                hits += 1
        lookup_wall = time.perf_counter() - start
        lookup_qps = LOOKUP_ROUNDS / lookup_wall if lookup_wall else 0.0
        payload["lookups"] = {
            "rounds": LOOKUP_ROUNDS,
            "hits": hits,
            "hit_rate": hits / LOOKUP_ROUNDS,
            "wall_seconds": lookup_wall,
            "qps": lookup_qps,
        }
        print(f"  {LOOKUP_ROUNDS} lookups in {lookup_wall:.2f}s wall = "
              f"{lookup_qps:,.0f} QPS ({hits / LOOKUP_ROUNDS:.0%} hits)")

    # -- crash-recovery parity ---------------------------------------------
    print("== crash-recovery parity (commit-window kill) ==")
    with tempfile.TemporaryDirectory() as store:
        reference, _ = bench_service(Path(store) / "ref")
        expected = outcomes(reference)
    with tempfile.TemporaryDirectory() as store:
        killed = False
        try:
            bench_service(Path(store) / "chaos", chaos=ServeChaos(kill_at_slice=3))
        except DaemonKilled:
            killed = True
        restarted = TuningService(Path(store) / "chaos",
                                  ServeConfig(slice_trials=SLICE_TRIALS))
        recovered = list(restarted.recovered_jobs)
        restarted.run()
        parity = killed and outcomes(restarted) == expected
    payload["crash_recovery"] = {
        "daemon_killed": killed,
        "recovered_in_flight": recovered,
        "parity": parity,
    }
    print(f"  killed mid-run, recovered {len(recovered)} in-flight job(s), "
          f"bit-identical outcomes: {parity}")

    payload["criteria"] = {
        "lookup_qps": lookup_qps,
        "lookup_qps_ge_2000": lookup_qps >= 2000.0,
        "service_simulated_speedup": sim_speedup,
        "service_speedup_ge_1p5x": sim_speedup >= 1.5,
        "crash_recovery_parity": parity,
    }

    out = REPO_ROOT / "BENCH_serve.json"
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    for key, value in payload["criteria"].items():
        print(f"  {key}: {value}")
    return 0 if all(
        v for k, v in payload["criteria"].items() if isinstance(v, bool)
    ) else 1


if __name__ == "__main__":
    sys.exit(main())
