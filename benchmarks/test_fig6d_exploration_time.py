"""Figure 6d: exploration time of AutoTVM vs P-method vs Q-method.

Protocol (paper §6.5): run AutoTVM until it converges to a stable
performance, then run the P-method and Q-method until they reach a
similar performance, and compare the (simulated) exploration time.
Expected shape: on average the Q-method needs a fraction of the
P-method's time (paper: 27.6%) and of AutoTVM's time (paper: 52.9%).
"""

from conftest import geomean, once, print_table, save_results

from repro.baselines import AutoTVMTuner, build_template_space
from repro.explore import FlexTensorTuner, PMethodTuner
from repro.model import V100
from repro.ops import SUITES
from repro.runtime import Evaluator

LAYERS = list(range(1, 16))
AUTOTVM_TRIALS = 25
AUTOTVM_FIT_SECONDS = 8.0   # XGBoost retrain + candidate ranking per batch
Q_TRIALS = 80
P_TRIALS = 10
SIMILARITY = 0.85  # "reach a similar performance"


def run_fig6d():
    rows = []
    for index in LAYERS:
        workload = SUITES["C2D"][index - 1]
        out = workload.build()

        at_eval = Evaluator(out, V100, space=build_template_space(out, "gpu"))
        at = AutoTVMTuner(
            at_eval, model_fit_seconds=AUTOTVM_FIT_SECONDS, seed=0
        ).tune(AUTOTVM_TRIALS)
        target = SIMILARITY * at.best_performance

        q_eval = Evaluator(out, V100)
        FlexTensorTuner(q_eval, num_starting_points=8, steps=6, seed=0).tune(
            Q_TRIALS, num_seeds=16
        )
        q_time = q_eval.time_to_reach(target)

        p_eval = Evaluator(out, V100)
        PMethodTuner(p_eval, seed=0).tune(P_TRIALS, num_seeds=16)
        p_time = p_eval.time_to_reach(target)

        rows.append({
            "layer": f"C{index}",
            "autotvm_s": at.exploration_seconds,
            "p_s": p_time if p_time is not None else p_eval.clock,
            "p_reached": p_time is not None,
            "q_s": q_time if q_time is not None else q_eval.clock,
            "q_reached": q_time is not None,
        })
    return rows


def test_fig6d(benchmark):
    rows = once(benchmark, run_fig6d)
    print_table(
        "Figure 6d — exploration time to a similar performance (simulated s)",
        ["layer", "AutoTVM", "P-method", "Q-method", "Q/P", "Q/AutoTVM"],
        [
            [r["layer"], f"{r['autotvm_s']:.0f}",
             f"{r['p_s']:.0f}{'' if r['p_reached'] else '*'}",
             f"{r['q_s']:.0f}{'' if r['q_reached'] else '*'}",
             f"{r['q_s'] / r['p_s']:.2f}",
             f"{r['q_s'] / r['autotvm_s']:.2f}"]
            for r in rows
        ],
    )
    save_results("fig6d", rows)

    q_vs_p = geomean([r["q_s"] / r["p_s"] for r in rows])
    q_vs_at = geomean([r["q_s"] / r["autotvm_s"] for r in rows])
    print(f"average Q/P time: {q_vs_p:.2f} (paper: 0.276); "
          f"Q/AutoTVM: {q_vs_at:.2f} (paper: 0.529)")

    # The Q-method reaches the target clearly faster than AutoTVM on
    # average (paper: 52.9% — this reproduces almost exactly)...
    assert q_vs_at < 0.9, q_vs_at
    # ...and no slower than the P-method.  The paper's 27.6% Q-vs-P gap
    # does not fully reproduce: on our smoother analytical landscape the
    # P-method's exhaustive sweeps of the (shared) heuristic seeds are
    # more effective than on real hardware (see EXPERIMENTS.md).
    assert q_vs_p < 1.3, q_vs_p
    # The target performance is actually reachable for most layers.
    assert sum(1 for r in rows if r["q_reached"]) >= 10
