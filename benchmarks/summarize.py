"""Aggregate benchmarks/results/*.json into the EXPERIMENTS.md headline table.

Not a test — run after a full benchmark pass:

    python benchmarks/summarize.py
"""

import json
import math
from pathlib import Path

RESULTS = Path(__file__).parent / "results"


def geomean(values):
    values = [v for v in values if v and v > 0]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def load(name):
    path = RESULTS / f"{name}.json"
    if not path.exists():
        return None
    return json.loads(path.read_text())


def main():
    rows = []

    for gpu, paper in (("V100", 1.83), ("P100", 1.68), ("TitanX", 1.71)):
        data = load(f"fig5_{gpu}")
        if data:
            measured = geomean([v["vs_library"] for v in data.values()])
            rows.append((f"Fig 5: avg vs library, {gpu}", f"{paper:.2f}x", f"{measured:.2f}x"))

    data = load("fig6a")
    if data:
        measured = geomean([r["flextensor"] / r["cudnn"] for r in data])
        rows.append(("Fig 6a: C2D vs cuDNN, V100", "~1.5x", f"{measured:.2f}x"))
        c4 = next(r for r in data if r["layer"] == "C4")
        c6 = next(r for r in data if r["layer"] == "C6")
        rows.append(("Fig 6a: Winograd crossover C4/C6", "cuDNN wins",
                     f"{c4['flextensor']/c4['cudnn']:.2f}/{c6['flextensor']/c6['cudnn']:.2f}"))

    data = load("fig6b")
    if data:
        measured = geomean([r["flextensor"] / r["mkldnn"] for r in data])
        rows.append(("Fig 6b: C2D vs MKL-DNN, Xeon", "1.72x", f"{measured:.2f}x"))

    data = load("fig6c")
    if data:
        measured = geomean([r["flextensor"] / r["hand_optimized"] for r in data])
        rows.append(("Fig 6c: C2D vs hand OpenCL, VU9P", "1.5x", f"{measured:.2f}x"))

    data = load("fig6d")
    if data:
        q_p = geomean([r["q_s"] / r["p_s"] for r in data])
        q_at = geomean([r["q_s"] / r["autotvm_s"] for r in data])
        rows.append(("Fig 6d: Q time / P time", "27.6%", f"{q_p * 100:.0f}%"))
        rows.append(("Fig 6d: Q time / AutoTVM time", "52.9%", f"{q_at * 100:.0f}%"))

    data = load("sec64")
    if data:
        bcm = geomean([r["speedup"] for r in data if r["operator"] == "BCM"])
        sho = geomean([r["speedup"] for r in data if r["operator"] == "SHO"])
        rows.append(("§6.4: BCM vs hand-tuned, V100", "2.11x", f"{bcm:.2f}x"))
        rows.append(("§6.4: SHO vs hand-tuned, TitanX", "1.53x", f"{sho:.2f}x"))

    data = load("sec65")
    if data:
        rows.append(("§6.5: avg vs AutoTVM", "2.21x", f"{geomean(list(data['per_op'].values())):.2f}x"))
        rows.append(("§6.5: C2D space vs template", "2027x", f"{data['space_ratio']:.0f}x"))
        rows.append(("§6.5: T2D vs AutoTVM (the paper's loss)", "0.95x",
                     f"{data['per_op']['T2D']:.2f}x"))

    data = load("sec66")
    if data:
        rows.append(("§6.6: YOLO-v1 end-to-end vs AutoTVM", "1.07x",
                     f"{data['YOLO-v1']['speedup']:.2f}x"))
        rows.append(("§6.6: OverFeat end-to-end vs AutoTVM", "1.39x",
                     f"{data['OverFeat']['speedup']:.2f}x"))

    width = max(len(r[0]) for r in rows)
    print(f"{'claim'.ljust(width)}  paper    measured")
    print("-" * (width + 20))
    for claim, paper, measured in rows:
        print(f"{claim.ljust(width)}  {paper:<8} {measured}")


if __name__ == "__main__":
    main()
