"""Ablations of FlexTensor's design choices (DESIGN.md's ablation list).

Not a paper artifact — these benches justify the design decisions the
paper makes implicitly:

* Q-learning direction choice vs trying all directions (P) vs random
  walk vs flat random sampling (i.e. without the §4.2 rearrangement);
* the simulated-annealing starting-point temperature γ;
* the Q-network training period.
"""

from conftest import geomean, once, print_table, save_results

from repro.explore import (
    FlexTensorTuner,
    PMethodTuner,
    RandomSampleTuner,
    RandomWalkTuner,
)
from repro.model import V100
from repro.ops import SUITES
from repro.runtime import Evaluator

LAYERS = [2, 8, 13]
SEEDS = [0, 1, 2]


def _run(tuner_factory, out, seed, trials):
    evaluator = Evaluator(out, V100)
    tuner = tuner_factory(evaluator, seed)
    result = tuner.tune(trials, num_seeds=8)
    return result


def run_method_ablation():
    """Same measurement budget (~650 points) for every method."""
    factories = {
        "q-method": (lambda ev, s: FlexTensorTuner(ev, seed=s), 40),
        "random-walk": (lambda ev, s: RandomWalkTuner(ev, seed=s), 160),
        "random-sample": (lambda ev, s: RandomSampleTuner(ev, seed=s), 160),
        "p-method": (lambda ev, s: PMethodTuner(ev, seed=s), 5),
    }
    table = {}
    for name, (factory, trials) in factories.items():
        perfs, measures = [], []
        for layer in LAYERS:
            out = SUITES["C2D"][layer - 1].build()
            for seed in SEEDS:
                result = _run(factory, out, seed, trials)
                perfs.append(result.best_performance)
                measures.append(result.num_measurements)
        table[name] = {
            "geomean_gflops": geomean(perfs),
            "mean_measurements": sum(measures) / len(measures),
        }
    return table


def test_method_ablation(benchmark):
    table = once(benchmark, run_method_ablation)
    print_table(
        "Ablation — exploration method at comparable budgets",
        ["method", "geomean GFLOPS", "avg measurements"],
        [
            [name, f"{row['geomean_gflops']:.0f}", f"{row['mean_measurements']:.0f}"]
            for name, row in table.items()
        ],
    )
    save_results("ablation_methods", table)

    # Guided neighborhood search beats unguided baselines at equal budget.
    assert table["q-method"]["geomean_gflops"] > table["random-sample"]["geomean_gflops"]
    assert table["q-method"]["geomean_gflops"] > 0.9 * table["random-walk"]["geomean_gflops"]


def run_gamma_ablation():
    out = SUITES["C2D"][7].build()
    table = {}
    for gamma in (0.5, 2.0, 8.0):
        perfs = []
        for seed in SEEDS:
            evaluator = Evaluator(out, V100)
            result = FlexTensorTuner(evaluator, gamma=gamma, seed=seed).tune(40, num_seeds=8)
            perfs.append(result.best_performance)
        table[gamma] = geomean(perfs)
    return table


def test_gamma_sensitivity(benchmark):
    table = once(benchmark, run_gamma_ablation)
    print_table(
        "Ablation — SA temperature γ (C8)",
        ["gamma", "geomean GFLOPS"],
        [[g, f"{p:.0f}"] for g, p in table.items()],
    )
    save_results("ablation_gamma", {str(k): v for k, v in table.items()})
    # All temperatures find something reasonable; the spread is bounded.
    values = list(table.values())
    assert min(values) > 0
    assert max(values) / min(values) < 2.0


def run_training_period_ablation():
    out = SUITES["C2D"][7].build()
    table = {}
    for period in (1, 5, 20):
        perfs = []
        for seed in SEEDS:
            evaluator = Evaluator(out, V100)
            tuner = FlexTensorTuner(evaluator, train_period=period, seed=seed)
            perfs.append(tuner.tune(40, num_seeds=8).best_performance)
        table[period] = geomean(perfs)
    return table


def test_training_period_sensitivity(benchmark):
    table = once(benchmark, run_training_period_ablation)
    print_table(
        "Ablation — Q-network training period (paper uses 5)",
        ["train period", "geomean GFLOPS"],
        [[p, f"{v:.0f}"] for p, v in table.items()],
    )
    save_results("ablation_train_period", {str(k): v for k, v in table.items()})
    values = list(table.values())
    assert min(values) > 0
    assert max(values) / min(values) < 2.0
