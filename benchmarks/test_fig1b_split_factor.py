"""Figure 1b: the same split factor behaves differently per platform.

The paper sweeps the inner-loop split factor of a 2D convolution from 512
down to 8 on V100 / Xeon / VU9P and shows both the trend and the optimal
factor differ across platforms.  We sweep the channel-dimension inner
split (the thread count on GPU, the parallel-chunk granularity on CPU,
the PE count on FPGA) and reproduce the divergence.
"""

from conftest import once, print_table, save_results

from repro.model import CpuModel, FpgaModel, GpuModel, V100, VU9P, XEON_E5_2699V4
from repro.ops import conv2d_compute
from repro.schedule import NodeConfig, lower

FACTORS = [512, 256, 128, 64, 32, 16, 8]


def build_conv():
    # 512 channels so every swept factor divides the axis
    return conv2d_compute(1, 256, 28, 28, 512, 3, stride=1, padding=1, name="conv")


def gpu_config(factor):
    return NodeConfig(
        spatial_factors=(
            (1, 1, 1, 1),
            (512 // factor, 1, factor, 1),   # swept: channel threads
            (14, 1, 2, 1),
            (7, 1, 4, 1),
        ),
        reduce_factors=((64, 4), (3, 1), (3, 1)),
    )


def cpu_config(factor):
    return NodeConfig(
        spatial_factors=(
            (1, 1, 1),
            (512 // factor, factor, 1),      # swept: channel middle tile
            (28, 1, 1),
            (4, 1, 7),
        ),
        reduce_factors=((64, 4), (3, 1), (3, 1)),
        fuse_levels=2,
    )


def fpga_config(factor):
    return NodeConfig(
        spatial_factors=(
            (1, 1),
            (512 // factor, factor),          # swept: channel PEs
            (28, 1),
            (14, 2),
        ),
        reduce_factors=((256,), (3,), (3,)),
        fpga_partition=4,
        fpga_pipeline=3,
        fpga_buffer_lines=4,
    )


def run_figure_1b():
    out = build_conv()
    sweeps = {}
    for name, model, target, config_fn in (
        ("V100", GpuModel(V100), "gpu", gpu_config),
        ("Xeon", CpuModel(XEON_E5_2699V4), "cpu", cpu_config),
        ("VU9P", FpgaModel(VU9P), "fpga", fpga_config),
    ):
        perfs = []
        for factor in FACTORS:
            scheduled = lower(out, config_fn(factor), target)
            perfs.append(model.gflops(scheduled))
        peak = max(perfs)
        sweeps[name] = [p / peak for p in perfs]
    return sweeps


def test_fig1b(benchmark):
    sweeps = once(benchmark, run_figure_1b)
    rows = [
        [factor] + [f"{sweeps[p][i]:.3f}" for p in ("V100", "Xeon", "VU9P")]
        for i, factor in enumerate(FACTORS)
    ]
    print_table(
        "Figure 1b — normalized performance vs split factor",
        ["factor", "V100", "Xeon", "VU9P"],
        rows,
    )
    save_results("fig1b", {"factors": FACTORS, "sweeps": sweeps})

    optima = {
        platform: FACTORS[max(range(len(FACTORS)), key=lambda i: curve[i])]
        for platform, curve in sweeps.items()
    }
    print("optimal factors:", optima)
    # The optimal split factor is NOT the same on all three platforms.
    assert len(set(optima.values())) > 1, optima
    # And the factor genuinely matters on every platform.
    for platform, curve in sweeps.items():
        assert min(curve) < 0.9, f"{platform}: split factor has no effect"
