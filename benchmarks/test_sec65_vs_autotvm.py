"""§6.5: comparison with AutoTVM across C1D/T1D/C2D/T2D/C3D/T3D/GRP.

Expected shape (paper): FlexTensor exceeds AutoTVM for all the operators
except T2D (0.95x), with a substantial average speedup; FlexTensor's
schedule space is ~3 orders of magnitude larger (paper: 2027x for C2D).
The biggest wins come from the operators AutoTVM had no official
templates for (C1D, T1D, C3D, T3D — the paper's authors wrote make-do
templates for them), which we model as structurally naive templates that
materialize the data-rearrangement stages.
"""

from conftest import geomean, once, print_table, save_results

from repro import optimize
from repro.baselines import autotvm_optimize, build_template_space
from repro.model import V100
from repro.ops import SUITES
from repro.space import build_space

OPS = ["C1D", "T1D", "C2D", "T2D", "C3D", "T3D", "GRP"]
#: operators with official AutoTVM template support (template inlines the
#: helper stages); the rest get author-written, structurally naive ones.
OFFICIAL_TEMPLATES = {"C2D", "T2D", "GRP"}
CASES_PER_OP = 3
FLEX_TRIALS = 60
AUTOTVM_TRIALS = 30


def run_sec65():
    per_op = {}
    space_ratios = []
    for opname in OPS:
        ratios = []
        for workload in SUITES[opname][:CASES_PER_OP]:
            out = workload.build()
            flex = optimize(out, V100, trials=FLEX_TRIALS,
                            num_starting_points=6, num_seeds=8, seed=0)
            at = autotvm_optimize(
                out, V100, trials=AUTOTVM_TRIALS, seed=0,
                inline_helpers=opname in OFFICIAL_TEMPLATES,
            )
            ratios.append(flex.gflops / max(at.best_performance, 1e-9))
            if opname == "C2D":
                space_ratios.append(
                    build_space(out, "gpu").size
                    / build_template_space(out, "gpu").size
                )
        per_op[opname] = geomean(ratios)
    return per_op, space_ratios


def test_sec65(benchmark):
    per_op, space_ratios = once(benchmark, run_sec65)
    rows = [[op, f"{per_op[op]:.2f}"] for op in OPS]
    overall = geomean(list(per_op.values()))
    rows.append(["AVERAGE", f"{overall:.2f}"])
    print_table("§6.5 — FlexTensor speedup over AutoTVM (V100)",
                ["op", "flex/autotvm"], rows)
    space_ratio = geomean(space_ratios)
    print(f"C2D space-size ratio flex/template: {space_ratio:.0f}x (paper: 2027x)")
    save_results("sec65", {"per_op": per_op, "space_ratio": space_ratio})

    # Average speedup is clearly positive (paper: 2.21x; our band is loose
    # because the simulated landscape is smoother than real hardware).
    assert overall > 1.2, per_op
    # T2D stays the weak spot: roughly parity, not a clear win (paper 0.95x).
    assert per_op["T2D"] < 1.25, per_op["T2D"]
    # The template-less operators are where FlexTensor wins big.
    assert per_op["T1D"] > 1.3
    assert per_op["T3D"] > 1.3
    # FlexTensor's generated space is orders of magnitude larger.
    assert space_ratio > 100, space_ratio
