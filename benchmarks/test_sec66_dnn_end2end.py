"""§6.6: end-to-end DNN case study — YOLO-v1 and OverFeat on V100.

Expected shape: after partitioning the networks into sub-graphs, fusing
the elementwise epilogues and optimizing every distinct layer, FlexTensor
is modestly faster than AutoTVM end to end (paper: 1.07x on YOLO-v1,
1.39x on OverFeat).

The FlexTensor arm runs through the network-level task scheduler
(``repro.nn.tuner``): layers deduped by operator signature, trial
slices allocated by observed end-to-end gain, plateaued tasks stopped
early, the saved budget reinvested as multi-start restarts.  The
uniform arm (``tune_network(allocate=False)``) spends an identical
per-layer budget with the same measurement accounting, so the
scheduler's claim — equal-or-better latency at materially fewer real
measurements — is asserted here alongside the paper shape.
"""

from conftest import once, print_table, save_results

from repro.model import V100
from repro.nn import optimize_network, tune_network, overfeat, yolo_v1

TRIALS = 50
SCHEDULER = dict(
    budget_frac=0.60,
    slice_trials=4,
    topup_frac=0.4,
    max_restarts=1,
    restart_trials=12,
)


def run_sec66():
    results = {}
    for network in (yolo_v1(), overfeat()):
        uniform = tune_network(
            network, V100, trials=TRIALS, method="q", seed=0, allocate=False,
        )
        allocated = tune_network(
            network, V100, trials=TRIALS, method="q", seed=0, **SCHEDULER,
        )
        autotvm = optimize_network(network, V100, trials=20, method="autotvm", seed=0)
        results[network.name] = {
            "layers": network.num_layers,
            "tasks": len(allocated.tasks),
            "flex_ms": allocated.total_seconds * 1e3,
            "uniform_ms": uniform.total_seconds * 1e3,
            "autotvm_ms": autotvm.total_seconds * 1e3,
            "speedup": autotvm.total_seconds / allocated.total_seconds,
            "flex_gflops": allocated.gflops,
            "flex_measurements": allocated.total_measurements,
            "uniform_measurements": uniform.total_measurements,
            "measurement_savings": (
                1.0 - allocated.total_measurements / uniform.total_measurements
            ),
        }
    return results


def test_sec66(benchmark):
    results = once(benchmark, run_sec66)
    print_table(
        "§6.6 — end-to-end inference time (batch 1, V100, simulated)",
        ["network", "layers", "FlexTensor (ms)", "uniform (ms)", "AutoTVM (ms)",
         "speedup", "meas. saved"],
        [
            [name, r["layers"], f"{r['flex_ms']:.2f}", f"{r['uniform_ms']:.2f}",
             f"{r['autotvm_ms']:.2f}", f"{r['speedup']:.2f}",
             f"{r['measurement_savings']:.0%}"]
            for name, r in results.items()
        ],
    )
    save_results("sec66", results)

    yolo = results["YOLO-v1"]
    over = results["OverFeat"]
    # Both networks end up faster under FlexTensor (paper: 1.07x / 1.39x).
    assert yolo["speedup"] > 0.95, yolo
    assert over["speedup"] > 0.95, over
    # The gains are modest at network level (most layers are already well
    # served by the template space), matching the paper's small end-to-end
    # numbers relative to the per-operator wins.
    assert yolo["speedup"] < 2.5
    assert over["speedup"] < 2.5
    assert yolo["layers"] == 24 and over["layers"] == 5
    # The scheduler's acceptance claim (ISSUE #9): equal-or-better
    # end-to-end latency than uniform allocation at fewer real
    # measurements on both networks.
    for r in (yolo, over):
        assert r["flex_ms"] <= r["uniform_ms"] * (1 + 1e-9), r
        assert r["flex_measurements"] < r["uniform_measurements"], r
