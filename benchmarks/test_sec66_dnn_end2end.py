"""§6.6: end-to-end DNN case study — YOLO-v1 and OverFeat on V100.

Expected shape: after partitioning the networks into sub-graphs, fusing
the elementwise epilogues and optimizing every distinct layer, FlexTensor
is modestly faster than AutoTVM end to end (paper: 1.07x on YOLO-v1,
1.39x on OverFeat).
"""

from conftest import once, print_table, save_results

from repro.model import V100
from repro.nn import optimize_network, overfeat, yolo_v1

TRIALS = 50


def run_sec66():
    results = {}
    for network in (yolo_v1(), overfeat()):
        flex = optimize_network(network, V100, trials=TRIALS, method="q", seed=0,
                                num_seeds=8, num_starting_points=6)
        autotvm = optimize_network(network, V100, trials=20, method="autotvm", seed=0)
        results[network.name] = {
            "layers": network.num_layers,
            "flex_ms": flex.total_seconds * 1e3,
            "autotvm_ms": autotvm.total_seconds * 1e3,
            "speedup": autotvm.total_seconds / flex.total_seconds,
            "flex_gflops": flex.gflops,
        }
    return results


def test_sec66(benchmark):
    results = once(benchmark, run_sec66)
    print_table(
        "§6.6 — end-to-end inference time (batch 1, V100, simulated)",
        ["network", "layers", "FlexTensor (ms)", "AutoTVM (ms)", "speedup"],
        [
            [name, r["layers"], f"{r['flex_ms']:.2f}", f"{r['autotvm_ms']:.2f}",
             f"{r['speedup']:.2f}"]
            for name, r in results.items()
        ],
    )
    save_results("sec66", results)

    yolo = results["YOLO-v1"]
    over = results["OverFeat"]
    # Both networks end up faster under FlexTensor (paper: 1.07x / 1.39x).
    assert yolo["speedup"] > 0.95, yolo
    assert over["speedup"] > 0.95, over
    # The gains are modest at network level (most layers are already well
    # served by the template space), matching the paper's small end-to-end
    # numbers relative to the per-operator wins.
    assert yolo["speedup"] < 2.5
    assert over["speedup"] < 2.5
    assert yolo["layers"] == 24 and over["layers"] == 5
