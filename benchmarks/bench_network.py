"""Network-level scheduler benchmark: uniform vs allocated (ISSUE #9).

Not a pytest test — run it directly after a change to the scheduler:

    PYTHONPATH=src python benchmarks/bench_network.py

For YOLO-v1 and OverFeat (batch 1, V100, simulated) it tunes the whole
network twice from a cold store:

* **uniform** — every distinct layer independently with an identical
  ``TRIALS`` budget (``tune_network(allocate=False)``, the historical
  ``optimize_network`` behavior), and
* **allocated** — the network-level task scheduler
  (:mod:`repro.nn.tuner`): layers deduped by operator signature,
  gain-ranked trial slices with an ε floor, early stopping on plateaus,
  and multi-start restarts reinvesting the saved budget into the
  heavy-with-headroom tasks.

Acceptance criteria (per network, recorded as booleans):

* ``latency_le_uniform`` — allocated end-to-end latency is equal or
  better than uniform's, and
* ``measurement_savings_ge_30pct`` — allocated spends >= 30% fewer
  total real measurements.

Results land in ``BENCH_network.json`` at the repo root.  ``--quick``
runs OverFeat only (the adversarial case: no duplicate signatures, so
nothing is saved by dedup alone) at the same budget and criteria,
writes ``BENCH_network_quick.json`` instead, and exits nonzero if any
criterion is false — the CI perf-smoke mode.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.model import V100                              # noqa: E402
from repro.nn import overfeat, tune_network, yolo_v1      # noqa: E402

TRIALS = 50
SEED = 0
# Scheduler knobs used for the comparison arm (see docs/network.md).
SCHEDULER = dict(
    budget_frac=0.60,
    slice_trials=4,
    topup_frac=0.4,
    max_restarts=1,
    restart_trials=12,
)


def run_pair(network, trials, scheduler_kwargs):
    """Tune one network both ways from a cold shared store."""
    uniform = tune_network(
        network, V100, trials=trials, seed=SEED, allocate=False,
    )
    with tempfile.TemporaryDirectory() as store:
        start = time.perf_counter()
        allocated = tune_network(
            network, V100, trials=trials, seed=SEED,
            records=Path(store) / "records.jsonl",
            eval_cache=Path(store) / "evalcache",
            **scheduler_kwargs,
        )
        allocated_wall = time.perf_counter() - start
    savings = (
        1.0 - allocated.total_measurements / uniform.total_measurements
        if uniform.total_measurements else 0.0
    )
    return {
        "layers": network.num_layers,
        "distinct_tasks": len(allocated.tasks),
        "dedup_layers_covered": allocated.dedup_layers_covered,
        "uniform": {
            "total_ms": uniform.total_seconds * 1e3,
            "gflops": uniform.gflops,
            "trials_spent": uniform.trials_spent,
            "total_measurements": uniform.total_measurements,
            "exploration_seconds": uniform.exploration_seconds,
            "wall_seconds": uniform.wall_seconds,
        },
        "allocated": {
            "total_ms": allocated.total_seconds * 1e3,
            "gflops": allocated.gflops,
            "trials_budget": allocated.trials_budget,
            "trials_spent": allocated.trials_spent,
            "total_measurements": allocated.total_measurements,
            "exploration_seconds": allocated.exploration_seconds,
            "wall_seconds": allocated_wall,
            "rounds": allocated.rounds,
            "slices": allocated.slices_run,
            "restarts": sum(t.restarts for t in allocated.tasks),
            "tasks": [
                {
                    "op": f"{t.workload.operator}:{t.workload.name}",
                    "multiplicity": t.multiplicity,
                    "trials": t.trials_done,
                    "restarts": t.restarts,
                    "best_gflops": t.best_gflops,
                    "done": t.done_reason,
                    "warm": t.warm_source,
                }
                for t in allocated.tasks
            ],
        },
        "measurement_savings": savings,
        "latency_ratio": (
            allocated.total_seconds / uniform.total_seconds
            if uniform.total_seconds else float("inf")
        ),
    }


def main(quick: bool = False) -> int:
    trials = TRIALS
    networks = [overfeat()] if quick else [yolo_v1(), overfeat()]
    payload = {
        "benchmark": "bench_network",
        "quick": quick,
        "trials": trials,
        "seed": SEED,
        "scheduler": SCHEDULER,
        "networks": {},
    }
    criteria = {}
    for network in networks:
        print(f"== {network.name} ==")
        entry = run_pair(network, trials, SCHEDULER)
        payload["networks"][network.name] = entry
        uni, alloc = entry["uniform"], entry["allocated"]
        print(
            f"  uniform  : {uni['total_ms']:8.4f} ms end-to-end, "
            f"{uni['total_measurements']:6d} real measurements "
            f"({uni['trials_spent']} trials)"
        )
        print(
            f"  allocated: {alloc['total_ms']:8.4f} ms end-to-end, "
            f"{alloc['total_measurements']:6d} real measurements "
            f"({alloc['trials_spent']}/{alloc['trials_budget']} trials, "
            f"{alloc['restarts']} restarts, "
            f"{entry['dedup_layers_covered']} layers deduped)"
        )
        print(
            f"  latency x{entry['latency_ratio']:.4f}, "
            f"measurements saved {entry['measurement_savings']:.1%}"
        )
        short = network.name.lower().replace("-", "_")
        criteria[f"{short}_latency_ratio"] = entry["latency_ratio"]
        criteria[f"{short}_latency_le_uniform"] = entry["latency_ratio"] <= 1.0
        criteria[f"{short}_measurement_savings"] = entry["measurement_savings"]
        criteria[f"{short}_measurement_savings_ge_30pct"] = (
            entry["measurement_savings"] >= 0.30
        )
    payload["criteria"] = criteria

    out = REPO_ROOT / (
        "BENCH_network_quick.json" if quick else "BENCH_network.json"
    )
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    failed = []
    for key, value in criteria.items():
        print(f"  {key}: {value}")
        if value is False:
            failed.append(key)
    if failed:
        print(f"FAILED criteria: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="OverFeat only (same budget and criteria); exit nonzero on "
        "any false criterion",
    )
    sys.exit(main(quick=parser.parse_args().quick))
