"""Figure 5: normalized performance of PyTorch / library / FlexTensor for
all 12 operators on V100, P100 and Titan X.

Expected shape (paper): FlexTensor outperforms the libraries for most
operators (average ~1.7-1.8x over cuDNN on V100), loses or ties on the
transposed convolutions T2D/T3D (cuDNN's implicit-GEMM gradient kernels),
and wins big on the poorly supported GRP / DEP / DIL operators.
"""

import pytest
from conftest import geomean, once, print_table, save_results

from repro import optimize
from repro.baselines import gpu_library_time, pytorch_gpu_time
from repro.model import P100, TITAN_X, V100
from repro.ops import OPERATOR_NAMES, SUITES

#: Cases per operator (bounded for benchmark runtime; the paper runs all).
CASES_PER_OP = 3
TRIALS = 50

GPUS = {"V100": V100, "P100": P100, "TitanX": TITAN_X}


def run_gpu(spec):
    per_op = {}
    for opname in OPERATOR_NAMES:
        ratios_lib, ratios_torch = [], []
        for workload in SUITES[opname][:CASES_PER_OP]:
            out = workload.build()
            flex = optimize(out, spec, trials=TRIALS, num_seeds=8, seed=0)
            lib = gpu_library_time(workload, spec)
            torch = pytorch_gpu_time(workload, spec)
            ratios_lib.append(flex.gflops / lib.gflops)
            ratios_torch.append(flex.gflops / torch.gflops)
        per_op[opname] = {
            "vs_library": geomean(ratios_lib),
            "vs_pytorch": geomean(ratios_torch),
        }
    return per_op


@pytest.mark.parametrize("gpu_name", list(GPUS))
def test_fig5(benchmark, gpu_name):
    spec = GPUS[gpu_name]
    per_op = once(benchmark, lambda: run_gpu(spec))
    rows = [
        [op, f"{per_op[op]['vs_library']:.2f}", f"{per_op[op]['vs_pytorch']:.2f}"]
        for op in OPERATOR_NAMES
    ]
    overall_lib = geomean([per_op[op]["vs_library"] for op in OPERATOR_NAMES])
    overall_torch = geomean([per_op[op]["vs_pytorch"] for op in OPERATOR_NAMES])
    rows.append(["GEOMEAN", f"{overall_lib:.2f}", f"{overall_torch:.2f}"])
    print_table(
        f"Figure 5 — FlexTensor speedup on {gpu_name} (vs library, vs PyTorch)",
        ["op", "flex/library", "flex/pytorch"],
        rows,
    )
    save_results(f"fig5_{gpu_name}", per_op)

    # FlexTensor beats the vendor libraries on average (paper: 1.83x/1.68x/
    # 1.71x across the three GPUs; our band is intentionally loose).
    assert 1.2 < overall_lib < 3.5, overall_lib
    # PyTorch native is weaker than the tuned libraries, so this margin is
    # larger.
    assert overall_torch > overall_lib

    # Per-operator shape: most ops win...
    wins = sum(1 for op in OPERATOR_NAMES if per_op[op]["vs_library"] > 1.0)
    assert wins >= 8, {op: round(per_op[op]["vs_library"], 2) for op in OPERATOR_NAMES}
    # ...the transposed 2D/3D convolutions do not beat cuDNN's algorithmic
    # advantage (the paper's stated exceptions)...
    assert per_op["T2D"]["vs_library"] < 1.1
    assert per_op["T3D"]["vs_library"] < 1.0
    # ...and the poorly supported operators win big (paper: GRP/DIL up to
    # 21x, DEP 4.4-8.5x vs PyTorch).
    for op in ("GRP", "DEP", "DIL"):
        assert per_op[op]["vs_library"] > 1.5, (op, per_op[op])
