"""Throughput benchmark for the batched evaluation engine (ISSUE #2).

Not a pytest test — run it directly after a change to the runtime:

    PYTHONPATH=src python benchmarks/bench_throughput.py

For gemm and conv2d it tunes the same workload twice — serial
(``workers=1``, the bit-exact pre-engine path) and pooled
(``workers=4``) — and reports points per *simulated* second (the
measurement-clock quantity Figures 6d/7 account in) plus points per
wall second.  A third pass runs a cold/warm pair against a persistent
``EvalCache`` directory to measure the warm-start hit rate.

A fourth pass benchmarks surrogate screening (ISSUE #4): the same
workload tuned with ``--surrogate`` off and on at ``SCREEN_TRIALS``
trials, reporting best GFLOPS against real measurements spent — the
learned cost model should reach the same best while measuring a
fraction of the candidates.

Results land in ``BENCH_throughput.json`` at the repo root, including
the acceptance booleans:

* pooled (4 workers) achieves >= 3x points/simulated-second over
  serial on gemm,
* the warm second run is served at >= 50% cache hit rate,
* with screening on, gemm and conv2d reach >= the screening-off best
  GFLOPS using <= 0.5x the real measurements,
* (ISSUE #5) a chaos run through the supervised cluster — seeded node
  faults killing 3 of 4 workers mid-run — finds the same best schedule
  as the fault-free clustered run, and on a slow-node fleet speculative
  re-execution recovers simulated makespan versus speculation off, and
* (ISSUE #7) the vectorized hot path sustains >= 10x the pre-vectorization
  ``points_per_wall_second`` with screening on and >= 2x with screening
  off (baselines pinned in ``PRIOR_WALL`` below), and
* (ISSUE #8) tuning the int8 GEMM with the ``tensorize`` knob finds a
  tensorized best schedule whose modeled GFLOPS strictly beats the same
  search with the knob off.

Each section reports the *actual* engine mode — ``serial``,
``fork-pool``, or ``in-process-fallback``.  On a single-core host the
engine transparently computes outcomes in-process while still billing
the 4-worker makespan, so the simulated numbers are identical to what a
real fork pool produces (the engine's determinism contract); wall
numbers then mostly reflect interpreter overhead and are reported for
context only.

``--quick`` runs only the screening section (the hot-path criteria),
writes ``BENCH_throughput_quick.json`` instead of the full file, and
exits nonzero if any criterion is false — the CI perf-smoke mode.
"""

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

import numpy as np                                        # noqa: E402

from repro.analysis import tensorize_rejections           # noqa: E402
from repro.model import V100, XEON_E5_2699V4              # noqa: E402
from repro.ops import conv2d_compute, gemm_compute, gemm_int8_compute  # noqa: E402
from repro.optimize import optimize                       # noqa: E402
from repro.runtime import ClusterConfig, NodeFaultInjector  # noqa: E402
from repro.space import build_space                       # noqa: E402

TRIALS = 8
SEED = 0
POOL_WORKERS = 4
# Screening comparison: more trials so the off-run's measurement bill is
# the budget screening gets to cut; ratio tuned for the smoke workloads.
SCREEN_TRIALS = 20
SCREEN_RATIO = 0.15
# Intrinsic tensorization comparison (ISSUE #8): the int8 GEMM where the
# dot4 VNNI intrinsic applies, on the Xeon model.  30 trials — at fewer
# the Q-method's trajectory noise can drown the knob's signal.
TENSORIZE_TRIALS = 30
TENSORIZE_SHAPE = (256, 256, 256)
TENSORIZE_SAMPLE = 200

# Wall-rate baselines recorded by the last pre-vectorization run of this
# bench (PR 6's BENCH_throughput.json, screening section, this container
# class).  ISSUE #7's acceptance targets are >= 10x with screening on
# and >= 2x with screening off.
PRIOR_WALL = {
    "on": {
        "gemm_64x64x64": 19.850182998403955,
        "conv2d_1x8x8x8_oc8_k3": 10.05050667906739,
    },
    "off": {
        "gemm_64x64x64": 3399.5581952101957,
        "conv2d_1x8x8x8_oc8_k3": 1877.195395394837,
    },
}
HOTPATH_TARGET_ON = 10.0
HOTPATH_TARGET_OFF = 2.0

WORKLOADS = {
    "gemm_64x64x64": lambda: gemm_compute(64, 64, 64, name="gemm"),
    "conv2d_1x8x8x8_oc8_k3": lambda: conv2d_compute(
        1, 8, 8, 8, 8, 3, padding=1, name="conv2d"
    ),
}


def run_tune(make_output, workers, cache_dir=None, trials=TRIALS,
             surrogate=False, screen_ratio=0.25,
             cluster=False, node_faults=None):
    start = time.perf_counter()
    result = optimize(
        make_output(),
        V100,
        trials=trials,
        method="q",
        seed=SEED,
        workers=workers,
        cache_dir=cache_dir,
        surrogate=surrogate,
        screen_ratio=screen_ratio,
        cluster=cluster,
        node_faults=node_faults,
    )
    wall = time.perf_counter() - start
    stats = dict(result.tuning.throughput)
    stats["total_wall_seconds"] = wall
    stats["best_gflops"] = result.gflops
    stats["best_performance"] = result.tuning.best_performance
    stats["real_measurements"] = result.tuning.num_measurements
    stats["best_point"] = (
        list(result.tuning.best_point) if result.tuning.best_point else None
    )
    if result.tuning.cluster is not None:
        stats["cluster"] = result.tuning.cluster
    return stats


def trimmed(stats):
    keys = (
        "workers", "engine_mode", "pool", "pool_mode", "pool_batches",
        "points_submitted", "points_measured",
        "points_cached", "points_deduped", "points_screened",
        "simulated_seconds", "points_per_simulated_second",
        "points_per_wall_second", "pool_utilization", "cache_hit_rate",
        "total_wall_seconds", "best_gflops", "real_measurements",
        "surrogate", "cluster", "lowering", "profile",
    )
    return {k: stats[k] for k in keys if k in stats}


def main(quick: bool = False) -> int:
    payload = {
        "benchmark": "bench_throughput",
        "quick": quick,
        "trials": TRIALS,
        "seed": SEED,
        "pool_workers": POOL_WORKERS,
        "workloads": {},
    }

    for name, make_output in ({} if quick else WORKLOADS).items():
        print(f"== {name} ==")
        serial = run_tune(make_output, workers=1)
        pooled = run_tune(make_output, workers=POOL_WORKERS)
        speedup_sim = (
            pooled["points_per_simulated_second"]
            / serial["points_per_simulated_second"]
            if serial["points_per_simulated_second"]
            else 0.0
        )
        speedup_wall = (
            pooled["points_per_wall_second"] / serial["points_per_wall_second"]
            if serial["points_per_wall_second"]
            else 0.0
        )
        payload["workloads"][name] = {
            "serial": trimmed(serial),
            "pooled": trimmed(pooled),
            "speedup_simulated": speedup_sim,
            "speedup_wall": speedup_wall,
        }
        print(
            f"  serial : {serial['points_per_simulated_second']:8.2f} pts/sim-s"
            f"  ({serial['points_per_wall_second']:.0f} pts/wall-s)"
        )
        print(
            f"  pooled : {pooled['points_per_simulated_second']:8.2f} pts/sim-s"
            f"  ({pooled['points_per_wall_second']:.0f} pts/wall-s,"
            f" utilization {pooled['pool_utilization']:.0%})"
        )
        print(f"  speedup: {speedup_sim:.2f}x simulated, {speedup_wall:.2f}x wall")

    # Cold/warm pair against a persistent cache directory (gemm).
    warm = None
    if not quick:
        print("== warm-start cache (gemm) ==")
        with tempfile.TemporaryDirectory() as cache_dir:
            cold = run_tune(WORKLOADS["gemm_64x64x64"], workers=1, cache_dir=cache_dir)
            warm = run_tune(WORKLOADS["gemm_64x64x64"], workers=1, cache_dir=cache_dir)
        payload["warm_cache"] = {
            "cold": trimmed(cold),
            "warm": trimmed(warm),
            "warm_hit_rate": warm["cache_hit_rate"],
            "warm_points_measured": warm["points_measured"],
        }
        print(
            f"  cold hit rate {cold['cache_hit_rate']:.0%}, "
            f"warm hit rate {warm['cache_hit_rate']:.0%} "
            f"({warm['points_measured']} re-measured)"
        )

    # Warm-up: the first tune of a process pays one-time import/alloc
    # costs that would otherwise be misattributed to whichever section
    # runs first (in --quick mode, the screening wall rates).
    for make_output in WORKLOADS.values():
        run_tune(make_output, workers=1, trials=2)

    # Surrogate screening: same trials and seed, screening off vs on —
    # best perf against the real measurements spent to reach it.
    payload["screening"] = {
        "trials": SCREEN_TRIALS,
        "screen_ratio": SCREEN_RATIO,
        "workloads": {},
    }
    screening_ok = {}
    hotpath = {}
    for name, make_output in WORKLOADS.items():
        print(f"== surrogate screening ({name}) ==")
        off = run_tune(make_output, workers=1, trials=SCREEN_TRIALS)
        on = run_tune(make_output, workers=1, trials=SCREEN_TRIALS,
                      surrogate=True, screen_ratio=SCREEN_RATIO)
        savings = (
            off["real_measurements"] / on["real_measurements"]
            if on["real_measurements"]
            else 0.0
        )
        ok = (
            on["best_performance"] >= off["best_performance"]
            and on["real_measurements"] <= 0.5 * off["real_measurements"]
        )
        screening_ok[name] = ok
        # Hot-path acceptance (ISSUE #7): wall rate vs the pinned
        # pre-vectorization baselines.
        hotpath[name] = {
            "on": on["points_per_wall_second"] / PRIOR_WALL["on"][name],
            "off": off["points_per_wall_second"] / PRIOR_WALL["off"][name],
        }
        payload["screening"]["workloads"][name] = {
            "off": trimmed(off),
            "on": trimmed(on),
            "measurement_savings": savings,
            "best_ge_off_at_le_half_measurements": ok,
            "wall_speedup_vs_prior": hotpath[name],
        }
        print(
            f"  off: {off['best_gflops']:6.1f} GFLOPS @ "
            f"{off['real_measurements']} measurements "
            f"[{off['engine_mode']}, {off['points_per_wall_second']:.0f} pts/wall-s, "
            f"{hotpath[name]['off']:.1f}x prior]"
        )
        print(
            f"  on : {on['best_gflops']:6.1f} GFLOPS @ "
            f"{on['real_measurements']} measurements "
            f"({on.get('points_screened', 0)} screened out, "
            f"{savings:.1f}x fewer measurements) "
            f"[{on['engine_mode']}, {on['points_per_wall_second']:.0f} pts/wall-s, "
            f"{hotpath[name]['on']:.1f}x prior]"
        )
        profile = on.get("profile") or {}
        spent = {k: v["seconds"] for k, v in profile.items() if v["calls"]}
        if spent:
            print(
                "  hot path (screening on): "
                + " ".join(f"{k}={v:.3f}s" for k, v in spent.items())
                + (
                    f"  lowering memo hit_rate="
                    f"{on['lowering']['hit_rate']:.0%}"
                    if on.get("lowering")
                    else ""
                )
            )

    # Cluster supervision chaos section (ISSUE #5): (a) seeded node
    # faults killing 3 of 4 workers mid-run must not change the best
    # schedule found (supervision perturbs timing/billing only), and
    # (b) on a slow-node fleet speculative re-execution should recover
    # simulated makespan versus the same chaos with speculation off.
    chaos_parity = spec_recovery = None
    if not quick:
        print("== cluster chaos (gemm) ==")
        gemm = WORKLOADS["gemm_64x64x64"]
        clean = run_tune(gemm, workers=POOL_WORKERS, cluster=True)
        doomed = run_tune(
            gemm, workers=POOL_WORKERS,
            cluster=True,
            node_faults=NodeFaultInjector(seed=SEED, dead_after={1: 3, 2: 3, 3: 3}),
        )
        chaos_parity = (
            doomed["best_performance"] == clean["best_performance"]
            and doomed["best_point"] == clean["best_point"]
            and doomed["real_measurements"] == clean["real_measurements"]
        )
        print(
            f"  clean : {clean['best_gflops']:6.1f} GFLOPS, "
            f"{clean['simulated_seconds']:.1f} sim-s "
            f"({clean['cluster']['alive']}/{POOL_WORKERS} workers alive)"
        )
        print(
            f"  chaos : {doomed['best_gflops']:6.1f} GFLOPS, "
            f"{doomed['simulated_seconds']:.1f} sim-s "
            f"({doomed['cluster']['alive']}/{POOL_WORKERS} workers alive, "
            f"{doomed['cluster']['num_reassigned']} leases reassigned)"
        )
        print(f"  best-schedule parity under chaos: {chaos_parity}")

        # 6x-slow nodes against the default 4x lease deadline: without
        # speculation a straggler burns its whole lease before expiry
        # reassigns it; with a p75 straggler threshold a speculative copy
        # launches much earlier and its result wins.
        slow_faults = lambda: NodeFaultInjector(  # noqa: E731
            slow_rate=0.3, slow_factor=6.0, seed=SEED
        )
        spec_on = run_tune(
            gemm, workers=POOL_WORKERS,
            cluster=ClusterConfig(workers=POOL_WORKERS, straggler_pct=75.0),
            node_faults=slow_faults(),
        )
        spec_off = run_tune(
            gemm, workers=POOL_WORKERS,
            cluster=ClusterConfig(
                workers=POOL_WORKERS, straggler_pct=75.0, speculate=False
            ),
            node_faults=slow_faults(),
        )
        spec_recovery = (
            spec_off["simulated_seconds"] / spec_on["simulated_seconds"]
            if spec_on["simulated_seconds"] else 0.0
        )
        print(
            f"  slow fleet, speculation on : {spec_on['simulated_seconds']:.1f} sim-s "
            f"({spec_on['cluster']['num_speculative']} speculative, "
            f"{spec_on['cluster']['num_speculative_wins']} won)"
        )
        print(
            f"  slow fleet, speculation off: {spec_off['simulated_seconds']:.1f} sim-s"
        )
        print(f"  speculation makespan recovery: {spec_recovery:.2f}x")
        payload["cluster_chaos"] = {
            "clean": trimmed(clean),
            "doomed": trimmed(doomed),
            "chaos_parity": chaos_parity,
            "speculation_on": trimmed(spec_on),
            "speculation_off": trimmed(spec_off),
            "speculation_makespan_recovery": spec_recovery,
        }

    # Intrinsic tensorization (ISSUE #8): same trials and seed on the
    # int8 GEMM, tensorize knob on vs off.  The knob-on search must end
    # on a tensorized schedule with strictly higher modeled GFLOPS.
    tensorize_ok = chosen_intrinsic = None
    tensorize_on = tensorize_off = None
    if not quick:
        n, k, m = TENSORIZE_SHAPE
        print(f"== intrinsic tensorization (int8 gemm {n}x{k}x{m}, cpu) ==")
        tensorize_on = optimize(
            gemm_int8_compute(n, k, m), XEON_E5_2699V4,
            trials=TENSORIZE_TRIALS, method="q", seed=SEED, tensorize=True,
        )
        tensorize_off = optimize(
            gemm_int8_compute(n, k, m), XEON_E5_2699V4,
            trials=TENSORIZE_TRIALS, method="q", seed=SEED,
        )
        chosen_intrinsic = (
            tensorize_on.config.tensorize if tensorize_on.config else ""
        )
        tensorize_ok = bool(
            chosen_intrinsic and tensorize_on.gflops > tensorize_off.gflops
        )
        # Match rate: fraction of random points in the tensorized space
        # that select an intrinsic and pass the TEN legality oracle.
        space = build_space(gemm_int8_compute(n, k, m), "cpu", tensorize=True)
        rng = np.random.default_rng(SEED)
        sampled = [
            space.decode(space.random_point(rng))
            for _ in range(TENSORIZE_SAMPLE)
        ]
        selected = [c for c in sampled if c.tensorize]
        legal = [
            c for c in selected
            if not tensorize_rejections(space.op, c, "cpu")
        ]
        match_rate = len(legal) / TENSORIZE_SAMPLE
        print(
            f"  tensorize on : {tensorize_on.gflops:6.1f} GFLOPS "
            f"(intrinsic: {chosen_intrinsic or 'none'})"
        )
        print(f"  tensorize off: {tensorize_off.gflops:6.1f} GFLOPS")
        print(
            f"  match rate: {match_rate:.0%} of {TENSORIZE_SAMPLE} sampled "
            f"points legally tensorized "
            f"({len(selected) - len(legal)} selected-but-rejected)"
        )
        payload["tensorize"] = {
            "workload": f"gemm_int8_{n}x{k}x{m}",
            "device": XEON_E5_2699V4.name,
            "trials": TENSORIZE_TRIALS,
            "best_gflops_on": tensorize_on.gflops,
            "best_gflops_off": tensorize_off.gflops,
            "chosen_intrinsic": chosen_intrinsic,
            "sampled_points": TENSORIZE_SAMPLE,
            "points_selecting_intrinsic": len(selected),
            "legal_match_rate": match_rate,
            "tensorized_best_beats_knob_off": tensorize_ok,
        }

    criteria = {
        "gemm_screened_best_ge_off_at_le_half_measurements":
            screening_ok["gemm_64x64x64"],
        "conv2d_screened_best_ge_off_at_le_half_measurements":
            screening_ok["conv2d_1x8x8x8_oc8_k3"],
    }
    for name in WORKLOADS:
        short = name.split("_")[0]
        criteria[f"{short}_wall_speedup_screen_on"] = hotpath[name]["on"]
        criteria[f"{short}_wall_speedup_screen_on_ge_10x"] = (
            hotpath[name]["on"] >= HOTPATH_TARGET_ON
        )
        criteria[f"{short}_wall_speedup_screen_off"] = hotpath[name]["off"]
        criteria[f"{short}_wall_speedup_screen_off_ge_2x"] = (
            hotpath[name]["off"] >= HOTPATH_TARGET_OFF
        )
    if not quick:
        gemm_speedup = payload["workloads"]["gemm_64x64x64"]["speedup_simulated"]
        criteria.update({
            "gemm_pooled_speedup_simulated": gemm_speedup,
            "gemm_pooled_speedup_ge_3x": gemm_speedup >= 3.0,
            "warm_hit_rate": warm["cache_hit_rate"],
            "warm_hit_rate_ge_50pct": warm["cache_hit_rate"] >= 0.5,
            "cluster_chaos_best_schedule_parity": chaos_parity,
            "cluster_speculation_makespan_recovery": spec_recovery,
            "cluster_speculation_recovers_makespan": spec_recovery > 1.0,
            "tensorize_best_gflops": tensorize_on.gflops,
            "tensorize_chosen_intrinsic": chosen_intrinsic,
            "tensorize_best_beats_knob_off": tensorize_ok,
        })
    payload["criteria"] = criteria

    out = REPO_ROOT / (
        "BENCH_throughput_quick.json" if quick else "BENCH_throughput.json"
    )
    out.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    failed = []
    for key, value in payload["criteria"].items():
        print(f"  {key}: {value}")
        if value is False:
            failed.append(key)
    if failed:
        print(f"FAILED criteria: {', '.join(failed)}")
        return 1
    return 0


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="screening section only; exit nonzero on any false criterion",
    )
    sys.exit(main(quick=parser.parse_args().quick))
