"""Figure 6a: absolute C2D performance on V100, layers C1..C15 (Table 4).

Expected shape: FlexTensor beats PyTorch and cuDNN on most layers
(geomean ~1.5x over cuDNN), while cuDNN's Winograd kernels win on C4 and
C6 (the paper's crossover layers).
"""

from conftest import geomean, once, print_table, save_results

from repro import optimize
from repro.baselines import cudnn_time, pytorch_gpu_time
from repro.model import V100
from repro.ops import SUITES

TRIALS = 60


def run_fig6a():
    rows = []
    for index, workload in enumerate(SUITES["C2D"], start=1):
        out = workload.build()
        flex = optimize(out, V100, trials=TRIALS, num_seeds=8, seed=0)
        cudnn = cudnn_time(workload, V100)
        torch = pytorch_gpu_time(workload, V100)
        rows.append({
            "layer": f"C{index}",
            "pytorch": torch.gflops,
            "cudnn": cudnn.gflops,
            "cudnn_algo": cudnn.algorithm,
            "flextensor": flex.gflops,
        })
    return rows


def test_fig6a(benchmark):
    rows = once(benchmark, run_fig6a)
    print_table(
        "Figure 6a — C2D GFLOPS on V100",
        ["layer", "PyTorch", "cuDNN", "algo", "FlexTensor", "flex/cudnn"],
        [
            [r["layer"], f"{r['pytorch']:.0f}", f"{r['cudnn']:.0f}",
             r["cudnn_algo"], f"{r['flextensor']:.0f}",
             f"{r['flextensor'] / r['cudnn']:.2f}"]
            for r in rows
        ],
    )
    save_results("fig6a", rows)

    ratios = {r["layer"]: r["flextensor"] / r["cudnn"] for r in rows}
    overall = geomean(list(ratios.values()))
    print(f"geomean flex/cudnn: {overall:.2f} (paper: ~1.5)")

    assert 1.2 < overall < 2.5, overall
    # The Winograd crossover: cuDNN wins C4 and C6 (paper).
    assert ratios["C4"] < 1.0, ratios["C4"]
    assert ratios["C6"] < 1.0, ratios["C6"]
    # FlexTensor wins at least 10 of the 15 layers.
    assert sum(1 for r in ratios.values() if r > 1.0) >= 10, ratios
    # PyTorch (no cuDNN) trails cuDNN throughout, as in the figure.
    torch_wins = sum(1 for r in rows if r["pytorch"] > r["cudnn"])
    assert torch_wins <= 2, torch_wins
    # Average absolute throughput is in the multi-TFLOPS regime the paper
    # reports (3.5 TFLOPS average for FlexTensor).
    assert geomean([r["flextensor"] for r in rows]) > 1000
