"""Figure 7: performance vs exploration time for C1, C6, C8, C9.

Expected shape: the Q-method's curve climbs to a good performance in a
short time, while the P-method and AutoTVM take longer to reach the same
level (the paper's four panels).
"""

from conftest import geomean, once, print_table, save_results

from repro.baselines import AutoTVMTuner, build_template_space
from repro.explore import FlexTensorTuner, PMethodTuner
from repro.model import V100
from repro.ops import SUITES
from repro.runtime import Evaluator

CASES = [1, 6, 8, 9]


def sample_curve(curve, times):
    """Best performance achieved by each wall-clock checkpoint."""
    samples = []
    for t in times:
        best = 0.0
        for clock, perf in curve:
            if clock <= t:
                best = perf
            else:
                break
        samples.append(best)
    return samples


def run_fig7():
    results = {}
    for index in CASES:
        out = SUITES["C2D"][index - 1].build()

        q_eval = Evaluator(out, V100)
        q = FlexTensorTuner(q_eval, num_starting_points=8, steps=6, seed=0).tune(
            80, num_seeds=16
        )

        p_eval = Evaluator(out, V100)
        p = PMethodTuner(p_eval, seed=0).tune(10, num_seeds=16)

        at_eval = Evaluator(out, V100, space=build_template_space(out, "gpu"))
        at = AutoTVMTuner(at_eval, model_fit_seconds=8.0, seed=0).tune(30)

        results[f"C{index}"] = {
            "q": q.curve, "p": p.curve, "autotvm": at.curve,
            "finals": {
                "q": q.best_performance,
                "p": p.best_performance,
                "autotvm": at.best_performance,
            },
        }
    return results


def test_fig7(benchmark):
    results = once(benchmark, run_fig7)
    checkpoints = [250, 500, 1000, 2000, 4000]
    for case, data in results.items():
        rows = []
        for method in ("q", "p", "autotvm"):
            samples = sample_curve(data[method], checkpoints)
            rows.append([method] + [f"{s:.0f}" for s in samples])
        print_table(
            f"Figure 7 ({case}) — best GFLOPS by simulated time (s)",
            ["method"] + [str(t) for t in checkpoints],
            rows,
        )
    save_results("fig7", {
        case: {m: data[m] for m in ("q", "p", "autotvm")} | {"finals": data["finals"]}
        for case, data in results.items()
    })

    # Q converges to a good performance in a short time (the paper's
    # summary of these panels).  Following the protocol of §6.5 — the
    # comparison methods run to *stable* convergence, so they pay their
    # full tuning time — Q must reach a similar (85%) performance in less
    # simulated time than the full P-method run...
    def time_to(curve, target):
        for clock, perf in curve:
            if perf >= target:
                return clock
        return curve[-1][0]

    ratios_p, ratios_at = [], []
    for data in results.values():
        at_target = 0.85 * data["finals"]["autotvm"]
        p_target = 0.85 * data["finals"]["p"]
        ratios_at.append(time_to(data["q"], at_target) / data["autotvm"][-1][0])
        ratios_p.append(time_to(data["q"], p_target) / data["p"][-1][0])
    assert geomean(ratios_at) < 1.0, ratios_at
    # ...and in less simulated time than the full P-method run.
    assert geomean(ratios_p) < 1.0, ratios_p

    # All methods eventually land in a similar performance regime (within
    # ~2x of each other), as the four panels show.
    for case, data in results.items():
        finals = data["finals"]
        assert max(finals.values()) / max(min(finals.values()), 1e-9) < 2.5, (case, finals)

    # Curves are monotone non-decreasing by construction.
    for data in results.values():
        for method in ("q", "p", "autotvm"):
            perfs = [perf for _, perf in data[method]]
            assert perfs == sorted(perfs)
