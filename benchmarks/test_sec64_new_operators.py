"""§6.4: new operators without library support — BCM and SHO.

Expected shape: FlexTensor beats the one-size hand-tuned GPU kernels on
average (paper: 2.11x for BCM on V100, 1.53x for SHO on Titan X), because
the hand implementation uses one 4-level tiling for every shape.
"""

from conftest import geomean, once, print_table, save_results

from repro import optimize
from repro.baselines import hand_tuned_gpu_time
from repro.model import TITAN_X, V100
from repro.ops import bcm_workloads, shift_workloads

TRIALS = 50


def run_sec64():
    rows = []
    for workload in bcm_workloads():
        out = workload.build()
        flex = optimize(out, V100, trials=TRIALS, num_seeds=8, seed=0)
        hand = hand_tuned_gpu_time(workload, V100)
        rows.append({
            "operator": "BCM", "case": workload.name, "device": "V100",
            "hand": hand.gflops, "flextensor": flex.gflops,
            "speedup": flex.gflops / hand.gflops,
        })
    for workload in shift_workloads():
        out = workload.build()
        flex = optimize(out, TITAN_X, trials=TRIALS, num_seeds=8, seed=0)
        hand = hand_tuned_gpu_time(workload, TITAN_X)
        rows.append({
            "operator": "SHO", "case": workload.name, "device": "TitanX",
            "hand": hand.gflops, "flextensor": flex.gflops,
            "speedup": flex.gflops / hand.gflops,
        })
    return rows


def test_sec64(benchmark):
    rows = once(benchmark, run_sec64)
    print_table(
        "§6.4 — new operators vs hand-tuned GPU kernels",
        ["op", "case", "device", "hand GF", "flex GF", "speedup"],
        [
            [r["operator"], r["case"], r["device"], f"{r['hand']:.1f}",
             f"{r['flextensor']:.1f}", f"{r['speedup']:.2f}"]
            for r in rows
        ],
    )
    save_results("sec64", rows)

    bcm = geomean([r["speedup"] for r in rows if r["operator"] == "BCM"])
    sho = geomean([r["speedup"] for r in rows if r["operator"] == "SHO"])
    print(f"BCM avg speedup: {bcm:.2f} (paper: 2.11); SHO: {sho:.2f} (paper: 1.53)")

    assert bcm > 1.2, bcm
    # SHO is a zero-FLOP, purely bandwidth-bound operator: under our
    # roofline-style machine model both the hand kernel and the searched
    # schedule saturate DRAM, so parity (not the paper's 1.53x) is the
    # reproducible outcome.  Documented in EXPERIMENTS.md.
    assert sho > 0.9, sho
    # every individual case should at least not regress badly
    assert all(r["speedup"] > 0.8 for r in rows)
