"""Unit tests for the expression AST (repro.ir.expr)."""

import pytest

from repro.ir import (
    Add,
    Compare,
    FloatImm,
    FloorDiv,
    IntImm,
    IterVar,
    Max,
    Min,
    Mod,
    Mul,
    Reduce,
    Select,
    Sub,
    Var,
    all_of,
    reduce_axis,
    sum_reduce,
    wrap,
)


class TestWrap:
    def test_int_becomes_intimm(self):
        expr = wrap(3)
        assert isinstance(expr, IntImm)
        assert expr.value == 3

    def test_float_becomes_floatimm(self):
        expr = wrap(2.5)
        assert isinstance(expr, FloatImm)
        assert expr.value == 2.5

    def test_expr_passes_through(self):
        v = Var("x")
        assert wrap(v) is v

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            wrap(True)

    def test_string_rejected(self):
        with pytest.raises(TypeError):
            wrap("hello")


class TestOperatorOverloads:
    def setup_method(self):
        self.x = Var("x")
        self.y = Var("y")

    def test_add(self):
        expr = self.x + self.y
        assert isinstance(expr, Add)
        assert expr.a is self.x and expr.b is self.y

    def test_radd_wraps_constant(self):
        expr = 1 + self.x
        assert isinstance(expr, Add)
        assert isinstance(expr.a, IntImm)

    def test_sub_and_rsub(self):
        assert isinstance(self.x - 1, Sub)
        assert isinstance(1 - self.x, Sub)

    def test_mul_and_rmul(self):
        assert isinstance(self.x * 2, Mul)
        assert isinstance(2 * self.x, Mul)

    def test_floordiv_and_mod(self):
        assert isinstance(self.x // 4, FloorDiv)
        assert isinstance(self.x % 4, Mod)

    def test_neg_is_zero_minus(self):
        expr = -self.x
        assert isinstance(expr, Sub)
        assert isinstance(expr.a, IntImm) and expr.a.value == 0

    def test_nested_expression_builds_tree(self):
        expr = (self.x + 1) * (self.y - 2)
        assert isinstance(expr, Mul)
        assert isinstance(expr.a, Add)
        assert isinstance(expr.b, Sub)


class TestIterVar:
    def test_spatial_default(self):
        iv = IterVar(8, "i")
        assert not iv.is_reduce
        assert iv.extent == 8

    def test_reduce_kind(self):
        iv = IterVar(8, "r", kind="reduce")
        assert iv.is_reduce

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            IterVar(8, "i", kind="banana")

    def test_nonpositive_extent_rejected(self):
        with pytest.raises(ValueError):
            IterVar(0, "i")
        with pytest.raises(ValueError):
            IterVar(-3, "i")

    def test_reduce_axis_helper(self):
        axis = reduce_axis(16, "rk")
        assert axis.is_reduce and axis.extent == 16 and axis.name == "rk"


class TestReduce:
    def test_sum_reduce_single_axis(self):
        r = reduce_axis(4)
        red = sum_reduce(Var("x") * 2, r)
        assert isinstance(red, Reduce)
        assert red.combiner == "sum"
        assert red.axes == (r,)
        assert red.identity == 0.0

    def test_max_identity(self):
        from repro.ir import max_reduce

        r = reduce_axis(4)
        red = max_reduce(Var("x"), r)
        assert red.identity == float("-inf")

    def test_spatial_axis_rejected(self):
        s = IterVar(4, "i")  # spatial
        with pytest.raises(ValueError):
            Reduce("sum", Var("x"), (s,))

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError):
            Reduce("sum", Var("x"), ())

    def test_unknown_combiner_rejected(self):
        r = reduce_axis(4)
        with pytest.raises(ValueError):
            Reduce("median", Var("x"), (r,))


class TestConditions:
    def test_compare_ops(self):
        x = Var("x")
        for op in ("<", "<=", ">", ">=", "==", "!="):
            cond = Compare(op, x, 3)
            assert cond.op == op

    def test_bad_compare_op(self):
        with pytest.raises(ValueError):
            Compare("~=", Var("x"), 1)

    def test_all_of_combines(self):
        x = Var("x")
        combined = all_of([Compare(">", x, 0), Compare("<", x, 10)])
        from repro.ir import And

        assert isinstance(combined, And)

    def test_all_of_empty_rejected(self):
        with pytest.raises(ValueError):
            all_of([])

    def test_select_wraps_values(self):
        cond = Compare(">", Var("x"), 0)
        sel = Select(cond, 1, 0.0)
        assert isinstance(sel.then_value, IntImm)
        assert isinstance(sel.else_value, FloatImm)


class TestMinMax:
    def test_min_max_nodes(self):
        x, y = Var("x"), Var("y")
        assert isinstance(Min(x, y), Min)
        assert isinstance(Max(x, y), Max)
