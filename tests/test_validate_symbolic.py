"""Symbolic bijection validation (ISSUE #3): the mixed-radix proof must
accept every lowered schedule at any space size, reject corrupted index
maps even when enumeration is impossible, and agree with exhaustive
enumeration where both apply."""

import numpy as np
import pytest

from repro.ir import IntImm, Sub
from repro.ops import conv2d_compute, gemm_compute
from repro.schedule import lower
from repro.schedule.validate import (
    ScheduleValidationError,
    _validate_by_enumeration,
    _validate_symbolic,
    validate_schedule,
)
from repro.space import build_space

LARGE = 200_000  # the old enumeration cutoff


def random_schedules(output, target, count, seed=0):
    space = build_space(output, target)
    rng = np.random.default_rng(seed)
    for _ in range(count):
        yield lower(output, space.decode(space.random_point(rng)), target)


def iteration_space(scheduled):
    size = 1
    for axis in scheduled.op.all_axes:
        size *= axis.extent
    return size


class TestSymbolicProof:
    @pytest.mark.parametrize("target", ["gpu", "cpu", "fpga"])
    def test_proves_large_gemm_spaces(self, target):
        out = gemm_compute(1024, 1024, 1024)
        for scheduled in random_schedules(out, target, 20):
            assert iteration_space(scheduled) > LARGE
            _validate_symbolic(scheduled)      # must not raise
            validate_schedule(scheduled)       # full pipeline, no fallback

    @pytest.mark.parametrize("target", ["gpu", "cpu"])
    def test_proves_large_conv2d_spaces(self, target):
        out = conv2d_compute(1, 64, 56, 56, 128, 3, padding=1)
        for scheduled in random_schedules(out, target, 10, seed=1):
            assert iteration_space(scheduled) > LARGE
            _validate_symbolic(scheduled)

    def test_agrees_with_enumeration_on_small_spaces(self):
        out = gemm_compute(8, 8, 8)
        for scheduled in random_schedules(out, "gpu", 20, seed=2):
            size = iteration_space(scheduled)
            assert size <= LARGE
            _validate_symbolic(scheduled)
            _validate_by_enumeration(scheduled, size)  # same verdict


def corrupt_one(output, target="gpu", seed=5):
    space = build_space(output, target)
    rng = np.random.default_rng(seed)
    scheduled = lower(output, space.decode(space.random_point(rng)), target)
    axis = next(iter(output.op.all_axes))
    return scheduled, axis


class TestCorruptionDetection:
    def test_constant_axis_on_large_space(self):
        # enumeration is hopeless at 2^30 points; the proof still fails fast
        scheduled, axis = corrupt_one(gemm_compute(1024, 1024, 1024))
        scheduled.index_map[axis] = IntImm(0)
        with pytest.raises(ScheduleValidationError):
            validate_schedule(scheduled)

    def test_duplicated_digit_on_large_space(self):
        # mapping one axis onto another's expression breaks injectivity
        scheduled, axis = corrupt_one(gemm_compute(1024, 1024, 1024))
        axes = list(scheduled.op.all_axes)
        scheduled.index_map[axes[0]] = scheduled.index_map[axes[1]]
        with pytest.raises(ScheduleValidationError):
            validate_schedule(scheduled)

    def test_scaled_axis_on_large_space(self):
        scheduled, axis = corrupt_one(gemm_compute(1024, 1024, 1024))
        scheduled.index_map[axis] = scheduled.index_map[axis] * IntImm(2)
        with pytest.raises(ScheduleValidationError):
            validate_schedule(scheduled)

    def test_offset_axis_on_large_space(self):
        scheduled, axis = corrupt_one(gemm_compute(1024, 1024, 1024))
        scheduled.index_map[axis] = scheduled.index_map[axis] + IntImm(1)
        with pytest.raises(ScheduleValidationError):
            validate_schedule(scheduled)


class TestFallbacks:
    def test_unparseable_but_correct_falls_back_to_enumeration(self):
        # 2v - v == v is outside the linear fragment (Sub): on a small
        # space enumeration settles it as valid
        scheduled, axis = corrupt_one(gemm_compute(8, 8, 8))
        expr = scheduled.index_map[axis]
        scheduled.index_map[axis] = Sub(expr * IntImm(2), expr)
        validate_schedule(scheduled)  # enumeration verdict: still a bijection

    def test_unparseable_and_wrong_caught_by_enumeration(self):
        scheduled, axis = corrupt_one(gemm_compute(8, 8, 8))
        expr = scheduled.index_map[axis]
        scheduled.index_map[axis] = Sub(expr * IntImm(3), expr)  # == 2*expr
        with pytest.raises(ScheduleValidationError):
            validate_schedule(scheduled)

    def test_unparseable_large_space_keeps_structural_checks_only(self):
        # legacy contract: beyond the enumeration budget an expression the
        # proof cannot read is not an error by itself
        scheduled, axis = corrupt_one(gemm_compute(1024, 1024, 1024))
        expr = scheduled.index_map[axis]
        scheduled.index_map[axis] = Sub(expr * IntImm(2), expr)
        validate_schedule(scheduled)  # silently structural-only
