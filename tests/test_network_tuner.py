"""Network-level task scheduler: dedup, determinism, crash parity,
ε-floor fairness, shared-cache accounting, and the serve read path."""

import math

import pytest

from repro.__main__ import main
from repro.model import XEON_E5_2699V4
from repro.nn import (
    LayerSpec,
    Network,
    NetworkChaos,
    NetworkKilled,
    NetworkTaskScheduler,
    optimize_network,
    tune_network,
)
from repro.nn.network import _epilogue_seconds
from repro.nn.tuner import TuneTask
from repro.ops.workloads import Workload
from repro.runtime import RecordBook

DEVICE = XEON_E5_2699V4


def conv(name, c_in, c_out, hw, kernel=3):
    return Workload("C2D", name, dict(
        batch=1, in_channel=c_in, height=hw, width=hw,
        out_channel=c_out, kernel=kernel, stride=1, padding=kernel // 2,
    ))


def tiny_network():
    """Three distinct shapes; the first two layers share one."""
    return Network("tiny", [
        LayerSpec(conv("a", 8, 16, 16), 2),
        LayerSpec(conv("a_again", 8, 16, 16), 1),   # same shape as "a"
        LayerSpec(conv("b", 16, 32, 8), 1),
        LayerSpec(conv("c", 4, 8, 8, kernel=1), 1),
    ])


def run(base, network=None, chaos=None, resume=False, **kwargs):
    options = dict(trials=8, seed=3, slice_trials=3, round_slots=2)
    options.update(kwargs)
    return tune_network(
        network if network is not None else tiny_network(), DEVICE,
        records=base / "records.jsonl",
        eval_cache=base / "cache",
        checkpoint_dir=base / "ckpt",
        resume=resume, chaos=chaos,
        **options,
    )


class TestSignatureDedup:
    def test_identical_layers_become_one_task(self, tmp_path):
        result = run(tmp_path)
        assert len(result.tasks) == 3          # 4 specs, one duplicate shape
        assert result.dedup_layers_covered == 1
        merged = result.tasks[0]
        assert merged.layer_indices == [0, 1]
        assert merged.multiplicity == 3        # x2 + x1 occurrences

    def test_covered_layers_share_the_tuned_schedule(self, tmp_path):
        result = run(tmp_path)
        first, second = result.layers[0], result.layers[1]
        assert first.kernel_seconds == second.kernel_seconds
        assert first.gflops == second.gflops

    def test_duplicate_layer_costs_no_extra_measurements(self, tmp_path):
        """Cache-hit accounting: with dedup, the second occurrence of a
        signature is served for free — the deduped network spends exactly
        what the single-layer network spends at the same per-task cap."""
        single = Network("one", [LayerSpec(conv("a", 8, 16, 16), 1)])
        double = Network("two", [
            LayerSpec(conv("a", 8, 16, 16), 1),
            LayerSpec(conv("a_again", 8, 16, 16), 1),
        ])
        kwargs = dict(trials=6, cap_boost=1.0, patience=10_000)
        lone = run(tmp_path / "single", network=single, **kwargs)
        deduped = run(tmp_path / "double", network=double, **kwargs)
        assert len(deduped.tasks) == 1
        assert deduped.total_measurements == lone.total_measurements
        assert deduped.trials_spent == lone.trials_spent


class TestDeterminism:
    def test_same_seed_is_bit_identical(self, tmp_path):
        first = run(tmp_path / "one")
        second = run(tmp_path / "two")
        assert first.state_digest() == second.state_digest()

    def test_different_seed_changes_the_run(self, tmp_path):
        first = run(tmp_path / "one")
        second = run(tmp_path / "two", seed=4)
        assert first.state_digest() != second.state_digest()


class TestKillResumeParity:
    @pytest.mark.parametrize("kill_after", [1, 3, 5])
    def test_kill_and_resume_is_bit_identical(self, tmp_path, kill_after):
        reference = run(tmp_path / "ref")
        with pytest.raises(NetworkKilled):
            run(tmp_path / "chaos", chaos=NetworkChaos(kill_after_slices=kill_after))
        resumed = run(tmp_path / "chaos", resume=True)
        assert resumed.state_digest() == reference.state_digest()

    def test_fresh_run_ignores_stale_checkpoints(self, tmp_path):
        """resume=False must wipe leftover slice checkpoints: a rerun in
        a used directory behaves exactly like one in a clean directory
        (same records and cache state in both)."""
        import shutil

        first_dir = tmp_path / "a"
        run(first_dir)
        clone_dir = tmp_path / "b"
        shutil.copytree(first_dir, clone_dir)
        shutil.rmtree(clone_dir / "ckpt")
        stale = run(first_dir)     # checkpoint files from the first run present
        clean = run(clone_dir)     # none
        assert stale.state_digest() == clean.state_digest()

    def test_killed_exception_escapes_except_exception(self, tmp_path):
        with pytest.raises(NetworkKilled):
            try:
                run(tmp_path, chaos=NetworkChaos(kill_after_slices=1))
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("NetworkKilled must not be an Exception")


class TestEpsilonFloor:
    def synthetic_tasks(self):
        """One flat (zero-gain) task among steadily improving ones."""
        tasks = []
        for index in range(3):
            task = TuneTask(
                index=index, signature=f"sig-{index}", workload=None,
                layer_indices=[index], multiplicity=1, weight_flops=100,
                max_trials=1000, trials_done=6,
            )
            if index == 0:
                task.curve = [(3, 1.0), (6, 1.0)]       # converged: gain 0
            else:
                task.curve = [(3, 1.0), (6, 0.5)]       # still improving
            task.kernel_seconds = task.curve[-1][1]
            tasks.append(task)
        return tasks

    def test_zero_gain_task_is_forced_after_starve_rounds(self, tmp_path):
        scheduler = NetworkTaskScheduler(
            Network("one", [LayerSpec(conv("a", 4, 8, 8, kernel=1), 1)]),
            DEVICE, round_slots=1, starve_rounds=2,
            checkpoint_dir=tmp_path,
        )
        tasks = self.synthetic_tasks()
        for task in tasks:
            task.last_served_round = 0
        # Round 1: gain ranking alone would pick an improving task...
        plan = scheduler.plan_round(1, tasks)
        assert plan == [(1, "gain")]
        # ...but once the flat task has waited starve_rounds rounds, the
        # floor forces it to the front despite its zero gain.
        plan = scheduler.plan_round(2, tasks)
        assert plan[0] == (0, "floor")

    def test_no_runnable_task_starves_in_a_real_run(self, tmp_path):
        starve_rounds = 2
        result = run(
            tmp_path, trials=10, round_slots=1, starve_rounds=starve_rounds,
            patience=10_000,             # keep every task runnable throughout
        )
        served = {}
        for event in result.trace:
            served.setdefault(event["task"], []).append(event["round"])
        # Every task is served at least once per starve_rounds + n_tasks
        # window while runnable (the floor may queue several starved
        # tasks behind one slot, hence the + n_tasks slack).
        bound = starve_rounds + len(result.tasks)
        for rounds in served.values():
            gaps = [b - a for a, b in zip(rounds, rounds[1:])]
            assert max(gaps, default=0) <= bound


class TestSharedRecords:
    def test_records_are_stamped_with_serve_keys(self, tmp_path):
        result = run(tmp_path)
        book = RecordBook(tmp_path / "records.jsonl")
        assert result.found
        for task in result.tasks:
            record = book.best_for_signature(task.signature)
            assert record is not None
            assert record.key.startswith("conv2d[")
            assert record.key.endswith(f"@{DEVICE.name}")
            assert record.gflops == task.best_gflops

    def test_lookup_cli_answers_network_layer_queries(self, tmp_path):
        """The round trip of satellite (b): tune a network into a store,
        then resolve one of its layers through ``python -m repro lookup``."""
        store = tmp_path / "store"
        store.mkdir()
        network = Network("lookup-net", [LayerSpec(conv("a", 8, 16, 8), 1)])
        result = tune_network(
            network, DEVICE, trials=4, seed=0, slice_trials=2,
            records=store / "records.jsonl",
            eval_cache=store / "evalcache",
        )
        assert result.found
        rc = main([
            "lookup", "--store", str(store), "--op", "conv2d",
            "--device", DEVICE.name, "--batch", "1", "--in-channel", "8",
            "--out-channel", "16", "--size", "8", "--kernel", "3",
            "--stride", "1", "--padding", "1",
        ])
        assert rc == 0
        rc = main([
            "lookup", "--store", str(store), "--op", "conv2d",
            "--device", DEVICE.name, "--batch", "1", "--in-channel", "999",
            "--out-channel", "16", "--size", "8", "--kernel", "3",
        ])
        assert rc == 1

    def test_warm_start_from_prior_run(self, tmp_path):
        """A second network run over the same store warm-starts every
        task from the record book (exact signature hits)."""
        first = run(tmp_path)
        # The heaviest task is tuned first, before any record exists.
        assert first.tasks[0].warm_source == ""
        second = run(tmp_path)  # same store: records now pre-populated
        assert all(t.warm_source == "signature" for t in second.tasks)


class TestBudget:
    def test_global_budget_is_never_exceeded(self, tmp_path):
        result = run(tmp_path)
        assert result.trials_spent <= result.trials_budget
        assert result.trials_budget == 8 * 4   # trials x len(network.layers)

    def test_uniform_mode_spends_the_flat_budget(self, tmp_path):
        result = run(tmp_path, allocate=False)
        assert result.mode == "uniform"
        assert len(result.tasks) == 4          # no dedup on the flat path
        assert result.trials_spent == result.trials_budget

    def test_optimize_network_scheduler_wiring(self):
        network = Network("one", [LayerSpec(conv("a", 4, 8, 8, kernel=1), 1)])
        result = optimize_network(
            network, DEVICE, trials=4, scheduler="allocated", slice_trials=2,
        )
        assert result.layers and math.isfinite(result.total_seconds)
        with pytest.raises(ValueError):
            optimize_network(network, DEVICE, scheduler="nope")
        with pytest.raises(ValueError):
            optimize_network(network, DEVICE, method="autotvm",
                             scheduler="allocated")


class TestEpilogueDtype:
    class _Stub:
        def __init__(self, dtype):
            self.dtype = dtype

        def build(self):
            import types
            return types.SimpleNamespace(size=4096, dtype=self.dtype)

    def test_element_size_follows_output_dtype(self):
        launch = getattr(DEVICE, "kernel_launch_us", 5.0) * 1e-6
        f32 = _epilogue_seconds(self._Stub("float32"), DEVICE, fused=False)
        i8 = _epilogue_seconds(self._Stub("int8"), DEVICE, fused=False)
        assert (f32 - launch) == pytest.approx(4 * (i8 - launch))

    def test_fused_epilogue_is_free(self):
        assert _epilogue_seconds(self._Stub("int8"), DEVICE, fused=True) == 0.0
