"""Tests for code emission and feature extraction."""

import numpy as np
import pytest

from repro.codegen import (
    access_stride,
    bytes_of,
    coalescing_efficiency,
    compile_python,
    emit_pseudo,
    emit_python,
    execute_compute_op,
    flops_of,
    output_write_stride,
    random_inputs,
    reuse_factor,
    tile_footprint,
)
from repro.ops import conv2d_compute, gemm_compute
from repro.schedule import NodeConfig, lower


def gemm_schedule(target="gpu"):
    out = gemm_compute(8, 8, 8, name="g")
    if target == "gpu":
        config = NodeConfig(
            spatial_factors=((2, 1, 2, 2), (1, 2, 2, 2)), reduce_factors=((2, 4),)
        )
    elif target == "cpu":
        config = NodeConfig(
            spatial_factors=((2, 2, 2), (2, 2, 2)), reduce_factors=((2, 4),)
        )
    else:
        config = NodeConfig(spatial_factors=((2, 4), (4, 2)), reduce_factors=((8,),))
    return out, lower(out, config, target)


class TestEmitPython:
    def test_source_is_compilable(self):
        _, sch = gemm_schedule()
        source = emit_python(sch)
        compile(source, "<test>", "exec")

    def test_annotations_become_comments(self):
        _, sch = gemm_schedule()
        source = emit_python(sch)
        assert "bind blockIdx.x" in source
        assert "bind threadIdx.x" in source

    def test_function_name_parameter(self):
        _, sch = gemm_schedule()
        assert "def my_kernel(" in emit_python(sch, "my_kernel")

    def test_compiled_kernel_runs(self):
        out, sch = gemm_schedule()
        kernel = compile_python(sch)
        inputs = random_inputs(out, seed=0)
        result = kernel({k: np.asarray(v) for k, v in inputs.items()})
        assert result.shape == (8, 8)

    def test_inlined_padding_expanded_in_source(self):
        out = conv2d_compute(1, 2, 4, 4, 2, 3, padding=1, name="c")
        config = NodeConfig(
            spatial_factors=((1, 1, 1, 1), (1, 1, 2, 1), (2, 1, 2, 1), (2, 1, 2, 1)),
            reduce_factors=((2, 1), (3, 1), (3, 1)),
        )
        sch = lower(out, config, "gpu")
        source = emit_python(sch)
        # padding inlined as a conditional expression, not a buffer read
        assert "c_pad" not in source.replace("c_pad = buffers", "")
        assert " if " in source


class TestEmitPseudo:
    @pytest.mark.parametrize("target,marker", [
        ("gpu", "CUDA"), ("cpu", "OpenMP"), ("fpga", "HLS"),
    ])
    def test_target_flavour(self, target, marker):
        _, sch = gemm_schedule(target)
        assert marker in emit_pseudo(sch)

    def test_shared_memory_declared(self):
        _, sch = gemm_schedule("gpu")
        assert "__shared__" in emit_pseudo(sch)


class TestTileFootprint:
    def setup_method(self):
        self.out = conv2d_compute(1, 4, 8, 8, 4, 3, padding=1, name="c")
        self.op = self.out.op
        self.pad, self.weight = self.op.input_tensors

    def test_weight_footprint(self):
        b, k, i, j = self.op.axes
        rc, rx, ry = self.op.reduce_axes
        tile = {k: 2, rc: 4, rx: 3, ry: 3}
        assert tile_footprint(self.op, self.weight, tile) == 2 * 4 * 3 * 3

    def test_input_halo(self):
        b, k, i, j = self.op.axes
        rc, rx, ry = self.op.reduce_axes
        tile = {i: 4, j: 4, rc: 4, rx: 3, ry: 3}
        # spatial reach: 4 output + 2 halo = 6 per dim
        assert tile_footprint(self.op, self.pad, tile) == 1 * 4 * 6 * 6

    def test_footprint_clipped_to_tensor(self):
        b, k, i, j = self.op.axes
        tile = {i: 8, j: 8}
        fp = tile_footprint(self.op, self.pad, tile)
        assert fp <= self.pad.size

    def test_unread_tensor_footprint_zero(self):
        other = gemm_compute(4, 4, 4).op.input_tensors[0]
        assert tile_footprint(self.op, other, {}) == 0

    def test_reuse_factor_grows_with_tile(self):
        b, k, i, j = self.op.axes
        rc, rx, ry = self.op.reduce_axes
        small = reuse_factor(self.op, self.weight, {k: 1, i: 1, j: 1, rc: 4, rx: 3, ry: 3})
        large = reuse_factor(self.op, self.weight, {k: 1, i: 8, j: 8, rc: 4, rx: 3, ry: 3})
        assert large > small


class TestStridesAndCoalescing:
    def setup_method(self):
        self.out = gemm_compute(16, 16, 16, name="g")
        self.op = self.out.op
        self.a, self.b = self.op.input_tensors
        self.i, self.j = self.op.axes
        (self.k,) = self.op.reduce_axes

    def test_access_strides(self):
        assert access_stride(self.op, self.a, self.k) == 1     # A[i, k]
        assert access_stride(self.op, self.a, self.i) == 16
        assert access_stride(self.op, self.a, self.j) == 0     # reuse dim
        assert access_stride(self.op, self.b, self.j) == 1     # B[k, j]

    def test_coalescing_broadcast_is_perfect(self):
        assert coalescing_efficiency(self.op, self.a, self.j, 32) == 1.0

    def test_coalescing_scales_with_run_length(self):
        short = coalescing_efficiency(self.op, self.b, self.j, 2)
        long = coalescing_efficiency(self.op, self.b, self.j, 16)
        assert short < long <= 1.0
        assert short == pytest.approx(2 / 8)

    def test_coalescing_strided_penalized(self):
        eff = coalescing_efficiency(self.op, self.a, self.i, 8)  # stride 16
        assert eff < coalescing_efficiency(self.op, self.a, self.k, 8)

    def test_coalescing_none_axis_floor(self):
        assert coalescing_efficiency(self.op, self.a, None) == pytest.approx(1 / 8)

    def test_output_write_stride(self):
        assert output_write_stride(self.op, self.j) == 1
        assert output_write_stride(self.op, self.i) == 16
        assert output_write_stride(self.op, self.k) == 0


class TestFlopsAndBytes:
    def test_gemm_flops(self):
        out = gemm_compute(8, 4, 2)
        assert flops_of(out.op) == 2 * 8 * 4 * 2

    def test_bytes_of(self):
        out = gemm_compute(8, 4, 2)
        assert bytes_of(out.op.output) == 8 * 2 * 4


class TestExecuteComputeOp:
    def test_elementwise(self):
        from repro.ir import compute, placeholder

        a = placeholder((3,), name="A")
        c = compute((3,), lambda i: a[i] * 2, name="C")
        buf = {a: np.array([1.0, 2.0, 3.0])}
        np.testing.assert_allclose(execute_compute_op(c.op, buf), [2, 4, 6])

    def test_max_reduction(self):
        from repro.ir import compute, max_reduce, placeholder, reduce_axis

        a = placeholder((2, 3), name="A")
        r = reduce_axis(3)
        c = compute((2,), lambda i: max_reduce(a[i, r], r), name="C")
        buf = {a: np.array([[1.0, 5.0, 2.0], [7.0, 0.0, 3.0]])}
        np.testing.assert_allclose(execute_compute_op(c.op, buf), [5.0, 7.0])
