"""Tests for vendor-library simulators, GBT, and the AutoTVM baseline."""

import numpy as np
import pytest

from repro.baselines import (
    AutoTVMTuner,
    GradientBoostedTrees,
    RegressionTree,
    autotvm_optimize,
    build_template_space,
    cublas_time,
    cudnn_time,
    fpga_opencl_time,
    gpu_library_time,
    hand_tuned_gpu_time,
    mkldnn_time,
    pytorch_gpu_time,
)
from repro.model import V100, VU9P, XEON_E5_2699V4
from repro.ops import SUITES, Workload, bcm_workloads
from repro.runtime import Evaluator
from repro.space import build_space


class TestVendorLibraries:
    def test_cudnn_valid_and_fast(self):
        result = cudnn_time(SUITES["C2D"][7], V100)
        assert result.valid
        assert 0 < result.seconds < 1.0
        assert result.gflops > 100

    def test_cudnn_picks_winograd_for_3x3_s1(self):
        assert cudnn_time(SUITES["C2D"][7], V100).algorithm == "winograd"

    def test_cudnn_no_winograd_for_strided(self):
        # C14 is 3x3 stride 2
        assert cudnn_time(SUITES["C2D"][13], V100).algorithm != "winograd"

    def test_cudnn_1x1_uses_implicit_gemm(self):
        assert cudnn_time(SUITES["C2D"][2], V100).algorithm == "implicit-gemm"

    def test_transposed_uses_grad_kernels(self):
        assert cudnn_time(SUITES["T2D"][0], V100).algorithm == "implicit-gemm-grad"

    def test_first_layer_kernels_for_shallow_inputs(self):
        # C1: a 3-channel image input gets the dedicated first-layer path
        assert cudnn_time(SUITES["C2D"][0], V100).algorithm == "first-layer"

    def test_winograd_factor_peaks_mid_network(self):
        from repro.baselines.vendor import _winograd_factor

        c4 = _winograd_factor(SUITES["C2D"][3].params)   # 128ch @ 56
        c6 = _winograd_factor(SUITES["C2D"][5].params)   # 256ch @ 56
        c13 = _winograd_factor(SUITES["C2D"][12].params)  # 1024ch @ 14
        c2 = _winograd_factor(SUITES["C2D"][1].params)   # 64ch @ 112
        assert c6 > c4 > c2          # deeper channels amortize transforms
        assert c6 > c13              # tiny spatial extents kill tiling
        assert all(1.0 <= f <= 3.25 for f in (c2, c4, c6, c13))

    def test_transposed_factor_bounded_by_dilation_waste(self):
        from repro.baselines.vendor import _algorithm_factor_gpu

        for opname, dims in (("T1D", 1), ("T2D", 2), ("T3D", 3)):
            wl = SUITES[opname][0]
            factor, _ = _algorithm_factor_gpu(wl)
            stride = wl.params["stride"]
            assert factor <= stride ** dims * 1.3 + 1e-9

    def test_grp_dep_dil_reuse_c2d_kernels(self):
        for suite in ("GRP", "DIL", "DEP"):
            assert cudnn_time(SUITES[suite][0], V100).algorithm == "c2d-kernel-reuse"

    def test_dispatch_matches_paper_setup(self):
        # cuBLAS for linalg, PyTorch-native for DEP, cuDNN otherwise (§6.1/6.2)
        assert gpu_library_time(SUITES["GMM"][0], V100).library == "cuBLAS"
        assert gpu_library_time(SUITES["DEP"][0], V100).library == "PyTorch"
        assert gpu_library_time(SUITES["C2D"][0], V100).library == "cuDNN"

    def test_pytorch_slower_than_cudnn_for_c2d(self):
        wl = SUITES["C2D"][7]
        assert pytorch_gpu_time(wl, V100).seconds > cudnn_time(wl, V100).seconds

    def test_cublas_bil_charges_intermediate(self):
        result = cublas_time(SUITES["BIL"][0], V100)
        assert result.algorithm == "gemm-pair"
        assert result.valid

    def test_mkldnn_penalizes_odd_channels(self):
        aligned = Workload("C2D", "a", dict(
            batch=1, in_channel=64, height=14, width=14, out_channel=64,
            kernel=3, stride=1, padding=1))
        odd = Workload("C2D", "b", dict(
            batch=1, in_channel=63, height=14, width=14, out_channel=64,
            kernel=3, stride=1, padding=1))
        ga = mkldnn_time(aligned, XEON_E5_2699V4).gflops
        go = mkldnn_time(odd, XEON_E5_2699V4).gflops
        assert go < ga

    def test_fpga_opencl_baseline_valid(self):
        result = fpga_opencl_time(SUITES["C2D"][7], VU9P)
        assert result.valid
        assert result.algorithm == "fixed-pe-array"

    def test_hand_tuned_baseline_for_new_operators(self):
        result = hand_tuned_gpu_time(bcm_workloads()[0], V100)
        assert result.valid
        assert result.library == "hand-tuned"


class TestRegressionTree:
    def test_fits_step_function(self):
        x = np.linspace(0, 1, 64).reshape(-1, 1)
        y = (x[:, 0] > 0.5).astype(float)
        tree = RegressionTree(max_depth=2).fit(x, y)
        pred = tree.predict(x)
        assert np.mean((pred - y) ** 2) < 0.05

    def test_constant_target(self):
        x = np.random.default_rng(0).random((16, 3))
        y = np.full(16, 2.5)
        tree = RegressionTree().fit(x, y)
        np.testing.assert_allclose(tree.predict(x), 2.5)

    def test_unfitted_predict_raises(self):
        with pytest.raises(RuntimeError):
            RegressionTree().predict(np.zeros((1, 2)))


class TestGradientBoostedTrees:
    def test_learns_nonlinear_function(self):
        rng = np.random.default_rng(0)
        x = rng.random((200, 3))
        y = np.sin(x[:, 0] * 6) + x[:, 1] ** 2
        model = GradientBoostedTrees(num_rounds=40).fit(x, y)
        pred = model.predict(x)
        baseline = np.mean((y - y.mean()) ** 2)
        assert np.mean((pred - y) ** 2) < 0.3 * baseline

    def test_ranking_quality(self):
        # what AutoTVM needs: top predictions should be genuinely good
        rng = np.random.default_rng(1)
        x = rng.random((300, 4))
        y = -((x[:, 0] - 0.7) ** 2) - 0.5 * (x[:, 1] - 0.3) ** 2
        model = GradientBoostedTrees().fit(x[:200], y[:200])
        pred = model.predict(x[200:])
        top = np.argsort(-pred)[:10]
        assert y[200:][top].mean() > y[200:].mean()

    def test_is_fitted_flag(self):
        model = GradientBoostedTrees()
        assert not model.is_fitted
        model.fit(np.zeros((4, 2)), np.arange(4.0))
        assert model.is_fitted


class TestTemplateSpace:
    def test_template_much_smaller_than_flextensor(self):
        # §6.5: FlexTensor's C2D space is ~3 orders of magnitude larger
        out = SUITES["C2D"][7].build()
        full = build_space(out, "gpu")
        template = build_template_space(out, "gpu")
        assert full.size / template.size > 100

    def test_template_configs_lowerable(self):
        from repro.schedule import lower

        out = SUITES["C2D"][7].build()
        template = build_template_space(out, "gpu")
        rng = np.random.default_rng(0)
        for _ in range(5):
            config = template.decode(template.random_point(rng))
            lower(out, config, "gpu")

    def test_template_caps_respected(self):
        out = SUITES["C2D"][7].build()
        template = build_template_space(out, "gpu")
        rng = np.random.default_rng(0)
        for _ in range(20):
            config = template.decode(template.random_point(rng))
            for factors in config.spatial_factors:
                assert factors[1] <= 2   # vthread cap
                assert factors[3] <= 4   # register-tile cap

    def test_cpu_template_supported(self):
        out = SUITES["C2D"][7].build()
        assert build_template_space(out, "cpu").size > 1

    def test_fpga_template_unsupported(self):
        out = SUITES["C2D"][7].build()
        with pytest.raises(ValueError):
            build_template_space(out, "fpga")


class TestAutoTVMTuner:
    def test_end_to_end(self):
        out = SUITES["C2D"][12].build()
        result = autotvm_optimize(out, V100, trials=6, seed=0)
        assert result.found
        assert result.best_performance > 0

    def test_model_training_charged_to_clock(self):
        out = SUITES["C2D"][12].build()
        space = build_template_space(out, "gpu")
        ev = Evaluator(out, V100, space=space)
        tuner = AutoTVMTuner(ev, batch_size=4, model_fit_seconds=3.0, seed=0)
        tuner.tune(4)
        measurement_only = sum(
            ev.model.measurement_seconds(min(r.seconds, 1.0)) for r in ev.records
        )
        assert ev.clock > measurement_only  # fits were charged on top

    def test_deterministic(self):
        out = SUITES["C2D"][12].build()
        a = autotvm_optimize(out, V100, trials=5, seed=3)
        b = autotvm_optimize(out, V100, trials=5, seed=3)
        assert a.best_point == b.best_point

    def test_materialized_helpers_slower(self):
        out = SUITES["T1D"][0].build()
        fused = autotvm_optimize(out, V100, trials=5, seed=0, inline_helpers=True)
        naive = autotvm_optimize(out, V100, trials=5, seed=0, inline_helpers=False)
        assert naive.best_performance < fused.best_performance
