"""Tests for schedule-space generation, pruning and neighborhoods (§4.2)."""

import numpy as np
import pytest

from repro.ops import conv2d_compute, gemm_compute
from repro.space import (
    ChoiceKnob,
    SplitKnob,
    build_space,
    closest_factorization,
    divisors,
    factorizations,
    heuristic_seed_points,
    move_factor,
    num_factorizations,
    prime_factors,
)


class TestFactorization:
    def test_prime_factors(self):
        assert prime_factors(1) == ()
        assert prime_factors(12) == (2, 2, 3)
        assert prime_factors(97) == (97,)

    def test_divisors(self):
        assert divisors(12) == (1, 2, 3, 4, 6, 12)
        assert divisors(1) == (1,)

    def test_factorizations_cover_products(self):
        for factors in factorizations(24, 3):
            assert factors[0] * factors[1] * factors[2] == 24

    def test_factorizations_count_matches_formula(self):
        for n, parts in [(24, 3), (1024, 4), (7, 2), (36, 4)]:
            assert len(factorizations(n, parts)) == num_factorizations(n, parts)

    def test_factorizations_distinct(self):
        fs = factorizations(64, 4)
        assert len(set(fs)) == len(fs)

    def test_1024_into_4_parts_is_286(self):
        # C(10 + 3, 3) = 286 ordered factorizations of 2^10
        assert num_factorizations(1024, 4) == 286

    def test_single_part(self):
        assert factorizations(12, 1) == ((12,),)


class TestMoveFactor:
    def test_moves_smallest_prime(self):
        assert move_factor((4, 3), src=0, dst=1) == (2, 6)
        assert move_factor((4, 3), src=1, dst=0) == (12, 1)

    def test_unit_source_blocked(self):
        assert move_factor((1, 12), src=0, dst=1) is None

    def test_same_position_rejected(self):
        with pytest.raises(ValueError):
            move_factor((2, 2), 1, 1)

    def test_product_preserved(self):
        factors = (8, 9, 5)
        moved = move_factor(factors, src=1, dst=2)
        assert moved is not None
        assert np.prod(moved) == np.prod(factors)


class TestClosestFactorization:
    def test_exact_match_returned(self):
        assert closest_factorization(24, 3, (2, 3, 4)) == (2, 3, 4)

    def test_infeasible_snapped(self):
        result = closest_factorization(28, 2, (4, 8))
        assert result[0] * result[1] == 28

    def test_prefers_near_shape(self):
        result = closest_factorization(32, 2, (8, 4))
        assert result == (8, 4)


class TestSplitKnob:
    def test_neighbor_moves_one_prime(self):
        knob = SplitKnob("s", 24, 3)
        start = knob.index_of((24, 1, 1))
        for d in range(knob.num_directions):
            nxt = knob.neighbor(start, d)
            if nxt is not None:
                a = knob.choices[start]
                b = knob.choices[nxt]
                changed = [i for i in range(3) if a[i] != b[i]]
                assert len(changed) == 2

    def test_neighbor_count(self):
        knob = SplitKnob("s", 24, 3)
        assert knob.num_directions == 3 * 2

    def test_features_normalized(self):
        knob = SplitKnob("s", 1024, 4)
        for idx in range(0, len(knob), 37):
            feats = knob.features(idx)
            assert len(feats) == 4
            assert all(0.0 <= f <= 1.0 for f in feats)

    def test_allowed_subset_respected(self):
        knob = SplitKnob("s", 16, 2, allowed=[(16, 1), (8, 2), (4, 4)])
        assert len(knob) == 3
        # neighbor leaving the allowed set is None
        idx = knob.index_of((4, 4))
        neighbors = {knob.neighbor(idx, d) for d in range(knob.num_directions)}
        assert None in neighbors


class TestChoiceKnob:
    def test_directions_are_increment_decrement(self):
        knob = ChoiceKnob("c", [10, 20, 30])
        assert knob.neighbor(1, 0) == 2
        assert knob.neighbor(1, 1) == 0
        assert knob.neighbor(2, 0) is None
        assert knob.neighbor(0, 1) is None

    def test_single_choice_has_no_directions(self):
        assert ChoiceKnob("c", [1]).num_directions == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ChoiceKnob("c", [])


class TestScheduleSpace:
    def setup_method(self):
        self.out = conv2d_compute(1, 8, 8, 8, 8, 3, padding=1, name="c")

    @pytest.mark.parametrize("target", ["gpu", "cpu", "fpga"])
    def test_decode_produces_lowerable_config(self, target):
        from repro.schedule import lower

        space = build_space(self.out, target)
        rng = np.random.default_rng(0)
        for _ in range(5):
            config = space.decode(space.random_point(rng))
            lower(self.out, config, target)  # must not raise

    def test_encode_decode_roundtrip(self):
        space = build_space(self.out, "gpu")
        rng = np.random.default_rng(1)
        for _ in range(10):
            point = space.random_point(rng)
            assert space.encode(space.decode(point)) == point

    def test_neighbor_changes_one_knob(self):
        space = build_space(self.out, "gpu")
        rng = np.random.default_rng(2)
        point = space.random_point(rng)
        for direction, neighbor in space.neighbors(point):
            diffs = [i for i in range(len(point)) if point[i] != neighbor[i]]
            assert len(diffs) == 1

    def test_space_size_is_product(self):
        space = build_space(self.out, "gpu")
        expected = 1
        for knob in space.knobs:
            expected *= len(knob)
        assert space.size == expected

    def test_gpu_space_is_large(self):
        # the paper reports sizes from 3.9e9 to 2.4e12 for its GPU spaces
        big = build_space(conv2d_compute(1, 256, 28, 28, 512, 3, padding=1), "gpu")
        assert big.size > 1e8

    def test_features_fixed_length(self):
        space = build_space(self.out, "gpu")
        rng = np.random.default_rng(3)
        lengths = {len(space.features(space.random_point(rng))) for _ in range(5)}
        assert lengths == {space.feature_size}

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError):
            build_space(self.out, "asic")


class TestHeuristicSeeds:
    @pytest.mark.parametrize("target", ["gpu", "cpu", "fpga"])
    def test_seeds_are_valid_schedules(self, target):
        from repro.model import DEVICES, model_for, target_of
        from repro.schedule import lower

        spec = {"gpu": DEVICES["V100"], "cpu": DEVICES["XeonE5-2699v4"],
                "fpga": DEVICES["VU9P"]}[target]
        out = conv2d_compute(1, 16, 14, 14, 32, 3, padding=1, name="c")
        space = build_space(out, target)
        rng = np.random.default_rng(0)
        seeds = heuristic_seed_points(space, 3, rng)
        model = model_for(spec)
        performances = [
            model.gflops(lower(out, space.decode(s), target)) for s in seeds
        ]
        assert all(p > 0 for p in performances), performances

    def test_requested_count_respected(self):
        space = build_space(gemm_compute(16, 16, 16), "gpu")
        rng = np.random.default_rng(0)
        assert len(heuristic_seed_points(space, 7, rng)) == 7
