"""Static schedule linter (ISSUE #3): rule soundness against the device
models, zero-cost rejection in the evaluator and batch engine, space
pruning, tuner counters, and the CLI surface."""

import numpy as np
import pytest

import repro.__main__ as cli
from repro.analysis import RULES, Diagnostic, ScheduleLinter, lint_config, lint_point
from repro.model import DEVICES, INVALID_TIME, V100, VU9P, XEON_E5_2699V4, model_for, target_of
from repro.ops import conv2d_compute, gemm_compute, gemv_compute
from repro.optimize import optimize
from repro.runtime import BatchEngine, Evaluator, MeasureStatus
from repro.schedule import lower
from repro.space import build_space

SOUNDNESS_CASES = [
    ("gemm-gpu", lambda: gemm_compute(256, 256, 256), V100),
    ("conv2d-gpu", lambda: conv2d_compute(1, 32, 16, 16, 64, 3, padding=1), V100),
    ("gemm-cpu", lambda: gemm_compute(256, 256, 256), XEON_E5_2699V4),
    ("gemm-fpga", lambda: gemm_compute(256, 256, 256), VU9P),
]


def sample_configs(space, count, seed=0):
    rng = np.random.default_rng(seed)
    return [space.decode(space.random_point(rng)) for _ in range(count)]


def model_rejects(output, config, target, model):
    """Ground truth: does the measurement pipeline reject this config?"""
    try:
        scheduled = lower(output, config, target)
    except Exception:
        return True
    return model.estimate_seconds(scheduled) >= INVALID_TIME


class TestRuleRegistry:
    def test_rules_have_stable_shape(self):
        for rule, (name, severity, _description) in RULES.items():
            assert rule[:3] in ("GEN", "GPU", "CPU", "FPG", "TEN")
            assert severity in ("error", "warn")
            assert name  # short kebab name present

    def test_diagnostic_roundtrip(self):
        d = Diagnostic("GPU001", "error", "too many threads", "shrink the split")
        payload = d.to_dict()
        assert payload["rule"] == "GPU001"
        assert payload["name"] == "threads-per-block"
        assert payload["severity"] == "error"

    def test_error_rules_cannot_be_suppressed(self):
        out = gemm_compute(64, 64, 64)
        with pytest.raises(ValueError):
            ScheduleLinter(out.op, "gpu", V100, ignore=("GPU001",))

    def test_warn_rules_can_be_suppressed(self):
        out = gemm_compute(256, 256, 256)
        space = build_space(out, "gpu")
        loud = ScheduleLinter(out.op, "gpu", V100)
        quiet = ScheduleLinter(out.op, "gpu", V100, ignore=("GPU003", "GEN002"))
        for config in sample_configs(space, 40):
            silenced = {d.rule for d in loud.lint(config)} - {
                d.rule for d in quiet.lint(config)
            }
            assert silenced <= {"GPU003", "GEN002"}
            assert loud.errors(config) == quiet.errors(config)


class TestSoundness:
    """The contract: an error-severity diagnostic is a *proof* of model
    rejection, and every model rejection is flagged (no false 'legal')."""

    @pytest.mark.parametrize("name,make,device", SOUNDNESS_CASES,
                             ids=[c[0] for c in SOUNDNESS_CASES])
    def test_lint_equals_model_verdict(self, name, make, device):
        output = make()
        target = target_of(device)
        model = model_for(device)
        space = build_space(output, target)
        linter = ScheduleLinter(space.op, target, device)
        false_positives = rejected = invalid = 0
        for config in sample_configs(space, 150, seed=7):
            flagged = bool(linter.errors(config))
            truth = model_rejects(output, config, target, model)
            rejected += flagged
            invalid += truth
            if flagged and not truth:
                false_positives += 1
            # soundness: the model never rejects a lint-clean point
            assert truth <= flagged, f"unsound: model rejects a lint-clean point"
        # false-positive rate: a lint error is never a wasted rejection
        assert false_positives == 0
        assert rejected == invalid

    def test_gpu_spaces_contain_illegal_points(self):
        # the acceptance workloads must exercise the error rules at all
        for name, make, device in SOUNDNESS_CASES[:2]:
            output = make()
            space = build_space(output, target_of(device))
            linter = ScheduleLinter(space.op, target_of(device), device)
            assert any(
                linter.errors(c) for c in sample_configs(space, 150, seed=7)
            ), f"no illegal points sampled in {name}"

    def test_lint_point_and_lint_config_agree(self):
        out = gemm_compute(256, 256, 256)
        space = build_space(out, "gpu")
        rng = np.random.default_rng(3)
        for _ in range(20):
            point = space.random_point(rng)
            via_point = lint_point(space, point, V100)
            via_config = lint_config(space.op, space.decode(point), "gpu", V100)
            assert via_point == via_config


class TestEvaluatorRejection:
    """Illegal points are billed at zero cost and never change results."""

    def build(self, lint):
        out = gemm_compute(256, 256, 256, name="g")
        linter = ScheduleLinter(out.op, "gpu", V100) if lint else None
        return Evaluator(out, V100, linter=linter)

    def points(self, ev, count=120, seed=11):
        rng = np.random.default_rng(seed)
        return [ev.space.random_point(rng) for _ in range(count)]

    def test_identical_results_fewer_measurements(self):
        plain, linted = self.build(lint=False), self.build(lint=True)
        points = self.points(plain)
        baseline = [plain.evaluate(p) for p in points]
        screened = [linted.evaluate(p) for p in points]
        assert screened == baseline
        assert max(screened) == max(baseline)
        assert linted.num_lint_rejects > 0
        assert linted.num_measurements < plain.num_measurements
        assert (
            plain.num_measurements - linted.num_measurements
            == linted.num_lint_rejects
        )
        assert linted.clock < plain.clock  # zero cost: clock never advanced
        assert sum(linted.lint_rule_counts.values()) >= linted.num_lint_rejects

    def test_illegal_status_recorded(self):
        linted = self.build(lint=True)
        for p in self.points(linted):
            linted.evaluate(p)
        illegal = [r for r in linted.records if r.status == MeasureStatus.ILLEGAL]
        assert len(illegal) == linted.num_lint_rejects
        assert all(r.performance == 0.0 for r in illegal)
        assert all(r.attempts == 0 for r in illegal)
        assert MeasureStatus.ILLEGAL.permanent and not MeasureStatus.ILLEGAL.ok

    def test_state_roundtrip_preserves_counters(self):
        linted = self.build(lint=True)
        for p in self.points(linted, count=60):
            linted.evaluate(p)
        clone = self.build(lint=True)
        clone.set_state(linted.get_state())
        assert clone.num_lint_rejects == linted.num_lint_rejects
        assert clone.lint_rule_counts == linted.lint_rule_counts

    def test_batch_engine_parallel_path_rejects_before_pool(self):
        linted = self.build(lint=True)
        points = self.points(linted)
        with BatchEngine(linted, workers=4, use_pool=False) as engine:
            results = engine.evaluate_batch(points)
        plain = self.build(lint=False)
        with BatchEngine(plain, workers=4, use_pool=False) as engine2:
            baseline = engine2.evaluate_batch(points)
        assert results == baseline
        assert linted.num_lint_rejects > 0
        assert linted.num_measurements < plain.num_measurements
        stats = engine.stats()
        assert stats["points_lint_rejected"] == linted.num_lint_rejects
        assert stats["lint_rules"] == linted.lint_rule_counts
        assert "lint:" in engine.report()


class TestSpacePruning:
    def test_pruned_space_is_smaller_on_large_extents(self):
        out = gemv_compute(4096, 4096)
        full = build_space(out, "gpu")
        pruned = build_space(out, "gpu", spec=V100)
        assert pruned.size < full.size

    def test_pruning_is_sound(self):
        # every pruned point was unconditionally illegal: the surviving
        # space contains every lint-clean point's best value
        out = gemv_compute(4096, 4096)
        pruned = build_space(out, "gpu", spec=V100)
        rng = np.random.default_rng(5)
        for _ in range(50):
            config = pruned.decode(pruned.random_point(rng))
            for factors in config.spatial_factors:
                assert factors[2] <= V100.max_threads_per_block

    def test_pruning_noop_without_spec(self):
        out = gemm_compute(64, 64, 64)
        assert build_space(out, "gpu").size == build_space(out, "gpu", spec=None).size


class TestOptimizeIntegration:
    def test_lint_matches_baseline_and_counts_rejects(self):
        out = gemm_compute(256, 256, 256)
        base = optimize(out, DEVICES["V100"], trials=10, seed=0)
        screened = optimize(out, DEVICES["V100"], trials=10, seed=0,
                            lint=True, prune_space=True)
        assert screened.gflops == pytest.approx(base.gflops)
        assert screened.tuning.lint_rejects > 0
        assert screened.tuning.lint_rules
        assert "lint:" in screened.summary()
        # illegal rejections are not failures
        assert screened.tuning.num_failures <= base.tuning.num_failures

    def test_lint_off_by_default_keeps_trajectory(self):
        out = gemm_compute(64, 64, 64)
        a = optimize(out, DEVICES["V100"], trials=5, seed=3)
        b = optimize(out, DEVICES["V100"], trials=5, seed=3)
        assert a.gflops == b.gflops
        assert a.tuning.lint_rejects == 0


class TestCli:
    def test_lint_command_reports_illegal_points(self, capsys):
        assert cli.main(["lint", "--device", "V100", "--sample", "120"]) == 0
        out = capsys.readouterr().out
        assert "gemm:" in out and "conv2d:" in out
        illegal = [
            int(part.split("=")[1])
            for line in out.splitlines()
            for part in line.split()
            if part.startswith("illegal=")
        ]
        assert len(illegal) == 2 and all(n > 0 for n in illegal)

    def test_selfcheck_lint_smoke_passes(self, capsys):
        assert cli.main(["selfcheck", "--lint"]) == 0
        out = capsys.readouterr().out
        assert "lint selfcheck passed" in out
