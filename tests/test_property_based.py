"""Property-based tests (hypothesis) on core data structures and invariants."""

import itertools

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.explore import selection_probabilities
from repro.ir import IterVar, evaluate
from repro.ir import Var
from repro.schedule import LoopDef, fuse_loops, split_axis
from repro.space import (
    divisors,
    factorizations,
    move_factor,
    num_factorizations,
    prime_factors,
)

extents = st.integers(min_value=1, max_value=512)
small_extents = st.integers(min_value=1, max_value=96)
parts_counts = st.integers(min_value=1, max_value=4)


class TestFactorizationProperties:
    @given(extents)
    def test_prime_factors_multiply_back(self, n):
        product = 1
        for p in prime_factors(n):
            product *= p
        assert product == n

    @given(extents)
    def test_divisors_divide(self, n):
        for d in divisors(n):
            assert n % d == 0

    @given(small_extents, parts_counts)
    def test_factorizations_product_invariant(self, n, parts):
        for factors in factorizations(n, parts):
            product = 1
            for f in factors:
                product *= f
            assert product == n
            assert len(factors) == parts

    @given(small_extents, parts_counts)
    def test_count_formula_matches_enumeration(self, n, parts):
        assert len(factorizations(n, parts)) == num_factorizations(n, parts)

    @given(small_extents)
    def test_move_factor_reversible(self, n):
        for factors in factorizations(n, 3)[:20]:
            moved = move_factor(factors, src=0, dst=1)
            if moved is None:
                assert factors[0] == 1
                continue
            # moving mass back must be able to restore the original
            prime = factors[0] // moved[0]
            restored = list(moved)
            restored[1] //= prime
            restored[0] *= prime
            assert tuple(restored) == factors


class TestSplitFuseBijection:
    @given(small_extents, parts_counts)
    @settings(max_examples=30, deadline=None)
    def test_split_is_a_bijection(self, extent, parts):
        choices = factorizations(extent, parts)
        factors = choices[len(choices) // 2]
        axis = IterVar(extent, "i")
        loops, index = split_axis(axis, factors, "spatial", 0)
        seen = set()
        for values in itertools.product(*(range(l.extent) for l in loops)):
            env = dict(zip((l.var for l in loops), values))
            seen.add(evaluate(index, env))
        assert seen == set(range(extent))

    @given(st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_fuse_is_a_bijection(self, extents_list):
        loops = [
            LoopDef(Var(f"l{i}"), e, ("spatial", i, 0))
            for i, e in enumerate(extents_list)
        ]
        fused, recovery = fuse_loops(loops, "f")
        seen = set()
        for fused_value in range(fused.extent):
            env = {fused.var: fused_value}
            seen.add(tuple(evaluate(recovery[l.var], env) for l in loops))
        expected = set(itertools.product(*(range(e) for e in extents_list)))
        assert seen == expected


class TestSelectionProbabilityProperties:
    @given(
        st.lists(st.floats(min_value=0.0, max_value=1e6, allow_nan=False), min_size=1, max_size=30),
        st.floats(min_value=0.1, max_value=10.0),
    )
    def test_probabilities_normalized(self, perfs, gamma):
        probs = selection_probabilities(perfs, gamma)
        assert np.all(probs >= 0)
        assert np.isclose(probs.sum(), 1.0)

    @given(st.floats(min_value=0.5, max_value=8.0))
    def test_best_point_most_likely(self, gamma):
        probs = selection_probabilities([10.0, 50.0, 100.0], gamma)
        assert probs[2] >= probs[1] >= probs[0]

    @given(st.floats(min_value=0.1, max_value=2.0), st.floats(min_value=4.0, max_value=12.0))
    def test_higher_gamma_concentrates(self, low, high):
        cold = selection_probabilities([10.0, 100.0], low)
        hot = selection_probabilities([10.0, 100.0], high)
        assert hot[1] >= cold[1]


class TestAffineProbing:
    @given(
        st.integers(min_value=-4, max_value=4),
        st.integers(min_value=-4, max_value=4),
        st.integers(min_value=0, max_value=10),
    )
    def test_affine_recovered_exactly(self, c1, c2, c0):
        from repro.ir import affine_coefficients

        i = IterVar(16, "i")
        j = IterVar(16, "j")
        expr = i * c1 + j * c2 + c0
        assert affine_coefficients(expr, [i, j]) == [c1, c2, c0]


class TestMLPTraining:
    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=5, deadline=None)
    def test_forward_deterministic_given_seed(self, seed):
        from repro.explore import MLP

        a = MLP(4, 3, hidden=8, seed=seed)
        b = MLP(4, 3, hidden=8, seed=seed)
        x = np.linspace(0, 1, 4)
        np.testing.assert_allclose(a.forward(x), b.forward(x))

    def test_training_reduces_loss_on_fixed_batch(self):
        from repro.explore import MLP

        rng = np.random.default_rng(0)
        net = MLP(6, 4, hidden=16, seed=0)
        x = rng.standard_normal((32, 6))
        targets = rng.standard_normal((32, 4))
        mask = np.ones_like(targets)
        first = net.train_batch(x, targets, mask)
        for _ in range(200):
            last = net.train_batch(x, targets, mask)
        assert last < first
