"""Intrinsic tensorization (ISSUE #8): static matcher verdicts, bit-exact
interp parity of every accepted tensorization, rejection under dtype /
extent / stride perturbation, and the soundness contract that a TEN error
diagnostic is a proof of model rejection (zero false positives)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import (
    INTRINSICS,
    ScheduleLinter,
    intrinsic_feature,
    match_intrinsic,
    matching_intrinsics,
    tensorize_rejections,
)
from repro.codegen import execute_scheduled, random_inputs, run_generated
from repro.codegen.features import batch_point_features, point_features
from repro.ir import compute, placeholder, reduce_axis, sum_reduce
from repro.model import (
    INVALID_TIME,
    V100,
    XEON_E5_2699V4,
    model_for,
    target_of,
    tensorize_rate,
)
from repro.ops import gemm_compute, gemm_int8_compute
from repro.schedule import TENSORIZE, LoweringError, NodeConfig, lower
from repro.space import build_space

pytestmark = pytest.mark.tensorize


def _sampled_config(space, seed):
    rng = np.random.default_rng(seed)
    return space.decode(space.random_point(rng))


def _integer_inputs(output, seed):
    return {
        name: np.round(8 * array)
        for name, array in random_inputs(output, seed=seed).items()
    }


class TestStaticMatch:
    def test_registry_verdicts(self):
        i8 = gemm_int8_compute(16, 16, 16, name="sm_i8")
        f32 = gemm_compute(16, 16, 16, name="sm_f32")
        assert matching_intrinsics(i8.op, "cpu") == ("dot4_vnni",)
        assert matching_intrinsics(i8.op, "gpu") == ()
        assert matching_intrinsics(f32.op, "cpu") == ("fma_w8",)
        assert matching_intrinsics(f32.op, "gpu") == ("mma_16x16",)

    def test_mma_needs_divisible_extents(self):
        ragged = gemm_compute(24, 16, 16, name="sm_rag")
        assert match_intrinsic(ragged.op, INTRINSICS["mma_16x16"]) is None

    def test_match_is_memoized_per_op(self):
        out = gemm_int8_compute(16, 16, 16, name="sm_memo")
        first = match_intrinsic(out.op, INTRINSICS["dot4_vnni"])
        assert first is match_intrinsic(out.op, INTRINSICS["dot4_vnni"])
        assert first.reduce_axes == tuple(out.op.reduce_axes)


def _gemm_like(da, db, dout, n, k, m, transpose_a):
    a = placeholder((k, n) if transpose_a else (n, k), dtype=da, name="pa")
    b = placeholder((k, m), dtype=db, name="pb")
    rk = reduce_axis(k, "rk")
    if transpose_a:
        return compute((n, m), lambda i, j: sum_reduce(a[rk, i] * b[rk, j], rk),
                       dtype=dout, name="pc")
    return compute((n, m), lambda i, j: sum_reduce(a[i, rk] * b[rk, j], rk),
                   dtype=dout, name="pc")


class TestPerturbationNeverAccepted:
    """The matcher accepts exactly the intrinsic's contract — any dtype,
    extent or stride perturbation flips the verdict to rejection."""

    @given(
        da=st.sampled_from(["int8", "float32", "int32"]),
        db=st.sampled_from(["int8", "float32", "int32"]),
        dout=st.sampled_from(["int32", "float32"]),
        k=st.integers(min_value=1, max_value=16),
        transpose_a=st.booleans(),
    )
    @settings(max_examples=60, deadline=None)
    def test_dot4_exactness(self, da, db, dout, k, transpose_a):
        out = _gemm_like(da, db, dout, 8, k, 8, transpose_a)
        accepted = match_intrinsic(out.op, INTRINSICS["dot4_vnni"]) is not None
        # transposing A strips the reduce axis of unit stride in *both*
        # operands (row-major strides become n and m), killing the match.
        legal = (
            da == "int8" and db == "int8" and dout == "int32"
            and k % 4 == 0 and not transpose_a
        )
        assert accepted == legal

    @given(k=st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_mma_extent_divisibility(self, k):
        out = _gemm_like("float32", "float32", "float32", 16, k, 16, False)
        accepted = match_intrinsic(out.op, INTRINSICS["mma_16x16"]) is not None
        assert accepted == (k % 16 == 0)


I8_OUT = gemm_int8_compute(8, 8, 8, name="par_i8")
I8_SPACE = build_space(I8_OUT, "cpu", tensorize=True)
F32_OUT = gemm_compute(8, 8, 8, name="par_f32")
F32_SPACE = build_space(F32_OUT, "cpu", tensorize=True)


class TestAcceptedMatchParity:
    """Every accepted tensorization executes bit-identically to the same
    schedule without the intrinsic; every rejection raises at lowering."""

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=30, deadline=None)
    def test_dot4_parity_or_proof(self, seed):
        config = _sampled_config(I8_SPACE, seed).with_(tensorize="dot4_vnni")
        if tensorize_rejections(I8_OUT.op, config, "cpu"):
            with pytest.raises(LoweringError):
                lower(I8_OUT, config, "cpu")
            return
        tensorized = lower(I8_OUT, config, "cpu")
        assert any(loop.annotation == TENSORIZE for loop in tensorized.loops)
        plain = lower(I8_OUT, config.with_(tensorize=""), "cpu")
        inputs = _integer_inputs(I8_OUT, seed)
        expected = execute_scheduled(plain, inputs)
        assert np.array_equal(execute_scheduled(tensorized, inputs), expected)
        assert np.array_equal(run_generated(tensorized, inputs), expected)

    @given(seed=st.integers(min_value=0, max_value=100_000))
    @settings(max_examples=20, deadline=None)
    def test_fma_parity_or_proof(self, seed):
        config = _sampled_config(F32_SPACE, seed).with_(tensorize="fma_w8")
        if tensorize_rejections(F32_OUT.op, config, "cpu"):
            with pytest.raises(LoweringError):
                lower(F32_OUT, config, "cpu")
            return
        tensorized = lower(F32_OUT, config, "cpu")
        plain = lower(F32_OUT, config.with_(tensorize=""), "cpu")
        inputs = random_inputs(F32_OUT, seed=seed)
        assert np.array_equal(
            execute_scheduled(tensorized, inputs), execute_scheduled(plain, inputs)
        )

    def test_mma_parity(self):
        out = gemm_compute(16, 16, 16, name="par_mma")
        config = NodeConfig(
            spatial_factors=((1, 1, 1, 16), (1, 1, 1, 16)),
            reduce_factors=((1, 16),),
            reorder=0,
            vectorize=False,
            tensorize="mma_16x16",
        )
        assert tensorize_rejections(out.op, config, "gpu") == []
        tensorized = lower(out, config, "gpu")
        assert any(loop.annotation == TENSORIZE for loop in tensorized.loops)
        plain = lower(out, config.with_(tensorize=""), "gpu")
        inputs = random_inputs(out, seed=11)
        assert np.array_equal(
            execute_scheduled(tensorized, inputs), execute_scheduled(plain, inputs)
        )


SOUNDNESS_CASES = [
    ("int8-gemm-cpu", lambda: gemm_int8_compute(64, 64, 64), XEON_E5_2699V4),
    ("gemm-cpu", lambda: gemm_compute(64, 64, 64), XEON_E5_2699V4),
    ("gemm-gpu", lambda: gemm_compute(64, 64, 64), V100),
]


def model_rejects(output, config, target, model):
    """Ground truth: does the measurement pipeline reject this config?"""
    try:
        scheduled = lower(output, config, target)
    except Exception:
        return True
    return model.estimate_seconds(scheduled) >= INVALID_TIME


class TestTensorizeSoundness:
    """PR 3's contract extended to TEN rules: an error diagnostic in a
    tensorize-enabled space is a proof of model rejection, with zero
    false positives."""

    @pytest.mark.parametrize("name,make,device", SOUNDNESS_CASES,
                             ids=[c[0] for c in SOUNDNESS_CASES])
    def test_lint_equals_model_verdict(self, name, make, device):
        output = make()
        target = target_of(device)
        model = model_for(device)
        space = build_space(output, target, tensorize=True)
        assert any(knob.name == "tensorize" for knob in space.knobs)
        linter = ScheduleLinter(space.op, target, device)
        false_positives = rejected = invalid = ten_flagged = 0
        for seed in range(150):
            config = _sampled_config(space, seed)
            diagnostics = linter.errors(config)
            flagged = bool(diagnostics)
            ten_flagged += any(d.rule.startswith("TEN") for d in diagnostics)
            truth = model_rejects(output, config, target, model)
            rejected += flagged
            invalid += truth
            if flagged and not truth:
                false_positives += 1
            assert truth <= flagged, "unsound: model rejects a lint-clean point"
        assert false_positives == 0
        assert rejected == invalid
        assert ten_flagged > 0, "sampling never exercised the TEN rules"

    def test_ten_error_iff_lowering_raises(self):
        output = gemm_int8_compute(32, 32, 32, name="snd_iff")
        space = build_space(output, "cpu", tensorize=True)
        linter = ScheduleLinter(space.op, "cpu", XEON_E5_2699V4)
        for seed in range(80):
            config = _sampled_config(space, seed)
            ten_errors = [d for d in linter.errors(config)
                          if d.rule.startswith("TEN")]
            try:
                lower(output, config, "cpu")
                raised = False
            except LoweringError:
                raised = True
            assert bool(ten_errors) == raised


class TestBillingAndFeatures:
    def test_tensorize_rate(self):
        untensorized = NodeConfig(spatial_factors=((1, 1, 1),),
                                  reduce_factors=(), tensorize="")
        assert tensorize_rate(untensorized, XEON_E5_2699V4) == 1.0
        dot4 = untensorized.with_(tensorize="dot4_vnni")
        assert tensorize_rate(dot4, XEON_E5_2699V4) == 4.0
        mma = untensorized.with_(tensorize="mma_16x16")
        assert tensorize_rate(mma, V100) == V100.tensor_core_rate
        unknown = untensorized.with_(tensorize="nope")
        assert tensorize_rate(unknown, V100) == 1.0

    def test_legal_tensorize_bills_strictly_cheaper(self):
        output = gemm_int8_compute(256, 256, 256, name="bill_i8")
        model = model_for(XEON_E5_2699V4)
        config = NodeConfig(
            spatial_factors=((8, 8, 4), (8, 8, 4)),
            reduce_factors=((32, 8),),
            reorder=0,
            vectorize=False,
            fuse_levels=2,
        )
        plain = model.estimate_seconds(lower(output, config, "cpu"))
        tensorized = model.estimate_seconds(
            lower(output, config.with_(tensorize="dot4_vnni"), "cpu")
        )
        assert tensorized < plain

    def test_feature_vectors_gate_on_the_knob(self):
        # Spaces without the knob keep their exact pre-ISSUE-8 feature
        # layout; tensorize-enabled spaces grow the intrinsic feature and
        # stay bit-identical between scalar and batch featurizers.
        plain_space = build_space(gemm_int8_compute(16, 16, 16, name="ft_p"), "cpu")
        assert all(knob.name != "tensorize" for knob in plain_space.knobs)
        rng = np.random.default_rng(0)
        points = [tuple(plain_space.random_point(rng)) for _ in range(8)]
        tz_space = build_space(gemm_int8_compute(16, 16, 16, name="ft_t"),
                               "cpu", tensorize=True)
        tz_points = [tuple(tz_space.random_point(rng)) for _ in range(8)]
        for space, pts in ((plain_space, points), (tz_space, tz_points)):
            batch = batch_point_features(space, pts)
            for i, point in enumerate(pts):
                assert np.array_equal(batch[i], point_features(space, point))
        assert intrinsic_feature("") == 0.0
        assert intrinsic_feature("dot4_vnni") > 0.0

    def test_encode_decode_roundtrip_with_tensorize(self):
        space = build_space(gemm_int8_compute(16, 16, 16, name="rt_i8"),
                            "cpu", tensorize=True)
        rng = np.random.default_rng(5)
        for _ in range(10):
            point = space.random_point(rng)
            config = space.decode(point)
            assert space.decode(space.encode(config)) == config


class TestCli:
    def test_selfcheck_tensorize_passes(self, capsys):
        import repro.__main__ as cli

        assert cli.main(["selfcheck", "--tensorize"]) == 0
        out = capsys.readouterr().out
        assert "tensorize selfcheck passed" in out
        assert "dot4_vnni" in out

    def test_lint_target_reports_ten_rules(self, capsys):
        import repro.__main__ as cli

        code = cli.main([
            "lint", "--target", "cpu", "--sample", "80",
            "--n", "64", "--k", "64", "--m", "64",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "gemm-int8:" in out
        assert "TEN" in out
