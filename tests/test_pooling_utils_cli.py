"""Tests for the pooling extension operators, serialization, and the CLI."""

import json
import subprocess
import sys

import numpy as np
import pytest

from repro.codegen import execute_reference, execute_scheduled, random_inputs
from repro.model import V100
from repro.ops import (
    avgpool2d_compute,
    avgpool2d_reference,
    maxpool2d_compute,
    maxpool2d_reference,
)
from repro.schedule import GraphConfig, NodeConfig, lower
from repro.space import build_space
from repro.utils import (
    config_from_dict,
    config_to_dict,
    load_schedule,
    save_schedule,
)


class TestPooling:
    @pytest.mark.parametrize("kernel,stride", [(2, 2), (2, 1), (3, 2)])
    def test_maxpool_reference_match(self, kernel, stride):
        out = maxpool2d_compute(1, 3, 8, 8, kernel, stride, name="p")
        inputs = random_inputs(out, seed=0)
        got = execute_reference(out, inputs)
        np.testing.assert_allclose(
            got, maxpool2d_reference(inputs["p_I"], kernel, stride)
        )

    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 3)])
    def test_avgpool_reference_match(self, kernel, stride):
        out = avgpool2d_compute(1, 3, 9, 9, kernel, stride, name="p")
        inputs = random_inputs(out, seed=1)
        got = execute_reference(out, inputs)
        np.testing.assert_allclose(
            got, avgpool2d_reference(inputs["p_I"], kernel, stride), atol=1e-12
        )

    def test_maxpool_scheduled_execution(self):
        # the max combiner survives arbitrary loop reordering
        out = maxpool2d_compute(1, 2, 8, 8, 2, 2, name="p")
        space = build_space(out, "gpu")
        rng = np.random.default_rng(2)
        inputs = random_inputs(out, seed=2)
        expected = maxpool2d_reference(inputs["p_I"], 2, 2)
        for _ in range(3):
            config = space.decode(space.random_point(rng))
            scheduled = lower(out, config, "gpu")
            got = execute_scheduled(scheduled, inputs)
            np.testing.assert_allclose(got, expected)

    def test_maxpool_optimizable(self):
        from repro import optimize

        out = maxpool2d_compute(1, 16, 16, 16, 2, name="p")
        result = optimize(out, V100, trials=4, seed=0)
        assert result.found


class TestSerialization:
    def config(self):
        return NodeConfig(
            spatial_factors=((2, 1, 2, 2), (1, 2, 2, 2)),
            reduce_factors=((2, 4),),
            reorder=2,
            unroll_depth=16,
            vectorize=False,
            fpga_partition=4,
        )

    def test_dict_roundtrip(self):
        config = self.config()
        assert config_from_dict(config_to_dict(config)) == config

    def test_dict_is_json_compatible(self):
        json.dumps(config_to_dict(self.config()))

    def test_file_roundtrip(self, tmp_path):
        path = tmp_path / "sched.json"
        graph_config = GraphConfig(inline={"pad": False})
        save_schedule(path, self.config(), graph_config, metadata={"note": "x"})
        config, loaded_graph, metadata = load_schedule(path)
        assert config == self.config()
        assert loaded_graph.inline == {"pad": False}
        assert metadata == {"note": "x"}

    def test_loaded_config_is_lowerable(self, tmp_path):
        from repro.ops import gemm_compute

        out = gemm_compute(8, 8, 8)
        path = tmp_path / "sched.json"
        save_schedule(path, self.config())
        config, graph_config, _ = load_schedule(path)
        lower(out, config, "gpu", graph_config)


class TestCli:
    def run_cli(self, *args):
        result = subprocess.run(
            [sys.executable, "-m", "repro", *args],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0, result.stderr[-1500:]
        return result.stdout

    def test_gemm_tuning(self):
        out = self.run_cli("gemm", "--n", "64", "--k", "64", "--m", "64",
                           "--trials", "3")
        assert "GFLOPS" in out

    def test_conv2d_with_save_and_code(self, tmp_path):
        path = tmp_path / "s.json"
        out = self.run_cli(
            "conv2d", "--in-channel", "8", "--out-channel", "8", "--size", "8",
            "--trials", "3", "--save", str(path), "--show-code",
        )
        assert "def kernel" in out
        assert path.exists()
        config, _, metadata = load_schedule(path)
        assert metadata["operator"] == "conv2d"

    def test_bad_device_rejected(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "gemm", "--device", "TPU"],
            capture_output=True, text=True,
        )
        assert result.returncode != 0
