"""Tests for unary math, softmax/layernorm, and multi-node graph
optimization (Algorithm 1 lines 4-7 via optimize_graph)."""

import math

import numpy as np
import pytest

from repro import optimize, optimize_graph
from repro.codegen import (
    emit_python,
    execute_reference,
    execute_scheduled,
    random_inputs,
    run_generated,
)
from repro.graph import get_graph
from repro.ir import Div, Unary, compute, evaluate, exp, log, placeholder, relu, sqrt, tanh
from repro.model import V100, XEON_E5_2699V4
from repro.ops import (
    layernorm_compute,
    layernorm_reference,
    softmax_compute,
    softmax_reference,
)
from repro.schedule import lower
from repro.space import build_space


class TestUnaryNodes:
    @pytest.mark.parametrize("fn,pyfn", [
        (exp, math.exp), (log, math.log), (sqrt, math.sqrt), (tanh, math.tanh),
    ])
    def test_evaluation(self, fn, pyfn):
        from repro.ir import Var

        x = Var("x")
        assert evaluate(fn(x), {x: 2.0}) == pytest.approx(pyfn(2.0))

    def test_unknown_function_rejected(self):
        with pytest.raises(ValueError):
            Unary("sin", 1.0)

    def test_relu_uses_max(self):
        from repro.ir import Max, Var

        assert isinstance(relu(Var("x")), Max)

    def test_division(self):
        from repro.ir import Var

        x = Var("x")
        assert evaluate(x / 4.0, {x: 10.0}) == pytest.approx(2.5)
        assert isinstance(x / 2.0, Div)

    def test_flop_counting_includes_transcendentals(self):
        from repro.ir import count_flops_per_point

        a = placeholder((4,), name="A")
        c = compute((4,), lambda i: exp(a[i]) * 2.0, name="C")
        assert count_flops_per_point(c.op.body) == 2  # exp + mul


class TestSoftmax:
    def test_reference_match(self):
        out = softmax_compute(5, 7, name="s")
        inputs = random_inputs(out, seed=0)
        got = execute_reference(out, inputs)
        np.testing.assert_allclose(got, softmax_reference(inputs["s_X"]), atol=1e-12)

    def test_rows_sum_to_one(self):
        out = softmax_compute(3, 9, name="s")
        inputs = random_inputs(out, seed=1)
        got = execute_reference(out, inputs)
        np.testing.assert_allclose(got.sum(axis=1), np.ones(3))

    def test_graph_has_three_compute_nodes(self):
        graph = get_graph(softmax_compute(4, 4, name="s"))
        assert len(graph.compute_ops) == 3

    def test_reduce_helpers_never_inlined(self):
        out = softmax_compute(4, 8, name="s")
        space = build_space(out, "gpu")
        rng = np.random.default_rng(0)
        scheduled = lower(out, space.decode(space.random_point(rng)), "gpu")
        # helper reductions must be materialized, not inlined
        assert scheduled.inlined == ()

    def test_scheduled_execution_correct(self):
        out = softmax_compute(4, 8, name="s")
        space = build_space(out, "cpu")
        rng = np.random.default_rng(2)
        inputs = random_inputs(out, seed=2)
        expected = softmax_reference(inputs["s_X"])
        for _ in range(3):
            scheduled = lower(out, space.decode(space.random_point(rng)), "cpu")
            got = execute_scheduled(scheduled, inputs)
            np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_generated_code_with_unary_math(self):
        out = softmax_compute(4, 4, name="s")
        space = build_space(out, "gpu")
        rng = np.random.default_rng(3)
        scheduled = lower(out, space.decode(space.random_point(rng)), "gpu")
        source = emit_python(scheduled)
        assert "math.exp" in source
        inputs = random_inputs(out, seed=3)
        got = run_generated(scheduled, inputs)
        np.testing.assert_allclose(got, softmax_reference(inputs["s_X"]), atol=1e-9)


class TestLayerNorm:
    def test_reference_match(self):
        out = layernorm_compute(4, 16, name="l")
        inputs = random_inputs(out, seed=4)
        got = execute_reference(out, inputs)
        np.testing.assert_allclose(
            got, layernorm_reference(inputs["l_X"]), atol=1e-9
        )

    def test_normalized_statistics(self):
        out = layernorm_compute(3, 64, name="l")
        inputs = random_inputs(out, seed=5)
        got = execute_reference(out, inputs)
        np.testing.assert_allclose(got.mean(axis=1), np.zeros(3), atol=1e-9)
        np.testing.assert_allclose(got.std(axis=1), np.ones(3), atol=1e-3)


class TestOptimizeGraph:
    def test_softmax_schedules_three_nodes(self):
        result = optimize_graph(softmax_compute(64, 128), V100, trials=4, seed=0)
        assert len(result.node_results) == 3
        assert result.node_order[-1].startswith("softmax")
        assert result.total_seconds > 0
        assert result.gflops > 0

    def test_layernorm_schedules_three_nodes(self):
        result = optimize_graph(layernorm_compute(64, 128), XEON_E5_2699V4, trials=4, seed=0)
        # mean, variance, normalize
        assert len(result.node_results) == 3

    def test_single_node_graph_degenerates_to_optimize(self):
        from repro.ops import gemm_compute

        out = gemm_compute(16, 16, 16)
        graph_result = optimize_graph(out, V100, trials=4, seed=0)
        assert len(graph_result.node_results) == 1
        single = optimize(out, V100, trials=4, seed=0)
        only = next(iter(graph_result.node_results.values()))
        assert only.gflops == pytest.approx(single.gflops)

    def test_summary_mentions_every_node(self):
        result = optimize_graph(softmax_compute(32, 64), V100, trials=3, seed=0)
        text = result.summary()
        for name in result.node_order:
            assert name in text
