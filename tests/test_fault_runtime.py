"""Fault-injection robustness: status classification, retry/backoff
accounting, quarantine, record-book hardening, and tuner survival under
every fault configuration (ISSUE #1)."""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import (
    FlexTensorTuner,
    PMethodTuner,
    RandomSampleTuner,
    RandomWalkTuner,
)
from repro.model import V100
from repro.ops import conv2d_compute, gemm_compute
from repro.runtime import (
    Evaluator,
    Fault,
    FaultInjector,
    MeasureConfig,
    MeasureStatus,
    RecordBook,
    TuningRecord,
)
from repro.schedule import LoweringError, NodeConfig

ALL_TUNERS = [FlexTensorTuner, PMethodTuner, RandomWalkTuner, RandomSampleTuner]


def smoke_evaluator(**kwargs):
    out = conv2d_compute(1, 8, 8, 8, 16, 3, padding=1, name="c")
    return Evaluator(out, V100, **kwargs)


def tiny_evaluator(**kwargs):
    return Evaluator(gemm_compute(4, 4, 4, name="g"), V100, **kwargs)


def a_point(ev, seed=0):
    return ev.space.random_point(np.random.default_rng(seed))


class FirstAttemptTransient(FaultInjector):
    """Deterministic test double: fail each point's first attempt only."""

    def decide(self, point, attempt):
        return Fault.TRANSIENT if attempt == 0 else Fault.NONE


class TestStatusClassification:
    def test_clean_measurement_is_ok(self):
        ev = smoke_evaluator()
        result = ev.measure(a_point(ev))
        assert result.status is MeasureStatus.OK
        assert result.attempts == 1
        assert result.performance > 0

    def test_model_rejection_is_compile_error(self):
        out = gemm_compute(2048, 64, 2048, name="g")
        ev = Evaluator(out, V100)
        config = NodeConfig(   # 2048 threads per block: toolchain rejects
            spatial_factors=((32, 1, 64, 1), (32, 1, 32, 2)),
            reduce_factors=((64, 1),),
        )
        result = ev.measure(ev.space.encode(config))
        assert result.status is MeasureStatus.COMPILE_ERROR
        assert result.performance == 0.0
        assert ev.clock > 0

    def test_lowering_failure_is_lower_error(self, monkeypatch):
        ev = smoke_evaluator()

        def boom(point):
            raise LoweringError("cannot lower")

        monkeypatch.setattr(ev, "lower_point", boom)
        result = ev.measure(a_point(ev))
        assert result.status is MeasureStatus.LOWER_ERROR
        assert "cannot lower" in result.error

    def test_exotic_exception_recorded_not_raised(self, monkeypatch):
        # ValidationError / arithmetic errors from exotic points must be
        # recorded as failed measurements, never crash the tuner.
        ev = smoke_evaluator()
        monkeypatch.setattr(
            ev.model, "estimate_seconds",
            lambda s: (_ for _ in ()).throw(ZeroDivisionError("weird point")),
        )
        assert ev.evaluate(a_point(ev)) == 0.0
        result = ev.records[-1]
        assert result.status is MeasureStatus.COMPILE_ERROR
        assert "ZeroDivisionError" in result.error

    def test_injected_compile_error(self):
        ev = smoke_evaluator(fault_injector=FaultInjector(compile_error_rate=1.0))
        point = a_point(ev)
        result = ev.measure(point)
        assert result.status is MeasureStatus.COMPILE_ERROR
        assert point in ev.cache  # permanent: cached, never re-measured

    def test_hang_charges_full_timeout_budget(self):
        config = MeasureConfig(timeout_seconds=0.5)
        ev = smoke_evaluator(
            fault_injector=FaultInjector(hang_rate=1.0), measure_config=config
        )
        result = ev.measure(a_point(ev))
        assert result.status is MeasureStatus.RUN_TIMEOUT
        assert ev.clock == pytest.approx(ev.model.measurement_seconds(0.5))

    def test_flaky_point_retried_to_success(self):
        ev = smoke_evaluator(fault_injector=FirstAttemptTransient())
        result = ev.measure(a_point(ev))
        assert result.status is MeasureStatus.FLAKY_RETRIED
        assert result.attempts == 2
        assert result.performance > 0

    def test_jitter_perturbs_measurement(self):
        point = a_point(smoke_evaluator())
        clean = smoke_evaluator().measure(point)
        noisy = smoke_evaluator(
            fault_injector=FaultInjector(jitter=0.3, seed=3)
        ).measure(point)
        assert noisy.status is MeasureStatus.OK
        assert noisy.seconds != clean.seconds


class TestRetryAccounting:
    def test_exhausted_retries_charge_clock_per_attempt(self):
        mc = MeasureConfig(max_retries=2, backoff_seconds=0.1)
        ev = smoke_evaluator(
            fault_injector=FaultInjector(transient_error_rate=1.0), measure_config=mc
        )
        result = ev.measure(a_point(ev))
        assert result.status is MeasureStatus.RUNTIME_ERROR
        assert result.attempts == 3
        # Two failed-then-retried attempts (compile cost + exponential
        # backoff) plus the final failed attempt billed at the charge cap.
        expected = (
            2 * ev.model.measurement_seconds(0.0)
            + 0.1 * (1 + 2)
            + ev.model.measurement_seconds(mc.charge_cap)
        )
        assert ev.clock == pytest.approx(expected)

    def test_transient_failure_not_cached(self):
        ev = smoke_evaluator(
            fault_injector=FaultInjector(transient_error_rate=1.0),
            measure_config=MeasureConfig(max_retries=0, quarantine_threshold=100),
        )
        point = a_point(ev)
        ev.evaluate(point)
        assert point not in ev.cache
        before = ev.num_measurements
        ev.evaluate(point)  # re-visit re-measures (fresh fault rolls)
        assert ev.num_measurements == before + 1


class TestQuarantine:
    def make(self, threshold=2, qmax=128):
        return smoke_evaluator(
            fault_injector=FaultInjector(transient_error_rate=1.0),
            measure_config=MeasureConfig(
                max_retries=0, quarantine_threshold=threshold, quarantine_max=qmax
            ),
        )

    def test_repeated_failures_quarantine(self):
        ev = self.make(threshold=2)
        point = a_point(ev)
        ev.evaluate(point)
        ev.evaluate(point)
        assert point in ev.quarantine
        clock = ev.clock
        measurements = ev.num_measurements
        assert ev.evaluate(point) == 0.0      # served from quarantine:
        assert ev.clock == clock              # no clock charge,
        assert ev.num_measurements == measurements  # no measurement
        assert ev.num_quarantine_hits == 1

    def test_quarantine_eviction_fifo(self):
        ev = self.make(threshold=1, qmax=2)
        rng = np.random.default_rng(0)
        points = []
        while len(points) < 3:
            p = ev.space.random_point(rng)
            if p not in points:
                points.append(p)
        for p in points:
            ev.evaluate(p)
        assert len(ev.quarantine) == 2
        assert points[0] not in ev.quarantine   # oldest evicted
        assert ev.quarantine == (points[1], points[2])
        # The evicted point gets a clean slate: measurable again.
        before = ev.num_measurements
        ev.evaluate(points[0])
        assert ev.num_measurements == before + 1

    def test_recent_error_rate_tracks_failures(self):
        ev = self.make(threshold=100)
        assert ev.recent_error_rate() == 0.0
        ev.evaluate(a_point(ev))
        assert ev.recent_error_rate() == 1.0

    @staticmethod
    def check_quarantine_invariant(ev):
        # The FIFO list and the membership set must mirror each other
        # exactly — a divergence would let an evicted point keep hitting
        # the quarantine fast-path (or a quarantined one be re-measured).
        assert set(ev._quarantine) == ev._quarantined
        assert len(ev._quarantine) == len(set(ev._quarantine))
        assert len(ev._quarantine) <= ev.measure_config.quarantine_max

    @settings(max_examples=25, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(st.integers(0, 7), st.booleans()), min_size=1, max_size=30
        ),
        qmax=st.integers(1, 4),
    )
    def test_quarantine_list_set_never_diverge(self, ops, qmax):
        # Randomized interleavings of failures (which quarantine + evict)
        # and snapshot round-trips must preserve the list/set invariant.
        ev = self.make(threshold=1, qmax=qmax)
        rng = np.random.default_rng(0)
        points = []
        while len(points) < 8:
            p = ev.space.random_point(rng)
            if p not in points:
                points.append(p)
        for index, roundtrip in ops:
            ev.evaluate(points[index])
            if roundtrip:
                ev.set_state(json.loads(json.dumps(ev.get_state())))
            self.check_quarantine_invariant(ev)

    def test_resume_dedupes_a_corrupt_duplicate_snapshot(self):
        # A hand-edited (or older-version) snapshot may carry duplicate
        # quarantine entries; restoring must collapse them instead of
        # letting the FIFO list and the set disagree on length.
        ev = self.make(threshold=1)
        point = a_point(ev)
        ev.evaluate(point)
        state = ev.get_state()
        state["quarantine"] = state["quarantine"] * 3
        ev.set_state(state)
        self.check_quarantine_invariant(ev)
        assert ev.quarantine == (point,)

    def test_resume_with_shrunken_quarantine_max_rebounds(self):
        # quarantine_max may shrink between save and resume (config
        # change); the restored FIFO must re-apply the new bound.
        big = self.make(threshold=1, qmax=8)
        rng = np.random.default_rng(0)
        points = []
        while len(points) < 5:
            p = big.space.random_point(rng)
            if p not in points:
                points.append(p)
        for p in points:
            big.evaluate(p)
        assert len(big.quarantine) == 5
        small = self.make(threshold=1, qmax=2)
        small.set_state(big.get_state())
        self.check_quarantine_invariant(small)
        assert len(small.quarantine) == 2
        # newest entries survive, oldest are dropped
        assert small.quarantine == (points[3], points[4])


class TestRecordBookHardening:
    def test_corrupt_lines_skipped_with_warning(self, tmp_path):
        path = tmp_path / "records.jsonl"
        good = TuningRecord(
            key="k1", gflops=5.0,
            config=NodeConfig(spatial_factors=((1,),), reduce_factors=()),
        )
        path.write_text(
            good.to_json() + "\n"
            + "{not json at all\n"
            + '{"key": "missing-config"}\n'
            + good.to_json()[: len(good.to_json()) // 2]  # truncated append
        )
        with pytest.warns(UserWarning, match="corrupt record"):
            book = RecordBook(path)
        assert len(book) == 1
        assert book.best("k1").gflops == 5.0

    def test_append_is_durable_line(self, tmp_path):
        path = tmp_path / "records.jsonl"
        book = RecordBook(path)
        record = TuningRecord(
            key="k", gflops=1.0,
            config=NodeConfig(spatial_factors=((1,),), reduce_factors=()),
        )
        book.add(record)
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["key"] == "k"


@pytest.mark.faults
class TestTunersUnderFaults:
    @pytest.mark.parametrize("tuner_cls", ALL_TUNERS)
    def test_acceptance_rates_survive_20_trials(self, tuner_cls):
        # ISSUE #1 acceptance: 30% transient + 5% hang, 20-trial run.
        injector = FaultInjector(transient_error_rate=0.3, hang_rate=0.05, seed=1)
        ev = smoke_evaluator(
            fault_injector=injector,
            measure_config=MeasureConfig(timeout_seconds=0.5),
        )
        result = tuner_cls(ev, seed=0).tune(20, num_seeds=3)
        assert result.num_measurements == sum(result.status_counts.values())
        assert result.found

    def test_qmethod_within_2x_of_fault_free_best(self):
        clean = FlexTensorTuner(smoke_evaluator(), seed=0).tune(20, num_seeds=3)
        injector = FaultInjector(transient_error_rate=0.3, hang_rate=0.05, seed=1)
        faulty_ev = smoke_evaluator(
            fault_injector=injector,
            measure_config=MeasureConfig(timeout_seconds=0.5),
        )
        faulty = FlexTensorTuner(faulty_ev, seed=0).tune(20, num_seeds=3)
        assert faulty.found
        assert faulty.best_performance >= clean.best_performance / 2

    @settings(max_examples=10, deadline=None)
    @given(
        tuner_index=st.integers(min_value=0, max_value=len(ALL_TUNERS) - 1),
        transient=st.floats(min_value=0.0, max_value=0.5),
        compile_rate=st.floats(min_value=0.0, max_value=0.2),
        hang=st.floats(min_value=0.0, max_value=0.2),
        jitter=st.floats(min_value=0.0, max_value=0.2),
        timeout_on=st.booleans(),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_all_tuners_complete(
        self, tuner_index, transient, compile_rate, hang, jitter, timeout_on, seed
    ):
        injector = FaultInjector(
            transient_error_rate=transient,
            compile_error_rate=compile_rate,
            hang_rate=hang,
            jitter=jitter,
            seed=seed,
        )
        measure = MeasureConfig(timeout_seconds=0.5 if timeout_on else None)
        ev = tiny_evaluator(fault_injector=injector, measure_config=measure)
        result = ALL_TUNERS[tuner_index](ev, seed=seed).tune(2, num_seeds=2)
        assert result.num_measurements == sum(result.status_counts.values())
        assert len(result.curve) == result.num_measurements
        assert result.exploration_seconds >= 0.0
        if result.found:
            assert result.best_performance > 0
        assert result.best_performance >= 0
