"""End-to-end tests: the public optimize() API and the DNN case study."""

import numpy as np
import pytest

from repro import OptimizeResult, optimize
from repro.codegen import execute_scheduled, random_inputs
from repro.model import V100, VU9P, XEON_E5_2699V4
from repro.nn import (
    Network,
    optimize_network,
    overfeat,
    partition_network,
    yolo_v1,
)
from repro.ops import SUITES, conv2d_compute, conv2d_reference, gemm_compute


class TestOptimizeApi:
    @pytest.mark.parametrize("device", [V100, XEON_E5_2699V4, VU9P])
    def test_end_to_end_small(self, device):
        out = conv2d_compute(1, 8, 8, 8, 16, 3, padding=1, name="c")
        result = optimize(out, device, trials=6, seed=0)
        assert result.found
        assert result.gflops > 0
        assert result.kernel_seconds < 1.0
        assert result.space_size > 1

    def test_best_schedule_is_numerically_correct(self):
        out = conv2d_compute(1, 2, 6, 6, 4, 3, padding=1, name="c")
        result = optimize(out, V100, trials=5, seed=0)
        inputs = random_inputs(out, seed=0)
        got = execute_scheduled(result.schedule, inputs)
        expected = conv2d_reference(inputs["c_I"], inputs["c_W"], 1, 1)
        np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_generated_code_and_pseudo_code(self):
        out = gemm_compute(16, 16, 16, name="g")
        result = optimize(out, V100, trials=4, seed=0)
        assert "def kernel" in result.generated_code()
        assert "blockIdx" in result.pseudo_code()

    def test_summary_mentions_primitives(self):
        out = gemm_compute(16, 16, 16, name="g")
        result = optimize(out, V100, trials=4, seed=0)
        text = result.summary()
        assert "GFLOPS" in text and "split" in text

    @pytest.mark.parametrize("method", ["q", "p", "random-walk", "random-sample"])
    def test_all_methods_run(self, method):
        out = gemm_compute(16, 16, 16, name="g")
        result = optimize(out, V100, trials=3, method=method, seed=0)
        assert result.found

    def test_unknown_method_rejected(self):
        out = gemm_compute(8, 8, 8)
        with pytest.raises(ValueError):
            optimize(out, V100, trials=1, method="magic")

    def test_deterministic(self):
        out = gemm_compute(32, 32, 32, name="g")
        a = optimize(out, V100, trials=5, seed=11)
        b = optimize(out, V100, trials=5, seed=11)
        assert a.gflops == b.gflops
        assert a.config == b.config

    def test_analysis_attached(self):
        out = gemm_compute(16, 8, 4, name="g")
        result = optimize(out, V100, trials=2, seed=0)
        assert result.analysis.main().num_spatial == 2


class TestNetworks:
    def test_yolo_has_24_layers_15_distinct(self):
        net = yolo_v1()
        assert len(net.layers) == 15
        assert net.num_layers == 24

    def test_overfeat_has_5_layers(self):
        net = overfeat()
        assert net.num_layers == 5

    def test_yolo_shapes_match_table4(self):
        net = yolo_v1()
        first = net.layers[0].workload.params
        assert first["in_channel"] == 3
        assert first["out_channel"] == 64
        assert first["height"] == 448
        assert first["kernel"] == 7
        assert first["stride"] == 2

    def test_total_flops_positive(self):
        assert yolo_v1().total_flops() > 1e9


class TestPartitioning:
    def test_fusion_groups_absorb_activations(self):
        net = yolo_v1()
        fused = partition_network(net, fuse=True)
        assert all(g.fused_elementwise == ("relu",) for g in fused)
        unfused = partition_network(net, fuse=False)
        assert all(g.fused_elementwise == () for g in unfused)


class TestOptimizeNetwork:
    def _tiny_network(self):
        from repro.nn import LayerSpec
        from repro.ops import Workload

        layer = LayerSpec(
            Workload("C2D", "tiny", dict(
                batch=1, in_channel=8, height=8, width=8, out_channel=8,
                kernel=3, stride=1, padding=1)),
            multiplicity=2,
        )
        return Network("tiny", [layer])

    def test_flextensor_network(self):
        result = optimize_network(self._tiny_network(), V100, trials=4, seed=0)
        assert result.total_seconds > 0
        assert len(result.layers) == 1
        # multiplicity applied
        layer = result.layers[0]
        assert layer.total_seconds == pytest.approx(
            (layer.kernel_seconds + layer.epilogue_seconds) * 2
        )

    def test_autotvm_network(self):
        result = optimize_network(
            self._tiny_network(), V100, trials=3, method="autotvm", seed=0
        )
        assert result.total_seconds > 0

    def test_fusion_is_faster(self):
        fused = optimize_network(self._tiny_network(), V100, trials=3, fuse=True, seed=0)
        unfused = optimize_network(self._tiny_network(), V100, trials=3, fuse=False, seed=0)
        assert fused.total_seconds < unfused.total_seconds

    def test_network_gflops(self):
        result = optimize_network(self._tiny_network(), V100, trials=3, seed=0)
        assert result.gflops > 0
