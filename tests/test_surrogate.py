"""Surrogate-guided batch screening (ISSUE #4): GBT state roundtrips,
deterministic screening, bit-identical kill+resume with the surrogate
attached, surrogate-off trajectory preservation, featurization
properties, and the bounded coefficient cache."""

import json

import numpy as np
import pytest

from repro.codegen import point_features
from repro.codegen.features import (
    COEFFICIENT_CACHE_CAP,
    _COEFFICIENT_CACHE,
    access_coefficients,
    read_tensors,
)
from repro.explore import FlexTensorTuner, SurrogateScreen, spearman
from repro.learn import GradientBoostedTrees
from repro.model import V100
from repro.ops import conv2d_compute, gemm_compute
from repro.optimize import optimize
from repro.runtime import BatchEngine, Evaluator


def smoke_output():
    return conv2d_compute(1, 8, 8, 8, 16, 3, padding=1, name="c")


def smoke_evaluator(**kwargs):
    return Evaluator(smoke_output(), V100, **kwargs)


def distinct_points(ev, count, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    while len(points) < count:
        p = ev.space.random_point(rng)
        if p not in points:
            points.append(p)
    return points


def trained_screen(ev, count=20, **kwargs):
    """A SurrogateScreen fitted on ``count`` real measurements."""
    kwargs.setdefault("min_train", 8)
    screen = SurrogateScreen(ev.space, **kwargs)
    for p in distinct_points(ev, count):
        screen.observe(p, ev.evaluate(p))
    return screen


class TestSpearman:
    def test_perfect_agreement(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_reversal(self):
        assert spearman([1, 2, 3, 4], [9, 7, 5, 3]) == pytest.approx(-1.0)

    def test_constant_side_is_zero(self):
        assert spearman([1, 1, 1], [1, 2, 3]) == 0.0
        assert spearman([1, 2], [5, 5]) == 0.0

    def test_short_input_is_zero(self):
        assert spearman([1], [2]) == 0.0


class TestGBTState:
    def test_roundtrip_predictions_bit_exact(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(60, 7))
        y = x[:, 0] * 2 + np.sin(x[:, 1]) + rng.normal(scale=0.1, size=60)
        model = GradientBoostedTrees()
        model.fit(x, y)
        state = json.loads(json.dumps(model.get_state()))
        clone = GradientBoostedTrees()
        clone.set_state(state)
        x_test = rng.normal(size=(25, 7))
        assert np.array_equal(model.predict(x_test), clone.predict(x_test))

    def test_unfitted_roundtrip(self):
        model = GradientBoostedTrees()
        clone = GradientBoostedTrees()
        clone.set_state(json.loads(json.dumps(model.get_state())))
        assert not clone.is_fitted

    def test_baselines_shim_reexports(self):
        from repro.baselines.gbt import GradientBoostedTrees as Shimmed

        assert Shimmed is GradientBoostedTrees


class TestPointFeatures:
    def test_deterministic_fixed_length_finite(self):
        ev = smoke_evaluator()
        points = distinct_points(ev, 5)
        vectors = [point_features(ev.space, p) for p in points]
        assert len({len(v) for v in vectors}) == 1
        for p, v in zip(points, vectors):
            assert np.all(np.isfinite(v))
            assert np.array_equal(v, point_features(ev.space, p))

    def test_distinct_points_can_differ(self):
        ev = smoke_evaluator()
        a, b = distinct_points(ev, 2)
        assert not np.array_equal(
            point_features(ev.space, a), point_features(ev.space, b)
        )


class TestCoefficientCacheBound:
    def test_cache_never_exceeds_cap(self):
        _COEFFICIENT_CACHE.clear()
        for i in range(COEFFICIENT_CACHE_CAP + 40):
            op = gemm_compute(4, 4, 4, name=f"g{i}").op
            access_coefficients(op, read_tensors(op)[0])
        assert len(_COEFFICIENT_CACHE) <= COEFFICIENT_CACHE_CAP

    def test_hit_returns_same_object(self):
        op = gemm_compute(4, 4, 4, name="ghit").op
        tensor = read_tensors(op)[0]
        first = access_coefficients(op, tensor)
        assert access_coefficients(op, tensor) is first


class TestScreening:
    def test_not_ready_forwards_everything(self):
        ev = smoke_evaluator()
        screen = SurrogateScreen(ev.space)
        points = distinct_points(ev, 6)
        decision = screen.screen(points)
        assert decision.forward == list(range(6))
        assert not decision.screened
        assert not decision.ranked

    def test_ranked_batch_forwards_top_fraction(self):
        ev = smoke_evaluator()
        screen = trained_screen(ev, epsilon=0.0, screen_ratio=0.25)
        assert screen.ready
        points = distinct_points(ev, 8, seed=99)
        decision = screen.screen(points)
        assert decision.ranked
        assert len(decision.forward) == 2  # ceil(0.25 * 8)
        assert len(decision.screened) == 6
        assert decision.cost_seconds > 0
        # The forwarded positions carry the highest scores.
        floor = min(decision.scores[i] for i in decision.forward)
        assert all(decision.scores[i] <= floor for i, _ in decision.screened)

    def test_single_candidates_screen_against_window(self):
        ev = smoke_evaluator()
        screen = trained_screen(ev, epsilon=0.0, screen_ratio=0.25)
        outcomes = set()
        for p in distinct_points(ev, 40, seed=7):
            decision = screen.screen([p])
            outcomes.add(bool(decision.forward))
        # With a 25% pass quantile both verdicts must occur.
        assert outcomes == {True, False}

    def test_epsilon_one_forwards_everything(self):
        ev = smoke_evaluator()
        screen = trained_screen(ev, epsilon=1.0, screen_ratio=0.25)
        points = distinct_points(ev, 8, seed=3)
        decision = screen.screen(points)
        assert decision.forward == list(range(8))

    def test_observe_dedups_and_refit_cadence_is_deterministic(self):
        ev = smoke_evaluator()
        screen = SurrogateScreen(ev.space, min_train=4, refit_every=4)
        points = distinct_points(ev, 8)
        for p in points:
            screen.observe(p, ev.evaluate(p))
        refits = screen.num_refits
        screen.observe(points[0], 123.0)  # re-measurement: label overwrite
        assert screen.num_observations == 8
        assert screen.num_refits == refits

    def test_held_out_rank_correlation_positive(self):
        ev = smoke_evaluator()
        labelled = [(p, ev.evaluate(p)) for p in distinct_points(ev, 80)]
        train, held_out = labelled[:60], labelled[60:]
        screen = SurrogateScreen(ev.space, min_train=len(train))
        for p, perf in train:
            screen.observe(p, perf)
        predicted = [float(s) for s in screen.predict([p for p, _ in held_out])]
        actual = [perf for _, perf in held_out]
        assert spearman(predicted, actual) > 0


class TestScreenState:
    def test_roundtrip_reproduces_decisions(self):
        ev = smoke_evaluator()
        screen = trained_screen(ev, epsilon=0.3)
        state = json.loads(json.dumps(screen.get_state()))
        clone = SurrogateScreen(ev.space)
        clone.set_state(state)
        for seed in (11, 12, 13):
            batch = distinct_points(ev, 6, seed=seed)
            a = screen.screen(batch)
            b = clone.screen(batch)
            assert a.forward == b.forward
            assert a.screened == b.screened
            assert a.scores == b.scores
        assert screen.stats() == clone.stats()

    def test_roundtrip_preserves_counters_and_training(self):
        ev = smoke_evaluator()
        screen = trained_screen(ev)
        screen.screen(distinct_points(ev, 6, seed=5))
        state = json.loads(json.dumps(screen.get_state()))
        clone = SurrogateScreen(ev.space)
        clone.set_state(state)
        assert clone.num_observations == screen.num_observations
        assert clone.num_refits == screen.num_refits
        assert clone.stats() == screen.stats()
        more = distinct_points(ev, 4, seed=21)
        for p in more:
            screen.observe(p, ev.evaluate(p))
            clone.observe(p, ev.evaluate(p))
        batch = distinct_points(ev, 6, seed=22)
        assert screen.screen(batch).forward == clone.screen(batch).forward


class TestEnginePipeline:
    def test_screened_points_bill_near_zero(self):
        ev = smoke_evaluator()
        screen = trained_screen(ev, epsilon=0.0, screen_ratio=0.25)
        engine = BatchEngine(ev, workers=1, surrogate=screen)
        clock_before = ev.clock
        measured_before = ev.num_measurements
        points = distinct_points(ev, 8, seed=50)
        results = engine.evaluate_batch(points)
        assert len(results) == len(points)
        assert engine.num_screened == 6
        assert ev.num_measurements - measured_before == 2
        # Screened points cost one inference each, not a measurement:
        # the same batch without a screen bills strictly more clock.
        spent = ev.clock - clock_before
        ev_full = smoke_evaluator()
        BatchEngine(ev_full, workers=1).evaluate_batch(points)
        assert spent < ev_full.clock
        stats = engine.stats()
        assert stats["points_screened"] == 6
        assert stats["surrogate"]["screened"] == 6

    def test_fresh_measurements_feed_training(self):
        ev = smoke_evaluator()
        screen = trained_screen(ev, epsilon=0.0, screen_ratio=0.5)
        engine = BatchEngine(ev, workers=1, surrogate=screen)
        before = screen.num_observations
        engine.evaluate_batch(distinct_points(ev, 8, seed=60))
        assert screen.num_observations > before


class TestTrajectories:
    def test_surrogate_off_matches_engineless_serial_run(self):
        off = optimize(smoke_output(), V100, trials=3, seed=0, workers=1)
        tuner = FlexTensorTuner(smoke_evaluator(), seed=0)
        serial = tuner.tune(3, num_seeds=4)
        assert off.tuning.best_point == serial.best_point
        assert off.tuning.best_performance == serial.best_performance
        assert off.tuning.num_measurements == serial.num_measurements
        assert off.tuning.curve == serial.curve
        assert off.tuning.num_screened == 0
        assert off.tuning.surrogate is None

    def test_surrogate_run_is_seed_deterministic(self):
        a = optimize(smoke_output(), V100, trials=4, seed=0, surrogate=True,
                     screen_ratio=0.25)
        b = optimize(smoke_output(), V100, trials=4, seed=0, surrogate=True,
                     screen_ratio=0.25)
        assert a.tuning.best_point == b.tuning.best_point
        assert a.tuning.best_performance == b.tuning.best_performance
        assert a.tuning.curve == b.tuning.curve
        assert a.tuning.surrogate == b.tuning.surrogate

    def test_screening_cuts_measurements(self):
        off = optimize(smoke_output(), V100, trials=6, seed=0)
        on = optimize(smoke_output(), V100, trials=6, seed=0, surrogate=True,
                      screen_ratio=0.25)
        assert on.tuning.num_screened > 0
        assert on.tuning.num_measurements < off.tuning.num_measurements
        assert on.tuning.surrogate["screened"] == on.tuning.num_screened

    def test_kill_resume_bit_identical_with_surrogate(self, tmp_path):
        def make_tuner():
            ev = smoke_evaluator()
            screen = SurrogateScreen(ev.space, screen_ratio=0.25, seed=7,
                                     min_train=8)
            engine = BatchEngine(ev, workers=1, surrogate=screen)
            return FlexTensorTuner(ev, seed=7, engine=engine)

        path = tmp_path / "run.ckpt"
        full = make_tuner().tune(8, num_seeds=3, checkpoint=path)
        killed_path = tmp_path / "killed.ckpt"
        make_tuner().tune(5, num_seeds=3, checkpoint=killed_path)
        resumed = make_tuner().tune(
            8, num_seeds=3, checkpoint=killed_path, resume=True
        )
        assert resumed.best_point == full.best_point
        assert resumed.best_performance == full.best_performance
        assert resumed.exploration_seconds == full.exploration_seconds
        assert resumed.num_measurements == full.num_measurements
        assert resumed.num_screened == full.num_screened
        assert resumed.curve == full.curve
        assert resumed.surrogate == full.surrogate

    def test_optimize_checkpoint_resume_with_surrogate(self, tmp_path):
        path = tmp_path / "opt.ckpt"
        full = optimize(smoke_output(), V100, trials=6, seed=1, surrogate=True,
                        checkpoint=tmp_path / "full.ckpt")
        optimize(smoke_output(), V100, trials=3, seed=1, surrogate=True,
                 checkpoint=path)
        resumed = optimize(smoke_output(), V100, trials=6, seed=1,
                           surrogate=True, checkpoint=path, resume=True)
        assert resumed.tuning.best_point == full.tuning.best_point
        assert resumed.tuning.best_performance == full.tuning.best_performance
        assert resumed.tuning.num_measurements == full.tuning.num_measurements
        assert resumed.tuning.curve == full.tuning.curve
        assert resumed.tuning.surrogate == full.tuning.surrogate


class TestCLI:
    def test_selfcheck_surrogate_smoke(self, capsys):
        from repro.__main__ import main

        assert main(["selfcheck", "--surrogate"]) == 0
        out = capsys.readouterr().out
        assert "surrogate selfcheck passed" in out

    def test_tune_with_surrogate_prints_counters(self, capsys):
        from repro.__main__ import main

        code = main([
            "gemm", "--n", "16", "--k", "16", "--m", "16",
            "--trials", "4", "--surrogate", "--screen-ratio", "0.25",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "screening:" in out
