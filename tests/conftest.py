"""Shared test configuration.

Tests that exercise a real ``multiprocessing`` pool are marked ``slow``;
on a single-core runner a fork pool buys nothing and only adds flaky
start-up latency, so tier-1 ``pytest -x -q`` skips them there
automatically.  Run them explicitly with ``pytest -m slow`` on a
multi-core machine.
"""

import os

import pytest


def _effective_cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # platforms without sched_getaffinity
        return os.cpu_count() or 1


@pytest.fixture(autouse=True)
def _skip_slow_on_single_core(request):
    if request.node.get_closest_marker("slow") and _effective_cpu_count() < 2:
        pytest.skip("multiprocess test skipped on a single-core runner")
