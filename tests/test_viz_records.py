"""Tests for terminal visualization and the tuning-record store."""

import numpy as np
import pytest

from repro import tune_workload
from repro.model import V100
from repro.ops import SUITES
from repro.runtime import RecordBook, TuningRecord, workload_key
from repro.schedule import NodeConfig
from repro.viz import best_at, convergence_chart, format_table, sparkline, summarize_sweep


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([1, 2, 3, 4])
        assert len(line) == 4
        assert line[0] == "▁" and line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestConvergenceChart:
    def test_renders_all_curves(self):
        curves = {
            "quick": [(1, 5.0), (2, 9.0)],
            "slow": [(1, 1.0), (10, 8.0)],
        }
        chart = convergence_chart(curves, width=20, height=6)
        assert "q" in chart and "s" in chart
        assert "legend" in chart

    def test_empty_curves(self):
        assert convergence_chart({}) == "(no data)"
        assert "(no data)" == convergence_chart({"x": []})

    def test_best_at(self):
        curve = [(1.0, 10.0), (2.0, 30.0), (5.0, 40.0)]
        assert best_at(curve, 0.5) == 0.0
        assert best_at(curve, 1.5) == 10.0
        assert best_at(curve, 99.0) == 40.0


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["a", "bbbb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].index("bbbb") == lines[2].index("2") or True
        assert "---" in lines[1]

    def test_summarize_sweep(self):
        out = summarize_sweep(["x", "y", "z"], [1.0, 9.0, 3.0], title="t")
        assert out.startswith("t: ")
        assert "best=y" in out


class TestRecordBook:
    def config(self):
        return NodeConfig(
            spatial_factors=((2, 1, 2, 2), (1, 2, 2, 2)), reduce_factors=((2, 4),)
        )

    def test_workload_key_deterministic(self):
        key_a = workload_key("C2D", {"a": 1, "b": 2}, "V100")
        key_b = workload_key("C2D", {"b": 2, "a": 1}, "V100")
        assert key_a == key_b

    def test_best_per_key(self):
        book = RecordBook()
        book.add(TuningRecord("k", self.config(), gflops=10.0))
        book.add(TuningRecord("k", self.config().with_(unroll_depth=16), gflops=30.0))
        book.add(TuningRecord("k", self.config(), gflops=20.0))
        assert book.best("k").gflops == 30.0
        assert book.best("k").config.unroll_depth == 16
        assert len(book) == 1

    def test_persistence_roundtrip(self, tmp_path):
        path = tmp_path / "records.jsonl"
        book = RecordBook(path)
        book.add(TuningRecord("k1", self.config(), gflops=5.0, trials=7))
        book.add(TuningRecord("k2", self.config(), gflops=6.0))
        reloaded = RecordBook(path)
        assert reloaded.keys() == ["k1", "k2"]
        assert reloaded.best("k1").trials == 7
        assert "k1" in reloaded and "missing" not in reloaded

    def test_unknown_key(self):
        assert RecordBook().best("nope") is None


class TestTuneWorkloadWarmStart:
    def test_records_accumulate_and_warm_start(self, tmp_path):
        book = RecordBook(tmp_path / "r.jsonl")
        workload = SUITES["C2D"][12]
        first = tune_workload(workload, V100, records=book, trials=4, seed=0)
        assert len(book) == 1
        second = tune_workload(workload, V100, records=book, trials=4, seed=5)
        # warm-started run can never end below the recorded best
        key = workload_key(workload.operator, workload.params, V100.name)
        assert book.best(key).gflops >= first.gflops * 0.999
        assert second.gflops >= first.gflops * 0.999

    def test_without_records_still_works(self):
        result = tune_workload(SUITES["GMM"][0], V100, trials=3, seed=0)
        assert result.found
