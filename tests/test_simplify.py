"""Tests for the index-expression simplifier."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.ir import (
    Add,
    IntImm,
    IterVar,
    Mul,
    Var,
    evaluate,
    node_count,
    simplify,
)


class TestBasicRewrites:
    def setup_method(self):
        self.x = Var("x")

    def test_additive_identity(self):
        assert simplify(self.x + 0) is self.x
        assert simplify(0 + self.x) is self.x

    def test_multiplicative_identity(self):
        assert simplify(self.x * 1) is self.x
        assert simplify(1 * self.x) is self.x

    def test_multiply_by_zero(self):
        result = simplify(self.x * 0)
        assert isinstance(result, IntImm) and result.value == 0

    def test_constant_folding(self):
        result = simplify(IntImm(3) + IntImm(4) * IntImm(2))
        assert isinstance(result, IntImm) and result.value == 11

    def test_floordiv_by_one(self):
        assert simplify(self.x // 1) is self.x

    def test_mod_by_one_is_zero(self):
        result = simplify(self.x % 1)
        assert isinstance(result, IntImm) and result.value == 0

    def test_subtract_zero(self):
        assert simplify(self.x - 0) is self.x

    def test_nested_constant_reassociation(self):
        # (x * 4) * 2 -> x * 8
        result = simplify((self.x * 4) * 2)
        assert isinstance(result, Mul)
        assert isinstance(result.b, IntImm) and result.b.value == 8

    def test_additive_constant_reassociation(self):
        # (x + 3) + 4 -> x + 7
        result = simplify((self.x + 3) + 4)
        assert isinstance(result, Add)
        assert isinstance(result.b, IntImm) and result.b.value == 7


class TestSimplifyPreservesSemantics:
    @given(st.integers(min_value=0, max_value=100), st.integers(min_value=0, max_value=100))
    @settings(max_examples=50)
    def test_lowering_style_expressions(self, v0, v1):
        i0, i1 = Var("i0"), Var("i1")
        # the shape of mechanically built index reconstructions
        expr = ((i0 * 1 + 0) * 8 + i1) * 1 + (i0 * 0)
        simplified = simplify(expr)
        env = {i0: v0, i1: v1}
        assert evaluate(simplified, env) == evaluate(expr, env)
        assert node_count(simplified) < node_count(expr)

    @given(
        st.integers(min_value=-8, max_value=8),
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=0, max_value=64),
    )
    @settings(max_examples=50)
    def test_random_affine_expressions(self, c1, c2, v):
        x = Var("x")
        expr = (x * c1 + 5) * c2 + x % 4 + x // 2
        env = {x: v}
        assert evaluate(simplify(expr), env) == evaluate(expr, env)

    def test_tensor_ref_indices_simplified(self):
        from repro.ir import placeholder

        t = placeholder((8, 8), name="T")
        x = Var("x")
        ref = t[x * 1 + 0, x + 0]
        simplified = simplify(ref)
        assert simplified.indices[0] is x
        assert simplified.indices[1] is x

    def test_float_division_not_folded(self):
        from repro.ir import Div, FloatImm

        expr = Div(FloatImm(1.0), FloatImm(3.0))
        result = simplify(expr)
        assert isinstance(result, Div)  # no float re-association


class TestLoweredIndexMapsAreSimplified:
    def test_no_multiply_by_one_in_generated_code(self):
        from repro.codegen import emit_python
        from repro.ops import gemm_compute
        from repro.schedule import NodeConfig, lower

        out = gemm_compute(8, 8, 8, name="g")
        config = NodeConfig(
            spatial_factors=((1, 1, 8, 1), (1, 1, 8, 1)), reduce_factors=((8, 1),)
        )
        source = emit_python(lower(out, config, "gpu"))
        # unit-extent parts contribute nothing to the reconstructed index
        assert "* 1)" not in source
        assert "+ 0)" not in source

    def test_simplified_schedule_still_correct(self):
        from repro.codegen import execute_scheduled, random_inputs
        from repro.ops import gemm_compute, gemm_reference
        from repro.schedule import NodeConfig, lower

        out = gemm_compute(8, 8, 8, name="g")
        config = NodeConfig(
            spatial_factors=((2, 1, 2, 2), (1, 2, 2, 2)), reduce_factors=((2, 4),)
        )
        scheduled = lower(out, config, "gpu")
        inputs = random_inputs(out, seed=0)
        np.testing.assert_allclose(
            execute_scheduled(scheduled, inputs),
            gemm_reference(inputs["g_A"], inputs["g_B"]),
        )
