"""Tests for the multi-tenant tuning service (``repro.serve``).

Covers the robustness contract of docs/serve.md: the crash-safe WAL job
store, bit-identical crash recovery, fair-share scheduling under tenant
floods, admission control (queue depth, quotas, rate limits, TTL), the
poisoned-job quarantine, degraded lookups-only mode, drain/shutdown,
shared EvalCache/RecordBook across preemption and resume, the O(1)
RecordBook signature index, and the CLI exit-code contract.
"""

import json
import os
import signal
import time
import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.model import V100
from repro.optimize import tune_workload
from repro.ops.workloads import Workload
from repro.runtime import RecordBook, TuningRecord
from repro.schedule import NodeConfig
from repro.serve import (
    DaemonKilled,
    Job,
    JobState,
    JobStore,
    ServeChaos,
    ServeConfig,
    TenantPolicy,
    TokenBucket,
    TuningService,
)

pytestmark = pytest.mark.serve

GEMM = {"n": 8, "k": 8, "m": 8}
CONV = {"batch": 1, "in_channel": 4, "height": 8, "width": 8,
        "out_channel": 8, "kernel": 3, "padding": 1}


def submit_mixed(service, trials=4):
    """The selfcheck submission set: four jobs from two tenants."""
    service.submit("alice", "gemm", GEMM, "V100", trials=trials, seed=0, method="q")
    service.submit("bob", "gemm", {"n": 16, "k": 8, "m": 8}, "V100",
                   trials=trials, seed=1, method="p")
    service.submit("alice", "conv2d", CONV, "V100", trials=trials, seed=0,
                   method="random-walk")
    service.submit("bob", "gemm", GEMM, "V100", trials=trials, seed=2,
                   method="random-sample")


def outcomes(service):
    return {
        job.job_id: (job.state.value, job.trials_done, job.best_gflops,
                     job.best_point, job.num_measurements)
        for job in service.store.jobs.values()
    }


# -- the write-ahead log ---------------------------------------------------


def test_wal_roundtrip_preserves_jobs_and_clock(tmp_path):
    store = JobStore(tmp_path)
    job = Job(job_id="t-0001", tenant="t", operator="gemm", params=dict(GEMM),
              device="V100", trials=4, ttl_seconds=50.0)
    store.submit(job, clock=1.0)
    store.transition(job, JobState.ADMITTED, clock=1.0)
    store.transition(job, JobState.RUNNING, clock=2.0)
    job.trials_done, job.sim_seconds = 2, 7.5
    store.transition(job, JobState.PREEMPTED, clock=9.5, reason="time slice")

    replayed = JobStore(tmp_path)
    assert replayed.clock == 9.5
    assert replayed.next_seq == 2
    twin = replayed.jobs["t-0001"]
    assert twin.state is JobState.PREEMPTED
    assert twin.trials_done == 2 and twin.sim_seconds == 7.5
    assert twin.params == GEMM and twin.ttl_seconds == 50.0
    assert twin.slices == 1 and twin.reason == "time slice"


def test_wal_skips_corrupt_tail_and_keeps_previous_transition(tmp_path):
    store = JobStore(tmp_path)
    job = Job(job_id="t-0001", tenant="t", operator="gemm", params=dict(GEMM),
              device="V100", trials=4)
    store.submit(job, clock=0.0)
    store.transition(job, JobState.ADMITTED, clock=0.0)
    intact = store.path.read_text()
    store.transition(job, JobState.RUNNING, clock=3.0)
    # Simulate kill -9 mid-append: the RUNNING line is torn.
    store.path.write_text(intact + '{"v": 1, "type": "job-event", "ev')
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        replayed = JobStore(tmp_path)
    assert any("corrupt job event" in str(w.message) for w in caught)
    assert replayed.jobs["t-0001"].state is JobState.ADMITTED


def test_illegal_transitions_raise_and_are_not_logged(tmp_path):
    store = JobStore(tmp_path)
    job = Job(job_id="t-0001", tenant="t", operator="gemm", params=dict(GEMM),
              device="V100", trials=4)
    store.submit(job, clock=0.0)
    with pytest.raises(ValueError, match="illegal job transition"):
        store.transition(job, JobState.RUNNING, clock=0.0)  # skips ADMITTED
    store.transition(job, JobState.ADMITTED, clock=0.0)
    store.transition(job, JobState.RUNNING, clock=0.0)
    store.transition(job, JobState.DONE, clock=1.0)
    with pytest.raises(ValueError, match="illegal job transition"):
        store.transition(job, JobState.RUNNING, clock=2.0)  # terminal
    assert JobStore(tmp_path).jobs["t-0001"].state is JobState.DONE


# -- crash recovery --------------------------------------------------------


@pytest.mark.parametrize("chaos", [
    ServeChaos(kill_at_slice=3),    # checkpoint durable, WAL commit lost
    ServeChaos(kill_before_run=2),  # RUNNING logged, slice never happened
], ids=["commit-window", "pre-slice"])
def test_daemon_kill_recovery_is_bit_identical(tmp_path, chaos):
    config = ServeConfig(slice_trials=2)
    reference = TuningService(tmp_path / "ref", config)
    submit_mixed(reference)
    reference.run()
    expected = outcomes(reference)
    assert all(state == "done" for state, *_ in expected.values())

    doomed = TuningService(tmp_path / "chaos", config, chaos=chaos)
    submit_mixed(doomed)
    with pytest.raises(DaemonKilled):
        doomed.run()
    restarted = TuningService(tmp_path / "chaos", config)
    assert restarted.recovered_jobs  # something really was mid-flight
    restarted.run()
    assert outcomes(restarted) == expected


def test_sigkill_mid_run_recovers_to_reference_best(tmp_path):
    """A real ``kill -9`` (SIGKILL to a forked daemon) at an arbitrary
    wall-clock instant — possibly mid-trial, mid-append — must still
    recover to the reference best schedule and trial count.  Measurement
    counts may legitimately shrink (re-run trials hit the EvalCache)."""
    if not hasattr(os, "fork"):
        pytest.skip("requires os.fork")
    config = ServeConfig(slice_trials=1)
    reference = TuningService(tmp_path / "ref", config)
    submit_mixed(reference, trials=6)
    reference.run()
    expected = {
        job_id: (state, trials_done, gflops, point)
        for job_id, (state, trials_done, gflops, point, _) in outcomes(reference).items()
    }

    store = tmp_path / "killed"
    setup = TuningService(store, config)
    submit_mixed(setup, trials=6)
    pid = os.fork()
    if pid == 0:  # child: the daemon
        try:
            TuningService(store, config).run()
        finally:
            os._exit(0)
    time.sleep(0.25)
    os.kill(pid, signal.SIGKILL)
    os.waitpid(pid, 0)

    restarted = TuningService(store, config)
    restarted.run()
    got = {
        job_id: (state, trials_done, gflops, point)
        for job_id, (state, trials_done, gflops, point, _) in outcomes(restarted).items()
    }
    assert got == expected


# -- fair share and overload ----------------------------------------------


def test_flooding_tenant_cannot_starve_others(tmp_path):
    """One tenant submits 100x its quota; the quiet tenant's job still
    starts within a bounded queue wait on the simulated clock, and the
    flood's excess is rejected durably instead of queued."""
    config = ServeConfig(
        slice_trials=2,
        max_queue=64,
        tenants={"flood": TenantPolicy(max_active=4, burst=4.0, rate=0.0)},
    )
    service = TuningService(tmp_path, config)
    flood = [
        service.submit("flood", "gemm", GEMM, "V100", trials=4,
                       seed=seed, method="random-sample")
        for seed in range(100)
    ]
    admitted = [j for j in flood if j.state is JobState.ADMITTED]
    rejected = [j for j in flood if j.state is JobState.REJECTED]
    assert len(admitted) == 4 and len(rejected) == 96
    assert any("quota" in j.reason or "rate limited" in j.reason for j in rejected)

    # Let the flood get a head start, then a quiet tenant arrives.
    service.run(max_slices=2)
    quiet = service.submit("bob", "gemm", {"n": 16, "k": 8, "m": 8}, "V100",
                           trials=4, seed=7, method="random-sample")
    assert quiet.state is JobState.ADMITTED
    service.run()
    jobs = list(service.store.jobs.values())
    assert service.store.jobs[quiet.job_id].state is JobState.DONE
    # Bounded queue wait: no worse than two worst-case slices.
    slice_costs = [
        j.sim_seconds / j.slices for j in jobs if j.slices and j.sim_seconds
    ]
    bound = 2 * max(slice_costs)
    wait = service.store.jobs[quiet.job_id].queue_wait()
    assert wait is not None and wait <= bound


def test_priority_lanes_order_within_a_tenant(tmp_path):
    service = TuningService(tmp_path, ServeConfig(slice_trials=4))
    background = service.submit("t", "gemm", GEMM, "V100", trials=2,
                                seed=0, method="random-sample", priority=2)
    interactive = service.submit("t", "gemm", {"n": 16, "k": 8, "m": 8}, "V100",
                                 trials=2, seed=0, method="random-sample",
                                 priority=0)
    first = service.step()
    assert first == interactive.job_id != background.job_id


# -- admission control -----------------------------------------------------


def test_queue_depth_bound_rejects_overflow(tmp_path):
    service = TuningService(tmp_path, ServeConfig(max_queue=2))
    states = [
        service.submit("t", "gemm", GEMM, "V100", trials=2, seed=s,
                       method="random-sample").state
        for s in range(3)
    ]
    assert states == [JobState.ADMITTED, JobState.ADMITTED, JobState.REJECTED]
    assert "queue full" in list(service.store.jobs.values())[-1].reason


def test_token_bucket_rate_limit_refills_on_simulated_clock(tmp_path):
    policy = TenantPolicy(max_active=10, burst=2.0, rate=1.0)
    service = TuningService(
        tmp_path, ServeConfig(tenants={"t": policy}, max_queue=100)
    )
    a = service.submit("t", "gemm", GEMM, "V100", trials=2, seed=0)
    b = service.submit("t", "gemm", GEMM, "V100", trials=2, seed=1)
    c = service.submit("t", "gemm", GEMM, "V100", trials=2, seed=2)
    assert [a.state, b.state, c.state] == [
        JobState.ADMITTED, JobState.ADMITTED, JobState.REJECTED,
    ]
    assert "rate limited" in c.reason
    service.advance(1.0)  # one simulated second refills one token
    d = service.submit("t", "gemm", GEMM, "V100", trials=2, seed=3)
    assert d.state is JobState.ADMITTED


def test_token_bucket_unit():
    bucket = TokenBucket(rate=2.0, burst=3.0)
    assert [bucket.take(0.0) for _ in range(4)] == [True, True, True, False]
    assert bucket.take(0.5)          # 0.5 s * 2/s = 1 token
    assert not bucket.take(0.5)
    assert not bucket.take(0.4)      # the clock never runs backwards


def test_ttl_expiry_cancels_queued_jobs(tmp_path):
    service = TuningService(tmp_path, ServeConfig())
    job = service.submit("t", "gemm", GEMM, "V100", trials=2,
                         seed=0, ttl_seconds=5.0)
    assert job.state is JobState.ADMITTED
    service.advance(6.0)
    assert job.state is JobState.CANCELLED
    assert "ttl expired" in job.reason
    assert service.step() is None


# -- poisoned jobs ---------------------------------------------------------


def test_poisoned_job_is_quarantined_not_the_service(tmp_path):
    config = ServeConfig(slice_trials=2, max_crashes=3)
    service = TuningService(tmp_path, config)
    victim = service.submit("mallory", "gemm", GEMM, "V100", trials=8,
                            seed=0, method="random-sample")
    healthy = service.submit("alice", "gemm", {"n": 16, "k": 8, "m": 8}, "V100",
                             trials=4, seed=1, method="random-sample")
    service.chaos = ServeChaos(
        crash_slices={victim.job_id: (0, 1, 2)}
    )
    service.run()
    assert victim.state is JobState.QUARANTINED
    assert victim.crashes == 3
    assert "quarantined after 3 crashes" in victim.reason
    assert healthy.state is JobState.DONE  # the service survived

    # The quarantine is durable: a restarted daemon never reruns it.
    restarted = TuningService(tmp_path, config)
    assert restarted.store.jobs[victim.job_id].state is JobState.QUARANTINED
    assert restarted.step() is None


def test_job_crash_below_threshold_retries_and_completes(tmp_path):
    service = TuningService(tmp_path, ServeConfig(slice_trials=2, max_crashes=3))
    job = service.submit("t", "gemm", GEMM, "V100", trials=4,
                         seed=0, method="random-sample")
    service.chaos = ServeChaos(crash_slices={job.job_id: (0,)})
    service.run()
    assert job.state is JobState.DONE
    assert job.crashes == 1


# -- degraded mode and drain ----------------------------------------------


def test_degraded_pool_serves_lookups_and_preserves_queue(tmp_path):
    service = TuningService(tmp_path, ServeConfig(slice_trials=2))
    warm = service.submit("t", "gemm", GEMM, "V100", trials=2,
                          seed=0, method="random-sample")
    service.run()
    assert warm.state is JobState.DONE

    queued = service.submit("t", "gemm", {"n": 16, "k": 8, "m": 8}, "V100",
                            trials=2, seed=0, method="random-sample")
    service.set_pool_broken(True)
    assert service.degraded()
    assert service.run() == 0                  # no slices while broken
    assert queued.state is JobState.ADMITTED   # queue intact, not dropped
    hit = service.lookup("gemm", GEMM, "V100")
    assert hit is not None and hit.gflops > 0  # reads survive a dead pool

    service.set_pool_broken(False)
    service.run()
    assert queued.state is JobState.DONE


def test_drain_stops_admission_and_slicing_durably(tmp_path):
    service = TuningService(tmp_path, ServeConfig(slice_trials=2))
    job = service.submit("t", "gemm", GEMM, "V100", trials=4,
                         seed=0, method="random-sample")
    service.run(max_slices=1)
    assert job.state is JobState.PREEMPTED
    service.drain()
    rejected = service.submit("t", "gemm", GEMM, "V100", trials=2, seed=1)
    assert rejected.state is JobState.REJECTED
    assert "draining" in rejected.reason
    assert service.run() == 0
    service.shutdown()

    # The preempted work is durable: a fresh daemon finishes it.
    restarted = TuningService(tmp_path, ServeConfig(slice_trials=2))
    restarted.run()
    assert restarted.store.jobs[job.job_id].state is JobState.DONE


# -- shared EvalCache / RecordBook across preemption and resume ------------


def test_two_jobs_share_cache_and_records_across_preemption(tmp_path):
    """Two tenants tune the same workload through one store directory:
    interleaved, preempted and resumed slices append to one EvalCache
    and one RecordBook under the fcntl locks — no lost records, no
    duplicated cache entries, and the second job is served mostly from
    the first job's measurements."""
    service = TuningService(tmp_path, ServeConfig(slice_trials=1))
    first = service.submit("alice", "gemm", GEMM, "V100", trials=4,
                           seed=0, method="random-sample")
    second = service.submit("bob", "gemm", GEMM, "V100", trials=4,
                            seed=0, method="random-sample")
    service.run()
    assert first.state is JobState.DONE and second.state is JobState.DONE
    # Interleaving really happened: both jobs were preempted mid-run.
    assert first.slices > 1 and second.slices > 1
    # Identical seed + workload: the second job re-measures nothing.
    assert second.num_measurements < first.num_measurements

    # No duplicated EvalCache entries despite interleaved appends.
    cache_path = tmp_path / "evalcache" / "evalcache.jsonl"
    entries = [
        (e["sig"], tuple(e["point"]))
        for e in map(json.loads, cache_path.read_text().splitlines())
    ]
    assert len(entries) == len(set(entries))

    # No lost records: both completions reached the shared book.
    records_path = tmp_path / "records.jsonl"
    lines = [
        json.loads(line) for line in records_path.read_text().splitlines()
        if "key" in json.loads(line)
    ]
    assert len(lines) == 2
    book = RecordBook(records_path)
    best = book.best("gemm[k=8,m=8,n=8]@V100")
    assert best is not None
    assert best.gflops == max(first.best_gflops, second.best_gflops)


# -- RecordBook signature index (satellite) --------------------------------


def _config():
    return NodeConfig(spatial_factors=((2, 4),), reduce_factors=((1, 8),))


@settings(max_examples=30, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 3),
              st.floats(0.1, 100.0, allow_nan=False)),
    max_size=25,
))
def test_signature_index_matches_full_scan(tmp_path_factory, events):
    """The O(1) best-per-signature index must agree with a brute-force
    scan of the JSONL file, both live (maintained on append) and after
    a reload (rebuilt on load)."""
    path = tmp_path_factory.mktemp("records") / "records.jsonl"
    book = RecordBook(path)
    for key_i, sig_i, gflops in events:
        book.add(TuningRecord(
            key=f"op{key_i}@dev", config=_config(), gflops=gflops,
            signature=f"sig{sig_i}" if sig_i else "",  # sig0 -> unsigned
        ))

    def scan_best(records_path, signature):
        best = None
        if not records_path.exists():
            return None
        for line in records_path.read_text().splitlines():
            record = TuningRecord.from_json(line)
            if record.signature != signature:
                continue
            if best is None or record.gflops > best.gflops:
                best = record
        return best

    reloaded = RecordBook(path)
    for sig_i in range(4):
        signature = f"sig{sig_i}" if sig_i else ""
        expected = scan_best(path, signature) if signature else None
        for instance in (book, reloaded):
            got = instance.best_for_signature(signature)
            if expected is None:
                assert got is None
            else:
                assert got is not None
                assert got.gflops == expected.gflops
                assert got.key == expected.key


def test_tune_workload_stamps_signature(tmp_path):
    book = RecordBook(tmp_path / "records.jsonl")
    workload = Workload("GMM", "tiny", {"n": 8, "k": 8, "m": 8})
    result = tune_workload(workload, V100, records=book, trials=2,
                           method="random-sample", seed=0)
    assert result.found
    key = "GMM[k=8,m=8,n=8]@V100"
    record = book.best(key)
    assert record is not None and record.signature
    assert book.best_for_signature(record.signature) is record
    # The signature index survives a reload too.
    assert RecordBook(tmp_path / "records.jsonl").best_for_signature(
        record.signature
    ).gflops == record.gflops


# -- CLI exit codes --------------------------------------------------------


def test_cli_serve_exit_codes(tmp_path, capsys):
    from repro.__main__ import main

    store = str(tmp_path / "svc")
    missing = str(tmp_path / "nowhere")
    submit = ["submit", "--store", store, "--tenant", "t", "--op", "gemm",
              "--n", "8", "--k", "8", "--m", "8", "--trials", "2",
              "--method", "random-sample"]
    assert main(["status", "--store", missing]) == 1
    assert main(["serve", "--store", missing]) == 1
    assert main(["lookup", "--store", missing, "--op", "gemm"]) == 1
    assert main(submit) == 0
    assert main(["lookup", "--store", store, "--op", "gemm",
                 "--n", "8", "--k", "8", "--m", "8"]) == 1   # miss
    assert main(["serve", "--store", store]) == 0
    assert main(["lookup", "--store", store, "--op", "gemm",
                 "--n", "8", "--k", "8", "--m", "8"]) == 0   # hit
    assert main(["status", "--store", store]) == 0
    # Admission rejection is a nonzero exit.
    assert main(submit + ["--max-queue", "0"]) == 1
    capsys.readouterr()


def test_cli_tune_not_found_exits_nonzero(capsys, monkeypatch):
    import repro.__main__ as cli

    class _Tuning:
        num_retries = num_quarantined = quarantine_hits = num_failures = 0
        lint_rejects = num_screened = 0
        cluster = surrogate = throughput = None

    class _Empty:
        found = False
        tuning = _Tuning()

        @staticmethod
        def summary():
            return "no schedule"

    monkeypatch.setattr(cli, "optimize", lambda *a, **k: _Empty())
    assert cli.main(["gemm", "--trials", "1"]) == 1
    assert "no valid schedule found" in capsys.readouterr().out


def test_cli_serve_reports_quarantined_jobs_nonzero(tmp_path, capsys):
    """A serve pass that leaves a job quarantined must exit nonzero."""
    from repro.__main__ import main

    store = tmp_path / "svc"
    service = TuningService(store, ServeConfig(slice_trials=2, max_crashes=2))
    job = service.submit("t", "gemm", GEMM, "V100", trials=4,
                         seed=0, method="random-sample")
    service.chaos = ServeChaos(crash_slices={job.job_id: (0, 1)})
    service.run()
    assert job.state is JobState.QUARANTINED
    assert main(["serve", "--store", str(store)]) == 1
    capsys.readouterr()


def test_cli_selfcheck_serve_passes(capsys):
    from repro.__main__ import main

    assert main(["selfcheck", "--serve", "--trials", "3"]) == 0
    out = capsys.readouterr().out
    assert "serve selfcheck passed" in out
