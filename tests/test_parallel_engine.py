"""Batched parallel evaluation engine and point canonicalization
(ISSUE #2): canonical-equivalence soundness, workers=1 bit-identity with
the serial path, simulated-clock overlap, dedup, quarantine interaction,
resume, and the real fork pool (marked slow)."""

import numpy as np
import pytest

from repro.explore import (
    FlexTensorTuner,
    PMethodTuner,
    RandomSampleTuner,
    RandomWalkTuner,
)
from repro.model import DEVICES, V100, XEON_E5_2699V4
from repro.ops import conv2d_compute, gemm_compute
from repro.runtime import (
    BatchEngine,
    Evaluator,
    FaultInjector,
    MeasureConfig,
)
from repro.schedule import REORDER_REDUCE_INNER, REORDER_SPATIAL_INNER
from repro.space import Point, build_space, heuristic_seed_points

ALL_TUNERS = [FlexTensorTuner, PMethodTuner, RandomWalkTuner, RandomSampleTuner]


def gemm_evaluator(device=V100, **kwargs):
    return Evaluator(gemm_compute(8, 8, 8, name="g"), device, **kwargs)


def smoke_evaluator(**kwargs):
    out = conv2d_compute(1, 8, 8, 8, 16, 3, padding=1, name="c")
    return Evaluator(out, V100, **kwargs)


def distinct_points(ev, count, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    while len(points) < count:
        p = ev.space.random_point(rng)
        if p not in points:
            points.append(p)
    return points


def knob_index(space, name):
    return [k.name for k in space.knobs].index(name)


class TestCanonicalPoint:
    def test_point_helper_delegates_to_space(self):
        ev = gemm_evaluator()
        point = Point(distinct_points(ev, 1)[0])
        assert point.canonical(ev.space) == ev.space.canonical_point(point)

    def test_point_is_a_tuple(self):
        p = Point((1, 2, 3))
        assert p == (1, 2, 3)
        assert hash(p) == hash((1, 2, 3))
        assert isinstance(p, tuple)

    def test_nonzero_unroll_depths_collapse(self):
        space = gemm_evaluator().space
        ui = knob_index(space, "unroll")
        base = list(heuristic_seed_points(space, 1, np.random.default_rng(0))[0])
        variants = set()
        for choice in range(1, len(space.knob("unroll").choices)):
            base[ui] = choice
            variants.add(space.canonical_point(tuple(base)))
        assert len(variants) == 1
        base[ui] = 0  # unroll off is its own class
        assert space.canonical_point(tuple(base)) not in variants

    def test_unroll_equivalence_is_sound_under_the_model(self):
        # The rule exists because every model reads unroll_depth only for
        # truthiness; this guard fails if a model ever starts reading the
        # depth itself.
        for device in (V100, XEON_E5_2699V4):
            ev = gemm_evaluator(device=device)
            ui = knob_index(ev.space, "unroll")
            point = list(heuristic_seed_points(ev.space, 1, np.random.default_rng(0))[0])
            estimates = set()
            for choice in range(1, len(ev.space.knob("unroll").choices)):
                point[ui] = choice
                estimates.add(ev.model.estimate_seconds(ev.lower_point(tuple(point))))
            assert len(estimates) == 1

    def test_gpu_vectorize_dead_when_reduce_innermost(self):
        space = gemm_evaluator().space
        vi = knob_index(space, "vectorize")
        ri = knob_index(space, "reorder")
        point = list(heuristic_seed_points(space, 1, np.random.default_rng(0))[0])
        point[ri] = space.knob("reorder").index_of(REORDER_REDUCE_INNER)
        on, off = list(point), list(point)
        on[vi] = space.knob("vectorize").index_of(True)
        off[vi] = space.knob("vectorize").index_of(False)
        assert space.canonical_point(tuple(on)) == space.canonical_point(tuple(off))
        # ... and sound: both lower to identically-costed schedules.
        ev = gemm_evaluator()
        assert ev.model.estimate_seconds(ev.lower_point(tuple(on))) == \
            ev.model.estimate_seconds(ev.lower_point(tuple(off)))

    def test_gpu_vectorize_live_when_spatial_innermost(self):
        space = gemm_evaluator().space
        vi = knob_index(space, "vectorize")
        ri = knob_index(space, "reorder")
        point = list(heuristic_seed_points(space, 1, np.random.default_rng(0))[0])
        point[ri] = space.knob("reorder").index_of(REORDER_SPATIAL_INNER)
        on, off = list(point), list(point)
        on[vi] = space.knob("vectorize").index_of(True)
        off[vi] = space.knob("vectorize").index_of(False)
        assert space.canonical_point(tuple(on)) != space.canonical_point(tuple(off))

    def test_canonicalization_is_idempotent(self):
        space = smoke_evaluator().space
        rng = np.random.default_rng(3)
        for _ in range(50):
            canon = space.canonical_point(space.random_point(rng))
            assert space.canonical_point(canon) == canon

    def test_fpga_space_is_identity(self):
        ev = Evaluator(gemm_compute(8, 8, 8, name="g"), DEVICES["VU9P"])
        rng = np.random.default_rng(0)
        for _ in range(10):
            p = ev.space.random_point(rng)
            assert ev.space.canonical_point(p) == p

    def test_engine_serves_equivalent_point_without_remeasuring(self):
        ev = gemm_evaluator()
        engine = BatchEngine(ev, workers=2, use_pool=False)
        space = ev.space
        ui = knob_index(space, "unroll")
        a = list(heuristic_seed_points(space, 1, np.random.default_rng(0))[0])
        a[ui] = 1
        b = list(a)
        b[ui] = 2  # different unroll depth, same equivalence class
        engine.evaluate_batch([tuple(a)])
        before = ev.num_measurements
        (perf,) = engine.evaluate_batch([tuple(b)])
        assert ev.num_measurements == before  # served from the canon index
        assert perf == ev.cache[tuple(a)]
        assert ev.num_canon_hits == 1


class TestWorkersOneBitIdentity:
    """workers=1 must be byte-for-byte the serial path, faults included."""

    def faulty_evaluator(self):
        return Evaluator(
            gemm_compute(4, 4, 4, name="g"), V100,
            fault_injector=FaultInjector(
                transient_error_rate=0.3, hang_rate=0.05, seed=1
            ),
            measure_config=MeasureConfig(timeout_seconds=0.5),
        )

    @pytest.mark.parametrize("tuner_cls", ALL_TUNERS)
    def test_tune_results_identical(self, tuner_cls):
        plain = tuner_cls(self.faulty_evaluator(), seed=0).tune(4, num_seeds=3)
        ev = self.faulty_evaluator()
        engine = BatchEngine(ev, workers=1)
        engined = tuner_cls(ev, seed=0, engine=engine).tune(4, num_seeds=3)
        assert engined.best_point == plain.best_point
        assert engined.best_performance == plain.best_performance
        assert engined.curve == plain.curve
        assert engined.status_counts == plain.status_counts
        assert engined.exploration_seconds == plain.exploration_seconds
        assert engined.throughput is not None

    def test_workers1_resume_bit_identical(self, tmp_path):
        def run(checkpoint=None, resume=False, trials=8):
            ev = self.faulty_evaluator()
            tuner = FlexTensorTuner(ev, seed=7, engine=BatchEngine(ev, workers=1))
            return tuner.tune(
                trials, num_seeds=3, checkpoint=checkpoint, resume=resume
            )

        full = run()
        path = tmp_path / "run.ckpt"
        run(checkpoint=path, trials=6)           # killed after 6 trials
        resumed = run(checkpoint=path, resume=True)
        assert resumed.best_point == full.best_point
        assert resumed.curve == full.curve
        assert resumed.status_counts == full.status_counts
        assert resumed.exploration_seconds == full.exploration_seconds


class TestBatchEngine:
    def test_parallel_matches_serial_values(self):
        points = distinct_points(gemm_evaluator(), 8)
        ev_s = gemm_evaluator()
        serial = BatchEngine(ev_s, workers=1).evaluate_batch(points)
        ev_p = gemm_evaluator()
        parallel = BatchEngine(ev_p, workers=4, use_pool=False).evaluate_batch(points)
        assert serial == parallel
        assert ev_s.num_measurements == ev_p.num_measurements

    def test_simulated_clock_overlaps(self):
        points = distinct_points(gemm_evaluator(), 8)
        ev_s = gemm_evaluator()
        BatchEngine(ev_s, workers=1).evaluate_batch(points)
        ev_p = gemm_evaluator()
        BatchEngine(ev_p, workers=4, use_pool=False).evaluate_batch(points)
        # 8 equal-cost jobs on 4 virtual workers: half the span of 2-deep
        # chains vs. an 8-deep serial chain.
        assert ev_p.clock < ev_s.clock / 2
        assert ev_p.clock > 0

    def test_parallel_is_deterministic(self):
        points = distinct_points(gemm_evaluator(), 10, seed=5)

        def run():
            ev = gemm_evaluator(
                fault_injector=FaultInjector(transient_error_rate=0.3, seed=2)
            )
            engine = BatchEngine(ev, workers=4, use_pool=False)
            values = engine.evaluate_batch(points)
            return values, ev.clock, [r.to_dict() for r in ev.records]

        assert run() == run()

    def test_records_have_monotone_clocks(self):
        ev = gemm_evaluator()
        BatchEngine(ev, workers=4, use_pool=False).evaluate_batch(
            distinct_points(ev, 9)
        )
        clocks = [r.clock for r in ev.records]
        assert clocks == sorted(clocks)
        assert ev.clock >= clocks[-1]

    def test_duplicate_points_measured_once(self):
        ev = gemm_evaluator()
        engine = BatchEngine(ev, workers=4, use_pool=False)
        point = distinct_points(ev, 1)[0]
        values = engine.evaluate_batch([point, point, point])
        assert ev.num_measurements == 1
        assert len(set(values)) == 1
        assert engine.num_deduped == 2

    def test_quarantined_point_served_free_in_batch(self):
        ev = gemm_evaluator(
            fault_injector=FaultInjector(transient_error_rate=1.0),
            measure_config=MeasureConfig(max_retries=0, quarantine_threshold=1),
        )
        point = distinct_points(ev, 1)[0]
        ev.evaluate(point)                    # fails once -> quarantined
        assert point in ev.quarantine
        engine = BatchEngine(ev, workers=4, use_pool=False)
        clock = ev.clock
        values = engine.evaluate_batch([point])
        assert values == [0.0]
        assert ev.clock == clock              # no charge, no measurement
        assert ev.num_quarantine_hits == 1

    def test_retry_billing_matches_serial_accounting(self):
        # One all-transient point: the parallel path must charge exactly
        # the serial retry arithmetic (compile cost + exponential backoff
        # per retry, charge-capped final attempt).
        def make():
            return gemm_evaluator(
                fault_injector=FaultInjector(transient_error_rate=1.0),
                measure_config=MeasureConfig(
                    max_retries=2, backoff_seconds=0.1, quarantine_threshold=99
                ),
            )

        point = distinct_points(make(), 1)[0]
        ev_serial = make()
        ev_serial.measure(point)
        ev_parallel = make()
        BatchEngine(ev_parallel, workers=4, use_pool=False).evaluate_batch([point])
        assert ev_parallel.clock == pytest.approx(ev_serial.clock)
        assert ev_parallel.records[-1].attempts == ev_serial.records[-1].attempts

    @pytest.mark.parametrize("tuner_cls", ALL_TUNERS)
    def test_parallel_tuners_complete_and_find(self, tuner_cls):
        ev = smoke_evaluator()
        engine = BatchEngine(ev, workers=4, use_pool=False)
        result = tuner_cls(ev, seed=0, engine=engine).tune(6, num_seeds=3)
        assert result.found
        assert result.num_measurements == sum(result.status_counts.values())
        assert len(result.curve) == result.num_measurements
        assert result.throughput["workers"] == 4
        assert result.throughput["points_submitted"] > 0

    def test_parallel_resume_is_cache_consistent(self, tmp_path):
        def run(checkpoint=None, resume=False, trials=6):
            ev = smoke_evaluator(
                fault_injector=FaultInjector(transient_error_rate=0.2, seed=3)
            )
            engine = BatchEngine(ev, workers=4, use_pool=False)
            tuner = FlexTensorTuner(ev, seed=1, engine=engine)
            return tuner.tune(
                trials, num_seeds=3, checkpoint=checkpoint, resume=resume
            )

        full = run()
        path = tmp_path / "par.ckpt"
        run(checkpoint=path, trials=3)
        resumed = run(checkpoint=path, resume=True)
        # Parallel resume restores the exact mid-run state, so the
        # completed run is identical to the uninterrupted one — in
        # particular no measurement is billed twice.
        assert resumed.curve == full.curve
        assert resumed.status_counts == full.status_counts
        assert resumed.exploration_seconds == full.exploration_seconds

    def test_pool_disabled_on_workers_one(self):
        engine = BatchEngine(gemm_evaluator(), workers=1, use_pool=True)
        assert not engine.use_pool


@pytest.mark.slow
class TestRealPool:
    def test_fork_pool_matches_in_process(self):
        points = distinct_points(gemm_evaluator(), 8)
        ev_inproc = gemm_evaluator()
        expected = BatchEngine(ev_inproc, workers=2, use_pool=False).evaluate_batch(points)
        ev_pool = gemm_evaluator()
        with BatchEngine(ev_pool, workers=2, use_pool=True) as engine:
            got = engine.evaluate_batch(points)
        assert got == expected
        assert ev_pool.clock == ev_inproc.clock
        assert [r.to_dict() for r in ev_pool.records] == [
            r.to_dict() for r in ev_inproc.records
        ]

    def test_fork_pool_with_fault_injection(self):
        def make():
            return gemm_evaluator(
                fault_injector=FaultInjector(
                    transient_error_rate=0.4, jitter=0.1, seed=9
                )
            )

        points = distinct_points(make(), 6)
        ev_a, ev_b = make(), make()
        with BatchEngine(ev_a, workers=2, use_pool=True) as engine:
            pooled = engine.evaluate_batch(points)
        inproc = BatchEngine(ev_b, workers=2, use_pool=False).evaluate_batch(points)
        assert pooled == inproc
        assert ev_a.status_counts == ev_b.status_counts
