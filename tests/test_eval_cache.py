"""Persistent two-level evaluation cache (ISSUE #2): hit/miss
accounting, on-disk round-trip, corruption tolerance, cross-run warm
starts, and key isolation between workloads/devices/fault setups."""

import multiprocessing
import time

import numpy as np
import pytest

from repro.explore import FlexTensorTuner
from repro.model import DEVICES, V100
from repro.ops import conv2d_compute, gemm_compute
from repro.runtime import (
    BatchEngine,
    EvalCache,
    Evaluator,
    FaultInjector,
    MeasureConfig,
)


def gemm_evaluator(**kwargs):
    return Evaluator(gemm_compute(8, 8, 8, name="g"), V100, **kwargs)


def distinct_points(ev, count, seed=0):
    rng = np.random.default_rng(seed)
    points = []
    while len(points) < count:
        p = ev.space.random_point(rng)
        if p not in points:
            points.append(p)
    return points


class TestAccounting:
    def test_hit_miss_counters(self, tmp_path):
        cache = EvalCache(tmp_path)
        assert cache.get("sig", (1, 2)) is None
        cache.put("sig", (1, 2), 5.0, "ok")
        assert cache.get("sig", (1, 2)) == (5.0, "ok")
        assert cache.get("sig", (9, 9)) is None
        assert (cache.hits, cache.misses, cache.stores) == (1, 2, 1)
        assert cache.hit_rate == pytest.approx(1 / 3)
        assert cache.stats()["entries"] == 1

    def test_memory_only_mode(self):
        cache = EvalCache(None)
        cache.put("sig", (1,), 2.0, "ok")
        assert cache.get("sig", (1,)) == (2.0, "ok")
        assert cache.path is None

    def test_lru_bound_respects_disk_index(self, tmp_path):
        cache = EvalCache(tmp_path, max_memory_entries=2)
        for i in range(5):
            cache.put("sig", (i,), float(i), "ok")
        assert len(cache._memory) == 2
        # Evicted entries still resolve through the durable index.
        assert cache.get("sig", (0,)) == (0.0, "ok")
        assert cache.disk_hits == 1
        reloaded = EvalCache(tmp_path, max_memory_entries=2)
        assert reloaded.get("sig", (0,)) == (0.0, "ok")
        assert reloaded.disk_hits == 1


class TestDiskRoundTrip:
    def test_entries_survive_process_restart(self, tmp_path):
        first = EvalCache(tmp_path)
        first.put("sig", (3, 1, 4), 2.5, "ok")
        first.put("sig", (2, 7), 0.0, "compile_error")
        second = EvalCache(tmp_path)
        assert second.get("sig", (3, 1, 4)) == (2.5, "ok")
        assert second.get("sig", (2, 7)) == (0.0, "compile_error")
        assert len(second) == 2

    def test_warm_run_serves_measured_points_for_free(self, tmp_path):
        points = distinct_points(gemm_evaluator(), 10)
        cold = gemm_evaluator(eval_cache=EvalCache(tmp_path))
        cold_values = [cold.evaluate(p) for p in points]
        assert cold.num_measurements == len(points)
        warm = gemm_evaluator(eval_cache=EvalCache(tmp_path))
        clock = warm.clock
        warm_values = [warm.evaluate(p) for p in points]
        assert warm_values == cold_values
        assert warm.num_measurements == 0      # everything from disk
        assert warm.clock == clock             # disk hits are free
        assert warm.num_disk_hits == len(points)

    def test_warm_tune_hit_rate_at_least_half(self, tmp_path):
        def run():
            ev = gemm_evaluator(eval_cache=EvalCache(tmp_path))
            engine = BatchEngine(ev, workers=1)
            result = FlexTensorTuner(ev, seed=0, engine=engine).tune(5, num_seeds=3)
            return result
        run()
        warm = run()
        # Same seed, same trajectory: the warm run re-requests the same
        # points and the persistent cache serves them.
        assert warm.throughput["cache_hit_rate"] >= 0.5
        assert warm.num_measurements == 0

    def test_permanent_failures_cached_across_runs(self, tmp_path):
        def make():
            return gemm_evaluator(
                eval_cache=EvalCache(tmp_path),
                fault_injector=FaultInjector(compile_error_rate=1.0),
            )
        point = distinct_points(gemm_evaluator(), 1)[0]
        cold = make()
        assert cold.evaluate(point) == 0.0
        assert cold.num_measurements == 1
        warm = make()
        assert warm.evaluate(point) == 0.0
        assert warm.num_measurements == 0     # failure came from disk

    def test_transient_failures_not_cached(self, tmp_path):
        ev = gemm_evaluator(
            eval_cache=EvalCache(tmp_path),
            fault_injector=FaultInjector(transient_error_rate=1.0),
            measure_config=MeasureConfig(max_retries=0, quarantine_threshold=99),
        )
        point = distinct_points(gemm_evaluator(), 1)[0]
        ev.evaluate(point)
        assert len(EvalCache(tmp_path)) == 0


class TestKeyIsolation:
    def test_different_shapes_do_not_collide(self, tmp_path):
        a = Evaluator(gemm_compute(8, 8, 8, name="g"), V100,
                      eval_cache=EvalCache(tmp_path))
        b = Evaluator(gemm_compute(16, 16, 16, name="g"), V100,
                      eval_cache=EvalCache(tmp_path))
        assert a.op_signature() != b.op_signature()

    def test_different_devices_do_not_collide(self, tmp_path):
        a = gemm_evaluator(eval_cache=EvalCache(tmp_path))
        b = Evaluator(gemm_compute(8, 8, 8, name="g"), DEVICES["TitanX"],
                      eval_cache=EvalCache(tmp_path))
        assert a.op_signature() != b.op_signature()

    def test_fault_configuration_is_part_of_the_key(self):
        plain = gemm_evaluator()
        faulty = gemm_evaluator(fault_injector=FaultInjector(jitter=0.2, seed=4))
        assert plain.op_signature() != faulty.op_signature()

    def test_cache_key_is_canonical(self, tmp_path):
        # An equivalent point written under its canonical key is served
        # to every member of the class on the next run.
        ev = gemm_evaluator(eval_cache=EvalCache(tmp_path))
        names = [k.name for k in ev.space.knobs]
        ui = names.index("unroll")
        point = list(distinct_points(ev, 1)[0])
        point[ui] = 1
        ev.evaluate(tuple(point))
        sibling = list(point)
        sibling[ui] = 3
        warm = gemm_evaluator(eval_cache=EvalCache(tmp_path))
        warm.evaluate(tuple(sibling))
        assert warm.num_measurements == 0
        assert warm.num_disk_hits == 1


class TestCorruptionTolerance:
    def test_truncated_line_skipped_not_fatal(self, tmp_path):
        cache = EvalCache(tmp_path)
        cache.put("sig", (1, 2), 5.0, "ok")
        cache.put("sig", (3, 4), 7.0, "ok")
        path = cache.path
        text = path.read_text()
        lines = text.splitlines()
        path.write_text(
            lines[0] + "\n"
            + "{not json at all\n"
            + '{"v": 1, "sig": "missing-fields"}\n'
            + lines[1][: len(lines[1]) // 2]      # truncated by a kill
        )
        with pytest.warns(UserWarning, match="corrupt cache entry"):
            reloaded = EvalCache(tmp_path)
        assert reloaded.get("sig", (1, 2)) == (5.0, "ok")
        assert reloaded.get("sig", (3, 4)) is None
        assert len(reloaded) == 1

    def test_unknown_version_skipped(self, tmp_path):
        cache = EvalCache(tmp_path)
        cache.path.write_text(
            '{"v": 99, "sig": "s", "point": [1], "perf": 1.0, "status": "ok"}\n'
        )
        with pytest.warns(UserWarning, match="corrupt cache entry"):
            reloaded = EvalCache(tmp_path)
        assert len(reloaded) == 0

    def test_empty_directory_is_fine(self, tmp_path):
        assert len(EvalCache(tmp_path / "fresh")) == 0
        assert (tmp_path / "fresh").is_dir()


class TestWorkersOneDeterminismWithCache:
    def test_cold_cache_runs_are_deterministic(self, tmp_path):
        # Attaching a cold persistent cache changes *accounting*
        # (equivalent points are served, not re-measured — the deliberate
        # ISSUE #2 change) but the run stays fully deterministic.
        def run(directory):
            ev = gemm_evaluator(eval_cache=EvalCache(directory))
            result = FlexTensorTuner(
                ev, seed=0, engine=BatchEngine(ev, workers=1)
            ).tune(4, num_seeds=3)
            return (
                result.best_point, result.best_performance, result.curve,
                result.status_counts, result.exploration_seconds,
            )

        assert run(tmp_path / "a") == run(tmp_path / "b")

    def test_cold_cache_values_match_serial_per_point(self, tmp_path):
        # Random sampling submits the same points regardless of what the
        # evaluator answers, so every served value can be compared 1:1
        # with the measured serial value: canonical serving must never
        # change a performance number, only skip redundant measurements.
        from repro.explore import RandomSampleTuner

        plain_tuner = RandomSampleTuner(gemm_evaluator(), seed=0)
        plain_tuner.tune(6, num_seeds=3)
        ev = gemm_evaluator(eval_cache=EvalCache(tmp_path))
        cached_tuner = RandomSampleTuner(
            ev, seed=0, engine=BatchEngine(ev, workers=1)
        )
        cached_tuner.tune(6, num_seeds=3)
        assert cached_tuner.evaluated == plain_tuner.evaluated
        assert ev.num_measurements <= plain_tuner.evaluator.num_measurements


# -- multi-process append safety (ISSUE #5 satellite) ----------------------

def _append_cache_entries(directory, process_tag, count):
    cache = EvalCache(directory)
    for i in range(count):
        cache.put(f"sig-{process_tag}", (process_tag, i), float(i), "ok")


def _append_locked_pairs(path, process_tag, count):
    # Two separate write() calls inside one lock hold: without the
    # advisory flock these could interleave with another process's pair.
    from repro.runtime.locking import locked

    for i in range(count):
        with open(path, "a") as f, locked(f):
            f.write(f"begin {process_tag} {i}\n")
            f.flush()
            time.sleep(0.001)
            f.write(f"end {process_tag} {i}\n")
            f.flush()


def _append_metrics(path, process_tag, count):
    from repro.runtime import RecordBook

    book = RecordBook(path)
    for i in range(count):
        book.add_metrics({"tag": process_tag, "i": i})


@pytest.mark.slow
class TestConcurrentWriters:
    def spawn(self, target, args_list):
        procs = [
            multiprocessing.Process(target=target, args=args) for args in args_list
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=60)
        assert all(p.exitcode == 0 for p in procs)

    def test_two_processes_interleave_cache_appends_cleanly(self, tmp_path):
        self.spawn(
            _append_cache_entries, [(tmp_path, 1, 100), (tmp_path, 2, 100)]
        )
        # Every line parses and every entry from both writers survived.
        merged = EvalCache(tmp_path)
        assert len(merged) == 200
        for tag in (1, 2):
            for i in range(100):
                assert merged.get(f"sig-{tag}", (tag, i)) == (float(i), "ok")

    def test_lock_holds_across_multiple_writes(self, tmp_path):
        path = tmp_path / "pairs.log"
        self.spawn(
            _append_locked_pairs, [(path, 1, 30), (path, 2, 30)]
        )
        lines = path.read_text().splitlines()
        assert len(lines) == 120
        # Each begin must be immediately followed by its matching end:
        # the lock was held across both writes, so pairs never interleave.
        for begin, end in zip(lines[0::2], lines[1::2]):
            assert begin.split() == ["begin", *end.split()[1:]]
            assert end.startswith("end")

    def test_two_processes_interleave_record_metrics_cleanly(self, tmp_path):
        path = tmp_path / "records.jsonl"
        self.spawn(_append_metrics, [(path, 1, 100), (path, 2, 100)])
        from repro.runtime import RecordBook

        book = RecordBook(path)
        metrics = book.metrics()
        assert len(metrics) == 200
        for tag in (1, 2):
            seen = [m["i"] for m in metrics if m["tag"] == tag]
            assert sorted(seen) == list(range(100))
