"""Property-based tests on schedule-space geometry and execution paths."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.codegen import execute_scheduled, random_inputs, run_generated
from repro.ops import conv1d_compute, conv1d_reference, gemm_compute, gemm_reference
from repro.schedule import lower
from repro.space import build_space


def _space(target="gpu"):
    out = gemm_compute(12, 8, 6, name="g")
    return out, build_space(out, target)


class TestNeighborhoodGeometry:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_neighbors_preserve_products(self, seed):
        """A move changes exactly one knob and, for split knobs, keeps the
        product of factors equal to the loop extent."""
        out, space = _space()
        rng = np.random.default_rng(seed)
        p = space.random_point(rng)
        for _, q in space.neighbors(p)[:12]:
            changed = [i for i in range(len(p)) if p[i] != q[i]]
            assert len(changed) == 1
            config = space.decode(q)
            for axis, factors in zip(space.op.axes, config.spatial_factors):
                product = 1
                for f in factors:
                    product *= f
                assert product == axis.extent

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_power_of_two_moves_reversible(self, seed):
        """Moves that shift a factor of 2 can be undone by another move
        (the lattice is symmetric on the 2-adic component)."""
        from repro.space import move_factor

        rng = np.random.default_rng(seed)
        extent = int(rng.choice([8, 16, 32, 64]))
        from repro.space import factorizations

        choices = factorizations(extent, 3)
        factors = choices[int(rng.integers(len(choices)))]
        for src in range(3):
            for dst in range(3):
                if src == dst or factors[src] == 1:
                    continue
                moved = move_factor(factors, src, dst)
                assert moved is not None
                restored = move_factor(moved, dst, src)
                assert restored == factors  # pure powers of two: symmetric

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_neighbors_decode_to_valid_configs(self, seed):
        out, space = _space()
        rng = np.random.default_rng(seed)
        p = space.random_point(rng)
        for _, q in space.neighbors(p)[:8]:
            lower(out, space.decode(q), "gpu")  # must not raise

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_features_differ_between_neighbors(self, seed):
        out, space = _space()
        rng = np.random.default_rng(seed)
        p = space.random_point(rng)
        fp = space.features(p)
        for _, q in space.neighbors(p)[:5]:
            fq = space.features(q)
            assert fp.shape == fq.shape
            assert not np.allclose(fp, fq)


class TestExecutionPathsAgree:
    """Interpreter, generated Python, and numpy reference are one
    semantics: any random schedule must produce identical numbers."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_gemm_three_way_agreement(self, seed):
        out = gemm_compute(6, 8, 4, name="g")
        space = build_space(out, "gpu")
        rng = np.random.default_rng(seed)
        point = space.random_point(rng)
        scheduled = lower(out, space.decode(point), "gpu")
        inputs = random_inputs(out, seed=seed)
        expected = gemm_reference(inputs["g_A"], inputs["g_B"])
        interp = execute_scheduled(scheduled, inputs)
        generated = run_generated(scheduled, inputs)
        np.testing.assert_allclose(interp, expected, atol=1e-9)
        np.testing.assert_allclose(generated, expected, atol=1e-9)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_conv1d_with_inlined_padding(self, seed):
        out = conv1d_compute(1, 2, 8, 3, 3, stride=1, padding=1, name="c")
        space = build_space(out, "cpu")
        rng = np.random.default_rng(seed)
        point = space.random_point(rng)
        scheduled = lower(out, space.decode(point), "cpu")
        inputs = random_inputs(out, seed=seed)
        expected = conv1d_reference(inputs["c_I"], inputs["c_W"], 1, 1)
        np.testing.assert_allclose(
            execute_scheduled(scheduled, inputs), expected, atol=1e-9
        )
        np.testing.assert_allclose(
            run_generated(scheduled, inputs), expected, atol=1e-9
        )


class TestModelTotality:
    """The performance models return a finite positive time for every
    point of the space — no config may crash or return nonsense."""

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_gpu_model_total(self, seed):
        from repro.model import GpuModel, V100

        out, space = _space("gpu")
        rng = np.random.default_rng(seed)
        model = GpuModel(V100)
        seconds = model.estimate_seconds(
            lower(out, space.decode(space.random_point(rng)), "gpu")
        )
        assert 0 < seconds <= 1.0e3
        assert np.isfinite(seconds)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_cpu_model_total(self, seed):
        from repro.model import CpuModel, XEON_E5_2699V4

        out, space = _space("cpu")
        rng = np.random.default_rng(seed)
        model = CpuModel(XEON_E5_2699V4)
        seconds = model.estimate_seconds(
            lower(out, space.decode(space.random_point(rng)), "cpu")
        )
        assert 0 < seconds <= 1.0e3

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_fpga_model_total(self, seed):
        from repro.model import FpgaModel, VU9P

        out, space = _space("fpga")
        rng = np.random.default_rng(seed)
        model = FpgaModel(VU9P)
        seconds = model.estimate_seconds(
            lower(out, space.decode(space.random_point(rng)), "fpga")
        )
        assert 0 < seconds <= 1.0e3
