"""Unit tests for loop-nest primitives: split, fuse, substitution."""

import itertools

import pytest

from repro.ir import IterVar, Var, evaluate
from repro.schedule import (
    LoopDef,
    SERIAL,
    UNROLL,
    fuse_loops,
    split_axis,
    substitute_vars,
)


class TestSplitAxis:
    def test_split_reconstructs_index(self):
        axis = IterVar(24, "i")
        loops, index = split_axis(axis, (2, 3, 4), "spatial", 0)
        assert [l.extent for l in loops] == [2, 3, 4]
        # Walking the split loops must enumerate 0..23 exactly once, in order.
        seen = []
        for values in itertools.product(range(2), range(3), range(4)):
            env = {loop.var: v for loop, v in zip(loops, values)}
            seen.append(evaluate(index, env))
        assert seen == list(range(24))

    def test_nondivisible_rejected(self):
        axis = IterVar(10, "i")
        with pytest.raises(ValueError):
            split_axis(axis, (3, 3), "spatial", 0)

    def test_roles_record_origin(self):
        axis = IterVar(8, "i")
        loops, _ = split_axis(axis, (2, 4), "reduce", 3)
        assert loops[0].role == ("reduce", 3, 0)
        assert loops[1].role == ("reduce", 3, 1)

    def test_single_part(self):
        axis = IterVar(8, "i")
        loops, index = split_axis(axis, (8,), "spatial", 0)
        assert len(loops) == 1
        assert evaluate(index, {loops[0].var: 5}) == 5


class TestFuseLoops:
    def test_fuse_recovers_components(self):
        a = LoopDef(Var("a"), 3, ("spatial", 0, 0))
        b = LoopDef(Var("b"), 4, ("spatial", 1, 0))
        c = LoopDef(Var("c"), 5, ("spatial", 2, 0))
        fused, recovery = fuse_loops([a, b, c], "f")
        assert fused.extent == 60
        # every fused value maps back to the unique (a, b, c) triple
        for fused_value in range(60):
            env = {fused.var: fused_value}
            va = evaluate(recovery[a.var], env)
            vb = evaluate(recovery[b.var], env)
            vc = evaluate(recovery[c.var], env)
            assert (va * 4 + vb) * 5 + vc == fused_value
            assert 0 <= va < 3 and 0 <= vb < 4 and 0 <= vc < 5

    def test_fuse_single_loop(self):
        a = LoopDef(Var("a"), 7, ("spatial", 0, 0))
        fused, recovery = fuse_loops([a], "f")
        assert fused.extent == 7
        assert evaluate(recovery[a.var], {fused.var: 6}) == 6

    def test_fuse_empty_rejected(self):
        with pytest.raises(ValueError):
            fuse_loops([], "f")

    def test_fused_role_is_tuple_of_roles(self):
        a = LoopDef(Var("a"), 2, ("spatial", 0, 0))
        b = LoopDef(Var("b"), 2, ("spatial", 1, 0))
        fused, _ = fuse_loops([a, b], "f")
        assert fused.role == (("spatial", 0, 0), ("spatial", 1, 0))


class TestLoopDef:
    def test_bad_annotation_rejected(self):
        with pytest.raises(ValueError):
            LoopDef(Var("x"), 4, ("spatial", 0, 0), annotation="hyperspeed")

    def test_bad_extent_rejected(self):
        with pytest.raises(ValueError):
            LoopDef(Var("x"), 0, ("spatial", 0, 0))

    def test_default_serial(self):
        loop = LoopDef(Var("x"), 4, ("spatial", 0, 0))
        assert loop.annotation == SERIAL


class TestSubstituteVars:
    def test_replaces_mapped_vars(self):
        x, y = Var("x"), Var("y")
        expr = x * 4 + y
        replaced = substitute_vars(expr, {x: y + 1})
        assert evaluate(replaced, {y: 2}) == (2 + 1) * 4 + 2

    def test_unmapped_vars_untouched(self):
        x, y = Var("x"), Var("y")
        replaced = substitute_vars(x + y, {x: Var("z")})
        assert evaluate(replaced, {"z": 1, "y": 2}) == 3
