"""Tests for Algorithm 1's graph-level scheduling (Schedule_for_graph)."""

import pytest

from repro import optimize
from repro.model import V100, XEON_E5_2699V4
from repro.ops import SUITES, conv2d_compute, gemm_compute


class TestScheduleForGraph:
    def test_helpers_get_explicit_decisions(self):
        out = SUITES["T1D"][0].build()
        result = optimize(out, V100, trials=6, seed=0)
        # both the expansion and padding nodes were decided explicitly
        assert set(result.graph_config.inline) == {"t1d_expand", "t1d_pad"}

    def test_inlining_chosen_for_data_rearrangement(self):
        # materializing a padding node costs a memory round-trip; the graph
        # schedule should measure that and choose to inline
        out = conv2d_compute(1, 16, 14, 14, 32, 3, padding=1, name="c")
        result = optimize(out, V100, trials=6, seed=0)
        assert result.graph_config.inline.get("c_pad") is True

    def test_single_node_graph_untouched(self):
        out = gemm_compute(32, 32, 32)
        result = optimize(out, V100, trials=4, seed=0)
        assert result.graph_config.inline == {}

    def test_final_schedule_reflects_decisions(self):
        out = SUITES["T1D"][0].build()
        result = optimize(out, V100, trials=6, seed=0)
        inlined_names = {op.name for op in result.schedule.inlined}
        expected = {
            name for name, inline in result.graph_config.inline.items() if inline
        }
        assert inlined_names == expected

    @pytest.mark.parametrize("device", [V100, XEON_E5_2699V4])
    def test_reported_time_includes_materialization(self, device):
        # if a helper ends up materialized, the kernel time must include it;
        # with everything inlined, gflops is consistent with kernel time
        out = SUITES["C2D"][12].build()
        result = optimize(out, device, trials=5, seed=0)
        assert result.gflops == pytest.approx(
            result.evaluator.flops / result.kernel_seconds / 1e9
        )
