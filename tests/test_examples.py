"""Smoke tests: every example script runs to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, *args, timeout=420):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "optimization result" in out
    assert "numeric check on a small instance: OK" in out


def test_heterogeneous_conv2d():
    out = run_example("heterogeneous_conv2d.py")
    for device in ("V100", "XeonE5-2699v4", "VU9P"):
        assert device in out
    assert "speedup" in out


def test_custom_operator():
    out = run_example("custom_operator.py")
    assert "definition verified" in out
    assert "BCM on V100" in out


def test_dnn_end_to_end():
    out = run_example("dnn_end_to_end.py")
    assert "OverFeat" in out
    assert "end-to-end" in out


def test_exploration_methods():
    out = run_example("exploration_methods.py")
    assert "q-method" in out
    assert "legend" in out


def test_graph_scheduling():
    out = run_example("graph_scheduling.py")
    assert "numeric check: OK" in out
    assert "softmax_max" in out and "ln_mean" in out
