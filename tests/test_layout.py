"""Tests for the NCHWc layout path (§6.3)."""

import numpy as np
import pytest

from repro import optimize
from repro.analysis import analyze
from repro.codegen import execute_reference, execute_scheduled, random_inputs
from repro.model import XEON_E5_2699V4
from repro.ops import (
    conv2d_compute,
    conv2d_nchwc_compute,
    conv2d_nchwc_reference,
    conv2d_reference,
    pack_nchwc,
    pack_nchwc_reference,
    pack_weight_nchwc_reference,
    unpack_nchwc,
    unpack_nchwc_reference,
)
from repro.ir import placeholder
from repro.schedule import lower
from repro.space import build_space


class TestLayoutTransforms:
    def test_pack_matches_reference(self):
        data = placeholder((2, 8, 3, 3), name="D")
        packed = pack_nchwc(data, block=4, name="P")
        arr = np.random.default_rng(0).standard_normal((2, 8, 3, 3))
        got = execute_reference(packed, {"D": arr})
        np.testing.assert_allclose(got, pack_nchwc_reference(arr, 4))

    def test_unpack_inverts_pack(self):
        arr = np.random.default_rng(1).standard_normal((1, 8, 4, 4))
        packed = pack_nchwc_reference(arr, 4)
        np.testing.assert_allclose(unpack_nchwc_reference(packed), arr)

    def test_unpack_node_matches_reference(self):
        data = placeholder((1, 2, 3, 3, 4), name="D")
        unpacked = unpack_nchwc(data, name="U")
        arr = np.random.default_rng(2).standard_normal((1, 2, 3, 3, 4))
        got = execute_reference(unpacked, {"D": arr})
        np.testing.assert_allclose(got, unpack_nchwc_reference(arr))

    def test_pack_requires_divisible_channels(self):
        data = placeholder((1, 6, 3, 3), name="D")
        with pytest.raises(ValueError):
            pack_nchwc(data, block=4)


class TestNchwcConv:
    def test_matches_dense_convolution(self):
        # route the same data through both layouts; results must agree
        rng = np.random.default_rng(3)
        data = rng.standard_normal((1, 8, 6, 6))
        weight = rng.standard_normal((8, 8, 3, 3))
        dense = conv2d_reference(data, weight, 1, 1)

        out = conv2d_nchwc_compute(1, 8, 6, 6, 8, 3, padding=1, block=4, name="c")
        inputs = {
            "c_I": pack_nchwc_reference(data, 4),
            "c_W": pack_weight_nchwc_reference(weight, 4),
        }
        blocked = execute_reference(out, inputs)
        np.testing.assert_allclose(
            unpack_nchwc_reference(blocked), dense, atol=1e-9
        )

    def test_scheduled_execution_preserved(self):
        out = conv2d_nchwc_compute(1, 4, 5, 5, 4, 3, padding=1, block=2, name="c")
        space = build_space(out, "cpu")
        rng = np.random.default_rng(4)
        inputs = random_inputs(out, seed=4)
        expected = conv2d_nchwc_reference(inputs["c_I"], inputs["c_W"], 1, 1)
        for _ in range(3):
            config = space.decode(space.random_point(rng))
            scheduled = lower(out, config, "cpu")
            got = execute_scheduled(scheduled, inputs)
            np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_analysis_shape(self):
        out = conv2d_nchwc_compute(1, 64, 14, 14, 64, 3, padding=1, block=8)
        info = analyze(out).main()
        assert info.num_spatial == 5   # b, ko, i, j, ki
        assert info.num_reduce == 4    # rco, rx, ry, rci

    def test_block_must_divide(self):
        with pytest.raises(ValueError):
            conv2d_nchwc_compute(1, 12, 8, 8, 16, 3, block=8)


class TestLayoutPerformance:
    def test_nchwc_vectorizes_better_on_cpu(self):
        """§6.3: the vector-channel layout is what makes CPU schedules
        vectorize well when the spatial width is SIMD-unfriendly."""
        nchw = optimize(
            conv2d_compute(1, 64, 14, 14, 64, 3, padding=1, name="n"),
            XEON_E5_2699V4, trials=20, num_seeds=8, seed=0,
        )
        nchwc = optimize(
            conv2d_nchwc_compute(1, 64, 14, 14, 64, 3, padding=1, block=8, name="c"),
            XEON_E5_2699V4, trials=20, num_seeds=8, seed=0,
        )
        assert nchwc.gflops > nchw.gflops
