"""Tests for mini-graph construction and the static analyzer, including the
Table 3 "Analysis Results" reproduction (loop counts and node counts)."""

import pytest

from repro.analysis import analyze, arithmetic_intensity, operation_flops
from repro.graph import get_graph
from repro.ir import compute, placeholder, reduce_axis, sum_reduce
from repro.ops import SUITES, gemm_compute


class TestMiniGraph:
    def test_gemm_graph_matches_figure3(self):
        out = gemm_compute(8, 8, 8)
        graph = get_graph(out)
        # Figure 3: op A, op B (placeholders) and the GEMM node -> 3 nodes.
        assert graph.num_nodes == 3
        assert len(graph.compute_ops) == 1
        assert len(graph.placeholders) == 2

    def test_post_order_producers_first(self):
        a = placeholder((4,), name="A")
        b = compute((4,), lambda i: a[i] + 1, name="B")
        c = compute((4,), lambda i: b[i] * 2, name="C")
        graph = get_graph(c)
        order = [op.name for op in graph.compute_ops]
        assert order == ["B", "C"]

    def test_consumers(self):
        a = placeholder((4,), name="A")
        b = compute((4,), lambda i: a[i] + 1, name="B")
        c = compute((4,), lambda i: b[i] * 2, name="C")
        graph = get_graph(c)
        assert graph.consumers(b.op) == (c.op,)
        assert graph.consumers(c.op) == ()
        assert graph.consumers(a.op) == (b.op,)

    def test_main_op_is_root(self):
        out = gemm_compute(4, 4, 4)
        graph = get_graph(out)
        assert graph.main_op is out.op

    def test_main_op_on_placeholder_rejected(self):
        t = placeholder((4,), name="T")
        with pytest.raises(ValueError):
            get_graph(t).main_op

    def test_diamond_graph_visited_once(self):
        a = placeholder((4,), name="A")
        b = compute((4,), lambda i: a[i] + 1, name="B")
        c = compute((4,), lambda i: b[i] + b[i], name="C")
        graph = get_graph(c)
        assert graph.num_nodes == 3  # A, B, C — B not duplicated


# Table 3 "Analysis Results": (#spatial+#reduce summed over compute nodes,
# #node counting the main path's compute nodes).  The paper's C2D row reads
# 8/3 with 2 nodes, T2D 12/3 with 3, etc.
TABLE3 = {
    "GMV": (1, 1, 1),
    "GMM": (2, 1, 1),
    "BIL": (2, 2, 1),
    "C1D": (6, 2, 2),
    "T1D": (9, 2, 3),
    "C2D": (8, 3, 2),
    "T2D": (12, 3, 3),
    "C3D": (10, 4, 2),
    "T3D": (15, 4, 3),
}


class TestTable3Analysis:
    @pytest.mark.parametrize("opname", sorted(TABLE3))
    def test_loop_and_node_counts(self, opname):
        expected_sl, expected_rl, expected_nodes = TABLE3[opname]
        workload = SUITES[opname][0]
        result = analyze(workload.build())
        spatial, reduce_ = result.totals()
        assert spatial == expected_sl
        assert reduce_ == expected_rl
        assert result.num_nodes == expected_nodes

    def test_grp_main_node_counts(self):
        # The paper reports GRP/DEP/DIL per main conv node: 4 spatial loops.
        result = analyze(SUITES["GRP"][0].build())
        main = result.main()
        assert main.num_spatial == 4
        assert main.num_reduce == 3

    def test_dil_main_node_counts(self):
        result = analyze(SUITES["DIL"][0].build())
        main = result.main()
        assert main.num_spatial == 4
        assert main.num_reduce == 3

    def test_dep_main_node_counts(self):
        result = analyze(SUITES["DEP"][0].build())
        main = result.main()
        assert main.num_spatial == 4
        assert main.num_reduce == 2  # rx, ry only: depthwise has no rc


class TestStatisticalInfo:
    def test_gemm_statistics(self):
        out = gemm_compute(64, 32, 16)
        info = analyze(out).main()
        assert info.num_spatial == 2
        assert info.num_reduce == 1
        assert info.spatial_trip_counts == (64, 16)
        assert info.reduce_trip_counts == (32,)
        assert info.iteration_space == 64 * 32 * 16

    def test_order_lists_spatial_then_reduce(self):
        out = gemm_compute(4, 4, 4)
        info = analyze(out).main()
        assert info.order[-1] == "rk"

    def test_analyze_rejects_placeholder_only(self):
        with pytest.raises(ValueError):
            analyze(placeholder((4,), name="X"))


class TestFlopsAndIntensity:
    def test_gemm_flops(self):
        out = gemm_compute(64, 32, 16)
        assert operation_flops(out) == 2 * 64 * 32 * 16

    def test_workload_flops_matches_formula(self):
        wl = SUITES["C2D"][7]  # C8: 256 -> 512, 28x28, k3 s1 p1
        assert wl.flops() == 2 * 512 * 28 * 28 * 256 * 3 * 3

    def test_intensity_positive(self):
        assert arithmetic_intensity(gemm_compute(64, 64, 64)) > 0

    def test_gemm_more_intense_than_gemv(self):
        from repro.ops import gemv_compute

        gemm_i = arithmetic_intensity(gemm_compute(256, 256, 256))
        gemv_i = arithmetic_intensity(gemv_compute(256, 256))
        assert gemm_i > gemv_i
