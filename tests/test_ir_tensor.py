"""Unit tests for tensors, operations and the printer."""

import pytest

from repro.ir import (
    ComputeOp,
    PlaceholderOp,
    Reduce,
    compute,
    count_flops_per_point,
    format_expr,
    format_operation,
    format_tensor,
    placeholder,
    reduce_axis,
    same_structure,
    sum_reduce,
)


class TestPlaceholder:
    def test_shape_and_op(self):
        t = placeholder((2, 3), name="A")
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert isinstance(t.op, PlaceholderOp)
        assert t.op.input_tensors == ()

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            placeholder((0, 3))

    def test_auto_name(self):
        a = placeholder((1,))
        b = placeholder((1,))
        assert a.name != b.name

    def test_indexing_arity_checked(self):
        t = placeholder((2, 3), name="A")
        with pytest.raises(ValueError):
            t[0]


class TestCompute:
    def test_elementwise(self):
        a = placeholder((4, 4), name="A")
        c = compute((4, 4), lambda i, j: a[i, j] * 2, name="C")
        op = c.op
        assert isinstance(op, ComputeOp)
        assert len(op.axes) == 2
        assert op.reduce_axes == ()
        assert op.input_tensors == (a,)

    def test_reduction_collects_axes(self):
        a = placeholder((4, 8), name="A")
        b = placeholder((8,), name="B")
        rk = reduce_axis(8, "rk")
        c = compute((4,), lambda i: sum_reduce(a[i, rk] * b[rk], rk), name="C")
        op = c.op
        assert op.reduce_axes == (rk,)
        assert set(op.input_tensors) == {a, b}
        assert len(op.all_axes) == 2

    def test_duplicate_input_collected_once(self):
        a = placeholder((4,), name="A")
        c = compute((4,), lambda i: a[i] + a[i], name="C")
        assert c.op.input_tensors == (a,)

    def test_axis_extents_match_shape(self):
        c = compute((3, 5), lambda i, j: i + j, name="C")
        assert [ax.extent for ax in c.op.axes] == [3, 5]


class TestFlopsCounting:
    def test_mac_counts_two(self):
        a = placeholder((4, 8), name="A")
        b = placeholder((8,), name="B")
        rk = reduce_axis(8)
        c = compute((4,), lambda i: sum_reduce(a[i, rk] * b[rk], rk))
        assert count_flops_per_point(c.op.body) == 2  # mul + accumulate

    def test_index_arithmetic_not_counted(self):
        # conv-style read: the i*2 + r in the index is address math
        a = placeholder((32,), name="A")
        w = placeholder((3,), name="W")
        r = reduce_axis(3)
        c = compute((8,), lambda i: sum_reduce(a[i * 2 + r] * w[r], r))
        assert count_flops_per_point(c.op.body) == 2

    def test_three_operand_product(self):
        a = placeholder((4,), name="A")
        b = placeholder((4,), name="B")
        c = placeholder((4,), name="C")
        r = reduce_axis(4)
        out = compute((1,), lambda i: sum_reduce(a[r] * b[r] * c[r], r))
        assert count_flops_per_point(out.op.body) == 3  # 2 muls + accumulate


class TestPrinter:
    def test_format_expr_renders_math(self):
        a = placeholder((4, 4), name="A")
        i = a.op.output.op  # placeholder op; use fresh vars instead
        from repro.ir import Var

        x, y = Var("x"), Var("y")
        text = format_expr(a[x, y] * 2 + 1)
        assert "A[x, y]" in text and "*" in text and "+" in text

    def test_format_operation_shows_loops(self):
        a = placeholder((4, 8), name="A")
        b = placeholder((8, 4), name="B")
        rk = reduce_axis(8, "rk")
        c = compute((4, 4), lambda i, j: sum_reduce(a[i, rk] * b[rk, j], rk), name="C")
        text = format_operation(c.op)
        assert "spatial" in text and "reduce" in text
        assert "C[" in text and "+=" in text

    def test_format_tensor(self):
        t = placeholder((2, 3), name="T")
        assert format_tensor(t) == "T: float32[2, 3]"


class TestSameStructure:
    def test_identical_trees_match(self):
        a = placeholder((4,), name="A")
        from repro.ir import Var

        x = Var("x")
        assert same_structure(a[x] + 1, a[x] + 1)

    def test_different_constants_differ(self):
        from repro.ir import Var

        x = Var("x")
        assert not same_structure(x + 1, x + 2)

    def test_different_vars_differ(self):
        from repro.ir import Var

        assert not same_structure(Var("x"), Var("x"))  # identity, not name
