"""Unit tests for expression evaluation and affine analysis."""

import numpy as np
import pytest

from repro.ir import (
    Compare,
    EvalError,
    IterVar,
    Max,
    Min,
    Select,
    Var,
    affine_coefficients,
    evaluate,
    evaluate_condition,
    placeholder,
    stride_of,
    wrap,
)


class TestEvaluate:
    def test_constants(self):
        assert evaluate(wrap(5), {}) == 5
        assert evaluate(wrap(2.5), {}) == 2.5

    def test_variable_lookup_by_object_and_name(self):
        x = Var("x")
        assert evaluate(x, {x: 7}) == 7
        assert evaluate(x, {"x": 9}) == 9

    def test_unbound_variable_raises(self):
        with pytest.raises(EvalError):
            evaluate(Var("nope"), {})

    def test_arithmetic(self):
        x = Var("x")
        env = {x: 10}
        assert evaluate(x + 3, env) == 13
        assert evaluate(x - 3, env) == 7
        assert evaluate(x * 3, env) == 30
        assert evaluate(x // 3, env) == 3
        assert evaluate(x % 3, env) == 1

    def test_min_max(self):
        x, y = Var("x"), Var("y")
        env = {x: 2, y: 5}
        assert evaluate(Min(x, y), env) == 2
        assert evaluate(Max(x, y), env) == 5

    def test_select(self):
        x = Var("x")
        sel = Select(Compare(">", x, 0), 1, -1)
        assert evaluate(sel, {x: 5}) == 1
        assert evaluate(sel, {x: -5}) == -1

    def test_tensor_ref_reads_buffer(self):
        t = placeholder((2, 3), name="T")
        buf = np.arange(6.0).reshape(2, 3)
        i, j = Var("i"), Var("j")
        assert evaluate(t[i, j], {i: 1, j: 2}, {t: buf}) == 5.0

    def test_tensor_ref_without_buffer_raises(self):
        t = placeholder((2,), name="T")
        with pytest.raises(EvalError):
            evaluate(t[Var("i")], {"i": 0})

    def test_condition_combinators(self):
        x = Var("x")
        both = Compare(">", x, 0) & Compare("<", x, 10)
        either = Compare("<", x, 0) | Compare(">", x, 10)
        assert evaluate_condition(both, {x: 5})
        assert not evaluate_condition(both, {x: 15})
        assert evaluate_condition(either, {x: 15})
        assert not evaluate_condition(either, {x: 5})


class TestAffineCoefficients:
    def test_simple_affine(self):
        i = IterVar(8, "i")
        j = IterVar(8, "j")
        # 3*i + 2*j + 5
        coeffs = affine_coefficients(i * 3 + j * 2 + 5, [i, j])
        assert coeffs == [3, 2, 5]

    def test_missing_variable_coefficient_zero(self):
        i = IterVar(8, "i")
        j = IterVar(8, "j")
        coeffs = affine_coefficients(i + 1, [i, j])
        assert coeffs == [1, 0, 1]

    def test_nonaffine_detected(self):
        i = IterVar(8, "i")
        assert affine_coefficients(i * i, [i]) is None
        assert affine_coefficients(i // 2, [i]) is None
        assert affine_coefficients(i % 3, [i]) is None

    def test_cross_term_detected(self):
        i = IterVar(8, "i")
        j = IterVar(8, "j")
        assert affine_coefficients(i * j, [i, j]) is None

    def test_unprobed_variables_pinned_to_zero(self):
        i = IterVar(8, "i")
        r = IterVar(3, "r", kind="reduce")
        # probing only i; r appears in the expression but is pinned to 0
        coeffs = affine_coefficients(i * 2 + r, [i])
        assert coeffs == [2, 0]


class TestStrideOf:
    def test_row_major_strides(self):
        t = placeholder((4, 5, 6), name="T")
        i = IterVar(4, "i")
        j = IterVar(5, "j")
        k = IterVar(6, "k")
        ref = t[i, j, k]
        assert stride_of(ref.indices, t.shape, k) == 1
        assert stride_of(ref.indices, t.shape, j) == 6
        assert stride_of(ref.indices, t.shape, i) == 30

    def test_absent_variable_stride_zero(self):
        t = placeholder((4, 4), name="T")
        i = IterVar(4, "i")
        j = IterVar(4, "j")
        ref = t[i, i]
        assert stride_of(ref.indices, t.shape, j) == 0

    def test_shared_variable_sums_strides(self):
        t = placeholder((4, 4), name="T")
        i = IterVar(4, "i")
        ref = t[i, i]  # diagonal: stride 4 + 1
        assert stride_of(ref.indices, t.shape, i) == 5

    def test_nonaffine_returns_none(self):
        t = placeholder((4, 4), name="T")
        i = IterVar(16, "i")
        ref = t[i // 4, i % 4]
        assert stride_of(ref.indices, t.shape, i) is None
