"""Integration: the full pipeline runs for every operator on every target.

These are breadth tests — small trial counts, every operator family, all
three device classes — catching lowering/model/space mismatches that
single-operator unit tests can miss (odd extents, non-affine accesses,
many-axis reductions, three-node graphs).
"""

import pytest

from repro import optimize
from repro.model import V100, VU9P, XEON_E5_2699V4
from repro.ops import OPERATOR_NAMES, SUITES, bcm_workloads, shift_workloads

DEVICES = {"V100": V100, "Xeon": XEON_E5_2699V4, "VU9P": VU9P}


@pytest.mark.parametrize("opname", OPERATOR_NAMES)
@pytest.mark.parametrize("device_name", sorted(DEVICES))
def test_every_operator_on_every_device(opname, device_name):
    workload = SUITES[opname][0]
    result = optimize(
        workload.build(), DEVICES[device_name], trials=2, num_seeds=3, seed=0
    )
    assert result.found, f"{opname} on {device_name} found no valid schedule"
    assert result.gflops > 0
    assert result.kernel_seconds < 1e3
    # the result is self-consistent
    assert result.config is not None
    assert result.schedule.target == result.target
    assert result.tuning.num_measurements >= 3


@pytest.mark.parametrize("device_name", sorted(DEVICES))
def test_new_operators_on_every_device(device_name):
    for workload in (bcm_workloads()[0], shift_workloads()[0]):
        result = optimize(
            workload.build(), DEVICES[device_name], trials=2, num_seeds=3, seed=0
        )
        assert result.found, f"{workload} on {device_name}"


def test_generated_code_compiles_for_every_operator():
    for opname in OPERATOR_NAMES:
        result = optimize(SUITES[opname][0].build(), V100, trials=2, num_seeds=3, seed=0)
        source = result.generated_code()
        compile(source, f"<{opname}>", "exec")
        assert "def kernel" in source
