"""Tests for the analytical machine models: hard constraints, qualitative
monotonicities, and the §5.2 FPGA equation."""

import pytest

from repro.model import (
    CpuModel,
    FpgaModel,
    GpuModel,
    INVALID_TIME,
    P100,
    TITAN_X,
    V100,
    VU9P,
    XEON_E5_2699V4,
    model_for,
    target_of,
)
from repro.ops import conv2d_compute, gemm_compute
from repro.schedule import NodeConfig, lower


def gpu_schedule(out, **overrides):
    base = dict(
        spatial_factors=((8, 1, 16, 1), (8, 1, 16, 1)),
        reduce_factors=((32, 8),),
    )
    base.update(overrides)
    return lower(out, NodeConfig(**base), "gpu")


class TestGpuModel:
    def setup_method(self):
        self.out = gemm_compute(128, 256, 128, name="g")
        self.model = GpuModel(V100)

    def test_reasonable_range(self):
        seconds = self.model.estimate_seconds(gpu_schedule(self.out))
        assert 1e-6 < seconds < 1e-1

    def test_too_many_threads_invalid(self):
        sch = gpu_schedule(
            self.out,
            spatial_factors=((2, 1, 64, 1), (2, 1, 64, 1)),  # 4096 threads
        )
        assert self.model.estimate_seconds(sch) == INVALID_TIME

    def test_shared_memory_overflow_invalid(self):
        out = gemm_compute(1024, 4096, 1024, name="g")
        sch = lower(out, NodeConfig(
            spatial_factors=((4, 1, 16, 16), (4, 1, 16, 16)),
            reduce_factors=((4, 1024),),  # giant reduce tile -> giant smem
        ), "gpu")
        assert self.model.estimate_seconds(sch) == INVALID_TIME

    def test_single_thread_much_slower(self):
        serial = gpu_schedule(
            self.out,
            spatial_factors=((1, 1, 1, 128), (1, 1, 1, 128)),
        )
        parallel = gpu_schedule(self.out)
        assert self.model.estimate_seconds(serial) > 5 * self.model.estimate_seconds(parallel)

    def test_full_warps_beat_ragged_warps(self):
        out = gemm_compute(96, 64, 96, name="g")
        ragged = lower(out, NodeConfig(
            spatial_factors=((16, 1, 6, 1), (16, 1, 6, 1)),   # 36 threads
            reduce_factors=((16, 4),),
        ), "gpu")
        full = lower(out, NodeConfig(
            spatial_factors=((12, 1, 8, 1), (12, 1, 8, 1)),   # 64 threads
            reduce_factors=((16, 4),),
        ), "gpu")
        ragged_eff = self.model.gflops(ragged)
        full_eff = self.model.gflops(full)
        assert full_eff > ragged_eff

    def test_gflops_inverse_of_time(self):
        sch = gpu_schedule(self.out)
        seconds = self.model.estimate_seconds(sch)
        from repro.codegen import flops_of

        assert self.model.gflops(sch) == pytest.approx(
            flops_of(self.out.op) / seconds / 1e9
        )

    def test_devices_ranked_by_capability(self):
        # a large kernel with plenty of blocks: raw capability dominates
        big = gemm_compute(2048, 1024, 2048, name="g")
        sch = lower(big, NodeConfig(
            spatial_factors=((32, 2, 16, 2), (32, 2, 16, 2)),
            reduce_factors=((128, 8),),
        ), "gpu")
        v100 = GpuModel(V100).estimate_seconds(sch)
        p100 = GpuModel(P100).estimate_seconds(sch)
        titan = GpuModel(TITAN_X).estimate_seconds(sch)
        assert v100 < p100
        assert v100 < titan

    def test_measurement_cost_includes_compile(self):
        assert self.model.measurement_seconds(0.001) >= V100.compile_seconds

    def test_wrong_target_rejected(self):
        out = gemm_compute(8, 8, 8)
        cpu_sch = lower(out, NodeConfig(
            spatial_factors=((2, 2, 2), (2, 2, 2)), reduce_factors=((2, 4),)
        ), "cpu")
        with pytest.raises(ValueError):
            self.model.estimate_seconds(cpu_sch)


class TestCpuModel:
    def setup_method(self):
        self.out = gemm_compute(128, 128, 128, name="g")
        self.model = CpuModel(XEON_E5_2699V4)

    def cpu_schedule(self, **overrides):
        base = dict(
            spatial_factors=((16, 2, 4), (4, 4, 8)),
            reduce_factors=((32, 4),),
            fuse_levels=2,
        )
        base.update(overrides)
        return lower(self.out, NodeConfig(**base), "cpu")

    def test_reasonable_range(self):
        seconds = self.model.estimate_seconds(self.cpu_schedule())
        assert 1e-6 < seconds < 1.0

    def test_parallelism_helps(self):
        serial = self.cpu_schedule(
            spatial_factors=((1, 2, 64), (1, 4, 32)), fuse_levels=2
        )
        parallel = self.cpu_schedule()
        assert self.model.estimate_seconds(parallel) < self.model.estimate_seconds(serial)

    def test_vectorization_helps(self):
        vec = self.cpu_schedule(vectorize=True)
        scalar = self.cpu_schedule(vectorize=False)
        assert self.model.estimate_seconds(vec) < self.model.estimate_seconds(scalar)

    def test_avx2_lane_count_is_eight(self):
        # the paper: schedules converge to vectorization length 8 on Xeon
        assert XEON_E5_2699V4.vector_lanes == 8

    def test_peak_gflops_formula(self):
        spec = XEON_E5_2699V4
        assert spec.peak_gflops == pytest.approx(8 * 2 * 2 * 2.2 * 22)


class TestFpgaModel:
    def setup_method(self):
        self.out = gemm_compute(256, 64, 256, name="g")
        self.model = FpgaModel(VU9P)

    def fpga_schedule(self, **overrides):
        base = dict(
            spatial_factors=((16, 16), (16, 16)),
            reduce_factors=((64,),),
            fpga_partition=4,
            fpga_pipeline=3,
            fpga_buffer_lines=2,
        )
        base.update(overrides)
        return lower(self.out, NodeConfig(**base), "fpga")

    def test_reasonable_range(self):
        seconds = self.model.estimate_seconds(self.fpga_schedule())
        assert 1e-6 < seconds < 10.0

    def test_cannot_exceed_pe_peak(self):
        # FLOPS can never beat 2 ops/cycle/PE at the clock rate
        sch = self.fpga_schedule()
        peak = 2 * sch.parallel_extent * VU9P.mhz * 1e6 / 1e9
        assert self.model.gflops(sch) <= peak * 1.001

    def test_too_many_pes_invalid(self):
        out = gemm_compute(4096, 16, 4096, name="g")
        sch = lower(out, NodeConfig(
            spatial_factors=((32, 128), (32, 128)),  # 16384 PEs
            reduce_factors=((16,),),
        ), "fpga")
        assert self.model.estimate_seconds(sch) == INVALID_TIME

    def test_more_pipeline_stages_never_slower(self):
        times = [
            self.model.estimate_seconds(self.fpga_schedule(fpga_pipeline=stages))
            for stages in (1, 2, 3)
        ]
        assert times[0] >= times[1] >= times[2]

    def test_partitioning_helps_bandwidth_bound(self):
        narrow = self.model.estimate_seconds(self.fpga_schedule(fpga_partition=1, fpga_buffer_lines=1))
        wide = self.model.estimate_seconds(self.fpga_schedule(fpga_partition=16, fpga_buffer_lines=1))
        assert wide <= narrow

    def test_measurement_is_model_query(self):
        # hours of synthesis are never charged: the model answers in ms
        assert self.model.measurement_seconds(10.0) == VU9P.model_query_seconds


class TestModelFactory:
    def test_model_for_dispatch(self):
        assert isinstance(model_for(V100), GpuModel)
        assert isinstance(model_for(XEON_E5_2699V4), CpuModel)
        assert isinstance(model_for(VU9P), FpgaModel)
        with pytest.raises(TypeError):
            model_for(object())

    def test_target_of(self):
        assert target_of(V100) == "gpu"
        assert target_of(XEON_E5_2699V4) == "cpu"
        assert target_of(VU9P) == "fpga"


class TestFpgaResourceReport:
    def make(self, pe_k=16, pe_m=16, buffer_lines=2):
        from repro.model import fpga_resource_report

        out = gemm_compute(256, 64, 256, name="g")
        sch = lower(out, NodeConfig(
            spatial_factors=((256 // pe_k, pe_k), (256 // pe_m, pe_m)),
            reduce_factors=((64,),),
            fpga_buffer_lines=buffer_lines,
        ), "fpga")
        return fpga_resource_report(sch, VU9P)

    def test_dsp_accounting(self):
        report = self.make()
        assert report.num_pes == 256
        assert report.dsps_used == 256 * VU9P.dsps_per_pe
        assert report.fits

    def test_bram_grows_with_buffering(self):
        small = self.make(buffer_lines=1)
        big = self.make(buffer_lines=8)
        assert big.bram_bytes_used == 8 * small.bram_bytes_used

    def test_summary_mentions_budget(self):
        text = self.make().summary()
        assert "DSP" in text and "BRAM" in text and "pipeline" in text

    def test_over_budget_flagged(self):
        from repro.model import fpga_resource_report

        out = gemm_compute(4096, 16, 4096, name="g")
        sch = lower(out, NodeConfig(
            spatial_factors=((32, 128), (32, 128)),
            reduce_factors=((16,),),
        ), "fpga")
        report = fpga_resource_report(sch, VU9P)
        assert not report.fits
        assert "OVER BUDGET" in report.summary()

    def test_non_fpga_schedule_rejected(self):
        from repro.model import fpga_resource_report

        out = gemm_compute(8, 8, 8, name="g")
        sch = lower(out, NodeConfig(
            spatial_factors=((2, 1, 2, 2), (1, 2, 2, 2)), reduce_factors=((2, 4),)
        ), "gpu")
        with pytest.raises(ValueError):
            fpga_resource_report(sch, VU9P)
