"""Edge-case coverage: interpreter input handling, evaluator error paths,
multi-output graphs, and pseudo-code emission."""

import numpy as np
import pytest

from repro.codegen import (
    emit_pseudo,
    execute_reference,
    execute_scheduled,
    random_inputs,
)
from repro.graph import MiniGraph, get_graph
from repro.ir import compute, placeholder, reduce_axis, sum_reduce
from repro.model import V100, VU9P
from repro.ops import gemm_compute
from repro.runtime import Evaluator
from repro.schedule import NodeConfig, lower
from repro.space import build_space


class TestInterpreterInputHandling:
    def test_missing_input_rejected(self):
        out = gemm_compute(4, 4, 4, name="g")
        with pytest.raises(KeyError, match="g_B"):
            execute_reference(out, {"g_A": np.zeros((4, 4))})

    def test_wrong_shape_rejected(self):
        out = gemm_compute(4, 4, 4, name="g")
        with pytest.raises(ValueError, match="shape"):
            execute_reference(out, {"g_A": np.zeros((4, 5)), "g_B": np.zeros((4, 4))})

    def test_random_inputs_cover_all_placeholders(self):
        out = gemm_compute(4, 6, 8, name="g")
        inputs = random_inputs(out, seed=0)
        assert set(inputs) == {"g_A", "g_B"}
        assert inputs["g_A"].shape == (4, 6)
        assert inputs["g_B"].shape == (6, 8)

    def test_random_inputs_deterministic(self):
        out = gemm_compute(4, 4, 4, name="g")
        a = random_inputs(out, seed=9)
        b = random_inputs(out, seed=9)
        np.testing.assert_array_equal(a["g_A"], b["g_A"])


class TestMultiOutputGraphs:
    def test_two_outputs_share_producers(self):
        x = placeholder((4,), name="X")
        doubled = compute((4,), lambda i: x[i] * 2, name="D")
        plus = compute((4,), lambda i: doubled[i] + 1, name="P")
        minus = compute((4,), lambda i: doubled[i] - 1, name="M")
        graph = MiniGraph([plus, minus])
        assert graph.num_nodes == 4  # X, D, P, M
        assert set(graph.consumers(doubled.op)) == {plus.op, minus.op}
        assert graph.is_output(plus.op) and graph.is_output(minus.op)
        assert not graph.is_output(doubled.op)

    def test_empty_outputs_rejected(self):
        with pytest.raises(ValueError):
            MiniGraph([])


class TestEvaluatorEdges:
    def test_invalid_points_score_zero_but_advance_clock(self):
        out = gemm_compute(2048, 64, 2048, name="g")
        ev = Evaluator(out, V100)
        # deliberately absurd: 2048 threads per block
        config = NodeConfig(
            spatial_factors=((32, 1, 64, 1), (32, 1, 32, 2)),
            reduce_factors=((64, 1),),
        )
        point = ev.space.encode(config)
        perf = ev.evaluate(point)
        assert perf == 0.0
        assert ev.clock > 0

    def test_fpga_evaluator_uses_model_query_cost(self):
        out = gemm_compute(64, 64, 64, name="g")
        ev = Evaluator(out, VU9P)
        rng = np.random.default_rng(0)
        ev.evaluate(ev.space.random_point(rng))
        assert ev.clock == pytest.approx(VU9P.model_query_seconds)

    def test_lower_point_returns_schedule(self):
        out = gemm_compute(8, 8, 8, name="g")
        ev = Evaluator(out, V100)
        rng = np.random.default_rng(0)
        scheduled = ev.lower_point(ev.space.random_point(rng))
        assert scheduled.op is out.op


class TestPseudoCode:
    def test_all_targets_render(self):
        out = gemm_compute(8, 8, 8, name="g")
        configs = {
            "gpu": NodeConfig(spatial_factors=((2, 1, 2, 2), (1, 2, 2, 2)),
                              reduce_factors=((2, 4),)),
            "cpu": NodeConfig(spatial_factors=((2, 2, 2), (2, 2, 2)),
                              reduce_factors=((2, 4),)),
            "fpga": NodeConfig(spatial_factors=((2, 4), (4, 2)),
                               reduce_factors=((8,),)),
        }
        for target, config in configs.items():
            text = emit_pseudo(lower(out, config, target))
            assert "for (" in text
            assert "g[" in text

    def test_fpga_pseudo_mentions_pe_array(self):
        out = gemm_compute(8, 8, 8, name="g")
        config = NodeConfig(spatial_factors=((2, 4), (4, 2)), reduce_factors=((8,),))
        assert "PE array" in emit_pseudo(lower(out, config, "fpga"))


class TestScheduledExecutionWithSharedProducer:
    def test_diamond_graph_executes(self):
        x = placeholder((6,), name="X")
        base = compute((6,), lambda i: x[i] * 3, name="B")
        rk = reduce_axis(6, "rk")
        total = compute((1,), lambda i: sum_reduce(base[rk] + i, rk), name="T")
        space = build_space(total, "cpu")
        rng = np.random.default_rng(0)
        scheduled = lower(total, space.decode(space.random_point(rng)), "cpu")
        arr = np.arange(6.0)
        got = execute_scheduled(scheduled, {"X": arr})
        np.testing.assert_allclose(got, [(arr * 3).sum()])
