"""Tests for target-specific lowering (§5.3): structure and validation."""

import pytest

from repro.ops import conv2d_compute, gemm_compute
from repro.schedule import (
    BLOCK_X,
    GraphConfig,
    LoweringError,
    NodeConfig,
    PARALLEL,
    PE_PARALLEL,
    REORDER_INTERLEAVED,
    REORDER_REDUCE_INNER,
    REORDER_SPATIAL_INNER,
    THREAD_X,
    UNROLL,
    VECTORIZE,
    VTHREAD,
    lower,
)


def gemm_gpu_config(**kw):
    base = dict(
        spatial_factors=((2, 1, 2, 2), (1, 2, 2, 2)),
        reduce_factors=((2, 4),),
    )
    base.update(kw)
    return NodeConfig(**base)


class TestGpuLowering:
    def setup_method(self):
        self.out = gemm_compute(8, 8, 8, name="g")

    def test_structure(self):
        sch = lower(self.out, gemm_gpu_config(), "gpu")
        assert sch.target == "gpu"
        annotations = [l.annotation for l in sch.loops]
        assert annotations[0] == BLOCK_X
        assert annotations[1] == THREAD_X
        assert VTHREAD in annotations

    def test_grid_and_threads(self):
        sch = lower(self.out, gemm_gpu_config(), "gpu")
        assert sch.grid_size == 2 * 1
        assert sch.block_threads == 2 * 2

    def test_shared_memory_caching(self):
        sch = lower(self.out, gemm_gpu_config(use_shared=True), "gpu")
        assert len(sch.cached_tensors) == 2
        sch = lower(self.out, gemm_gpu_config(use_shared=False), "gpu")
        assert sch.cached_tensors == ()

    def test_reorder_reduce_inner_places_reduce_last(self):
        sch = lower(self.out, gemm_gpu_config(reorder=REORDER_REDUCE_INNER, vectorize=False), "gpu")
        last = sch.loops[-1]
        assert last.role[0] == "reduce"

    def test_reorder_spatial_inner_places_spatial_last(self):
        sch = lower(self.out, gemm_gpu_config(reorder=REORDER_SPATIAL_INNER), "gpu")
        assert sch.loops[-1].role[0] == "spatial"

    def test_vectorize_only_on_spatial_innermost(self):
        sch = lower(self.out, gemm_gpu_config(reorder=REORDER_REDUCE_INNER, vectorize=True), "gpu")
        # innermost is a reduce loop -> no vectorize annotation
        assert all(l.annotation != VECTORIZE for l in sch.loops)
        sch = lower(self.out, gemm_gpu_config(reorder=REORDER_SPATIAL_INNER, vectorize=True), "gpu")
        assert sch.loops[-1].annotation == VECTORIZE

    def test_unroll_marks_inner_serial_loops(self):
        sch = lower(self.out, gemm_gpu_config(unroll_depth=64, vectorize=False), "gpu")
        assert any(l.annotation == UNROLL for l in sch.loops)

    def test_primitive_trace_records_table2_primitives(self):
        sch = lower(self.out, gemm_gpu_config(unroll_depth=16), "gpu")
        text = "; ".join(sch.primitives)
        for primitive in ("split", "fuse", "bind", "reorder", "unroll", "cache"):
            assert primitive in text, f"missing {primitive} in trace"

    def test_wrong_parts_rejected(self):
        with pytest.raises(LoweringError):
            lower(self.out, NodeConfig(
                spatial_factors=((2, 4), (2, 4)), reduce_factors=((8,),)
            ), "gpu")

    def test_wrong_axis_count_rejected(self):
        with pytest.raises(LoweringError):
            lower(self.out, NodeConfig(
                spatial_factors=((2, 1, 2, 2),), reduce_factors=((2, 4),)
            ), "gpu")

    def test_unknown_target_rejected(self):
        with pytest.raises(LoweringError):
            lower(self.out, gemm_gpu_config(), "tpu")


class TestCpuLowering:
    def setup_method(self):
        self.out = gemm_compute(8, 8, 8, name="g")
        self.config = NodeConfig(
            spatial_factors=((2, 2, 2), (2, 2, 2)),
            reduce_factors=((2, 4),),
            fuse_levels=2,
        )

    def test_parallel_outer_loop(self):
        sch = lower(self.out, self.config, "cpu")
        assert sch.loops[0].annotation == PARALLEL
        assert sch.loops[0].extent == 4  # 2 * 2 fused outer parts

    def test_fuse_levels_cap(self):
        with pytest.raises(LoweringError):
            lower(self.out, self.config.with_(fuse_levels=3), "cpu")

    def test_vectorize_innermost(self):
        sch = lower(self.out, self.config, "cpu")
        assert sch.loops[-1].annotation == VECTORIZE

    def test_parallel_extent_property(self):
        sch = lower(self.out, self.config, "cpu")
        assert sch.parallel_extent == 4


class TestFpgaLowering:
    def setup_method(self):
        self.out = gemm_compute(8, 8, 8, name="g")
        self.config = NodeConfig(
            spatial_factors=((2, 4), (4, 2)),
            reduce_factors=((8,),),
            fpga_partition=4,
            fpga_pipeline=3,
            fpga_buffer_lines=2,
        )

    def test_pe_loop(self):
        sch = lower(self.out, self.config, "fpga")
        pe_loops = sch.loops_with(PE_PARALLEL)
        assert len(pe_loops) == 1
        assert pe_loops[0].extent == 4 * 2
        assert sch.parallel_extent == 8

    def test_fpga_primitives_recorded(self):
        sch = lower(self.out, self.config, "fpga")
        text = "; ".join(sch.primitives)
        for primitive in ("pipeline", "partition", "buffer"):
            assert primitive in text

    def test_inputs_buffered(self):
        sch = lower(self.out, self.config, "fpga")
        assert len(sch.cached_tensors) == 2


class TestGraphConfigInlining:
    def test_helper_nodes_inlined_by_default(self):
        out = conv2d_compute(1, 2, 6, 6, 2, 3, padding=1, name="c")
        config = NodeConfig(
            spatial_factors=((1, 1, 1, 1), (1, 1, 2, 1), (2, 1, 3, 1), (2, 1, 3, 1)),
            reduce_factors=((2, 1), (3, 1), (3, 1)),
        )
        sch = lower(out, config, "gpu")
        assert len(sch.inlined) == 1  # the padding node
        assert any("inline" in p for p in sch.primitives)

    def test_inlining_can_be_disabled(self):
        out = conv2d_compute(1, 2, 6, 6, 2, 3, padding=1, name="c")
        config = NodeConfig(
            spatial_factors=((1, 1, 1, 1), (1, 1, 2, 1), (2, 1, 3, 1), (2, 1, 3, 1)),
            reduce_factors=((2, 1), (3, 1), (3, 1)),
        )
        graph_config = GraphConfig(inline={"c_pad": False})
        sch = lower(out, config, "gpu", graph_config)
        assert sch.inlined == ()


class TestNodeConfigValidation:
    def test_bad_reorder(self):
        with pytest.raises(ValueError):
            NodeConfig(spatial_factors=((1,),), reorder=9)

    def test_bad_unroll(self):
        with pytest.raises(ValueError):
            NodeConfig(spatial_factors=((1,),), unroll_depth=7)

    def test_bad_factor(self):
        with pytest.raises(ValueError):
            NodeConfig(spatial_factors=((0, 2),))

    def test_as_vector_roundtrips_values(self):
        config = gemm_gpu_config(unroll_depth=16)
        vector = config.as_vector()
        assert 16 in vector
        assert len(vector) > 8

    def test_with_replaces(self):
        config = gemm_gpu_config()
        assert config.with_(unroll_depth=64).unroll_depth == 64
        assert config.unroll_depth == 0  # frozen original untouched


class TestValidateSchedule:
    def test_valid_schedules_pass(self):
        from repro.schedule import validate_schedule

        out = gemm_compute(8, 8, 8, name="g")
        for target, config in (
            ("gpu", gemm_gpu_config()),
            ("cpu", NodeConfig(spatial_factors=((2, 2, 2), (2, 2, 2)),
                               reduce_factors=((2, 4),), fuse_levels=2)),
            ("fpga", NodeConfig(spatial_factors=((2, 4), (4, 2)),
                                reduce_factors=((8,),))),
        ):
            validate_schedule(lower(out, config, target))

    def test_random_space_points_are_bijections(self):
        import numpy as np

        from repro.schedule import validate_schedule
        from repro.space import build_space

        out = gemm_compute(12, 6, 8, name="g")
        rng = np.random.default_rng(0)
        for target in ("gpu", "cpu", "fpga"):
            space = build_space(out, target)
            for _ in range(4):
                config = space.decode(space.random_point(rng))
                validate_schedule(lower(out, config, target))

    def test_corrupted_index_map_detected(self):
        from repro.ir import IntImm
        from repro.schedule import ScheduleValidationError, validate_schedule

        out = gemm_compute(8, 8, 8, name="g")
        scheduled = lower(out, gemm_gpu_config(), "gpu")
        axis = out.op.axes[0]
        scheduled.index_map[axis] = IntImm(0)  # constant: not a bijection
        with pytest.raises(ScheduleValidationError):
            validate_schedule(scheduled)

    def test_quick_report_mentions_bijection(self):
        from repro.schedule import quick_report

        out = gemm_compute(8, 8, 8, name="g")
        lines = quick_report(lower(out, gemm_gpu_config(), "gpu"))
        assert any("bijection" in line for line in lines)
