"""Checkpoint/resume: atomic JSONL snapshots, corrupt-file tolerance, and
bit-identical resume of killed tuning runs (ISSUE #1)."""

import numpy as np
import pytest

from repro import optimize
from repro.__main__ import main as cli_main
from repro.explore import FlexTensorTuner, RandomSampleTuner
from repro.model import V100
from repro.ops import conv2d_compute
from repro.runtime import (
    Evaluator,
    FaultInjector,
    MeasureConfig,
    load_checkpoint,
    save_checkpoint,
)


def smoke_output():
    return conv2d_compute(1, 8, 8, 8, 16, 3, padding=1, name="c")


def smoke_evaluator(**kwargs):
    return Evaluator(smoke_output(), V100, **kwargs)


class TestCheckpointFile:
    def test_roundtrip_and_keep_limit(self, tmp_path):
        path = tmp_path / "run.ckpt"
        for i in range(5):
            save_checkpoint(path, {"trial": i}, keep=3)
        assert load_checkpoint(path)["trial"] == 4
        assert len(path.read_text().splitlines()) == 3
        assert load_checkpoint(path)["version"] == 1

    def test_missing_file_is_none(self, tmp_path):
        assert load_checkpoint(tmp_path / "nope.ckpt") is None

    def test_corrupt_tail_falls_back_to_previous_snapshot(self, tmp_path):
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, {"trial": 7})
        with open(path, "a") as f:
            f.write('{"trial": 8, "truncated-by-a-kill')
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            snapshot = load_checkpoint(path)
        assert snapshot["trial"] == 7

    def test_all_corrupt_is_none(self, tmp_path):
        path = tmp_path / "run.ckpt"
        path.write_text("garbage\n[1, 2]\n")
        with pytest.warns(UserWarning):
            assert load_checkpoint(path) is None

    def test_leftover_partial_tmp_file_is_ignored_and_overwritten(self, tmp_path):
        # A kill mid-write leaves a partial sibling ``.tmp`` file; the
        # real checkpoint must stay authoritative and the next save must
        # clobber the leftover, not append to it.
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, {"trial": 1})
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_text('{"trial": 99, "killed-mid-wr')
        assert load_checkpoint(path)["trial"] == 1
        save_checkpoint(path, {"trial": 2})
        assert load_checkpoint(path)["trial"] == 2
        assert not tmp.exists()

    def test_final_file_truncated_mid_snapshot_falls_back(self, tmp_path):
        # Simulate a filesystem without atomic rename durability: the
        # newest snapshot line itself is cut in half.  Loading must fall
        # back to the previous intact snapshot, and the next save must
        # not be poisoned by the torn line.
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, {"trial": 1})
        save_checkpoint(path, {"trial": 2})
        data = path.read_text()
        path.write_text(data[: len(data) - len(data.splitlines()[-1]) // 2 - 1])
        with pytest.warns(UserWarning, match="corrupt checkpoint"):
            assert load_checkpoint(path)["trial"] == 1
        save_checkpoint(path, {"trial": 3})
        assert load_checkpoint(path)["trial"] == 3

    def test_binary_garbage_degrades_to_previous_snapshot(self, tmp_path):
        # Raw bytes from disk corruption must never raise out of the
        # loader (UnicodeDecodeError) — they are just another bad line.
        path = tmp_path / "run.ckpt"
        save_checkpoint(path, {"trial": 5})
        with open(path, "ab") as f:
            f.write(b"\xff\xfe\x00garbage\x80\n")
        with pytest.warns(UserWarning):
            assert load_checkpoint(path)["trial"] == 5


class TestResumeDeterminism:
    def run_uninterrupted(self, tuner_cls, trials, **ev_kwargs):
        return tuner_cls(smoke_evaluator(**ev_kwargs), seed=7).tune(trials, num_seeds=3)

    def run_killed_then_resumed(self, tuner_cls, kill_at, trials, path, **ev_kwargs):
        # The killed run: checkpoints every trial, dies after ``kill_at``.
        killed = tuner_cls(smoke_evaluator(**ev_kwargs), seed=7)
        killed.tune(kill_at, num_seeds=3, checkpoint=path)
        # A fresh process: new tuner + evaluator, resumed from the file.
        resumed = tuner_cls(smoke_evaluator(**ev_kwargs), seed=7)
        return resumed.tune(trials, num_seeds=3, checkpoint=path, resume=True)

    def test_qmethod_resume_bit_identical(self, tmp_path):
        # Kill at trial 6 > train_period=5, so the resumed run carries
        # trained Q-network weights and optimizer state across the kill.
        full = self.run_uninterrupted(FlexTensorTuner, 10)
        resumed = self.run_killed_then_resumed(
            FlexTensorTuner, 6, 10, tmp_path / "q.ckpt"
        )
        assert resumed.best_point == full.best_point
        assert resumed.best_performance == full.best_performance
        assert resumed.exploration_seconds == full.exploration_seconds
        assert resumed.num_measurements == full.num_measurements
        assert resumed.curve == full.curve

    def test_qmethod_resume_bit_identical_under_faults(self, tmp_path):
        kwargs = dict(
            fault_injector=FaultInjector(
                transient_error_rate=0.3, hang_rate=0.05, jitter=0.1, seed=3
            ),
            measure_config=MeasureConfig(timeout_seconds=0.5),
        )
        full = self.run_uninterrupted(FlexTensorTuner, 8, **kwargs)
        resumed = self.run_killed_then_resumed(
            FlexTensorTuner, 4, 8, tmp_path / "qf.ckpt", **kwargs
        )
        assert resumed.best_point == full.best_point
        assert resumed.best_performance == full.best_performance
        assert resumed.exploration_seconds == full.exploration_seconds
        assert resumed.status_counts == full.status_counts

    def test_random_sample_resume_bit_identical(self, tmp_path):
        full = self.run_uninterrupted(RandomSampleTuner, 6)
        resumed = self.run_killed_then_resumed(
            RandomSampleTuner, 3, 6, tmp_path / "rs.ckpt"
        )
        assert resumed.best_point == full.best_point
        assert resumed.exploration_seconds == full.exploration_seconds

    def test_mismatched_tuner_checkpoint_starts_fresh(self, tmp_path):
        path = tmp_path / "mix.ckpt"
        RandomSampleTuner(smoke_evaluator(), seed=7).tune(2, num_seeds=2, checkpoint=path)
        with pytest.warns(UserWarning, match="written by tuner"):
            result = FlexTensorTuner(smoke_evaluator(), seed=7).tune(
                2, num_seeds=2, checkpoint=path, resume=True
            )
        assert result.found

    def test_resume_without_checkpoint_file_is_fresh_run(self, tmp_path):
        fresh = self.run_uninterrupted(RandomSampleTuner, 3)
        resumed = RandomSampleTuner(smoke_evaluator(), seed=7).tune(
            3, num_seeds=3, checkpoint=tmp_path / "never-written.ckpt", resume=True
        )
        assert resumed.best_point == fresh.best_point


class TestOptimizeWiring:
    def test_optimize_checkpoint_and_resume(self, tmp_path):
        path = tmp_path / "opt.ckpt"
        out = smoke_output()
        uninterrupted = optimize(out, V100, trials=6, seed=5)
        optimize(out, V100, trials=3, seed=5, checkpoint=path)
        assert load_checkpoint(path) is not None
        resumed = optimize(out, V100, trials=6, seed=5, checkpoint=path, resume=True)
        assert resumed.gflops == uninterrupted.gflops
        assert resumed.config == uninterrupted.config
        assert (
            resumed.tuning.exploration_seconds
            == uninterrupted.tuning.exploration_seconds
        )


@pytest.mark.faults
class TestCli:
    def test_selfcheck_faults_smoke(self, capsys):
        assert cli_main(["selfcheck", "--faults", "--trials", "2"]) == 0
        assert "selfcheck passed" in capsys.readouterr().out

    def test_cli_checkpoint_flag(self, tmp_path, capsys):
        path = tmp_path / "cli.ckpt"
        argv = ["gemm", "--n", "8", "--k", "8", "--m", "8",
                "--trials", "2", "--checkpoint", str(path)]
        assert cli_main(argv) == 0
        assert load_checkpoint(path) is not None
        assert cli_main(argv + ["--resume"]) == 0
