"""Additional coverage for the network case-study module."""

import pytest

from repro.model import V100, XEON_E5_2699V4
from repro.nn import (
    LayerSpec,
    Network,
    NetworkResult,
    optimize_network,
    overfeat,
    partition_network,
    yolo_v1,
)
from repro.nn.network import _epilogue_seconds
from repro.ops import Workload, yolo_conv2d_workload


def tiny_layer(multiplicity=1):
    return LayerSpec(
        Workload("C2D", "tiny", dict(
            batch=1, in_channel=8, height=8, width=8, out_channel=8,
            kernel=3, stride=1, padding=1)),
        multiplicity=multiplicity,
    )


class TestNetworkStructure:
    def test_yolo_multiplicities_match_architecture(self):
        net = yolo_v1()
        counts = {l.workload.name: l.multiplicity for l in net.layers}
        # the repeated 1x1/3x3 pairs in the middle of the network
        assert counts["C7"] == 4 and counts["C8"] == 4
        assert counts["C11"] == 2 and counts["C12"] == 2

    def test_batch_parameter_propagates(self):
        net = yolo_v1(batch=4)
        assert all(l.workload.params["batch"] == 4 for l in net.layers)

    def test_overfeat_first_layer_shape(self):
        first = overfeat().layers[0].workload.params
        assert first["in_channel"] == 3
        assert first["kernel"] == 11
        assert first["stride"] == 4

    def test_total_flops_scales_with_multiplicity(self):
        single = Network("a", [tiny_layer(1)])
        double = Network("b", [tiny_layer(2)])
        assert double.total_flops() == 2 * single.total_flops()


class TestEpilogueCost:
    def test_fused_epilogue_is_free(self):
        wl = yolo_conv2d_workload(13)
        assert _epilogue_seconds(wl, V100, fused=True) == 0.0

    def test_unfused_epilogue_scales_with_output(self):
        small = yolo_conv2d_workload(15)   # 7x7 spatial
        large = yolo_conv2d_workload(2)    # 112x112 spatial
        cost_small = _epilogue_seconds(small, V100, fused=False)
        cost_large = _epilogue_seconds(large, V100, fused=False)
        assert cost_large > cost_small > 0

    def test_cpu_device_uses_its_bandwidth(self):
        wl = yolo_conv2d_workload(13)
        gpu_cost = _epilogue_seconds(wl, V100, fused=False)
        cpu_cost = _epilogue_seconds(wl, XEON_E5_2699V4, fused=False)
        assert cpu_cost > gpu_cost  # less bandwidth -> pricier pass


class TestNetworkResults:
    def test_gflops_aggregates_all_layers(self):
        net = Network("t", [tiny_layer(3)])
        result = optimize_network(net, V100, trials=3, seed=0)
        assert isinstance(result, NetworkResult)
        expected = net.total_flops() / result.total_seconds / 1e9
        assert result.gflops == pytest.approx(expected)

    def test_tuner_kwargs_forwarded(self):
        # extra tuner kwargs reach optimize(): different seeding changes
        # the search trajectory but both runs stay valid
        net = Network("t", [tiny_layer(1)])
        a = optimize_network(net, V100, trials=2, seed=0, num_seeds=2)
        b = optimize_network(net, V100, trials=2, seed=0, num_seeds=10)
        assert a.total_seconds > 0 and b.total_seconds > 0
        with pytest.raises(TypeError):
            optimize_network(net, V100, trials=1, seed=0, bogus_option=1)

    def test_methods_recorded(self):
        net = Network("t", [tiny_layer(1)])
        result = optimize_network(net, V100, trials=2, method="random-walk", seed=0)
        assert result.method == "random-walk"
