"""Golden parity suite for the vectorized hot path (ISSUE #7).

Every fast path introduced by the per-point hot-path work must be
*bit-identical* to the scalar code it replaces:

* the array-compiled GBT (``repro.learn.gbt``) against the retained
  scalar implementation in ``repro.learn.reference``;
* ``batch_point_features`` against per-point ``point_features``;
* memoized structural lowering against fresh lowering (index maps,
  loops, primitives, and the numerics of interpretation and codegen);
* the four tuners' trajectories with the fast paths on versus off.

Equality discipline: predictions and features are compared with
``np.array_equal`` (exact), fitted states with recursive ``==`` — which
is exact for every float except that it identifies ``-0.0`` with
``0.0``.  That one identification is deliberate: with mixed-sign zero
*ties* in a feature column, ``np.quantile``'s internal partition may
place ``-0.0``/``0.0`` in either order, so a threshold can differ in
zero sign only.  A zero-sign flip never changes a comparison
(``x <= -0.0`` iff ``x <= 0.0``), so splits, masks and predictions stay
bit-identical either way.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.codegen import batch_point_features, point_features
from repro.codegen.interp import execute_reference, execute_scheduled, random_inputs
from repro.codegen.pycodegen import run_generated
from repro.explore import (
    FlexTensorTuner,
    PMethodTuner,
    RandomSampleTuner,
    RandomWalkTuner,
    SurrogateScreen,
)
from repro.learn import GradientBoostedTrees
from repro.learn.reference import ReferenceGradientBoostedTrees
from repro.model import V100
from repro.ops import conv2d_compute, gemm_compute
from repro.runtime import Evaluator
from repro.schedule import lower
from repro.space import build_space

GBT_KWARGS = dict(num_rounds=8, max_depth=3, learning_rate=0.3)


def states_equal(a, b):
    """Recursive equality; float compares use ``==`` (see module doc)."""
    if isinstance(a, dict) and isinstance(b, dict):
        return a.keys() == b.keys() and all(states_equal(a[k], b[k]) for k in a)
    if isinstance(a, list) and isinstance(b, list):
        return len(a) == len(b) and all(states_equal(p, q) for p, q in zip(a, b))
    return a == b


def training_matrix(seed, ties, discrete):
    """A small regression problem; optionally with tied / discrete
    columns (the regimes where shortlist-vs-exact split scoring and
    quantile interpolation have to agree on exact ties)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(2, 120))
    f = int(rng.integers(1, 40))
    x = rng.normal(size=(n, f))
    if ties:
        x = np.round(x * 2) / 2  # coarse grid: many ties, mixed-sign zeros
    if discrete and f > 2:
        x[:, 0] = rng.integers(0, 3, size=n)
        x[:, 1] = 1.0  # constant column: never splittable
    y = rng.normal(size=n)
    if ties:
        y = np.round(y)
    return x, y, rng.normal(size=(16, f))


class TestGBTParity:
    @settings(max_examples=30, deadline=None, derandomize=True)
    @given(st.integers(0, 10**6), st.booleans(), st.booleans())
    def test_fit_and_predict_match_reference(self, seed, ties, discrete):
        x, y, queries = training_matrix(seed, ties, discrete)
        fast = GradientBoostedTrees(**GBT_KWARGS).fit(x, y)
        slow = ReferenceGradientBoostedTrees(**GBT_KWARGS).fit(x, y)
        assert states_equal(fast.get_state(), slow.get_state())
        assert np.array_equal(fast.predict(queries), slow.predict(queries))
        assert np.array_equal(fast.predict(x), slow.predict(x))

    @settings(max_examples=15, deadline=None, derandomize=True)
    @given(st.integers(0, 10**6), st.booleans())
    def test_state_roundtrip_is_byte_exact(self, seed, ties):
        x, y, queries = training_matrix(seed, ties, False)
        fast = GradientBoostedTrees(**GBT_KWARGS).fit(x, y)
        clone = GradientBoostedTrees(**GBT_KWARGS)
        clone.set_state(json.loads(json.dumps(fast.get_state())))
        assert json.dumps(clone.get_state(), sort_keys=True) == json.dumps(
            fast.get_state(), sort_keys=True
        )
        # The restored ensemble walks the same compiled forest.
        assert np.array_equal(clone.predict(queries), fast.predict(queries))

    def test_mixed_sign_zero_ties_still_predict_identically(self):
        # Regression: columns holding both -0.0 and 0.0 are the one case
        # where fitted thresholds may differ from the reference in zero
        # sign; predictions must not.
        rng = np.random.default_rng(7)
        x = np.round(rng.normal(size=(60, 6)) * 2) / 2
        x[x == 0] = np.where(rng.random(np.count_nonzero(x == 0)) < 0.5, -0.0, 0.0)
        y = rng.normal(size=60)
        fast = GradientBoostedTrees(**GBT_KWARGS).fit(x, y)
        slow = ReferenceGradientBoostedTrees(**GBT_KWARGS).fit(x, y)
        assert states_equal(fast.get_state(), slow.get_state())
        assert np.array_equal(fast.predict(x), slow.predict(x))

    def test_unfitted_and_tiny_inputs(self):
        fast = GradientBoostedTrees(**GBT_KWARGS)
        slow = ReferenceGradientBoostedTrees(**GBT_KWARGS)
        for x, y in (([[1.0]], [2.0]), ([[1.0], [1.0]], [2.0, 2.0])):
            fast.fit(x, y)
            slow.fit(x, y)
            assert states_equal(fast.get_state(), slow.get_state())
            assert np.array_equal(fast.predict(x), slow.predict(x))


WORKLOADS = {
    "gemm": lambda: gemm_compute(16, 16, 16, name="g"),
    "conv2d": lambda: conv2d_compute(1, 8, 8, 8, 8, 3, padding=1, name="c"),
}


class TestBatchFeatureParity:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("target", ["gpu", "cpu", "fpga"])
    def test_rows_match_point_features(self, workload, target):
        space = build_space(WORKLOADS[workload](), target)
        rng = np.random.default_rng(3)
        points = [space.random_point(rng) for _ in range(12)]
        batch = batch_point_features(space, points)
        assert batch.shape[0] == len(points)
        for row, point in zip(batch, points):
            assert np.array_equal(row, point_features(space, point))


class TestMemoizedLoweringParity:
    @pytest.mark.parametrize("workload", sorted(WORKLOADS))
    @pytest.mark.parametrize("target", ["gpu", "cpu", "fpga"])
    def test_memoized_equals_fresh(self, workload, target):
        out = WORKLOADS[workload]()
        space = build_space(out, target)
        rng = np.random.default_rng(5)
        from repro.schedule import LoweringMemo

        memo = LoweringMemo()
        for _ in range(10):
            config = space.decode(space.random_point(rng))
            memoized = lower(out, config, target, memo=memo)
            fresh = lower(out, config, target)
            assert str(dict(memoized.index_map)) == str(dict(fresh.index_map))
            assert [
                (l.var.name, l.extent, l.role, l.annotation) for l in memoized.loops
            ] == [(l.var.name, l.extent, l.role, l.annotation) for l in fresh.loops]
            assert memoized.primitives == fresh.primitives
        assert memo.hits + memo.misses == 10

    def test_interp_and_codegen_numerics_through_memo(self):
        out = WORKLOADS["gemm"]()
        space = build_space(out, "gpu")
        rng = np.random.default_rng(11)
        from repro.schedule import LoweringMemo

        memo = LoweringMemo()
        inputs = random_inputs(out, seed=0)
        expected = execute_reference(out, inputs)
        for _ in range(3):
            config = space.decode(space.random_point(rng))
            scheduled = lower(out, config, "gpu", memo=memo)
            np.testing.assert_allclose(execute_scheduled(scheduled, inputs), expected)
            np.testing.assert_allclose(run_generated(scheduled, inputs), expected)

    def test_index_map_writes_do_not_leak_across_schedules(self):
        # Scheduled objects built from one memoized structure share the
        # lazy index map; a write through one must stay private to it.
        out = WORKLOADS["gemm"]()
        space = build_space(out, "gpu")
        rng = np.random.default_rng(13)
        from repro.ir import IntImm
        from repro.schedule import LoweringMemo

        memo = LoweringMemo()
        config = space.decode(space.random_point(rng))
        first = lower(out, config, "gpu", memo=memo)
        second = lower(out, config, "gpu", memo=memo)
        axis = first.op.axes[0]
        before = str(second.index_map[axis])
        corrupted = IntImm(0)
        first.index_map[axis] = corrupted
        assert first.index_map[axis] is corrupted
        assert str(second.index_map[axis]) == before


TUNERS = {
    "q": FlexTensorTuner,
    "p": PMethodTuner,
    "random-walk": RandomWalkTuner,
    "random-sample": RandomSampleTuner,
}


def run_tuner(tuner_cls, fast):
    ev = Evaluator(WORKLOADS["gemm"](), V100, memoize_lowering=fast)
    result = tuner_cls(ev, seed=0).tune(trials=3, num_seeds=3)
    return (
        result.best_performance,
        result.num_measurements,
        tuple(result.best_point) if result.best_point else None,
    )


class TestTunerTrajectoryParity:
    @pytest.mark.parametrize("method", sorted(TUNERS))
    def test_trajectory_unchanged_by_fast_path(self, method):
        assert run_tuner(TUNERS[method], fast=True) == run_tuner(
            TUNERS[method], fast=False
        )

    def test_surrogate_decisions_unchanged_by_batch_features(self):
        ev = Evaluator(WORKLOADS["conv2d"](), V100)
        rng = np.random.default_rng(17)
        points = []
        while len(points) < 28:
            p = ev.space.random_point(rng)
            if p not in points:
                points.append(p)
        arms = []
        for batch_features in (True, False):
            screen = SurrogateScreen(ev.space, min_train=8, seed=0)
            screen.use_batch_features = batch_features
            for p in points[:20]:
                screen.observe(p, ev.evaluate(p))
            decision = screen.screen(points[20:])
            arms.append(
                (decision.forward, decision.screened, decision.scores,
                 json.dumps(screen.model.get_state(), sort_keys=True))
            )
        assert arms[0] == arms[1]
