"""Semantic preservation: any configuration drawn from the schedule space
must compute exactly what the unscheduled definition computes.

These tests sweep random space points (seeded) for several operators and
targets and compare the *transformed* loop nest — interpreted and as
generated Python — against the numpy references.  This is the correctness
contract the whole optimizer rests on.
"""

import numpy as np
import pytest

from repro.codegen import execute_scheduled, random_inputs, run_generated
from repro.ops import (
    conv1d_transposed_compute,
    conv1d_transposed_reference,
    conv2d_compute,
    conv2d_reference,
    depthwise_conv2d_compute,
    depthwise_conv2d_reference,
    gemm_compute,
    gemm_reference,
    gemv_compute,
    gemv_reference,
)
from repro.schedule import GraphConfig, lower
from repro.space import build_space


def check_random_points(output, reference, target, num_points=6, seed=0):
    space = build_space(output, target)
    rng = np.random.default_rng(seed)
    inputs = random_inputs(output, seed=seed)
    expected = reference(inputs)
    for trial in range(num_points):
        point = space.random_point(rng)
        config = space.decode(point)
        scheduled = lower(output, config, target)
        got = execute_scheduled(scheduled, inputs)
        np.testing.assert_allclose(
            got, expected, atol=1e-9,
            err_msg=f"{target} point {point} changed semantics",
        )


TARGETS = ["gpu", "cpu", "fpga"]


class TestGemmSemantics:
    @pytest.mark.parametrize("target", TARGETS)
    def test_random_points(self, target):
        out = gemm_compute(8, 12, 6, name="g")
        check_random_points(
            out, lambda inp: gemm_reference(inp["g_A"], inp["g_B"]), target
        )


class TestGemvSemantics:
    @pytest.mark.parametrize("target", TARGETS)
    def test_random_points(self, target):
        out = gemv_compute(12, 8, name="g")
        check_random_points(
            out, lambda inp: gemv_reference(inp["g_A"], inp["g_B"]), target
        )


class TestConv2dSemantics:
    @pytest.mark.parametrize("target", TARGETS)
    def test_random_points(self, target):
        out = conv2d_compute(1, 2, 6, 6, 4, 3, stride=1, padding=1, name="c")
        check_random_points(
            out,
            lambda inp: conv2d_reference(inp["c_I"], inp["c_W"], 1, 1),
            target,
            num_points=4,
        )

    def test_strided_conv_gpu(self):
        out = conv2d_compute(1, 2, 8, 8, 2, 3, stride=2, padding=1, name="c")
        check_random_points(
            out,
            lambda inp: conv2d_reference(inp["c_I"], inp["c_W"], 2, 1),
            "gpu",
            num_points=4,
        )


class TestDepthwiseSemantics:
    def test_random_points_gpu(self):
        out = depthwise_conv2d_compute(1, 3, 6, 6, 2, 3, padding=1, name="d")
        check_random_points(
            out,
            lambda inp: depthwise_conv2d_reference(inp["d_I"], inp["d_W"], 2, 1, 1),
            "gpu",
            num_points=4,
        )


class TestTransposedSemantics:
    def test_three_node_graph_gpu(self):
        out = conv1d_transposed_compute(1, 2, 6, 3, 3, stride=2, padding=1, name="t")
        check_random_points(
            out,
            lambda inp: conv1d_transposed_reference(inp["t_I"], inp["t_W"], 2, 1),
            "gpu",
            num_points=4,
        )

    def test_materialized_helpers_still_correct(self):
        # Not inlining the expansion/padding nodes must not change results.
        out = conv1d_transposed_compute(1, 2, 6, 3, 3, stride=2, padding=1, name="t")
        space = build_space(out, "gpu")
        rng = np.random.default_rng(1)
        inputs = random_inputs(out, seed=1)
        expected = conv1d_transposed_reference(inputs["t_I"], inputs["t_W"], 2, 1)
        graph_config = GraphConfig(inline={"t_expand": False, "t_pad": False})
        config = space.decode(space.random_point(rng))
        scheduled = lower(out, config, "gpu", graph_config)
        assert scheduled.inlined == ()
        got = execute_scheduled(scheduled, inputs)
        np.testing.assert_allclose(got, expected, atol=1e-9)


class TestGeneratedCodeSemantics:
    """The emitted Python must agree with the interpreter and references."""

    @pytest.mark.parametrize("target", TARGETS)
    def test_gemm_generated(self, target):
        out = gemm_compute(8, 8, 8, name="g")
        space = build_space(out, target)
        rng = np.random.default_rng(7)
        inputs = random_inputs(out, seed=7)
        expected = gemm_reference(inputs["g_A"], inputs["g_B"])
        for _ in range(3):
            config = space.decode(space.random_point(rng))
            scheduled = lower(out, config, target)
            got = run_generated(scheduled, inputs)
            np.testing.assert_allclose(got, expected, atol=1e-9)

    def test_conv2d_generated_gpu(self):
        out = conv2d_compute(1, 2, 6, 6, 2, 3, padding=1, name="c")
        space = build_space(out, "gpu")
        rng = np.random.default_rng(3)
        inputs = random_inputs(out, seed=3)
        expected = conv2d_reference(inputs["c_I"], inputs["c_W"], 1, 1)
        config = space.decode(space.random_point(rng))
        scheduled = lower(out, config, "gpu")
        got = run_generated(scheduled, inputs)
        np.testing.assert_allclose(got, expected, atol=1e-9)
