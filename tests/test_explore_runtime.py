"""Tests for the measurement harness and the exploration engines."""

import numpy as np
import pytest

from repro.explore import (
    FlexTensorTuner,
    PMethodTuner,
    QAgent,
    RandomSampleTuner,
    RandomWalkTuner,
    normalized_reward,
    select_starting_points,
    selection_probabilities,
)
from repro.model import V100, VU9P, XEON_E5_2699V4
from repro.ops import conv2d_compute, gemm_compute
from repro.runtime import Evaluator
from repro.schedule import GraphConfig
from repro.space import build_space


def small_evaluator(device=V100):
    out = conv2d_compute(1, 8, 8, 8, 16, 3, padding=1, name="c")
    return Evaluator(out, device)


class TestEvaluator:
    def test_caching_avoids_reclock(self):
        ev = small_evaluator()
        rng = np.random.default_rng(0)
        point = ev.space.random_point(rng)
        ev.evaluate(point)
        clock = ev.clock
        ev.evaluate(point)  # cached
        assert ev.clock == clock
        assert ev.num_measurements == 1

    def test_clock_advances_per_measurement(self):
        ev = small_evaluator()
        rng = np.random.default_rng(0)
        clocks = []
        for _ in range(4):
            ev.evaluate(ev.space.random_point(rng))
            clocks.append(ev.clock)
        assert all(b > a for a, b in zip(clocks, clocks[1:]))

    def test_fpga_measurements_cheap(self):
        # model queries, not synthesis: far cheaper than GPU measurement
        gpu = small_evaluator(V100)
        fpga = small_evaluator(VU9P)
        rng = np.random.default_rng(0)
        gpu.evaluate(gpu.space.random_point(rng))
        fpga.evaluate(fpga.space.random_point(rng))
        assert fpga.clock < gpu.clock / 10

    def test_best_tracks_maximum(self):
        ev = small_evaluator()
        rng = np.random.default_rng(1)
        best = 0.0
        for _ in range(10):
            best = max(best, ev.evaluate(ev.space.random_point(rng)))
        point, performance = ev.best()
        assert performance == best
        assert ev.cache[point] == best

    def test_convergence_curve_monotone(self):
        ev = small_evaluator()
        rng = np.random.default_rng(2)
        for _ in range(10):
            ev.evaluate(ev.space.random_point(rng))
        curve = ev.convergence_curve()
        perfs = [p for _, p in curve]
        assert perfs == sorted(perfs)

    def test_time_to_reach(self):
        ev = small_evaluator()
        rng = np.random.default_rng(3)
        for _ in range(10):
            ev.evaluate(ev.space.random_point(rng))
        _, best = ev.best()
        assert ev.time_to_reach(best) is not None
        assert ev.time_to_reach(best * 100) is None

    def test_materialization_overhead_charged(self):
        out = conv2d_compute(1, 8, 8, 8, 16, 3, padding=1, name="c")
        inline = Evaluator(out, V100)
        materialize = Evaluator(
            out, V100, graph_config=GraphConfig(inline={"c_pad": False})
        )
        rng = np.random.default_rng(0)
        point = inline.space.random_point(rng)
        perf_inline = inline.evaluate(point)
        perf_mat = materialize.evaluate(point)
        if perf_inline > 0:
            assert perf_mat < perf_inline


class TestSelectionHeuristic:
    def test_probability_shape(self):
        probs = selection_probabilities([1.0, 2.0, 4.0], gamma=2.0)
        assert probs.argmax() == 2

    def test_all_zero_performances_uniform(self):
        probs = selection_probabilities([0.0, 0.0], gamma=2.0)
        np.testing.assert_allclose(probs, [0.5, 0.5])

    def test_select_starting_points_draws_from_h(self):
        evaluated = {(0,): 1.0, (1,): 10.0, (2,): 5.0}
        rng = np.random.default_rng(0)
        picks = select_starting_points(evaluated, 50, gamma=2.0, rng=rng)
        assert all(p in evaluated for p in picks)
        # the best point should be picked most often
        counts = {p: picks.count(p) for p in evaluated}
        assert counts[(1,)] >= counts[(0,)]

    def test_empty_h_rejected(self):
        with pytest.raises(ValueError):
            select_starting_points({}, 1, 2.0, np.random.default_rng(0))


class TestNormalizedReward:
    def test_improvement_positive(self):
        assert normalized_reward(10.0, 15.0) == pytest.approx(0.5)

    def test_regression_negative(self):
        assert normalized_reward(10.0, 5.0) == pytest.approx(-0.5)

    def test_zero_base_guarded(self):
        assert normalized_reward(0.0, 5.0) == 1.0
        assert normalized_reward(0.0, 0.0) == 0.0


class TestQAgent:
    def test_choose_direction_avoids_visited(self):
        out = gemm_compute(8, 8, 8)
        space = build_space(out, "gpu")
        agent = QAgent(space, seed=0)
        rng = np.random.default_rng(0)
        point = space.random_point(rng)
        visited = {nb for _, nb in space.neighbors(point)}
        assert agent.choose_direction(point, visited, rng) is None
        some = next(iter(visited))
        visited.discard(some)
        choice = agent.choose_direction(point, visited, rng)
        assert choice is not None and choice[1] == some

    def test_training_runs_every_period(self):
        out = gemm_compute(8, 8, 8)
        space = build_space(out, "gpu")
        agent = QAgent(space, train_period=2, seed=0)
        rng = np.random.default_rng(0)
        p = space.random_point(rng)
        d, e = space.neighbors(p)[0]
        agent.record(p, d, e, 0.5)
        agent.end_trial()
        assert not agent.losses
        agent.end_trial()
        assert len(agent.losses) == 1

    def test_epsilon_anneals(self):
        out = gemm_compute(8, 8, 8)
        space = build_space(out, "gpu")
        agent = QAgent(space, epsilon=0.5, epsilon_decay=0.5, epsilon_min=0.05, seed=0)
        for _ in range(10):
            agent.end_trial()
        assert agent.epsilon == pytest.approx(0.05)


class TestTuners:
    @pytest.mark.parametrize("tuner_cls", [
        FlexTensorTuner, PMethodTuner, RandomWalkTuner, RandomSampleTuner,
    ])
    def test_tuner_finds_valid_schedule(self, tuner_cls):
        ev = small_evaluator()
        result = tuner_cls(ev, seed=0).tune(5, num_seeds=3)
        assert result.found
        assert result.best_performance > 0
        assert result.num_measurements >= 3
        assert result.exploration_seconds > 0

    def test_tuning_improves_over_seeds(self):
        ev = small_evaluator()
        tuner = FlexTensorTuner(ev, seed=0)
        tuner._seed(4)
        seeded_best = max(tuner.evaluated.values())
        result = tuner.tune(25, num_seeds=0)
        assert result.best_performance >= seeded_best

    def test_deterministic_given_seed(self):
        r1 = FlexTensorTuner(small_evaluator(), seed=13).tune(8, num_seeds=3)
        r2 = FlexTensorTuner(small_evaluator(), seed=13).tune(8, num_seeds=3)
        assert r1.best_point == r2.best_point
        assert r1.best_performance == r2.best_performance

    def test_pmethod_measures_more_per_trial(self):
        q = FlexTensorTuner(small_evaluator(), seed=0).tune(5, num_seeds=3)
        p = PMethodTuner(small_evaluator(), seed=0).tune(5, num_seeds=3)
        assert p.num_measurements > q.num_measurements

    def test_curve_matches_measurements(self):
        result = FlexTensorTuner(small_evaluator(), seed=0).tune(5, num_seeds=3)
        assert len(result.curve) == result.num_measurements
