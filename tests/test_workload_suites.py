"""Validation of every benchmark workload: each of the ~130 test cases in
the Table 3 suites (plus §6.4 and §6.6) must build, analyze and expose a
well-formed schedule space on every target."""

import pytest

from repro.analysis import analyze
from repro.graph import get_graph
from repro.ops import (
    OPERATOR_NAMES,
    SUITES,
    bcm_workloads,
    overfeat_layers,
    shift_workloads,
    yolo_v1_layers,
)
from repro.space import build_space

ALL_WORKLOADS = [
    (opname, workload)
    for opname in OPERATOR_NAMES
    for workload in SUITES[opname]
]

IDS = [f"{opname}-{wl.name}" for opname, wl in ALL_WORKLOADS]


@pytest.mark.parametrize("opname,workload", ALL_WORKLOADS, ids=IDS)
def test_workload_builds_and_analyzes(opname, workload):
    out = workload.build()
    assert out.size > 0
    result = analyze(out)
    assert result.num_nodes >= 1
    assert workload.flops() > 0
    # graph is well-formed: placeholders feed compute nodes
    graph = get_graph(out)
    assert graph.main_op is out.op
    for op in graph.compute_ops:
        assert len(op.axes) == out.ndim or op is not graph.main_op


@pytest.mark.parametrize("opname", OPERATOR_NAMES)
def test_suite_spaces_nontrivial(opname):
    out = SUITES[opname][0].build()
    for target in ("gpu", "cpu", "fpga"):
        space = build_space(out, target)
        assert space.size > 1
        assert space.num_directions > 0


def test_total_case_count_matches_paper_scale():
    # "totally hundreds of test cases" — Table 3 lists 110 across 12 ops
    total = sum(len(SUITES[op]) for op in OPERATOR_NAMES)
    assert total == 110


def test_special_workloads_build():
    for workload in bcm_workloads() + shift_workloads():
        out = workload.build()
        assert out.size > 0
        assert workload.flops() > 0


def test_network_layer_workloads_build():
    for workload, multiplicity in yolo_v1_layers() + overfeat_layers():
        assert multiplicity >= 1
        assert workload.build().size > 0


def test_workload_str_is_informative():
    workload = SUITES["C2D"][0]
    text = str(workload)
    assert "C2D" in text and "C1" in text
