"""Numeric correctness of every operator: the IR reference executor must
agree with the numpy reference implementation on small shapes."""

import numpy as np
import pytest

from repro.codegen import execute_reference, random_inputs
from repro.ops import (
    bilinear_compute,
    bilinear_reference,
    block_circulant_matmul_compute,
    block_circulant_matmul_reference,
    conv1d_compute,
    conv1d_reference,
    conv1d_transposed_compute,
    conv1d_transposed_reference,
    conv2d_compute,
    conv2d_reference,
    conv2d_transposed_compute,
    conv2d_transposed_reference,
    conv3d_compute,
    conv3d_reference,
    conv3d_transposed_compute,
    conv3d_transposed_reference,
    conv_out_size,
    depthwise_conv2d_compute,
    depthwise_conv2d_reference,
    gemm_compute,
    gemm_reference,
    gemv_compute,
    gemv_reference,
    shift_compute,
    shift_reference,
    transposed_out_size,
)


def run_ir(output, seed=0):
    inputs = random_inputs(output, seed=seed)
    return execute_reference(output, inputs), inputs


class TestLinalg:
    def test_gemv(self):
        out = gemv_compute(5, 7, name="g")
        got, inputs = run_ir(out)
        np.testing.assert_allclose(got, gemv_reference(inputs["g_A"], inputs["g_B"]))

    def test_gemm(self):
        out = gemm_compute(4, 6, 5, name="g")
        got, inputs = run_ir(out)
        np.testing.assert_allclose(got, gemm_reference(inputs["g_A"], inputs["g_B"]))

    def test_bilinear(self):
        out = bilinear_compute(3, 4, 5, 6, name="b")
        got, inputs = run_ir(out)
        np.testing.assert_allclose(
            got, bilinear_reference(inputs["b_A"], inputs["b_B"], inputs["b_C"])
        )


class TestConv1d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1), (2, 2)])
    def test_conv1d(self, stride, padding):
        out = conv1d_compute(2, 3, 10, 4, 3, stride=stride, padding=padding, name="c")
        got, inputs = run_ir(out)
        ref = conv1d_reference(inputs["c_I"], inputs["c_W"], stride, padding)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    @pytest.mark.parametrize("stride,padding", [(1, 0), (2, 1), (2, 0)])
    def test_transposed(self, stride, padding):
        out = conv1d_transposed_compute(1, 3, 6, 2, 3, stride=stride, padding=padding, name="t")
        got, inputs = run_ir(out)
        ref = conv1d_transposed_reference(inputs["t_I"], inputs["t_W"], stride, padding)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_padding_too_large_rejected(self):
        with pytest.raises(ValueError):
            conv1d_transposed_compute(1, 1, 4, 1, 3, stride=1, padding=3)


class TestConv2d:
    @pytest.mark.parametrize("stride,padding", [(1, 0), (1, 1), (2, 1)])
    def test_plain(self, stride, padding):
        out = conv2d_compute(1, 3, 6, 6, 4, 3, stride=stride, padding=padding, name="c")
        got, inputs = run_ir(out)
        ref = conv2d_reference(inputs["c_I"], inputs["c_W"], stride, padding)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_dilated(self):
        out = conv2d_compute(1, 2, 8, 8, 3, 3, padding=2, dilation=2, name="c")
        got, inputs = run_ir(out)
        ref = conv2d_reference(inputs["c_I"], inputs["c_W"], 1, 2, dilation=2)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    @pytest.mark.parametrize("groups", [2, 4])
    def test_grouped(self, groups):
        out = conv2d_compute(1, 4, 6, 6, 8, 3, padding=1, groups=groups, name="c")
        got, inputs = run_ir(out)
        ref = conv2d_reference(inputs["c_I"], inputs["c_W"], 1, 1, groups=groups)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_groups_must_divide(self):
        with pytest.raises(ValueError):
            conv2d_compute(1, 3, 6, 6, 4, 3, groups=2)

    @pytest.mark.parametrize("multiplier", [1, 2])
    def test_depthwise(self, multiplier):
        out = depthwise_conv2d_compute(1, 3, 6, 6, multiplier, 3, padding=1, name="d")
        got, inputs = run_ir(out)
        ref = depthwise_conv2d_reference(inputs["d_I"], inputs["d_W"], multiplier, 1, 1)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    @pytest.mark.parametrize("stride", [1, 2])
    def test_transposed(self, stride):
        out = conv2d_transposed_compute(1, 2, 4, 4, 3, 3, stride=stride, padding=1, name="t")
        got, inputs = run_ir(out)
        ref = conv2d_transposed_reference(inputs["t_I"], inputs["t_W"], stride, 1)
        np.testing.assert_allclose(got, ref, atol=1e-10)


class TestConv3d:
    def test_plain(self):
        out = conv3d_compute(1, 2, 4, 4, 4, 3, 2, stride=1, padding=1, name="c")
        got, inputs = run_ir(out)
        ref = conv3d_reference(inputs["c_I"], inputs["c_W"], 1, 1)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_transposed(self):
        out = conv3d_transposed_compute(1, 2, 3, 3, 3, 2, 2, stride=2, padding=0, name="t")
        got, inputs = run_ir(out)
        ref = conv3d_transposed_reference(inputs["t_I"], inputs["t_W"], 2, 0)
        np.testing.assert_allclose(got, ref, atol=1e-10)


class TestSpecialOperators:
    @pytest.mark.parametrize("block", [2, 4])
    def test_bcm(self, block):
        out = block_circulant_matmul_compute(2, 8, 8, block, name="m")
        got, inputs = run_ir(out)
        ref = block_circulant_matmul_reference(inputs["m_X"], inputs["m_W"], block)
        np.testing.assert_allclose(got, ref, atol=1e-10)

    def test_bcm_block_must_divide(self):
        with pytest.raises(ValueError):
            block_circulant_matmul_compute(1, 9, 8, 4)

    def test_shift(self):
        out = shift_compute(2, 9, 5, 5, name="s")
        got, inputs = run_ir(out)
        np.testing.assert_allclose(got, shift_reference(inputs["s_I"]), atol=1e-12)

    def test_shift_is_zero_flop_permutation(self):
        # every output element equals some input element (or padding zero)
        out = shift_compute(1, 9, 4, 4, name="s")
        got, inputs = run_ir(out, seed=3)
        values = set(np.round(inputs["s_I"].ravel(), 9)) | {0.0}
        assert all(np.round(v, 9) in values for v in got.ravel())


class TestOutputSizes:
    @pytest.mark.parametrize(
        "size,kernel,stride,padding,dilation,expected",
        [
            (8, 3, 1, 0, 1, 6),
            (8, 3, 1, 1, 1, 8),
            (8, 3, 2, 1, 1, 4),
            (9, 3, 1, 2, 2, 9),
        ],
    )
    def test_conv_out_size(self, size, kernel, stride, padding, dilation, expected):
        assert conv_out_size(size, kernel, stride, padding, dilation) == expected

    @pytest.mark.parametrize(
        "size,kernel,stride,padding,expected",
        [(4, 3, 1, 0, 6), (4, 3, 2, 1, 7), (5, 4, 2, 0, 12)],
    )
    def test_transposed_out_size(self, size, kernel, stride, padding, expected):
        assert transposed_out_size(size, kernel, stride, padding) == expected

    def test_transpose_inverts_conv_shape(self):
        # transposed conv restores the pre-conv spatial size
        size, kernel, stride, padding = 9, 3, 2, 1
        down = conv_out_size(size, kernel, stride, padding)
        assert transposed_out_size(down, kernel, stride, padding) == size
