"""Supervised measurement cluster (ISSUE #5): seeded node faults,
lease lifecycle, speculative re-execution, breaker state machine,
chaos-determinism of tuning results, serial degradation bit-identity,
and checkpoint/resume of the full supervisor state."""

import json

import numpy as np
import pytest

from repro import optimize
from repro.__main__ import main as cli_main
from repro.explore import FlexTensorTuner, RandomSampleTuner
from repro.model import V100
from repro.ops import conv2d_compute
from repro.runtime import (
    BatchEngine,
    BreakerState,
    ClusterConfig,
    ClusterSupervisor,
    Evaluator,
    NodeFault,
    NodeFaultInjector,
)


def smoke_output():
    return conv2d_compute(1, 8, 8, 8, 16, 3, padding=1, name="c")


def smoke_evaluator(**kwargs):
    return Evaluator(smoke_output(), V100, **kwargs)


def clustered_tuner(tuner_cls=FlexTensorTuner, seed=7, workers=4,
                    node_faults=None, config=None, supervisor=None, **ev_kwargs):
    ev = smoke_evaluator(**ev_kwargs)
    if supervisor is None:
        supervisor = ClusterSupervisor(
            config or ClusterConfig(workers=workers),
            node_faults=node_faults, seed=seed,
        )
    engine = BatchEngine(ev, workers=supervisor.config.workers, cluster=supervisor)
    return tuner_cls(ev, seed=seed, engine=engine)


class TestNodeFaultInjector:
    def test_decide_is_a_pure_function_of_the_seed(self):
        a = NodeFaultInjector(crash_rate=0.2, stale_rate=0.2, slow_rate=0.2,
                              flaky_rate=0.2, seed=11)
        b = NodeFaultInjector(crash_rate=0.2, stale_rate=0.2, slow_rate=0.2,
                              flaky_rate=0.2, seed=11)
        rolls = [(w, s) for w in range(4) for s in range(32)]
        assert [a.decide(w, s) for w, s in rolls] == [b.decide(w, s) for w, s in rolls]
        # order of queries must not matter either
        assert [a.decide(w, s) for w, s in reversed(rolls)] == [
            b.decide(w, s) for w, s in reversed(rolls)
        ]

    def test_all_fault_kinds_reachable(self):
        inj = NodeFaultInjector(crash_rate=0.25, stale_rate=0.25, slow_rate=0.25,
                                flaky_rate=0.20, seed=0)
        kinds = {inj.decide(w, s) for w in range(4) for s in range(64)}
        assert kinds == set(NodeFault)

    def test_zero_rates_never_fault(self):
        inj = NodeFaultInjector(seed=5)
        assert all(
            inj.decide(w, s) is NodeFault.NONE for w in range(4) for s in range(64)
        )

    def test_rates_must_sum_below_one(self):
        with pytest.raises(ValueError):
            NodeFaultInjector(crash_rate=0.6, flaky_rate=0.6)
        with pytest.raises(ValueError):
            NodeFaultInjector(slow_rate=0.1, slow_factor=0.5)

    def test_dead_after_scripts_a_permanent_kill(self):
        inj = NodeFaultInjector(seed=0, dead_after={1: 3})
        assert not inj.is_fatal(1, 2)
        assert inj.is_fatal(1, 3)
        assert inj.is_fatal(1, 7)
        assert not inj.is_fatal(0, 100)
        assert inj.decide(1, 3) is NodeFault.CRASH

    def test_crash_fraction_is_deterministic_and_partial(self):
        inj = NodeFaultInjector(crash_rate=0.5, seed=9)
        for w, s in [(0, 0), (1, 4), (3, 17)]:
            f = inj.crash_fraction(w, s)
            assert f == inj.crash_fraction(w, s)
            assert 0.0 < f < 1.0


class TestSupervisorScheduling:
    def test_fault_free_batch_matches_lpt_billing(self):
        sup = ClusterSupervisor(ClusterConfig(workers=3), seed=0)
        costs = [0.5, 0.2, 0.9, 0.1, 0.4]
        plan = sup.schedule_batch(costs, clock=0.0)
        # Without faults every lease completes on its first worker, so
        # the plan bills exactly the nominal work and the makespan equals
        # the greedy first-free assignment the LPT billing would produce.
        assert plan.busy_seconds == pytest.approx(sum(costs))
        loads = [0.0, 0.0, 0.0]
        expected = []
        for c in costs:
            i = loads.index(min(loads))
            loads[i] += c
            expected.append(loads[i])
        assert plan.completions == pytest.approx(expected)
        assert plan.makespan == pytest.approx(max(loads))
        assert sup.num_leases == len(costs)
        assert sup.num_reassigned == 0

    def test_flaky_lease_is_dropped_and_reassigned(self):
        inj = NodeFaultInjector(flaky_rate=1.0, seed=0)
        sup = ClusterSupervisor(
            ClusterConfig(workers=2, max_reassign=50), node_faults=inj, seed=0
        )
        plan = sup.schedule_batch([0.3, 0.3], clock=0.0)
        # flaky_rate=1.0 means every lease delivers garbage: the job is
        # dropped + requeued until force-accept, breaker trips, or the
        # serial drain picks it up — but the batch always completes.
        assert plan is not None
        assert all(c > 0 for c in plan.completions)
        assert sup.num_flaky_drops > 0
        assert sup.num_reassigned > 0
        assert sup.num_forced > 0 or sup.num_serial_drained > 0
        # every drop was billed: busy exceeds the nominal work
        assert plan.busy_seconds > 0.6

    def test_max_reassign_force_accepts_the_outcome(self):
        # max_reassign=1 forces acceptance before any breaker can trip.
        inj = NodeFaultInjector(flaky_rate=1.0, seed=0)
        sup = ClusterSupervisor(
            ClusterConfig(workers=2, max_reassign=1), node_faults=inj, seed=0
        )
        plan = sup.schedule_batch([0.3, 0.3], clock=0.0)
        assert plan is not None
        assert sup.num_forced == 2
        assert all(c > 0 for c in plan.completions)

    def test_lease_expiry_reassigns_slow_nodes(self):
        # slow_factor far beyond lease_factor: every slow lease blows its
        # deadline and must be cancelled + reassigned.
        inj = NodeFaultInjector(slow_rate=0.5, slow_factor=100.0, seed=3)
        sup = ClusterSupervisor(
            ClusterConfig(workers=2, lease_min_seconds=0.0), node_faults=inj, seed=0
        )
        plan = sup.schedule_batch([0.2] * 12, clock=0.0)
        assert plan is not None
        assert sup.num_expired > 0
        assert sup.num_reassigned > 0
        assert all(c > 0 for c in plan.completions)

    def test_crash_detection_waits_for_heartbeat_timeout(self):
        inj = NodeFaultInjector(seed=0, dead_after={0: 0})
        cfg = ClusterConfig(workers=2, heartbeat_timeout=0.25)
        sup = ClusterSupervisor(cfg, node_faults=inj, seed=0)
        plan = sup.schedule_batch([1.0, 1.0, 1.0], clock=0.0)
        assert plan is not None
        assert sup.workers[0].dead
        assert sup.num_crashes == 1
        # the fatally crashed worker's job was recovered elsewhere
        assert all(c > 0 for c in plan.completions)

    def test_stale_heartbeat_ghost_is_billed_in_full(self):
        inj = NodeFaultInjector(stale_rate=1.0, seed=0)
        cfg = ClusterConfig(workers=2, heartbeat_timeout=0.25, max_reassign=50)
        sup = ClusterSupervisor(cfg, node_faults=inj, seed=0)
        plan = sup.schedule_batch([1.0], clock=0.0)
        assert plan is not None
        assert sup.num_stale > 0
        # the ghost runs to completion even though its result is dropped
        assert plan.busy_seconds >= 1.0

    def test_all_workers_dead_returns_none(self):
        sup = ClusterSupervisor(ClusterConfig(workers=2), seed=0)
        for w in sup.workers:
            w.dead = True
        assert sup.schedule_batch([0.1], clock=0.0) is None
        assert not sup.any_available(0.0)

    def test_serial_drain_completes_orphaned_jobs(self):
        # Single worker dies fatally on its first lease: the rest of the
        # batch has nowhere to run and must drain serially.
        inj = NodeFaultInjector(seed=0, dead_after={0: 0})
        sup = ClusterSupervisor(ClusterConfig(workers=1), node_faults=inj, seed=0)
        plan = sup.schedule_batch([0.2, 0.2, 0.2], clock=0.0)
        assert plan is not None
        assert sup.num_serial_drained > 0
        assert all(c > 0 for c in plan.completions)
        assert plan.makespan == pytest.approx(max(plan.completions))

    # seed 20 makes worker 0's first lease SLOW (50x) while worker 1
    # stays clean — a deterministic straggler for the speculation tests.
    SLOW_FIRST = dict(slow_rate=0.3, slow_factor=50.0, seed=20)

    def spec_supervisor(self, **cfg_kwargs):
        cfg = ClusterConfig(
            workers=2, lease_factor=1000.0, straggler_min_samples=5, **cfg_kwargs
        )
        sup = ClusterSupervisor(
            cfg, node_faults=NodeFaultInjector(**self.SLOW_FIRST), seed=0
        )
        for _ in range(8):
            sup._note_duration(0.1)  # arm the straggler threshold at 0.1
        return sup

    def test_speculation_launches_and_first_result_wins(self):
        # Job 0 straggles on worker 0 (50x slow); worker 1 churns the
        # fast jobs, goes idle past the threshold, and picks up a
        # speculative copy of job 0 — whose result wins long before the
        # straggler would have finished.
        sup = self.spec_supervisor()
        plan = sup.schedule_batch([0.1, 0.1, 0.1, 0.1], clock=0.0)
        assert plan is not None
        assert sup.num_speculative == 1
        assert sup.num_speculative_wins == 1
        assert max(plan.completions) < 0.1 * 50.0
        # the cancelled straggler's partial work is still billed
        assert plan.busy_seconds > sum([0.1] * 4)

    def test_speculation_can_be_disabled(self):
        sup = self.spec_supervisor(speculate=False)
        plan = sup.schedule_batch([0.1, 0.1, 0.1, 0.1], clock=0.0)
        assert sup.num_speculative == 0
        # without speculation the batch waits for the straggler
        assert plan.makespan == pytest.approx(0.1 * 50.0)

    def test_straggler_threshold_percentile(self):
        sup = ClusterSupervisor(ClusterConfig(straggler_min_samples=5), seed=0)
        assert sup.straggler_threshold() is None
        for d in [1.0, 2.0, 3.0, 4.0]:
            sup._note_duration(d)
        assert sup.straggler_threshold() is None  # below min samples
        sup._note_duration(5.0)
        assert sup.straggler_threshold() == 5.0  # p95 of 5 samples
        sup2 = ClusterSupervisor(
            ClusterConfig(straggler_pct=50.0, straggler_min_samples=5), seed=0
        )
        for d in [1.0, 2.0, 3.0, 4.0, 5.0]:
            sup2._note_duration(d)
        assert sup2.straggler_threshold() == 3.0

    def test_duration_window_is_bounded(self):
        sup = ClusterSupervisor(ClusterConfig(duration_window=8), seed=0)
        for i in range(100):
            sup._note_duration(float(i))
        assert len(sup._durations) == 8
        assert sup._durations == [float(i) for i in range(92, 100)]

    def test_invalid_configs_raise(self):
        with pytest.raises(ValueError):
            ClusterSupervisor(ClusterConfig(workers=0))
        with pytest.raises(ValueError):
            ClusterSupervisor(ClusterConfig(heartbeat_timeout=0.0))


class TestBreakerStateMachine:
    def make(self, **kwargs):
        cfg = ClusterConfig(workers=1, **kwargs)
        return ClusterSupervisor(cfg, seed=0)

    def test_repeated_failures_trip_closed_to_open(self):
        sup = self.make(health_alpha=0.25, open_threshold=0.45)
        w = sup.workers[0]
        clock = 0.0
        while w.breaker is BreakerState.CLOSED:
            sup._health_down(w, clock)
            clock += 1.0
        assert w.breaker is BreakerState.OPEN
        assert w.trips == 1
        assert sup.num_breaker_trips == 1
        assert w.health < sup.config.open_threshold

    def test_open_is_not_admittable_until_cooldown(self):
        sup = self.make(cooldown_seconds=5.0)
        w = sup.workers[0]
        w.breaker = BreakerState.OPEN
        w.opened_at = 10.0
        assert not sup._admittable(w, 12.0)
        assert w.breaker is BreakerState.OPEN
        assert sup._admittable(w, 15.0)  # cooled down: promoted to probing
        assert w.breaker is BreakerState.PROBING
        assert w.health >= sup.config.probe_health

    def test_successful_probe_closes_the_breaker(self):
        sup = self.make()
        w = sup.workers[0]
        w.breaker = BreakerState.PROBING
        sup._health_up(w, 1.0)
        assert w.breaker is BreakerState.CLOSED
        assert sup.num_probes_passed == 1

    def test_failed_probe_reopens_immediately(self):
        sup = self.make()
        w = sup.workers[0]
        w.breaker = BreakerState.PROBING
        w.health = 0.9  # health alone would not trip a CLOSED breaker
        sup._health_down(w, 3.0)
        assert w.breaker is BreakerState.OPEN
        assert w.opened_at == 3.0
        assert sup.num_reopened == 1

    def test_dead_worker_is_never_admittable(self):
        sup = self.make()
        w = sup.workers[0]
        w.dead = True
        assert not sup._admittable(w, 1e9)

    def test_health_is_an_ewma(self):
        sup = self.make(health_alpha=0.5)
        w = sup.workers[0]
        sup._health_down(w, 0.0)
        assert w.health == pytest.approx(0.5)
        sup._health_up(w, 1.0)
        assert w.health == pytest.approx(0.75)


class TestSupervisorCheckpoint:
    def chaos_supervisor(self, seed=4):
        inj = NodeFaultInjector(crash_rate=0.1, stale_rate=0.1, slow_rate=0.2,
                                flaky_rate=0.2, seed=seed)
        return ClusterSupervisor(ClusterConfig(workers=3), node_faults=inj, seed=seed)

    def test_state_roundtrips_through_json(self):
        sup = self.chaos_supervisor()
        for clock in range(6):
            sup.schedule_batch([0.2, 0.4, 0.3], clock=float(clock))
        state = json.loads(json.dumps(sup.get_state()))
        restored = self.chaos_supervisor()
        restored.set_state(state)
        assert restored.get_state() == sup.get_state()
        assert restored.stats() == sup.stats()

    def test_resume_continues_bit_identically(self):
        full = self.chaos_supervisor()
        plans_full = [
            full.schedule_batch([0.2, 0.4, 0.3, 0.5], clock=float(c))
            for c in range(10)
        ]
        half = self.chaos_supervisor()
        for c in range(5):
            half.schedule_batch([0.2, 0.4, 0.3, 0.5], clock=float(c))
        resumed = self.chaos_supervisor()
        resumed.set_state(json.loads(json.dumps(half.get_state())))
        plans_resumed = [
            resumed.schedule_batch([0.2, 0.4, 0.3, 0.5], clock=float(c))
            for c in range(5, 10)
        ]
        for a, b in zip(plans_full[5:], plans_resumed):
            assert a.completions == b.completions
            assert a.makespan == b.makespan
            assert a.busy_seconds == b.busy_seconds
        assert full.stats() == resumed.stats()


class TestEngineIntegration:
    CHAOS = dict(crash_rate=0.05, stale_rate=0.05, slow_rate=0.1, flaky_rate=0.1)

    def test_chaos_changes_timing_but_not_results(self):
        clean = clustered_tuner(seed=7).tune(8, num_seeds=3)
        chaos = clustered_tuner(
            seed=7, node_faults=NodeFaultInjector(seed=13, **self.CHAOS)
        ).tune(8, num_seeds=3)
        assert chaos.best_point == clean.best_point
        assert chaos.best_performance == clean.best_performance
        assert chaos.num_measurements == clean.num_measurements
        # timing is fair game: chaos reorders completions and stretches
        # the makespan, so the curve's timestamps may differ — but the
        # final best must not.
        assert chaos.cluster["num_reassigned"] > 0
        assert chaos.exploration_seconds >= clean.exploration_seconds

    def test_killing_all_but_one_worker_preserves_results(self):
        clean = clustered_tuner(seed=7).tune(8, num_seeds=3)
        doomed = clustered_tuner(
            seed=7,
            node_faults=NodeFaultInjector(seed=7, dead_after={1: 2, 2: 2, 3: 2}),
        ).tune(8, num_seeds=3)
        assert doomed.cluster["alive"] == 1
        assert doomed.best_point == clean.best_point
        assert doomed.best_performance == clean.best_performance
        assert doomed.num_measurements == clean.num_measurements

    def test_single_worker_cluster_is_bit_identical_to_serial(self):
        serial = FlexTensorTuner(smoke_evaluator(), seed=7).tune(6, num_seeds=3)
        clustered = clustered_tuner(seed=7, workers=1).tune(6, num_seeds=3)
        assert clustered.best_point == serial.best_point
        assert clustered.best_performance == serial.best_performance
        assert clustered.exploration_seconds == serial.exploration_seconds
        assert clustered.curve == serial.curve

    def test_all_breakers_open_degrades_to_serial_bit_identically(self):
        serial = FlexTensorTuner(smoke_evaluator(), seed=7).tune(6, num_seeds=3)
        sup = ClusterSupervisor(ClusterConfig(workers=4, cooldown_seconds=1e12), seed=7)
        for w in sup.workers:
            w.breaker = BreakerState.OPEN
            w.opened_at = 0.0
        degraded = clustered_tuner(seed=7, supervisor=sup).tune(6, num_seeds=3)
        assert sup.num_degraded_batches > 0
        assert sup.num_leases == 0
        assert degraded.best_point == serial.best_point
        assert degraded.best_performance == serial.best_performance
        assert degraded.exploration_seconds == serial.exploration_seconds

    def test_chaos_kill_and_resume_is_bit_identical(self, tmp_path):
        faults = lambda: NodeFaultInjector(seed=13, **self.CHAOS)  # noqa: E731
        path = tmp_path / "cluster.ckpt"
        full = clustered_tuner(seed=7, node_faults=faults()).tune(8, num_seeds=3)
        killed = clustered_tuner(seed=7, node_faults=faults())
        killed.tune(4, num_seeds=3, checkpoint=path)
        resumed_tuner = clustered_tuner(seed=7, node_faults=faults())
        resumed = resumed_tuner.tune(8, num_seeds=3, checkpoint=path, resume=True)
        assert resumed.best_point == full.best_point
        assert resumed.best_performance == full.best_performance
        assert resumed.exploration_seconds == full.exploration_seconds
        assert resumed.curve == full.curve
        # the supervisor state itself resumed bit-identically
        assert resumed.cluster == full.cluster
        assert resumed_tuner.engine.cluster.get_state() is not None

    def test_speculation_fires_under_slow_nodes_without_changing_results(self):
        clean = clustered_tuner(seed=3).tune(8, num_seeds=3)
        slow = clustered_tuner(
            seed=3, node_faults=NodeFaultInjector(slow_rate=0.3, slow_factor=8.0, seed=5)
        ).tune(8, num_seeds=3)
        assert slow.cluster["num_speculative"] > 0
        assert slow.best_point == clean.best_point
        assert slow.best_performance == clean.best_performance

    def test_random_sample_tuner_also_survives_chaos(self):
        clean = clustered_tuner(RandomSampleTuner, seed=11).tune(6, num_seeds=3)
        chaos = clustered_tuner(
            RandomSampleTuner, seed=11,
            node_faults=NodeFaultInjector(seed=4, **self.CHAOS),
        ).tune(6, num_seeds=3)
        assert chaos.best_point == clean.best_point
        assert chaos.best_performance == clean.best_performance

    def test_engine_stats_and_report_include_cluster(self):
        tuner = clustered_tuner(seed=7)
        tuner.tune(4, num_seeds=2)
        assert "cluster" in tuner.engine.stats()
        assert "cluster:" in tuner.engine.report()


class TestOptimizeWiring:
    def test_optimize_cluster_flag_and_summary(self):
        result = optimize(
            smoke_output(), V100, trials=4, seed=5, workers=4, cluster=True,
            node_faults=NodeFaultInjector(crash_rate=0.1, flaky_rate=0.1, seed=2),
        )
        assert result.found
        assert result.tuning.cluster is not None
        assert result.tuning.cluster["num_leases"] > 0
        assert "cluster:" in result.summary()

    def test_optimize_without_cluster_has_no_cluster_stats(self):
        result = optimize(smoke_output(), V100, trials=3, seed=5)
        assert result.tuning.cluster is None
        assert "cluster:" not in result.summary()

    def test_straggler_pct_passthrough(self):
        result = optimize(
            smoke_output(), V100, trials=3, seed=5, workers=4, cluster=True,
            straggler_pct=75.0,
        )
        assert result.tuning.cluster["straggler_pct"] == 75.0


@pytest.mark.faults
class TestCli:
    def test_selfcheck_cluster_smoke(self, capsys):
        assert cli_main(["selfcheck", "--cluster", "--trials", "3"]) == 0
        out = capsys.readouterr().out
        assert "chaos parity: ok" in out
        assert "cluster selfcheck passed" in out

    def test_cli_cluster_flag_prints_health_block(self, capsys):
        argv = ["gemm", "--n", "8", "--k", "8", "--m", "8",
                "--trials", "2", "--workers", "4", "--cluster"]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "measurement health" in out
        assert "cluster:" in out


class TestHealthReport:
    def test_health_block_without_cluster(self, capsys):
        argv = ["gemm", "--n", "8", "--k", "8", "--m", "8", "--trials", "2"]
        assert cli_main(argv) == 0
        out = capsys.readouterr().out
        assert "measurement health" in out
        assert "retries" in out
