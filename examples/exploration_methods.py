"""Comparing exploration strategies on one schedule space.

Runs the Q-method (FlexTensor), the P-method, a random walk and the
AutoTVM baseline on the same convolution layer and draws their
convergence (best GFLOPS vs simulated tuning time) as an ASCII chart —
the single-panel version of the paper's Figure 7.

Run:  python examples/exploration_methods.py
"""

from repro.baselines import AutoTVMTuner, build_template_space
from repro.explore import FlexTensorTuner, PMethodTuner, RandomWalkTuner
from repro.model import V100
from repro.ops import yolo_conv2d_workload
from repro.runtime import Evaluator


def run_all(workload):
    out = workload.build()
    curves = {}
    ev = Evaluator(out, V100)
    curves["q-method"] = FlexTensorTuner(
        ev, num_starting_points=8, steps=6, seed=0
    ).tune(60, num_seeds=16).curve
    ev = Evaluator(out, V100)
    curves["p-method"] = PMethodTuner(ev, seed=0).tune(8, num_seeds=16).curve
    ev = Evaluator(out, V100)
    curves["random-walk"] = RandomWalkTuner(ev, seed=0).tune(120, num_seeds=16).curve
    ev = Evaluator(out, V100, space=build_template_space(out, "gpu"))
    curves["autotvm"] = AutoTVMTuner(ev, model_fit_seconds=8.0, seed=0).tune(25).curve
    return curves


def best_at(curve, t):
    best = 0.0
    for clock, perf in curve:
        if clock > t:
            break
        best = perf
    return best


def ascii_chart(curves, width=64, height=14):
    t_max = max(curve[-1][0] for curve in curves.values())
    p_max = max(perf for curve in curves.values() for _, perf in curve)
    glyphs = {"q-method": "Q", "p-method": "P", "random-walk": "r", "autotvm": "A"}
    grid = [[" "] * width for _ in range(height)]
    for name, curve in curves.items():
        for col in range(width):
            t = (col + 1) / width * t_max
            perf = best_at(curve, t)
            row = height - 1 - int(perf / p_max * (height - 1))
            if grid[row][col] == " ":
                grid[row][col] = glyphs[name]
    print(f"best GFLOPS (peak {p_max:.0f}) vs simulated time (0..{t_max:.0f}s)")
    for row in grid:
        print("|" + "".join(row))
    print("+" + "-" * width)
    print("legend: Q=q-method  P=p-method  r=random-walk  A=autotvm")


def main():
    workload = yolo_conv2d_workload(8)
    print(f"workload: {workload}\n")
    curves = run_all(workload)
    for name, curve in curves.items():
        final = curve[-1][1] if curve else 0.0
        print(f"{name:>12}: {len(curve):4d} measurements, final {final:7.0f} GFLOPS")
    print()
    ascii_chart(curves)


if __name__ == "__main__":
    main()
