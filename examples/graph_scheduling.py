"""Scheduling multi-node graphs: softmax and layer normalization.

Table 1's operators have one main nested-loop node (plus inlineable
padding).  Softmax and layernorm are different: their helper nodes are
*reductions* (row max/sum, mean/variance), which can never be inlined —
each needs its own schedule.  ``optimize_graph`` runs Algorithm 1 in
full: post-order traversal, one schedule search per non-inlinable node.

Run:  python examples/graph_scheduling.py
"""

import numpy as np

from repro import optimize_graph
from repro.codegen import execute_reference, random_inputs
from repro.graph import get_graph
from repro.ir import format_operation
from repro.model import V100
from repro.ops import (
    layernorm_compute,
    layernorm_reference,
    softmax_compute,
    softmax_reference,
)


def main():
    out = softmax_compute(256, 1024, name="softmax")
    graph = get_graph(out)
    print("softmax mini-graph (post order):")
    for op in graph.compute_ops:
        print(f"\n# node {op.name}")
        print(format_operation(op))

    # correctness of the whole graph on a small instance
    small = softmax_compute(8, 16, name="softmax")
    inputs = random_inputs(small, seed=0)
    got = execute_reference(small, inputs)
    assert np.allclose(got, softmax_reference(inputs["softmax_X"]))
    print("\nnumeric check: OK")

    print("\n== optimizing every node for the simulated V100 ==")
    result = optimize_graph(out, V100, trials=25, seed=0)
    print(result.summary())

    print("\n== layer normalization ==")
    ln = layernorm_compute(256, 1024, name="ln")
    small_ln = layernorm_compute(8, 16, name="ln")
    inputs = random_inputs(small_ln, seed=1)
    assert np.allclose(
        execute_reference(small_ln, inputs),
        layernorm_reference(inputs["ln_X"]),
        atol=1e-9,
    )
    result = optimize_graph(ln, V100, trials=25, seed=0)
    print(result.summary())


if __name__ == "__main__":
    main()
