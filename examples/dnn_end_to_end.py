"""Optimizing a full network (the §6.6 case study).

Partitions YOLO-v1 and OverFeat into sub-graphs, fuses the elementwise
epilogues into their producing convolution, optimizes every distinct
layer with FlexTensor and with the AutoTVM baseline, and reports the
end-to-end inference time of both.

Run:  python examples/dnn_end_to_end.py         # OverFeat only (fast)
      python examples/dnn_end_to_end.py --yolo  # also YOLO-v1's 24 layers
"""

import sys

from repro.model import V100
from repro.nn import optimize_network, overfeat, partition_network, yolo_v1


def report(network, trials=30):
    print(f"=== {network.name}: {network.num_layers} conv layers, "
          f"{network.total_flops() / 1e9:.1f} GFLOP ===")
    groups = partition_network(network, fuse=True)
    print(f"partitioned into {len(groups)} fusion groups "
          f"(conv + {groups[0].fused_elementwise})")

    flex = optimize_network(network, V100, trials=trials, method="q", seed=0)
    autotvm = optimize_network(network, V100, trials=15, method="autotvm", seed=0)

    print(f"{'layer':<18}{'mult':>5}{'flex (ms)':>12}{'GFLOPS':>9}")
    for layer in flex.layers:
        print(f"{layer.layer.workload.name:<18}{layer.layer.multiplicity:>5}"
              f"{layer.kernel_seconds * 1e3:>12.3f}{layer.gflops:>9.0f}")
    print(f"\nFlexTensor end-to-end: {flex.total_seconds * 1e3:8.2f} ms "
          f"({flex.gflops:.0f} GFLOPS)")
    print(f"AutoTVM    end-to-end: {autotvm.total_seconds * 1e3:8.2f} ms")
    print(f"speedup: {autotvm.total_seconds / flex.total_seconds:.2f}x "
          f"(paper: 1.07x YOLO-v1, 1.39x OverFeat)\n")


def main():
    report(overfeat())
    if "--yolo" in sys.argv:
        report(yolo_v1())


if __name__ == "__main__":
    main()
