"""Heterogeneous optimization: one operator, three kinds of hardware.

The same C2D layer (YOLO-v1's C8) is optimized for the simulated V100
GPU, Xeon E5-2699 v4 CPU and VU9P FPGA.  The point of the exercise (the
paper's §2.3 motivation): the optimized schedules look completely
different per platform — thread-block tiling + shared memory on GPU,
fused parallel outer loop + AVX vectorization on CPU, a PE-array pipeline
on FPGA — and FlexTensor derives each automatically from the same
mathematical definition.

Run:  python examples/heterogeneous_conv2d.py
"""

from repro import optimize
from repro.baselines import cudnn_time, fpga_opencl_time, mkldnn_time
from repro.model import V100, VU9P, XEON_E5_2699V4
from repro.ops import yolo_conv2d_workload

DEVICES = [
    (V100, lambda wl: cudnn_time(wl, V100).gflops, "cuDNN"),
    (XEON_E5_2699V4, lambda wl: mkldnn_time(wl, XEON_E5_2699V4).gflops, "MKL-DNN"),
    (VU9P, lambda wl: fpga_opencl_time(wl, VU9P).gflops, "hand OpenCL"),
]


def main():
    workload = yolo_conv2d_workload(8)  # C8: 256 -> 512 channels, 28x28
    print(f"workload: {workload}\n")
    for spec, library_gflops, library_name in DEVICES:
        out = workload.build()
        result = optimize(out, spec, trials=50, num_seeds=8, seed=0)
        lib = library_gflops(workload)
        print(f"=== {spec.name} ===")
        print(f"FlexTensor: {result.gflops:8.1f} GFLOPS "
              f"({result.kernel_seconds * 1e3:.3f} ms)")
        print(f"{library_name:>10}: {lib:8.1f} GFLOPS  "
              f"-> speedup {result.gflops / lib:.2f}x")
        print("schedule primitives:")
        for primitive in result.schedule.primitives:
            print(f"  {primitive}")
        print(result.schedule.describe())
        print()


if __name__ == "__main__":
    main()
