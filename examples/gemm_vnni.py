"""Intrinsic tensorization: tune a quantized GEMM onto the dot4 VNNI unit.

Defines an int8xint8->int32 GEMM, shows the static IR matcher recognising
the ``dot4_vnni`` intrinsic in its compute definition, tunes the schedule
space once with the ``tensorize`` knob and once without, and verifies the
tensorized lowering is bit-identical to the scalar interpreter.  Along the
way a deliberately misaligned schedule demonstrates the proof-carrying TEN
lint rules: every error diagnostic corresponds to a lowering rejection.

Run:  python examples/gemm_vnni.py
"""

import numpy as np

from repro import optimize
from repro.analysis import (
    INTRINSICS,
    match_intrinsic,
    matching_intrinsics,
    tensorize_rejections,
)
from repro.codegen import execute_scheduled, run_generated
from repro.ir import format_operation
from repro.model import XEON_E5_2699V4
from repro.ops import gemm_int8_compute, gemm_int8_reference
from repro.schedule import LoweringError, NodeConfig, lower
from repro.space import build_space


def main():
    # 1. Describe the computation (math only): int8 inputs, int32 accumulator.
    out = gemm_int8_compute(256, 256, 256)
    print("== computation ==")
    print(format_operation(out.op))

    # 2. Static matching: which intrinsics unify with this definition?
    names = matching_intrinsics(out.op, "cpu")
    print(f"\n== intrinsic match ==\ncpu candidates: {names}")
    result = match_intrinsic(out.op, INTRINSICS["dot4_vnni"])
    binding = ", ".join(f"{p.name}->{a.name}" for p, a in result.axis_pairs)
    print(f"dot4_vnni axis binding: {binding}")

    # 3. Tune with the tensorize knob on and off.  The knob only exists
    #    when requested, so existing searches are untouched.
    with_t = optimize(out, XEON_E5_2699V4, trials=30, seed=0, tensorize=True)
    without = optimize(out, XEON_E5_2699V4, trials=30, seed=0)
    print("\n== tuning (30 trials, Q-method, seed 0) ==")
    print(f"tensorize on : {with_t.gflops:8.1f} GFLOPS "
          f"(intrinsic: {with_t.config.tensorize or 'none'})")
    print(f"tensorize off: {without.gflops:8.1f} GFLOPS")

    # 4. Legality is proof-carrying: a TEN error diagnostic if and only if
    #    lowering rejects the point.  Here the reduce tile (k=6) is not a
    #    multiple of the dot4 lane count (4) -> TEN002, and lower() raises.
    small = gemm_int8_compute(8, 12, 8)
    bad = NodeConfig(spatial_factors=((1, 2, 4), (1, 2, 4)),
                     reduce_factors=((2, 6),), reorder=0,
                     vectorize=False, tensorize="dot4_vnni")
    rejections = tensorize_rejections(small.op, bad, "cpu")
    print("\n== proof-carrying rejection ==")
    for rule, message, _hint in rejections:
        print(f"{rule}: {message}")
    try:
        lower(small, bad, "cpu")
    except LoweringError as exc:
        print(f"lower() agrees: {exc}")

    # 5. Parity: an accepted tensorization computes bit-identically to the
    #    scalar interpreter and to the generated Python kernel.
    good = NodeConfig(spatial_factors=((1, 2, 4), (1, 2, 4)),
                      reduce_factors=((3, 4),), reorder=0,
                      vectorize=False, tensorize="dot4_vnni")
    space = build_space(small, "cpu", tensorize=True)
    scheduled = lower(small, space.decode(space.encode(good)), "cpu")
    rng = np.random.default_rng(0)
    a = rng.integers(-128, 128, size=(8, 12), dtype=np.int8)
    b = rng.integers(-128, 128, size=(12, 8), dtype=np.int8)
    inputs = {"gemm_i8_A": a, "gemm_i8_B": b}
    expected = gemm_int8_reference(a, b)
    interp = execute_scheduled(scheduled, inputs)
    compiled = run_generated(scheduled, inputs)
    assert np.array_equal(interp, expected), "interpreter diverged!"
    assert np.array_equal(compiled, expected), "generated kernel diverged!"
    print("\ntensorized parity on a small instance: OK (bit-exact)")


if __name__ == "__main__":
    main()
