"""Quickstart: optimize one tensor computation with FlexTensor.

Defines a 2D convolution mathematically, lets FlexTensor analyze it,
generate and explore the schedule space, and prints the optimized
schedule, the generated kernel and the performance estimate.  Finally the
best schedule is executed on a small instance to verify it computes the
right answer.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import optimize
from repro.analysis import analyze
from repro.codegen import execute_scheduled, random_inputs
from repro.ir import format_operation
from repro.model import V100
from repro.ops import conv2d_compute, conv2d_reference
from repro.schedule import lower


def main():
    # 1. Describe the computation (math only — no schedule, no template).
    conv = conv2d_compute(
        batch=1, in_channel=256, height=28, width=28,
        out_channel=512, kernel=3, stride=1, padding=1, name="conv",
    )
    print("== computation ==")
    print(format_operation(conv.op))

    # 2. Front-end: static analysis.
    analysis = analyze(conv)
    info = analysis.main()
    print(f"\n== analysis ==\n#spatial={info.num_spatial} #reduce={info.num_reduce} "
          f"trip counts: {info.spatial_trip_counts} x {info.reduce_trip_counts}")

    # 3. Back-end: explore the schedule space for the simulated V100.
    result = optimize(conv, V100, trials=40, seed=0)
    print("\n== optimization result ==")
    print(result.summary())

    print("\n== generated kernel (Python backend) ==")
    print(result.generated_code())

    print("\n== pseudo CUDA ==")
    print(result.pseudo_code())

    # 4. Verify: the same schedule configuration applied to a small
    #    instance computes exactly what the definition says.
    small = conv2d_compute(1, 4, 8, 8, 8, 3, stride=1, padding=1, name="conv")
    from repro.space import build_space

    space = build_space(small, "gpu")
    scheduled = lower(small, space.decode(space.random_point(np.random.default_rng(0))), "gpu")
    inputs = random_inputs(small, seed=0)
    got = execute_scheduled(scheduled, inputs)
    expected = conv2d_reference(inputs["conv_I"], inputs["conv_W"], 1, 1)
    assert np.allclose(got, expected), "scheduled kernel diverged from reference!"
    print("\nnumeric check on a small instance: OK")


if __name__ == "__main__":
    main()
