"""Defining and optimizing a brand-new operator (the §6.4 story).

Libraries lag behind algorithm research: the block-circulant matrix
multiply (BCM) of compressed LSTMs and the zero-FLOP shift operation had
no tuned kernels when the paper was written.  With FlexTensor a new
operator is just a mathematical definition — the schedule space,
exploration and code generation come for free.

This example defines BCM from scratch with the tensor-expression DSL
(exactly how a user would define their own operator), checks it against a
numpy reference, and optimizes it against the hand-tuned baseline.

Run:  python examples/custom_operator.py
"""

import numpy as np

from repro import optimize
from repro.baselines import hand_tuned_gpu_time
from repro.codegen import execute_reference, random_inputs
from repro.ir import compute, placeholder, reduce_axis, sum_reduce
from repro.model import V100
from repro.ops import (
    Workload,
    block_circulant_matmul_reference,
    shift_workloads,
)


def my_bcm(batch, in_dim, out_dim, block):
    """A user-defined operator: block-circulant matrix multiply.

    ``W`` stores one defining vector per (out_block, in_block) pair; the
    full circulant block is reconstructed by modular indexing — note the
    definition is pure math, no schedule anywhere.
    """
    x = placeholder((batch, in_dim), name="bcm_X")
    w = placeholder((out_dim // block, in_dim // block, block), name="bcm_W")
    rq = reduce_axis(in_dim // block, "rq")
    rj = reduce_axis(block, "rj")
    return compute(
        (batch, out_dim),
        lambda b, i: sum_reduce(
            w[i // block, rq, (rj - (i % block)) % block] * x[b, rq * block + rj],
            (rq, rj),
        ),
        name="bcm",
    )


def main():
    # Correctness first: execute the definition on a small instance.
    small = my_bcm(batch=2, in_dim=8, out_dim=8, block=4)
    inputs = random_inputs(small, seed=0)
    got = execute_reference(small, inputs)
    expected = block_circulant_matmul_reference(inputs["bcm_X"], inputs["bcm_W"], 4)
    assert np.allclose(got, expected)
    print("definition verified against the dense-circulant reference\n")

    # Now the real shapes, against the hand-tuned 4-level-tiling baseline.
    print("=== BCM on V100 (paper: 2.11x average over hand-tuned) ===")
    speedups = []
    for n, m, b in [(1024, 1024, 8), (2048, 1024, 16), (4096, 4096, 16)]:
        out = my_bcm(1, n, m, b)
        result = optimize(out, V100, trials=50, num_seeds=8, seed=0)
        workload = Workload("BCM", f"bcm_{n}x{m}_b{b}",
                            {"batch": 1, "in_dim": n, "out_dim": m, "block": b})
        hand = hand_tuned_gpu_time(workload, V100)
        speedup = result.gflops / hand.gflops
        speedups.append(speedup)
        print(f"  {n}x{m} block {b}: flex {result.gflops:7.1f} GF | "
              f"hand {hand.gflops:7.1f} GF | {speedup:.2f}x")
    print(f"  geometric mean: {np.exp(np.mean(np.log(speedups))):.2f}x\n")

    print("=== SHO (shift) on V100 ===")
    for workload in shift_workloads()[:2]:
        out = workload.build()
        result = optimize(out, V100, trials=40, seed=0)
        hand = hand_tuned_gpu_time(workload, V100)
        print(f"  {workload.name}: flex {result.gflops:6.1f} | "
              f"hand {hand.gflops:6.1f} | {result.gflops / hand.gflops:.2f}x")


if __name__ == "__main__":
    main()
