"""Convolution operators of Table 1.

Covers 1D/2D/3D convolution, their transposed variants, and the grouped /
depthwise / dilated 2D variants.  Transposed convolutions follow the
paper's structure (Table 3): an *expansion* node (stride dilation), a
*padding* node and the convolution itself, so their mini-graphs have three
nodes; direct convolutions have a padding node plus the convolution (two
nodes).

Each builder returns the output :class:`~repro.ir.Tensor`; inputs are
reachable through the mini-graph.  The ``*_reference`` functions are numpy
ground truths with identical semantics.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from ..ir import (
    Compare,
    Select,
    Tensor,
    all_of,
    compute,
    placeholder,
    reduce_axis,
    sum_reduce,
)


def conv_out_size(size: int, kernel: int, stride: int, padding: int, dilation: int = 1) -> int:
    """Spatial output size of a direct convolution."""
    effective = (kernel - 1) * dilation + 1
    return (size + 2 * padding - effective) // stride + 1


def transposed_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a transposed convolution."""
    return (size - 1) * stride - 2 * padding + kernel


def pad_nd(data: Tensor, paddings: Sequence[Tuple[int, int]], name: str) -> Tensor:
    """Zero-pad ``data``; ``paddings[d]`` is (before, after) for dim d.

    Returns ``data`` unchanged when all paddings are zero, so graphs only
    grow a padding node when one is needed.
    """
    paddings = [tuple(p) for p in paddings]
    if len(paddings) != data.ndim:
        raise ValueError("one (before, after) pair per dimension is required")
    if all(before == 0 and after == 0 for before, after in paddings):
        return data
    new_shape = tuple(
        s + before + after for s, (before, after) in zip(data.shape, paddings)
    )

    def body(*idx):
        conditions = []
        src = []
        for i, (before, _after), size in zip(idx, paddings, data.shape):
            if before or _after:
                conditions.append(Compare(">=", i, before))
                conditions.append(Compare("<", i, before + size))
            src.append(i - before if before else i)
        return Select(all_of(conditions), data[tuple(src)], 0.0)

    return compute(new_shape, body, name=name)


def dilate(data: Tensor, strides: Sequence[int], name: str) -> Tensor:
    """Insert ``stride - 1`` zeros between elements along each dim (the
    expansion node of a transposed convolution)."""
    strides = list(strides)
    if all(s == 1 for s in strides):
        return data
    new_shape = tuple(
        (size - 1) * stride + 1 for size, stride in zip(data.shape, strides)
    )

    def body(*idx):
        conditions = []
        src = []
        for i, stride in zip(idx, strides):
            if stride > 1:
                conditions.append(Compare("==", i % stride, 0))
                src.append(i // stride)
            else:
                src.append(i)
        if not conditions:
            return data[tuple(src)]
        return Select(all_of(conditions), data[tuple(src)], 0.0)

    return compute(new_shape, body, name=name)


# ---------------------------------------------------------------------------
# Direct convolutions
# ---------------------------------------------------------------------------

def conv1d_compute(
    batch: int,
    in_channel: int,
    length: int,
    out_channel: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    name: str = "conv1d",
) -> Tensor:
    """1D convolution: ``O_{b,k,i} = I_{b,rc,i+rx} ∘ W_{k,rc,rx}``."""
    data = placeholder((batch, in_channel, length), name=f"{name}_I")
    weight = placeholder((out_channel, in_channel, kernel), name=f"{name}_W")
    padded = pad_nd(data, [(0, 0), (0, 0), (padding, padding)], name=f"{name}_pad")
    out_len = conv_out_size(length, kernel, stride, padding)
    rc = reduce_axis(in_channel, "rc")
    rx = reduce_axis(kernel, "rx")
    return compute(
        (batch, out_channel, out_len),
        lambda b, k, i: sum_reduce(
            padded[b, rc, i * stride + rx] * weight[k, rc, rx], (rc, rx)
        ),
        name=name,
    )


def conv1d_reference(
    data: np.ndarray, weight: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Numpy ground truth for :func:`conv1d_compute`."""
    batch, in_channel, length = data.shape
    out_channel, _, kernel = weight.shape
    padded = np.pad(data, [(0, 0), (0, 0), (padding, padding)])
    out_len = conv_out_size(length, kernel, stride, padding)
    out = np.zeros((batch, out_channel, out_len), dtype=data.dtype)
    for rx in range(kernel):
        window = padded[:, :, rx : rx + out_len * stride : stride]
        out += np.einsum("bcl,kc->bkl", window, weight[:, :, rx])
    return out


def conv2d_compute(
    batch: int,
    in_channel: int,
    height: int,
    width: int,
    out_channel: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
    groups: int = 1,
    name: str = "conv2d",
) -> Tensor:
    """2D convolution with optional dilation and grouping.

    ``groups > 1`` gives the paper's GRP operator; ``dilation > 1`` gives
    DIL.  The plain C2D case is ``groups == dilation == 1``.
    """
    if in_channel % groups or out_channel % groups:
        raise ValueError("channels must be divisible by groups")
    data = placeholder((batch, in_channel, height, width), name=f"{name}_I")
    weight = placeholder(
        (out_channel, in_channel // groups, kernel, kernel), name=f"{name}_W"
    )
    padded = pad_nd(
        data, [(0, 0), (0, 0), (padding, padding), (padding, padding)], name=f"{name}_pad"
    )
    out_h = conv_out_size(height, kernel, stride, padding, dilation)
    out_w = conv_out_size(width, kernel, stride, padding, dilation)
    rc = reduce_axis(in_channel // groups, "rc")
    rx = reduce_axis(kernel, "rx")
    ry = reduce_axis(kernel, "ry")
    channels_per_group = out_channel // groups

    def body(b, k, i, j):
        if groups == 1:
            channel = rc
        else:
            channel = (k // channels_per_group) * (in_channel // groups) + rc
        return sum_reduce(
            padded[b, channel, i * stride + rx * dilation, j * stride + ry * dilation]
            * weight[k, rc, rx, ry],
            (rc, rx, ry),
        )

    return compute((batch, out_channel, out_h, out_w), body, name=name)


def conv2d_reference(
    data: np.ndarray,
    weight: np.ndarray,
    stride: int = 1,
    padding: int = 0,
    dilation: int = 1,
    groups: int = 1,
) -> np.ndarray:
    """Numpy ground truth for :func:`conv2d_compute` (all variants)."""
    batch, in_channel, height, width = data.shape
    out_channel, group_channels, kernel, _ = weight.shape
    padded = np.pad(data, [(0, 0), (0, 0), (padding, padding), (padding, padding)])
    out_h = conv_out_size(height, kernel, stride, padding, dilation)
    out_w = conv_out_size(width, kernel, stride, padding, dilation)
    out = np.zeros((batch, out_channel, out_h, out_w), dtype=data.dtype)
    k_per_group = out_channel // groups
    for g in range(groups):
        data_g = padded[:, g * group_channels : (g + 1) * group_channels]
        weight_g = weight[g * k_per_group : (g + 1) * k_per_group]
        acc = np.zeros((batch, k_per_group, out_h, out_w), dtype=data.dtype)
        for rx in range(kernel):
            for ry in range(kernel):
                window = data_g[
                    :,
                    :,
                    rx * dilation : rx * dilation + out_h * stride : stride,
                    ry * dilation : ry * dilation + out_w * stride : stride,
                ]
                acc += np.einsum("bchw,kc->bkhw", window, weight_g[:, :, rx, ry])
        out[:, g * k_per_group : (g + 1) * k_per_group] = acc
    return out


def depthwise_conv2d_compute(
    batch: int,
    in_channel: int,
    height: int,
    width: int,
    multiplier: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    name: str = "depthwise",
) -> Tensor:
    """Depthwise 2D convolution: each input channel convolved separately,
    ``O_{b,k,i,j} = I_{b,c,i+rx,j+ry} ∘ W^c_{k,rx,ry}`` with
    ``c = k // multiplier``."""
    data = placeholder((batch, in_channel, height, width), name=f"{name}_I")
    weight = placeholder(
        (in_channel * multiplier, kernel, kernel), name=f"{name}_W"
    )
    padded = pad_nd(
        data, [(0, 0), (0, 0), (padding, padding), (padding, padding)], name=f"{name}_pad"
    )
    out_h = conv_out_size(height, kernel, stride, padding)
    out_w = conv_out_size(width, kernel, stride, padding)
    rx = reduce_axis(kernel, "rx")
    ry = reduce_axis(kernel, "ry")
    return compute(
        (batch, in_channel * multiplier, out_h, out_w),
        lambda b, k, i, j: sum_reduce(
            padded[b, k // multiplier, i * stride + rx, j * stride + ry]
            * weight[k, rx, ry],
            (rx, ry),
        ),
        name=name,
    )


def depthwise_conv2d_reference(
    data: np.ndarray,
    weight: np.ndarray,
    multiplier: int,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Numpy ground truth for :func:`depthwise_conv2d_compute`."""
    batch, in_channel, height, width = data.shape
    out_channels, kernel, _ = weight.shape
    padded = np.pad(data, [(0, 0), (0, 0), (padding, padding), (padding, padding)])
    out_h = conv_out_size(height, kernel, stride, padding)
    out_w = conv_out_size(width, kernel, stride, padding)
    out = np.zeros((batch, out_channels, out_h, out_w), dtype=data.dtype)
    for k in range(out_channels):
        c = k // multiplier
        for rx in range(kernel):
            for ry in range(kernel):
                window = padded[
                    :, c, rx : rx + out_h * stride : stride, ry : ry + out_w * stride : stride
                ]
                out[:, k] += window * weight[k, rx, ry]
    return out


def conv3d_compute(
    batch: int,
    in_channel: int,
    depth: int,
    height: int,
    width: int,
    out_channel: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    name: str = "conv3d",
) -> Tensor:
    """3D convolution: ``O_{b,k,d,i,j} = I_{b,rc,d+rd,i+rx,j+ry} ∘ W``."""
    data = placeholder((batch, in_channel, depth, height, width), name=f"{name}_I")
    weight = placeholder(
        (out_channel, in_channel, kernel, kernel, kernel), name=f"{name}_W"
    )
    pads = [(0, 0), (0, 0)] + [(padding, padding)] * 3
    padded = pad_nd(data, pads, name=f"{name}_pad")
    out_d = conv_out_size(depth, kernel, stride, padding)
    out_h = conv_out_size(height, kernel, stride, padding)
    out_w = conv_out_size(width, kernel, stride, padding)
    rc = reduce_axis(in_channel, "rc")
    rd = reduce_axis(kernel, "rd")
    rx = reduce_axis(kernel, "rx")
    ry = reduce_axis(kernel, "ry")
    return compute(
        (batch, out_channel, out_d, out_h, out_w),
        lambda b, k, d, i, j: sum_reduce(
            padded[b, rc, d * stride + rd, i * stride + rx, j * stride + ry]
            * weight[k, rc, rd, rx, ry],
            (rc, rd, rx, ry),
        ),
        name=name,
    )


def conv3d_reference(
    data: np.ndarray, weight: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Numpy ground truth for :func:`conv3d_compute`."""
    batch, in_channel, depth, height, width = data.shape
    out_channel, _, kernel, _, _ = weight.shape
    pads = [(0, 0), (0, 0)] + [(padding, padding)] * 3
    padded = np.pad(data, pads)
    out_d = conv_out_size(depth, kernel, stride, padding)
    out_h = conv_out_size(height, kernel, stride, padding)
    out_w = conv_out_size(width, kernel, stride, padding)
    out = np.zeros((batch, out_channel, out_d, out_h, out_w), dtype=data.dtype)
    for rd in range(kernel):
        for rx in range(kernel):
            for ry in range(kernel):
                window = padded[
                    :,
                    :,
                    rd : rd + out_d * stride : stride,
                    rx : rx + out_h * stride : stride,
                    ry : ry + out_w * stride : stride,
                ]
                out += np.einsum("bcdhw,kc->bkdhw", window, weight[:, :, rd, rx, ry])
    return out


# ---------------------------------------------------------------------------
# Transposed convolutions (expansion + padding + convolution: 3 nodes)
# ---------------------------------------------------------------------------

def conv1d_transposed_compute(
    batch: int,
    in_channel: int,
    length: int,
    out_channel: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    name: str = "t1d",
) -> Tensor:
    """Transposed 1D convolution:
    ``O_{b,k,i} = I_{b,rc,i+rx} ∘ W_{rc,k,L-rx-1}`` over the
    stride-expanded, re-padded input."""
    data = placeholder((batch, in_channel, length), name=f"{name}_I")
    weight = placeholder((in_channel, out_channel, kernel), name=f"{name}_W")
    expanded = dilate(data, [1, 1, stride], name=f"{name}_expand")
    border = kernel - 1 - padding
    if border < 0:
        raise ValueError("padding must be < kernel for transposed convolution")
    padded = pad_nd(expanded, [(0, 0), (0, 0), (border, border)], name=f"{name}_pad")
    out_len = transposed_out_size(length, kernel, stride, padding)
    rc = reduce_axis(in_channel, "rc")
    rx = reduce_axis(kernel, "rx")
    return compute(
        (batch, out_channel, out_len),
        lambda b, k, i: sum_reduce(
            padded[b, rc, i + rx] * weight[rc, k, kernel - rx - 1], (rc, rx)
        ),
        name=name,
    )


def conv1d_transposed_reference(
    data: np.ndarray, weight: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Numpy ground truth for :func:`conv1d_transposed_compute`."""
    batch, in_channel, length = data.shape
    _, out_channel, kernel = weight.shape
    expanded_len = (length - 1) * stride + 1
    expanded = np.zeros((batch, in_channel, expanded_len), dtype=data.dtype)
    expanded[:, :, ::stride] = data
    border = kernel - 1 - padding
    padded = np.pad(expanded, [(0, 0), (0, 0), (border, border)])
    flipped = weight[:, :, ::-1].transpose(1, 0, 2)  # (k, rc, rx)
    out_len = transposed_out_size(length, kernel, stride, padding)
    out = np.zeros((batch, out_channel, out_len), dtype=data.dtype)
    for rx in range(kernel):
        window = padded[:, :, rx : rx + out_len]
        out += np.einsum("bcl,kc->bkl", window, flipped[:, :, rx])
    return out


def conv2d_transposed_compute(
    batch: int,
    in_channel: int,
    height: int,
    width: int,
    out_channel: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    name: str = "t2d",
) -> Tensor:
    """Transposed 2D convolution (expansion, padding, flipped-kernel conv)."""
    data = placeholder((batch, in_channel, height, width), name=f"{name}_I")
    weight = placeholder((in_channel, out_channel, kernel, kernel), name=f"{name}_W")
    expanded = dilate(data, [1, 1, stride, stride], name=f"{name}_expand")
    border = kernel - 1 - padding
    if border < 0:
        raise ValueError("padding must be < kernel for transposed convolution")
    padded = pad_nd(
        expanded, [(0, 0), (0, 0), (border, border), (border, border)], name=f"{name}_pad"
    )
    out_h = transposed_out_size(height, kernel, stride, padding)
    out_w = transposed_out_size(width, kernel, stride, padding)
    rc = reduce_axis(in_channel, "rc")
    rx = reduce_axis(kernel, "rx")
    ry = reduce_axis(kernel, "ry")
    return compute(
        (batch, out_channel, out_h, out_w),
        lambda b, k, i, j: sum_reduce(
            padded[b, rc, i + rx, j + ry]
            * weight[rc, k, kernel - rx - 1, kernel - ry - 1],
            (rc, rx, ry),
        ),
        name=name,
    )


def conv2d_transposed_reference(
    data: np.ndarray, weight: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Numpy ground truth for :func:`conv2d_transposed_compute`."""
    batch, in_channel, height, width = data.shape
    _, out_channel, kernel, _ = weight.shape
    exp_h = (height - 1) * stride + 1
    exp_w = (width - 1) * stride + 1
    expanded = np.zeros((batch, in_channel, exp_h, exp_w), dtype=data.dtype)
    expanded[:, :, ::stride, ::stride] = data
    border = kernel - 1 - padding
    padded = np.pad(expanded, [(0, 0), (0, 0), (border, border), (border, border)])
    flipped = weight[:, :, ::-1, ::-1].transpose(1, 0, 2, 3)
    out_h = transposed_out_size(height, kernel, stride, padding)
    out_w = transposed_out_size(width, kernel, stride, padding)
    out = np.zeros((batch, out_channel, out_h, out_w), dtype=data.dtype)
    for rx in range(kernel):
        for ry in range(kernel):
            window = padded[:, :, rx : rx + out_h, ry : ry + out_w]
            out += np.einsum("bchw,kc->bkhw", window, flipped[:, :, rx, ry])
    return out


def conv3d_transposed_compute(
    batch: int,
    in_channel: int,
    depth: int,
    height: int,
    width: int,
    out_channel: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    name: str = "t3d",
) -> Tensor:
    """Transposed 3D convolution (expansion, padding, flipped-kernel conv)."""
    data = placeholder((batch, in_channel, depth, height, width), name=f"{name}_I")
    weight = placeholder(
        (in_channel, out_channel, kernel, kernel, kernel), name=f"{name}_W"
    )
    expanded = dilate(data, [1, 1, stride, stride, stride], name=f"{name}_expand")
    border = kernel - 1 - padding
    if border < 0:
        raise ValueError("padding must be < kernel for transposed convolution")
    pads = [(0, 0), (0, 0)] + [(border, border)] * 3
    padded = pad_nd(expanded, pads, name=f"{name}_pad")
    out_d = transposed_out_size(depth, kernel, stride, padding)
    out_h = transposed_out_size(height, kernel, stride, padding)
    out_w = transposed_out_size(width, kernel, stride, padding)
    rc = reduce_axis(in_channel, "rc")
    rd = reduce_axis(kernel, "rd")
    rx = reduce_axis(kernel, "rx")
    ry = reduce_axis(kernel, "ry")
    return compute(
        (batch, out_channel, out_d, out_h, out_w),
        lambda b, k, d, i, j: sum_reduce(
            padded[b, rc, d + rd, i + rx, j + ry]
            * weight[rc, k, kernel - rd - 1, kernel - rx - 1, kernel - ry - 1],
            (rc, rd, rx, ry),
        ),
        name=name,
    )


def conv3d_transposed_reference(
    data: np.ndarray, weight: np.ndarray, stride: int = 1, padding: int = 0
) -> np.ndarray:
    """Numpy ground truth for :func:`conv3d_transposed_compute`."""
    batch, in_channel, depth, height, width = data.shape
    _, out_channel, kernel, _, _ = weight.shape
    exp = np.zeros(
        (
            batch,
            in_channel,
            (depth - 1) * stride + 1,
            (height - 1) * stride + 1,
            (width - 1) * stride + 1,
        ),
        dtype=data.dtype,
    )
    exp[:, :, ::stride, ::stride, ::stride] = data
    border = kernel - 1 - padding
    padded = np.pad(exp, [(0, 0), (0, 0)] + [(border, border)] * 3)
    flipped = weight[:, :, ::-1, ::-1, ::-1].transpose(1, 0, 2, 3, 4)
    out_d = transposed_out_size(depth, kernel, stride, padding)
    out_h = transposed_out_size(height, kernel, stride, padding)
    out_w = transposed_out_size(width, kernel, stride, padding)
    out = np.zeros((batch, out_channel, out_d, out_h, out_w), dtype=data.dtype)
    for rd in range(kernel):
        for rx in range(kernel):
            for ry in range(kernel):
                window = padded[:, :, rd : rd + out_d, rx : rx + out_h, ry : ry + out_w]
                out += np.einsum("bcdhw,kc->bkdhw", window, flipped[:, :, rd, rx, ry])
    return out
