"""Linear-algebra operators of Table 1: GEMV, GEMM, Bilinear.

Each ``*_compute`` function builds the IR definition and returns the output
tensor; the matching ``*_reference`` computes the same result with numpy
and is the numeric ground truth for correctness tests.
"""

from __future__ import annotations

import numpy as np

from ..ir import Tensor, compute, placeholder, reduce_axis, sum_reduce


def gemv_compute(n: int, k: int, name: str = "gemv") -> Tensor:
    """GEMV: ``O_i = A_{i,k} ∘ B_k``."""
    a = placeholder((n, k), name=f"{name}_A")
    b = placeholder((k,), name=f"{name}_B")
    rk = reduce_axis(k, "rk")
    return compute((n,), lambda i: sum_reduce(a[i, rk] * b[rk], rk), name=name)


def gemv_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Numpy ground truth for :func:`gemv_compute`."""
    return a @ b


def gemm_compute(n: int, k: int, m: int, name: str = "gemm") -> Tensor:
    """GEMM: ``O_{i,j} = A_{i,k} ∘ B_{k,j}``."""
    a = placeholder((n, k), name=f"{name}_A")
    b = placeholder((k, m), name=f"{name}_B")
    rk = reduce_axis(k, "rk")
    return compute(
        (n, m), lambda i, j: sum_reduce(a[i, rk] * b[rk, j], rk), name=name
    )


def gemm_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Numpy ground truth for :func:`gemm_compute`."""
    return a @ b


def gemm_int8_compute(n: int, k: int, m: int, name: str = "gemm_i8") -> Tensor:
    """Quantized GEMM: int8 inputs accumulated into int32.

    Same loop nest as :func:`gemm_compute`; the dtypes are what make the
    ``dot4_vnni`` intrinsic (``repro.analysis.INTRINSICS``) applicable.
    """
    a = placeholder((n, k), dtype="int8", name=f"{name}_A")
    b = placeholder((k, m), dtype="int8", name=f"{name}_B")
    rk = reduce_axis(k, "rk")
    return compute(
        (n, m), lambda i, j: sum_reduce(a[i, rk] * b[rk, j], rk),
        dtype="int32", name=name,
    )


def gemm_int8_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Numpy ground truth for :func:`gemm_int8_compute`."""
    return a.astype(np.int32) @ b.astype(np.int32)


def bilinear_compute(n: int, k: int, l: int, m: int, name: str = "bilinear") -> Tensor:
    """Bilinear: ``O_{i,j} = A_{i,k} ∘ B_{j,k,l} ∘ C_{i,l}``."""
    a = placeholder((n, k), name=f"{name}_A")
    b = placeholder((m, k, l), name=f"{name}_B")
    c = placeholder((n, l), name=f"{name}_C")
    rk = reduce_axis(k, "rk")
    rl = reduce_axis(l, "rl")
    return compute(
        (n, m),
        lambda i, j: sum_reduce(a[i, rk] * b[j, rk, rl] * c[i, rl], (rk, rl)),
        name=name,
    )


def bilinear_reference(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Numpy ground truth for :func:`bilinear_compute`."""
    return np.einsum("ik,jkl,il->ij", a, b, c)
