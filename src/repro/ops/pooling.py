"""Pooling operators (extension beyond the paper's Table 1).

Max pooling exercises the ``max`` reduction combiner through the whole
stack — space generation, lowering, interpretation and the machine models
— and average pooling is the canonical small-reduction memory-bound
operator.  Both appear in the paper's evaluation networks (YOLO-v1 and
OverFeat interleave convolutions with max-pooling layers).
"""

from __future__ import annotations

import numpy as np

from ..ir import Tensor, compute, max_reduce, placeholder, reduce_axis, sum_reduce
from .convolution import conv_out_size, pad_nd


def maxpool2d_compute(
    batch: int,
    channel: int,
    height: int,
    width: int,
    kernel: int,
    stride: int = None,
    name: str = "maxpool",
) -> Tensor:
    """Max pooling: ``O_{b,c,i,j} = max_{rx,ry} I_{b,c,i·s+rx,j·s+ry}``."""
    stride = stride or kernel
    data = placeholder((batch, channel, height, width), name=f"{name}_I")
    out_h = conv_out_size(height, kernel, stride, 0)
    out_w = conv_out_size(width, kernel, stride, 0)
    rx = reduce_axis(kernel, "rx")
    ry = reduce_axis(kernel, "ry")
    return compute(
        (batch, channel, out_h, out_w),
        lambda b, c, i, j: max_reduce(
            data[b, c, i * stride + rx, j * stride + ry], (rx, ry)
        ),
        name=name,
    )


def maxpool2d_reference(data: np.ndarray, kernel: int, stride: int = None) -> np.ndarray:
    """Numpy ground truth for :func:`maxpool2d_compute`."""
    stride = stride or kernel
    batch, channel, height, width = data.shape
    out_h = conv_out_size(height, kernel, stride, 0)
    out_w = conv_out_size(width, kernel, stride, 0)
    out = np.full((batch, channel, out_h, out_w), -np.inf, dtype=data.dtype)
    for rx in range(kernel):
        for ry in range(kernel):
            window = data[:, :, rx : rx + out_h * stride : stride,
                          ry : ry + out_w * stride : stride]
            out = np.maximum(out, window)
    return out


def avgpool2d_compute(
    batch: int,
    channel: int,
    height: int,
    width: int,
    kernel: int,
    stride: int = None,
    name: str = "avgpool",
) -> Tensor:
    """Average pooling: a sum reduction scaled by the window size."""
    stride = stride or kernel
    data = placeholder((batch, channel, height, width), name=f"{name}_I")
    out_h = conv_out_size(height, kernel, stride, 0)
    out_w = conv_out_size(width, kernel, stride, 0)
    rx = reduce_axis(kernel, "rx")
    ry = reduce_axis(kernel, "ry")
    scale = 1.0 / (kernel * kernel)
    return compute(
        (batch, channel, out_h, out_w),
        lambda b, c, i, j: sum_reduce(
            data[b, c, i * stride + rx, j * stride + ry] * scale, (rx, ry)
        ),
        name=name,
    )


def avgpool2d_reference(data: np.ndarray, kernel: int, stride: int = None) -> np.ndarray:
    """Numpy ground truth for :func:`avgpool2d_compute`."""
    stride = stride or kernel
    batch, channel, height, width = data.shape
    out_h = conv_out_size(height, kernel, stride, 0)
    out_w = conv_out_size(width, kernel, stride, 0)
    out = np.zeros((batch, channel, out_h, out_w), dtype=data.dtype)
    for rx in range(kernel):
        for ry in range(kernel):
            out += data[:, :, rx : rx + out_h * stride : stride,
                        ry : ry + out_w * stride : stride]
    return out / (kernel * kernel)
