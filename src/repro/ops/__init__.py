"""Operator zoo: all Table 1 operators, the §6.4 new operators, and the
benchmark workload suites of Tables 3 and 4."""

from .convolution import (
    conv1d_compute,
    conv1d_reference,
    conv1d_transposed_compute,
    conv1d_transposed_reference,
    conv2d_compute,
    conv2d_reference,
    conv2d_transposed_compute,
    conv2d_transposed_reference,
    conv3d_compute,
    conv3d_reference,
    conv3d_transposed_compute,
    conv3d_transposed_reference,
    conv_out_size,
    depthwise_conv2d_compute,
    depthwise_conv2d_reference,
    dilate,
    pad_nd,
    transposed_out_size,
)
from .linalg import (
    bilinear_compute,
    bilinear_reference,
    gemm_compute,
    gemm_int8_compute,
    gemm_int8_reference,
    gemm_reference,
    gemv_compute,
    gemv_reference,
)
from .layout import (
    conv2d_nchwc_compute,
    conv2d_nchwc_reference,
    pack_nchwc,
    pack_nchwc_reference,
    pack_weight_nchwc_reference,
    unpack_nchwc,
    unpack_nchwc_reference,
)
from .normalization import (
    layernorm_compute,
    layernorm_reference,
    softmax_compute,
    softmax_reference,
)
from .pooling import (
    avgpool2d_compute,
    avgpool2d_reference,
    maxpool2d_compute,
    maxpool2d_reference,
)
from .special import (
    block_circulant_matmul_compute,
    block_circulant_matmul_reference,
    shift_compute,
    shift_reference,
)
from .workloads import (
    OPERATOR_NAMES,
    SUITES,
    Workload,
    YOLO_LAYER_SHAPES,
    bcm_workloads,
    overfeat_layers,
    shift_workloads,
    yolo_conv2d_workload,
    yolo_t2d_workload,
    yolo_v1_layers,
)

__all__ = [
    "OPERATOR_NAMES", "SUITES", "Workload", "YOLO_LAYER_SHAPES",
    "avgpool2d_compute", "avgpool2d_reference", "maxpool2d_compute",
    "maxpool2d_reference", "conv2d_nchwc_compute", "conv2d_nchwc_reference",
    "pack_nchwc", "pack_nchwc_reference", "pack_weight_nchwc_reference",
    "unpack_nchwc", "unpack_nchwc_reference", "layernorm_compute", "layernorm_reference", "softmax_compute", "softmax_reference",
    "bcm_workloads", "bilinear_compute", "bilinear_reference",
    "block_circulant_matmul_compute", "block_circulant_matmul_reference",
    "conv1d_compute", "conv1d_reference", "conv1d_transposed_compute",
    "conv1d_transposed_reference", "conv2d_compute", "conv2d_reference",
    "conv2d_transposed_compute", "conv2d_transposed_reference",
    "conv3d_compute", "conv3d_reference", "conv3d_transposed_compute",
    "conv3d_transposed_reference", "conv_out_size", "depthwise_conv2d_compute",
    "depthwise_conv2d_reference", "dilate", "gemm_compute",
    "gemm_int8_compute", "gemm_int8_reference", "gemm_reference",
    "gemv_compute", "gemv_reference", "overfeat_layers", "pad_nd",
    "shift_compute", "shift_reference", "shift_workloads",
    "transposed_out_size", "yolo_conv2d_workload", "yolo_t2d_workload",
    "yolo_v1_layers",
]
