"""Benchmark workload definitions: Table 3 test-case suites and Table 4.

``SUITES`` maps each operator abbreviation of Table 3 (GMV, GMM, BIL, C1D,
T1D, C2D, T2D, C3D, T3D, GRP, DEP, DIL) to its list of test cases; the C2D
and T2D suites are the 15 distinctive YOLO-v1 convolution layers of
Table 4.  ``yolo_v1_layers``/``overfeat_layers`` give the full networks for
the §6.6 end-to-end case study.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

from ..ir import ComputeOp, Tensor, count_flops_per_point
from . import convolution as conv
from . import linalg
from . import special


@dataclass(frozen=True)
class Workload:
    """One test case: an operator family plus concrete shape parameters."""

    operator: str
    name: str
    params: Dict[str, int] = field(default_factory=dict)

    def build(self) -> Tensor:
        """Instantiate the IR computation for this workload."""
        builder = _BUILDERS[self.operator]
        return builder(**self.params)

    def flops(self) -> int:
        """FLOPs of the main compute node (the paper's GFLOPS accounting:
        helper padding/expansion nodes do not count as floating-point work)."""
        out = self.build()
        op = out.op
        assert isinstance(op, ComputeOp)
        points = out.size
        for axis in op.reduce_axes:
            points *= axis.extent
        return points * count_flops_per_point(op.body)

    def __str__(self):
        params = ", ".join(f"{k}={v}" for k, v in self.params.items())
        return f"{self.operator}:{self.name}({params})"


_BUILDERS: Dict[str, Callable[..., Tensor]] = {
    "GMV": linalg.gemv_compute,
    "GMM": linalg.gemm_compute,
    "BIL": linalg.bilinear_compute,
    "C1D": conv.conv1d_compute,
    "T1D": conv.conv1d_transposed_compute,
    "C2D": conv.conv2d_compute,
    "T2D": conv.conv2d_transposed_compute,
    "C3D": conv.conv3d_compute,
    "T3D": conv.conv3d_transposed_compute,
    "GRP": conv.conv2d_compute,       # groups > 1
    "DEP": conv.depthwise_conv2d_compute,
    "DIL": conv.conv2d_compute,       # dilation > 1
    "BCM": special.block_circulant_matmul_compute,
    "SHO": special.shift_compute,
}

OPERATOR_NAMES = (
    "GMV", "GMM", "BIL", "C1D", "T1D", "C2D",
    "T2D", "C3D", "T3D", "GRP", "DEP", "DIL",
)


# ---------------------------------------------------------------------------
# Table 4: the 15 distinctive convolution layers of YOLO-v1
# ---------------------------------------------------------------------------

#: (in_channels, out_channels, height/width, kernel, stride)
YOLO_LAYER_SHAPES: Tuple[Tuple[int, int, int, int, int], ...] = (
    (3, 64, 448, 7, 2),      # C1
    (64, 192, 112, 3, 1),    # C2
    (192, 128, 56, 1, 1),    # C3
    (128, 256, 56, 3, 1),    # C4
    (256, 256, 56, 1, 1),    # C5
    (256, 512, 56, 3, 1),    # C6
    (512, 256, 28, 1, 1),    # C7
    (256, 512, 28, 3, 1),    # C8
    (512, 512, 28, 1, 1),    # C9
    (512, 1024, 28, 3, 1),   # C10
    (1024, 512, 14, 1, 1),   # C11
    (512, 1024, 14, 3, 1),   # C12
    (1024, 1024, 14, 3, 1),  # C13
    (1024, 1024, 14, 3, 2),  # C14
    (1024, 1024, 7, 3, 1),   # C15
)


def yolo_conv2d_workload(index: int, batch: int = 1) -> Workload:
    """Table 4 layer ``C{index}`` (1-based) as a C2D workload."""
    c, k, hw, kernel, stride = YOLO_LAYER_SHAPES[index - 1]
    return Workload(
        "C2D",
        f"C{index}",
        {
            "batch": batch,
            "in_channel": c,
            "height": hw,
            "width": hw,
            "out_channel": k,
            "kernel": kernel,
            "stride": stride,
            "padding": kernel // 2,
        },
    )


def yolo_t2d_workload(index: int, batch: int = 1) -> Workload:
    """A transposed counterpart of Table 4 layer ``C{index}``."""
    c, k, hw, kernel, stride = YOLO_LAYER_SHAPES[index - 1]
    return Workload(
        "T2D",
        f"T{index}",
        {
            "batch": batch,
            "in_channel": k,
            "height": max(hw // stride, 1),
            "width": max(hw // stride, 1),
            "out_channel": c,
            "kernel": kernel,
            "stride": stride,
            "padding": kernel // 2,
        },
    )


def _gmv(n, k):
    return Workload("GMV", f"gemv_{n}x{k}", {"n": n, "k": k})


def _gmm(n, k, m):
    return Workload("GMM", f"gemm_{n}x{k}x{m}", {"n": n, "k": k, "m": m})


def _bil(n, k, l, m):
    return Workload("BIL", f"bil_{n}x{k}x{l}x{m}", {"n": n, "k": k, "l": l, "m": m})


def _c1d(c, length, k, kernel, stride=1):
    return Workload(
        "C1D",
        f"c1d_{c}x{length}_k{k}",
        {
            "batch": 1, "in_channel": c, "length": length, "out_channel": k,
            "kernel": kernel, "stride": stride, "padding": kernel // 2,
        },
    )


def _t1d(c, length, k, kernel, stride=1):
    return Workload(
        "T1D",
        f"t1d_{c}x{length}_k{k}",
        {
            "batch": 1, "in_channel": c, "length": length, "out_channel": k,
            "kernel": kernel, "stride": stride, "padding": kernel // 2,
        },
    )


def _c3d(c, d, hw, k, kernel, stride=1):
    return Workload(
        "C3D",
        f"c3d_{c}x{d}x{hw}_k{k}",
        {
            "batch": 1, "in_channel": c, "depth": d, "height": hw, "width": hw,
            "out_channel": k, "kernel": kernel, "stride": stride,
            "padding": kernel // 2,
        },
    )


def _t3d(c, d, hw, k, kernel, stride=1):
    return Workload(
        "T3D",
        f"t3d_{c}x{d}x{hw}_k{k}",
        {
            "batch": 1, "in_channel": c, "depth": d, "height": hw, "width": hw,
            "out_channel": k, "kernel": kernel, "stride": stride,
            "padding": kernel // 2,
        },
    )


def _grp(c, hw, k, kernel, groups):
    return Workload(
        "GRP",
        f"grp_{c}x{hw}_k{k}_g{groups}",
        {
            "batch": 1, "in_channel": c, "height": hw, "width": hw,
            "out_channel": k, "kernel": kernel, "stride": 1,
            "padding": kernel // 2, "groups": groups,
        },
    )


def _dep(c, hw, multiplier, kernel, stride=1):
    return Workload(
        "DEP",
        f"dep_{c}x{hw}_m{multiplier}",
        {
            "batch": 1, "in_channel": c, "height": hw, "width": hw,
            "multiplier": multiplier, "kernel": kernel, "stride": stride,
            "padding": kernel // 2,
        },
    )


def _dil(c, hw, k, kernel, dilation):
    return Workload(
        "DIL",
        f"dil_{c}x{hw}_k{k}_d{dilation}",
        {
            "batch": 1, "in_channel": c, "height": hw, "width": hw,
            "out_channel": k, "kernel": kernel, "stride": 1,
            "padding": (kernel - 1) * dilation // 2, "dilation": dilation,
        },
    )


#: Table 3 test-case suites (counts match the paper's "Test Cases" column).
SUITES: Dict[str, List[Workload]] = {
    "GMV": [
        _gmv(64, 128), _gmv(128, 128), _gmv(256, 256), _gmv(512, 512),
        _gmv(512, 1024), _gmv(1024, 512),
    ],
    "GMM": [
        _gmm(32, 32, 32), _gmm(64, 64, 64), _gmm(128, 128, 128),
        _gmm(256, 256, 256), _gmm(512, 512, 512), _gmm(1024, 1024, 1024),
        _gmm(2048, 1024, 2048),
    ],
    "BIL": [
        _bil(32, 64, 64, 32), _bil(64, 64, 64, 64), _bil(64, 128, 64, 64),
        _bil(128, 64, 64, 128), _bil(64, 128, 128, 64),
    ],
    "C1D": [
        _c1d(64, 4096, 64, 3), _c1d(128, 2048, 128, 3), _c1d(64, 8192, 64, 3),
        _c1d(256, 1024, 256, 3), _c1d(128, 4096, 128, 5), _c1d(512, 512, 512, 3),
        _c1d(256, 2048, 256, 7),
    ],
    "T1D": [
        _t1d(64, 2048, 64, 3, 2), _t1d(128, 1024, 128, 3, 2),
        _t1d(64, 4096, 64, 3, 2), _t1d(256, 512, 256, 3, 2),
        _t1d(128, 2048, 128, 5, 2), _t1d(512, 256, 512, 3, 2),
        _t1d(256, 1024, 256, 7, 2),
    ],
    "C2D": [yolo_conv2d_workload(i) for i in range(1, 16)],
    "T2D": [yolo_t2d_workload(i) for i in range(1, 16)],
    "C3D": [
        _c3d(3, 16, 112, 64, 3), _c3d(64, 16, 56, 64, 3), _c3d(64, 16, 56, 128, 3),
        _c3d(128, 8, 28, 128, 3), _c3d(128, 8, 28, 256, 3), _c3d(256, 4, 14, 256, 3),
        _c3d(256, 4, 14, 512, 3), _c3d(512, 2, 7, 512, 3),
    ],
    "T3D": [
        _t3d(64, 8, 56, 3, 3, 2), _t3d(64, 8, 28, 64, 3, 2),
        _t3d(128, 4, 28, 64, 3, 2), _t3d(128, 4, 14, 128, 3, 2),
        _t3d(256, 2, 14, 128, 3, 2), _t3d(256, 2, 7, 256, 3, 2),
        _t3d(512, 2, 7, 256, 3, 2), _t3d(512, 2, 7, 512, 3, 2),
    ],
    "GRP": [
        _grp(64, 56, 64, 3, 2), _grp(64, 56, 64, 3, 4), _grp(128, 28, 128, 3, 2),
        _grp(128, 28, 128, 3, 4), _grp(128, 28, 128, 3, 8), _grp(256, 14, 256, 3, 2),
        _grp(256, 14, 256, 3, 4), _grp(256, 14, 256, 3, 8), _grp(256, 28, 256, 3, 4),
        _grp(512, 14, 512, 3, 4), _grp(512, 14, 512, 3, 8), _grp(512, 7, 512, 3, 4),
        _grp(1024, 7, 1024, 3, 8), _grp(384, 28, 384, 3, 3),
    ],
    "DEP": [
        _dep(32, 112, 1, 3), _dep(64, 112, 1, 3), _dep(128, 56, 1, 3),
        _dep(128, 56, 1, 3, 2), _dep(256, 28, 1, 3), _dep(512, 14, 1, 3),
        _dep(1024, 7, 1, 3),
    ],
    "DIL": [
        _dil(64, 56, 64, 3, 2), _dil(64, 56, 64, 3, 4), _dil(128, 28, 128, 3, 2),
        _dil(128, 28, 128, 3, 4), _dil(256, 14, 256, 3, 2), _dil(256, 28, 256, 3, 2),
        _dil(512, 14, 512, 3, 2), _dil(512, 28, 512, 3, 2), _dil(256, 56, 256, 3, 2),
        _dil(128, 56, 128, 3, 4), _dil(512, 7, 512, 3, 2),
    ],
}


def bcm_workloads() -> List[Workload]:
    """§6.4 block-circulant matrix workloads."""
    return [
        Workload("BCM", f"bcm_{n}x{m}_b{b}", {"batch": 1, "in_dim": n, "out_dim": m, "block": b})
        for n, m, b in [(1024, 1024, 8), (2048, 1024, 16), (1024, 2048, 8),
                        (4096, 4096, 16), (2048, 2048, 32)]
    ]


def shift_workloads() -> List[Workload]:
    """§6.4 shift-operation workloads."""
    return [
        Workload("SHO", f"shift_{c}x{hw}", {"batch": 1, "channel": c, "height": hw, "width": hw})
        for c, hw in [(64, 112), (128, 56), (256, 28), (512, 14), (1024, 7)]
    ]


# ---------------------------------------------------------------------------
# §6.6 networks
# ---------------------------------------------------------------------------

def yolo_v1_layers(batch: int = 1) -> List[Tuple[Workload, int]]:
    """YOLO-v1's 24 convolution layers as (distinct layer, multiplicity)."""
    multiplicity = {7: 4, 8: 4, 11: 2, 12: 2, 13: 2}
    layers = []
    for index in range(1, 16):
        layers.append((yolo_conv2d_workload(index, batch), multiplicity.get(index, 1)))
    return layers


def overfeat_layers(batch: int = 1) -> List[Tuple[Workload, int]]:
    """OverFeat's 5 convolution layers (fast model)."""
    shapes = [
        (3, 96, 231, 11, 4, 0),
        (96, 256, 24, 5, 1, 0),
        (256, 512, 12, 3, 1, 1),
        (512, 1024, 12, 3, 1, 1),
        (1024, 1024, 12, 3, 1, 1),
    ]
    layers = []
    for idx, (c, k, hw, kernel, stride, padding) in enumerate(shapes, start=1):
        wl = Workload(
            "C2D",
            f"overfeat_conv{idx}",
            {
                "batch": batch, "in_channel": c, "height": hw, "width": hw,
                "out_channel": k, "kernel": kernel, "stride": stride,
                "padding": padding,
            },
        )
        layers.append((wl, 1))
    return layers
