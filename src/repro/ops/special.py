"""New operators without good library support (§6.4).

* **BCM** — block-circulant matrix multiply, the compressed linear layer of
  C-LSTM [56]: the weight matrix is a grid of b×b circulant blocks, each
  stored as a single length-b vector.
* **SHO** — the shift operation of Shift-Net [59, 63]: a zero-FLOP
  "convolution" that moves each channel by a per-channel spatial offset.
"""

from __future__ import annotations

import numpy as np

from ..ir import Tensor, compute, placeholder, reduce_axis, sum_reduce
from .convolution import pad_nd


def block_circulant_matmul_compute(
    batch: int, in_dim: int, out_dim: int, block: int, name: str = "bcm"
) -> Tensor:
    """BCM: ``O[b, p*B+ii] = Σ_q Σ_jj W[p, q, (jj - ii) mod B] * X[b, q*B+jj]``.

    ``W`` holds one defining vector per circulant block, so the layer uses
    ``in_dim * out_dim / block`` parameters instead of ``in_dim * out_dim``.
    """
    if in_dim % block or out_dim % block:
        raise ValueError("dimensions must be divisible by the block size")
    x = placeholder((batch, in_dim), name=f"{name}_X")
    w = placeholder((out_dim // block, in_dim // block, block), name=f"{name}_W")
    rq = reduce_axis(in_dim // block, "rq")
    rj = reduce_axis(block, "rj")
    return compute(
        (batch, out_dim),
        lambda b, i: sum_reduce(
            w[i // block, rq, (rj - (i % block)) % block] * x[b, rq * block + rj],
            (rq, rj),
        ),
        name=name,
    )


def block_circulant_matmul_reference(
    x: np.ndarray, w: np.ndarray, block: int
) -> np.ndarray:
    """Numpy ground truth for :func:`block_circulant_matmul_compute`."""
    batch, in_dim = x.shape
    out_blocks, in_blocks, _ = w.shape
    out = np.zeros((batch, out_blocks * block), dtype=x.dtype)
    for p in range(out_blocks):
        for q in range(in_blocks):
            # Expand the defining vector into the full circulant block:
            # block[ii, jj] = w[p, q, (jj - ii) mod block]
            circ = np.empty((block, block), dtype=x.dtype)
            for ii in range(block):
                circ[ii] = np.roll(w[p, q], ii)
            out[:, p * block : (p + 1) * block] += (
                x[:, q * block : (q + 1) * block] @ circ.T
            )
    return out


def shift_compute(
    batch: int, channel: int, height: int, width: int, name: str = "shift"
) -> Tensor:
    """SHO: ``O[b,c,i,j] = I[b, c, i + sh(c), j + sw(c)]``.

    Channels are assigned one of nine (dh, dw) ∈ {-1,0,1}² offsets in
    round-robin, the standard grouping of the Shift paper; padding by one
    pixel makes every shifted read in-bounds.
    """
    data = placeholder((batch, channel, height, width), name=f"{name}_I")
    padded = pad_nd(data, [(0, 0), (0, 0), (1, 1), (1, 1)], name=f"{name}_pad")
    # With one-pixel padding, offset (c % 3, (c // 3) % 3) in 0..2 realizes
    # a shift of -1..1 relative to the original image.
    return compute(
        (batch, channel, height, width),
        lambda b, c, i, j: padded[b, c, i + c % 3, j + (c // 3) % 3],
        name=name,
    )


def shift_reference(data: np.ndarray) -> np.ndarray:
    """Numpy ground truth for :func:`shift_compute`."""
    batch, channel, height, width = data.shape
    padded = np.pad(data, [(0, 0), (0, 0), (1, 1), (1, 1)])
    out = np.empty_like(data)
    for c in range(channel):
        dh = c % 3
        dw = (c // 3) % 3
        out[:, c] = padded[:, c, dh : dh + height, dw : dw + width]
    return out
