"""Normalization-style operators: softmax and layer normalization.

These exercise the parts of the stack Table 1's operators do not:
multi-node mini-graphs whose *helper* nodes are themselves reductions
(which can never be inlined — they must be scheduled and materialized,
the full Algorithm 1 path exposed by :func:`repro.optimize.optimize_graph`),
the ``max`` combiner, unary math (exp/sqrt) and true division.
"""

from __future__ import annotations

import numpy as np

from ..ir import (
    Tensor,
    compute,
    exp,
    max_reduce,
    placeholder,
    reduce_axis,
    sqrt,
    sum_reduce,
)


def softmax_compute(rows: int, cols: int, name: str = "softmax") -> Tensor:
    """Numerically stable row softmax: three nested-loop nodes.

    ``m_i = max_j x_ij``; ``s_i = Σ_j e^(x_ij - m_i)``;
    ``o_ij = e^(x_ij - m_i) / s_i``.
    """
    x = placeholder((rows, cols), name=f"{name}_X")
    rmax = reduce_axis(cols, "rmax")
    row_max = compute(
        (rows,), lambda i: max_reduce(x[i, rmax], rmax), name=f"{name}_max"
    )
    rsum = reduce_axis(cols, "rsum")
    row_sum = compute(
        (rows,),
        lambda i: sum_reduce(exp(x[i, rsum] - row_max[i]), rsum),
        name=f"{name}_sum",
    )
    return compute(
        (rows, cols),
        lambda i, j: exp(x[i, j] - row_max[i]) / row_sum[i],
        name=name,
    )


def softmax_reference(x: np.ndarray) -> np.ndarray:
    """Numpy ground truth for :func:`softmax_compute`."""
    shifted = x - x.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


def layernorm_compute(
    rows: int, cols: int, epsilon: float = 1e-5, name: str = "layernorm"
) -> Tensor:
    """Row layer normalization: ``(x - mean) / sqrt(var + eps)``.

    Four nodes: mean (reduce), squared-deviation sum (reduce, consuming
    the mean), and the elementwise normalization.
    """
    x = placeholder((rows, cols), name=f"{name}_X")
    rmean = reduce_axis(cols, "rmean")
    mean = compute(
        (rows,),
        lambda i: sum_reduce(x[i, rmean] * (1.0 / cols), rmean),
        name=f"{name}_mean",
    )
    rvar = reduce_axis(cols, "rvar")
    variance = compute(
        (rows,),
        lambda i: sum_reduce(
            (x[i, rvar] - mean[i]) * (x[i, rvar] - mean[i]) * (1.0 / cols), rvar
        ),
        name=f"{name}_var",
    )
    return compute(
        (rows, cols),
        lambda i, j: (x[i, j] - mean[i]) / sqrt(variance[i] + epsilon),
        name=name,
    )


def layernorm_reference(x: np.ndarray, epsilon: float = 1e-5) -> np.ndarray:
    """Numpy ground truth for :func:`layernorm_compute`."""
    mean = x.mean(axis=1, keepdims=True)
    variance = ((x - mean) ** 2).mean(axis=1, keepdims=True)
    return (x - mean) / np.sqrt(variance + epsilon)
