"""Layout-transformed convolution: NCHWc (§6.3).

The paper's CPU results use the NCHW[x]c layout of Georganas et al. [17]:
channels are blocked into vectors of ``c`` (8 for AVX2) so the innermost
dimension is a contiguous channel vector and the SIMD unit runs over
channels instead of image columns.  This module provides:

* :func:`pack_nchwc` / :func:`unpack_nchwc` — layout-transform nodes
  (mini-graph helpers, inlineable like padding), and
* :func:`conv2d_nchwc_compute` — the convolution over blocked tensors:
  ``O[b, ko, i, j, ki] = Σ I[b, co, i+rx, j+ry, ci] * W[ko, co, rx, ry, ci, ki]``.

Numeric references included; the layout ablation benchmark shows the
vector-channel layout is what lets CPU schedules vectorize well when the
spatial width is awkward.
"""

from __future__ import annotations

import numpy as np

from ..ir import Tensor, compute, placeholder, reduce_axis, sum_reduce
from .convolution import conv_out_size, pad_nd


def pack_nchwc(data: Tensor, block: int, name: str = "pack") -> Tensor:
    """NCHW -> NCHWc: ``P[b, co, h, w, ci] = D[b, co*block + ci, h, w]``."""
    batch, channel, height, width = data.shape
    if channel % block:
        raise ValueError(f"channels {channel} not divisible by block {block}")
    return compute(
        (batch, channel // block, height, width, block),
        lambda b, co, h, w, ci: data[b, co * block + ci, h, w],
        name=name,
    )


def unpack_nchwc(data: Tensor, name: str = "unpack") -> Tensor:
    """NCHWc -> NCHW: ``D[b, c, h, w] = P[b, c // block, h, w, c % block]``."""
    batch, chunks, height, width, block = data.shape
    return compute(
        (batch, chunks * block, height, width),
        lambda b, c, h, w: data[b, c // block, h, w, c % block],
        name=name,
    )


def conv2d_nchwc_compute(
    batch: int,
    in_channel: int,
    height: int,
    width: int,
    out_channel: int,
    kernel: int,
    stride: int = 1,
    padding: int = 0,
    block: int = 8,
    name: str = "conv_nchwc",
) -> Tensor:
    """2D convolution over channel-blocked tensors.

    Input is ``(B, C/c, H, W, c)``, weight ``(K/c, C/c, kh, kw, c, c)``,
    output ``(B, K/c, OH, OW, c)`` — the output's innermost dimension is a
    contiguous vector of ``block`` output channels, the natural SIMD axis.
    """
    if in_channel % block or out_channel % block:
        raise ValueError("channels must be divisible by the vector block")
    data = placeholder(
        (batch, in_channel // block, height, width, block), name=f"{name}_I"
    )
    weight = placeholder(
        (out_channel // block, in_channel // block, kernel, kernel, block, block),
        name=f"{name}_W",
    )
    padded = pad_nd(
        data,
        [(0, 0), (0, 0), (padding, padding), (padding, padding), (0, 0)],
        name=f"{name}_pad",
    )
    out_h = conv_out_size(height, kernel, stride, padding)
    out_w = conv_out_size(width, kernel, stride, padding)
    rco = reduce_axis(in_channel // block, "rco")
    rci = reduce_axis(block, "rci")
    rx = reduce_axis(kernel, "rx")
    ry = reduce_axis(kernel, "ry")
    return compute(
        (batch, out_channel // block, out_h, out_w, block),
        lambda b, ko, i, j, ki: sum_reduce(
            padded[b, rco, i * stride + rx, j * stride + ry, rci]
            * weight[ko, rco, rx, ry, rci, ki],
            (rco, rx, ry, rci),
        ),
        name=name,
    )


def pack_nchwc_reference(data: np.ndarray, block: int) -> np.ndarray:
    """Numpy ground truth for :func:`pack_nchwc`."""
    batch, channel, height, width = data.shape
    return (
        data.reshape(batch, channel // block, block, height, width)
        .transpose(0, 1, 3, 4, 2)
        .copy()
    )


def unpack_nchwc_reference(data: np.ndarray) -> np.ndarray:
    """Numpy ground truth for :func:`unpack_nchwc`."""
    batch, chunks, height, width, block = data.shape
    return (
        data.transpose(0, 1, 4, 2, 3)
        .reshape(batch, chunks * block, height, width)
        .copy()
    )


def pack_weight_nchwc_reference(weight: np.ndarray, block: int) -> np.ndarray:
    """KCRS -> (K/c, C/c, R, S, ci, ki)."""
    out_channel, in_channel, kh, kw = weight.shape
    return (
        weight.reshape(out_channel // block, block, in_channel // block, block, kh, kw)
        .transpose(0, 2, 4, 5, 3, 1)
        .copy()
    )


def conv2d_nchwc_reference(
    data_nchwc: np.ndarray,
    weight_blocked: np.ndarray,
    stride: int = 1,
    padding: int = 0,
) -> np.ndarray:
    """Reference over blocked layouts (via the dense NCHW convolution)."""
    from .convolution import conv2d_reference

    block = data_nchwc.shape[-1]
    data = unpack_nchwc_reference(data_nchwc)
    ko, co, kh, kw, ci, ki = weight_blocked.shape
    weight = (
        weight_blocked.transpose(0, 5, 1, 4, 2, 3)
        .reshape(ko * ki, co * ci, kh, kw)
    )
    out = conv2d_reference(data, weight, stride, padding)
    return pack_nchwc_reference(out, block)
