"""FlexTensor reproduction: automatic schedule exploration and optimization
for tensor computation on heterogeneous systems (ASPLOS 2020).

Quickstart::

    from repro import ops, optimize
    from repro.model import V100

    conv = ops.conv2d_compute(1, 256, 28, 28, 512, 3, stride=1, padding=1)
    result = optimize(conv, V100, trials=40)
    print(result.summary())
    print(result.generated_code())

The package layers (bottom-up): :mod:`repro.ir` (tensor-expression IR),
:mod:`repro.graph` + :mod:`repro.analysis` (the front-end), :mod:`repro.space`
(schedule-space generation), :mod:`repro.schedule` + :mod:`repro.codegen`
(lowering, interpretation, code emission), :mod:`repro.model` (the simulated
heterogeneous hardware), :mod:`repro.explore` (SA + Q-learning back-end),
:mod:`repro.baselines` (vendor libraries, AutoTVM), :mod:`repro.ops`
(operator zoo and workload suites), :mod:`repro.nn` (DNN case study), and
:mod:`repro.optimize` (the public entry point).
"""

from . import analysis, baselines, codegen, explore, graph, ir, model, nn, ops, runtime, schedule, space, utils, viz
from .optimize import GraphOptimizeResult, OptimizeResult, optimize, optimize_graph, tune_workload

__version__ = "1.0.0"

__all__ = [
    "OptimizeResult", "analysis", "baselines", "codegen", "explore", "graph", "tune_workload", "viz",
    "ir", "model", "nn", "ops", "optimize", "runtime", "schedule", "space", "utils",
]
