"""Backwards-compatible shim: the GBT implementation moved to
``repro.learn.gbt`` so the AutoTVM baseline and the surrogate screen
(``repro.explore.surrogate``) share one model."""

from __future__ import annotations

from ..learn.gbt import GradientBoostedTrees, RegressionTree, _Node

__all__ = ["GradientBoostedTrees", "RegressionTree", "_Node"]
