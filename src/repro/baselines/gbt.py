"""Gradient-boosted regression trees, from scratch in numpy.

A small XGBoost stand-in for the AutoTVM baseline's cost model [9]:
least-squares boosting over depth-limited CART trees with quantile-sampled
split thresholds.  Deterministic given its inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


class RegressionTree:
    """CART regression tree with greedy variance-reduction splits."""

    def __init__(self, max_depth: int = 3, min_samples: int = 4, num_thresholds: int = 8):
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.num_thresholds = num_thresholds
        self._root: Optional[_Node] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "RegressionTree":
        self._root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < self.min_samples or np.ptp(y) == 0:
            return node
        best_gain = 0.0
        best = None
        base_sse = float(((y - y.mean()) ** 2).sum())
        for feature in range(x.shape[1]):
            column = x[:, feature]
            if np.ptp(column) == 0:
                continue
            quantiles = np.quantile(
                column, np.linspace(0.1, 0.9, self.num_thresholds)
            )
            for threshold in np.unique(quantiles):
                mask = column <= threshold
                if mask.sum() == 0 or mask.sum() == len(y):
                    continue
                left, right = y[mask], y[~mask]
                sse = float(((left - left.mean()) ** 2).sum()) + float(
                    ((right - right.mean()) ** 2).sum()
                )
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold), mask)
        if best is None:
            return node
        feature, threshold, mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out


class GradientBoostedTrees:
    """Least-squares gradient boosting (the XGBoost role in AutoTVM)."""

    def __init__(self, num_rounds: int = 30, learning_rate: float = 0.3,
                 max_depth: int = 3, min_samples: int = 4):
        self.num_rounds = num_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples = min_samples
        self._trees: List[RegressionTree] = []
        self._base: float = 0.0

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees) or self._base != 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self._trees = []
        self._base = float(y.mean()) if len(y) else 0.0
        residual = y - self._base
        for _ in range(self.num_rounds):
            if np.allclose(residual, 0):
                break
            tree = RegressionTree(self.max_depth, self.min_samples).fit(x, residual)
            update = tree.predict(x)
            residual = residual - self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        out = np.full(len(x), self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(x)
        return out
