"""AutoTVM baseline: template-restricted space + GBT cost model (§6.5).

AutoTVM [9] tunes the *parameters* of a hand-written schedule template.
Relative to FlexTensor's generated space this means:

* a much smaller space — the template fixes the loop structure and only
  exposes power-of-two-flavoured tile sizes (the paper measures
  FlexTensor's C2D space as 2027x larger on average);
* model-guided random sampling — an XGBoost cost model ranks random
  candidate batches and the top ones are measured, with periodic
  retraining (whose time is charged to the simulated clock).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..graph import MiniGraph, get_graph
from ..ir import ComputeOp
from ..runtime import Evaluator
from ..explore.tuner import BaseTuner, TuneResult
from ..schedule import (
    CPU_REDUCE_PARTS,
    CPU_SPATIAL_PARTS,
    GPU_REDUCE_PARTS,
    GPU_SPATIAL_PARTS,
)
from ..learn import GradientBoostedTrees
from ..space import ChoiceKnob, Point, ScheduleSpace, SplitKnob, factorizations


def _template_split_choices(extent: int, parts: int, inner_caps: Sequence[int]):
    """Template knob choices: divisible factorizations whose non-block
    parts are capped.  Hand templates expose all divisors of an axis but
    bound the virtual-thread and register-tile factors to small values —
    the structural restriction relative to FlexTensor's generated space."""
    allowed = []
    for factors in factorizations(extent, parts):
        ok = True
        for position, factor in enumerate(factors[1:], start=1):
            cap = inner_caps[min(position - 1, len(inner_caps) - 1)]
            if factor > cap:
                ok = False
                break
        if ok:
            allowed.append(factors)
    return allowed or list(factorizations(extent, parts))[:1]


def build_template_space(output, target: str) -> ScheduleSpace:
    """The AutoTVM-style template space for the main compute node."""
    graph = output if isinstance(output, MiniGraph) else get_graph(output)
    op: ComputeOp = graph.main_op
    knobs = []
    if target == "gpu":
        for i, axis in enumerate(op.axes):
            allowed = _template_split_choices(
                axis.extent, GPU_SPATIAL_PARTS, inner_caps=(2, 256, 4)
            )
            knobs.append(SplitKnob(f"sp{i}", axis.extent, GPU_SPATIAL_PARTS, allowed=allowed))
        for i, axis in enumerate(op.reduce_axes):
            allowed = _template_split_choices(
                axis.extent, GPU_REDUCE_PARTS, inner_caps=(16,)
            )
            knobs.append(SplitKnob(f"re{i}", axis.extent, GPU_REDUCE_PARTS, allowed=allowed))
        knobs.append(ChoiceKnob("unroll", [0, 64]))
    elif target == "cpu":
        for i, axis in enumerate(op.axes):
            allowed = _template_split_choices(
                axis.extent, CPU_SPATIAL_PARTS, inner_caps=(8, 16)
            )
            knobs.append(SplitKnob(f"sp{i}", axis.extent, CPU_SPATIAL_PARTS, allowed=allowed))
        for i, axis in enumerate(op.reduce_axes):
            allowed = _template_split_choices(
                axis.extent, CPU_REDUCE_PARTS, inner_caps=(16,)
            )
            knobs.append(SplitKnob(f"re{i}", axis.extent, CPU_REDUCE_PARTS, allowed=allowed))
        knobs.append(ChoiceKnob("unroll", [0, 64]))
        knobs.append(ChoiceKnob("fuse", list(range(1, len(op.axes) + 1))))
    else:
        raise ValueError(f"AutoTVM baseline supports gpu/cpu, not {target!r}")
    return ScheduleSpace(op, target, knobs)


class AutoTVMTuner(BaseTuner):
    """Model-guided random sampling over the template space."""

    name = "autotvm"

    def __init__(
        self,
        evaluator: Evaluator,
        batch_size: int = 8,
        pool_size: int = 256,
        epsilon: float = 0.25,
        model_fit_seconds: float = 3.0,
        warmup_batches: int = 2,
        seed: int = 0,
    ):
        super().__init__(evaluator, seed=seed)
        self.batch_size = batch_size
        self.pool_size = pool_size
        self.epsilon = epsilon
        self.model_fit_seconds = model_fit_seconds
        self.warmup_batches = warmup_batches
        self.model = GradientBoostedTrees()

    def tune(self, trials: int, num_seeds: int = 0) -> TuneResult:
        """Each trial measures one batch of candidates and retrains the
        cost model (once past the random warm-up)."""
        for trial in range(trials):
            batch = self._propose_batch(trial)
            for point in batch:
                if point not in self.visited:
                    self._evaluate(point)
            if trial + 1 >= self.warmup_batches and self.evaluated:
                x = np.stack([self.space.features(p) for p in self.evaluated])
                y = np.asarray(list(self.evaluated.values()))
                self.model.fit(x, np.log1p(y))
                # Model training is real tuning time AutoTVM pays.
                self.evaluator.charge(
                    self.model_fit_seconds + 0.005 * len(self.evaluated)
                )
        return self._result()

    def _propose_batch(self, trial: int) -> List[Point]:
        pool = {self.space.random_point(self.rng) for _ in range(self.pool_size)}
        pool = [p for p in pool if p not in self.visited]
        if not pool:
            return []
        if trial < self.warmup_batches or not self.model.is_fitted:
            idx = self.rng.permutation(len(pool))[: self.batch_size]
            return [pool[i] for i in idx]
        scores = self.model.predict(np.stack([self.space.features(p) for p in pool]))
        order = np.argsort(-scores)
        batch: List[Point] = []
        for rank in order:
            if len(batch) >= self.batch_size:
                break
            if self.rng.random() < self.epsilon:
                continue  # epsilon-greedy: occasionally skip a top pick
            batch.append(pool[rank])
        while len(batch) < self.batch_size and len(batch) < len(pool):
            candidate = pool[int(self.rng.integers(len(pool)))]
            if candidate not in batch:
                batch.append(candidate)
        return batch


def autotvm_optimize(
    output,
    device_spec,
    trials: int = 40,
    seed: int = 0,
    inline_helpers: bool = True,
) -> TuneResult:
    """Run the AutoTVM baseline end to end on one computation.

    ``inline_helpers=False`` models naive templates that materialize the
    data-rearrangement stages (padding / stride expansion) as separate
    kernels; the default matches TOPI-style templates, which inline them.
    """
    from ..graph import get_graph
    from ..model import target_of
    from ..schedule import GraphConfig

    target = target_of(device_spec)
    graph = get_graph(output) if not hasattr(output, "main_op") else output
    space = build_template_space(graph, target)
    if inline_helpers:
        graph_config = GraphConfig()
    else:
        graph_config = GraphConfig(
            inline={op.name: False for op in graph.compute_ops if op is not graph.main_op}
        )
    evaluator = Evaluator(graph, device_spec, space=space, graph_config=graph_config)
    tuner = AutoTVMTuner(evaluator, seed=seed)
    return tuner.tune(trials)
