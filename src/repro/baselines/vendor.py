"""Simulated vendor libraries: cuDNN, cuBLAS, PyTorch-native, MKL-DNN,
hand-optimized FPGA OpenCL, and the hand-tuned GPU kernels of §6.4.

Modeling approach (see DESIGN.md): a vendor library is a *strong but
static* implementation.  Each library is simulated as

  ``min over a small set of fixed, shape-agnostic expert configurations``
  of the same analytical machine model FlexTensor's search uses,
  divided by an *algorithm factor* where the real library switches to a
  better algorithm (Winograd for 3x3/stride-1 convolutions, implicit GEMM
  for transposed convolutions), times a *polish factor* for hand-written
  kernels beating compiler codegen in their sweet spot.

Because library and search share the machine model, the FlexTensor-vs-
library ratios measure exactly what the paper measures: the value of
per-shape schedule adaptation, plus the algorithm-level effects the paper
calls out (cuDNN winning T2D/T3D and the Winograd layers C4/C6; GRP/DIL/
DEP being served by ill-fitting kernels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, List, Optional, Tuple

import numpy as np

from ..graph import get_graph
from ..codegen import flops_of
from ..model import (
    CpuSpec,
    FpgaSpec,
    GpuSpec,
    INVALID_TIME,
    model_for,
    target_of,
)
from ..schedule import GraphConfig, lower
from ..space import build_space, heuristic_seed_points
from ..ops.workloads import Workload


@dataclass(frozen=True)
class LibraryResult:
    """A simulated library measurement."""

    library: str
    seconds: float
    gflops: float
    algorithm: str

    @property
    def valid(self) -> bool:
        return self.seconds < INVALID_TIME


def _gpu_kernel_zoo(op) -> List[dict]:
    """The library's kernel zoo: fixed tiling strategies a vendor ships.

    Each plan distributes a thread budget either innermost-spatial-first
    (direct-convolution kernels) or channel-first (GEMM-style kernels),
    with a few register-tile/reduce-chunk variants.  Real libraries pick
    the best kernel per call via an internal heuristic; we pick by the
    machine model, which plays that role.
    """
    extents = [a.extent for a in op.axes]
    plans = []
    for budget, channel_first, inner_cap, r_inner, cap in (
        (256, False, 1, 1, 32),
        (256, False, 2, 4, 32),
        (128, False, 4, 8, 32),
        (256, True, 1, 4, 64),
        (128, True, 2, 8, 64),
        (64, True, 4, 1, 64),
        (256, False, 1, 8, 256),   # GEMM/GEMV-style: wide 1-D thread tiles
        (512, False, 2, 16, 256),
        (512, False, 1, 1, 128),   # spatial-heavy kernels for shallow inputs
    ):
        plan = {}
        threads = [1] * len(extents)
        remaining = budget
        order = range(len(extents) - 1, -1, -1)
        if channel_first and len(extents) > 1:
            order = [1] + list(range(len(extents) - 1, 1, -1)) + [0]
        for i in order:
            t = min(extents[i], remaining, cap)
            threads[i] = t
            remaining = max(remaining // max(t, 1), 1)
        for i, extent in enumerate(extents):
            inner = min(inner_cap, extent)
            block = max(extent // (threads[i] * inner), 1)
            plan[f"sp{i}"] = (block, 1, threads[i], inner)
        for i, axis in enumerate(op.reduce_axes):
            ri = min(r_inner, axis.extent)
            plan[f"re{i}"] = (max(axis.extent // ri, 1), ri)
        plans.append(plan)
    return plans


def _best_fixed_config_seconds(output, spec, num_configs: int = 6) -> float:
    """Kernel time of the best among the library's fixed expert configs."""
    from ..space import SplitKnob, closest_factorization

    target = target_of(spec)
    space = build_space(output, target)
    model = model_for(spec)
    best = INVALID_TIME
    op = space.op
    if target == "gpu":
        plans = _gpu_kernel_zoo(op)[:num_configs]
        defaults = dict(_DEFAULT_GPU_CHOICES)
    elif target == "cpu":
        plans = _cpu_kernel_zoo(op)[:num_configs]
        fuse_knob = space.knob("fuse")
        defaults = {
            "reorder": 2,  # keep the SIMD loop spatial
            "unroll": 2,
            "vectorize": 1,
            "fuse": len(fuse_knob.choices) - 1,
        }
    else:
        plans = None
        defaults = None
    if plans is not None:
        for plan in plans:
            point = []
            for knob in space.knobs:
                if isinstance(knob, SplitKnob):
                    point.append(knob.index_of(
                        closest_factorization(knob.extent, knob.parts, plan[knob.name])
                    ))
                else:
                    point.append(defaults.get(knob.name, 0))
            config = space.decode(tuple(point))
            variants = [config]
            if target == "gpu":
                # Kernels for irregular access patterns (grouped/depthwise
                # convolution) skip shared-memory staging.
                variants.append(config.with_(use_shared=not config.use_shared))
            for variant in variants:
                scheduled = lower(output, variant, target, GraphConfig())
                best = min(best, model.estimate_seconds(scheduled))
        return best
    rng = np.random.default_rng(0)  # deterministic: plans are rule-based
    for point in heuristic_seed_points(space, num_configs, rng)[:num_configs]:
        config = space.decode(point)
        scheduled = lower(output, config, target, GraphConfig())
        best = min(best, model.estimate_seconds(scheduled))
    return best


#: Library kernels always cache in shared memory, unroll and vectorize.
_DEFAULT_GPU_CHOICES = {"reorder": 0, "unroll": 2, "vectorize": 1, "shared": 1}


def _cpu_kernel_zoo(op) -> List[dict]:
    """MKL-DNN-style JIT blocking plans: parallel over outer channel and
    row blocks, a fixed register tile, SIMD on the innermost axis."""
    extents = [a.extent for a in op.axes]
    plans = []
    for middle, vec, r_inner in ((2, 8, 1), (2, 16, 4), (4, 8, 4), (1, 8, 1)):
        plan = {}
        for i, extent in enumerate(extents):
            if i == len(extents) - 1:
                inner = min(vec, extent)
                mid = 1
            else:
                inner = 1
                mid = min(middle, extent)
            plan[f"sp{i}"] = (max(extent // (mid * inner), 1), mid, inner)
        for i, axis in enumerate(op.reduce_axes):
            ri = min(r_inner, axis.extent)
            plan[f"re{i}"] = (max(axis.extent // ri, 1), ri)
        plans.append(plan)
    return plans


def _algorithm_factor_gpu(workload: Workload) -> Tuple[float, str]:
    """cuDNN's algorithm selection: (speedup over direct, name)."""
    op = workload.operator
    params = workload.params
    if op == "C2D":
        kernel = params.get("kernel", 1)
        stride = params.get("stride", 1)
        if kernel == 3 and stride == 1:
            return _winograd_factor(params), "winograd"
        if kernel == 1:
            return 1.1, "implicit-gemm"
        if params.get("in_channel", 64) <= 4:
            # dedicated first-layer kernels for 3-channel image inputs
            return 2.5, "first-layer"
        return 1.0, "implicit-gemm"
    if op in ("T1D", "T2D", "T3D"):
        # Implicit GEMM on the gradient avoids computing over the
        # stride-dilated zeros the direct algorithm touches.  The exponent
        # reflects how much of that dilation the grad kernels recover in
        # practice (transform overheads grow with dimensionality).
        # Bounded by the physically recoverable dilation waste (stride^d),
        # nearly fully recovered in 2D/3D; 1D grad kernels gain less.
        dims = {"T1D": 1, "T2D": 2, "T3D": 3}[op]
        recovery = {"T1D": 0.35, "T2D": 0.95, "T3D": 0.9}[op]
        stride = params.get("stride", 1)
        grad_polish = 1.3  # the most heavily hand-optimized cuDNN paths
        return recovery * stride**dims * grad_polish, "implicit-gemm-grad"
    if op == "C3D":
        return 1.0, "direct"
    if op in ("GRP", "DIL"):
        # The paper: GRP and DIL "reuse the kernels of C2D" — poor fit.
        return 0.45, "c2d-kernel-reuse"
    if op == "DEP":
        # cuDNN's DEP path is slower than PyTorch's native kernels.
        return 0.10, "c2d-kernel-reuse"
    return 1.0, "direct"


def _winograd_factor(params: dict) -> float:
    """Winograd F(2x2, 3x3) speedup over direct convolution, shape-aware.

    The 2.25x arithmetic saving is eaten by input/output transforms whose
    relative cost shrinks with channel depth (more GEMM work per
    transformed tile) and by tile-quantization when the spatial extent is
    small or very large relative to the transform tile.  The paper's
    crossover — cuDNN beating the searched schedule only on C4 and C6
    (56x56, 128–256 channels) — falls out of exactly this shape law.
    """
    import math

    channels = min(params.get("in_channel", 1), params.get("out_channel", 1))
    spatial = params.get("height", params.get("width", 1))
    channel_term = channels / (channels + 96.0)
    spatial_term = math.exp(-((math.log2(max(spatial, 1)) - math.log2(48.0)) ** 2) / 0.8)
    return 1.0 + 2.3 * channel_term * spatial_term


def cudnn_time(workload: Workload, spec: GpuSpec) -> LibraryResult:
    """Simulated cuDNN (convolution ops) on a GPU."""
    output = workload.build()
    base = _best_fixed_config_seconds(output, spec, num_configs=9)
    factor, algorithm = _algorithm_factor_gpu(workload)
    polish = 1.05
    seconds = base / (factor * polish)
    return LibraryResult("cuDNN", seconds, workload.flops() / seconds / 1e9, algorithm)


def cublas_time(workload: Workload, spec: GpuSpec) -> LibraryResult:
    """Simulated cuBLAS (GMV / GMM / BIL).  BIL runs as two GEMM calls
    with an intermediate tensor round-trip."""
    output = workload.build()
    base = _best_fixed_config_seconds(output, spec, num_configs=9)
    # GEMM kernels are cuBLAS's crown jewels; GEMV at batch 1 is a thin
    # bandwidth-bound kernel with far less tuning headroom invested.
    polish = {"GMV": 0.85, "GMM": 1.05}.get(workload.operator, 1.15)
    seconds = base / polish
    algorithm = "gemm"
    if workload.operator == "BIL":
        params = workload.params
        intermediate = params["n"] * params["m"] * params["l"] * 4 * 2
        seconds = seconds * 1.12 + intermediate / (spec.bandwidth_gbs * 1e9)
        algorithm = "gemm-pair"
    return LibraryResult("cuBLAS", seconds, workload.flops() / seconds / 1e9, algorithm)


def pytorch_gpu_time(workload: Workload, spec: GpuSpec) -> LibraryResult:
    """Simulated PyTorch native CUDA kernels (cuDNN disabled): a single
    generic configuration, direct algorithms only."""
    output = workload.build()
    base = _best_fixed_config_seconds(output, spec, num_configs=2)
    factor = 1.0
    algorithm = "direct"
    if workload.operator == "DEP":
        factor, algorithm = 0.45, "per-channel-direct"
    elif workload.operator in ("GRP", "DIL"):
        factor, algorithm = 0.55, "direct"
    elif workload.operator in ("T1D", "T2D", "T3D"):
        factor, algorithm = 0.9, "col2im"
    seconds = base / (0.75 * factor)  # no autotuning, no polish
    return LibraryResult("PyTorch", seconds, workload.flops() / seconds / 1e9, algorithm)


def gpu_library_time(workload: Workload, spec: GpuSpec) -> LibraryResult:
    """The library PyTorch dispatches to on GPU for this operator (§6.1):
    cuBLAS for the linear-algebra ops, PyTorch-native for DEP (where
    cuDNN is slower), cuDNN otherwise."""
    if workload.operator in ("GMV", "GMM", "BIL"):
        return cublas_time(workload, spec)
    if workload.operator == "DEP":
        return pytorch_gpu_time(workload, spec)
    return cudnn_time(workload, spec)


def mkldnn_time(workload: Workload, spec: CpuSpec) -> LibraryResult:
    """Simulated MKL-DNN / MKL (the PyTorch CPU backend): JIT NCHWc
    kernels — strong for channel counts that fill AVX registers, generic
    blocking otherwise."""
    output = workload.build()
    base = _best_fixed_config_seconds(output, spec, num_configs=4)
    # JIT kernels pay layout packing and fixed thread-partitioning
    # overheads at batch 1, landing below the model's ideal blocking.
    polish = 0.75
    channel_fit = 1.0
    channels = workload.params.get("in_channel", workload.params.get("k", 8))
    if channels % 8 != 0:
        channel_fit = 0.55  # NCHWc layout padding waste
    if workload.operator in ("T1D", "T2D", "T3D"):
        polish = 0.9
    seconds = base / (polish * channel_fit)
    return LibraryResult("MKL-DNN", seconds, workload.flops() / seconds / 1e9, "jit-nchwc")


def fpga_opencl_time(workload: Workload, spec: FpgaSpec) -> LibraryResult:
    """Hand-optimized OpenCL baseline on the FPGA, following the fixed
    accelerator design of Zhang et al. [65]: a fixed PE array, one
    buffering scheme, no per-shape design-space exploration."""
    from ..space import SplitKnob, closest_factorization

    output = workload.build()
    target = "fpga"
    space = build_space(output, target)
    model = model_for(spec)
    op = space.op
    # A fixed, generously sized PE array (the [65]-style hand design),
    # allocated innermost-axis-first, with one buffering scheme.
    extents = [a.extent for a in op.axes]
    budget = 512
    plan = {}
    remaining = budget
    for i in range(len(extents) - 1, -1, -1):
        pe = min(extents[i], remaining, 64)
        remaining = max(remaining // max(pe, 1), 1)
        plan[f"sp{i}"] = (max(extents[i] // pe, 1), pe)
    for i, axis in enumerate(op.reduce_axes):
        plan[f"re{i}"] = (axis.extent,)
    point = []
    for knob in space.knobs:
        if isinstance(knob, SplitKnob):
            point.append(knob.index_of(
                closest_factorization(knob.extent, knob.parts, plan[knob.name])
            ))
        else:
            point.append(0)
    config = space.decode(tuple(point)).with_(
        fpga_partition=4, fpga_pipeline=3, fpga_buffer_lines=4
    )
    scheduled = lower(output, config, target, GraphConfig())
    seconds = model.estimate_seconds(scheduled) / 1.45  # hand-tuned HLS polish
    return LibraryResult("OpenCL-hand", seconds, workload.flops() / seconds / 1e9, "fixed-pe-array")


def hand_tuned_gpu_time(workload: Workload, spec: GpuSpec) -> LibraryResult:
    """The §6.4 baseline for the new operators (BCM / SHO): our own
    hand-tuned implementation — 4-level tiling with hand-picked split
    factors and deep unrolling, but one configuration for all shapes."""
    output = workload.build()
    target = "gpu"
    space = build_space(output, target)
    model = model_for(spec)
    rng = np.random.default_rng(0)
    seconds = INVALID_TIME
    # The hand implementation fixes its 4-level tiling and deep unrolling,
    # but a competent author picks the working memory scope (BCM's modular
    # and shift's per-channel indexing make naive shared-memory staging
    # infeasible, so those kernels read through the cache hierarchy).
    for point in heuristic_seed_points(space, 2, rng)[:2]:
        for use_shared in (True, False):
            config = space.decode(point).with_(unroll_depth=256, use_shared=use_shared)
            scheduled = lower(output, config, target, GraphConfig())
            seconds = min(seconds, model.estimate_seconds(scheduled))
    return LibraryResult("hand-tuned", seconds, workload.flops() / seconds / 1e9, "4-level-tiling")
