"""Baselines: simulated vendor libraries and the AutoTVM comparison."""

from .autotvm import AutoTVMTuner, autotvm_optimize, build_template_space
from .gbt import GradientBoostedTrees, RegressionTree
from .vendor import (
    LibraryResult,
    cublas_time,
    cudnn_time,
    fpga_opencl_time,
    gpu_library_time,
    hand_tuned_gpu_time,
    mkldnn_time,
    pytorch_gpu_time,
)

__all__ = [
    "AutoTVMTuner", "GradientBoostedTrees", "LibraryResult", "RegressionTree",
    "autotvm_optimize", "build_template_space", "cublas_time", "cudnn_time",
    "fpga_opencl_time", "gpu_library_time", "hand_tuned_gpu_time",
    "mkldnn_time", "pytorch_gpu_time",
]
