"""Persistent tuning records ("tophub"-style best-schedule store).

Tuning costs minutes; its artifact — the best configuration per
(operator, shape, device) — is a few hundred bytes.  A :class:`RecordBook`
appends every finished tuning run to a JSONL file and serves the best
known configuration back, so repeated runs warm-start instead of
re-searching (the deployment mode TVM calls a "tophub" package).
"""

from __future__ import annotations

import json
import os
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..schedule import NodeConfig
from ..utils.serialization import config_from_dict, config_to_dict
from .locking import locked


def workload_key(operator: str, params: Dict, device: str) -> str:
    """Canonical lookup key for a tuned workload."""
    shape = ",".join(f"{k}={params[k]}" for k in sorted(params))
    return f"{operator}[{shape}]@{device}"


def parse_workload_key(key: str) -> Optional[Tuple[str, Dict[str, int], str]]:
    """Inverse of :func:`workload_key`: ``(operator, params, device)``.

    Returns None for keys that do not follow the canonical layout (e.g.
    hand-written record files) instead of raising — callers scanning a
    whole book for same-family neighbors must survive foreign keys.
    """
    try:
        head, device = key.rsplit("@", 1)
        operator, rest = head.split("[", 1)
        if not rest.endswith("]"):
            return None
        body = rest[:-1]
        params: Dict[str, int] = {}
        if body:
            for item in body.split(","):
                name, value = item.split("=", 1)
                params[name] = int(value)
        return operator, params, device
    except (ValueError, TypeError):
        return None


@dataclass
class TuningRecord:
    """One finished tuning run."""

    key: str
    config: NodeConfig
    gflops: float
    trials: int = 0
    seed: int = 0
    #: Structural operator identity (:meth:`Evaluator.op_signature`) —
    #: keys the O(1) best-per-signature index serving the tuning
    #: service's read path.  Empty on records written before it existed.
    signature: str = ""

    def to_json(self) -> str:
        """Serialize the record as one JSONL line."""
        payload = {
            "key": self.key,
            "config": config_to_dict(self.config),
            "gflops": self.gflops,
            "trials": self.trials,
            "seed": self.seed,
        }
        if self.signature:
            payload["signature"] = self.signature
        return json.dumps(payload)

    @classmethod
    def from_json(cls, line: str) -> "TuningRecord":
        """Parse a record from a JSONL line."""
        payload = json.loads(line)
        return cls(
            key=payload["key"],
            config=config_from_dict(payload["config"]),
            gflops=payload["gflops"],
            trials=payload.get("trials", 0),
            seed=payload.get("seed", 0),
            signature=str(payload.get("signature", "")),
        )


class RecordBook:
    """Append-only store of tuning records with best-per-key lookup."""

    def __init__(self, path: Optional[Union[str, Path]] = None):
        self.path = Path(path) if path else None
        self._best: Dict[str, TuningRecord] = {}
        # O(1) best-schedule index keyed by structural operator signature
        # (rebuilt on load, maintained on append): the high-QPS lookup
        # path of ``repro.serve`` never scans the JSONL file per query.
        self._best_by_signature: Dict[str, TuningRecord] = {}
        if self.path and self.path.exists():
            for record in self._read_all():
                self._consider(record)

    def _read_all(self) -> Iterator[TuningRecord]:
        for lineno, line in enumerate(self.path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                if json.loads(line).get("type") is not None:
                    continue  # typed side-channel line (e.g. metrics)
            except json.JSONDecodeError:
                pass  # fall through to the record parser's warning
            try:
                yield TuningRecord.from_json(line)
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # A record file truncated mid-append (killed process) or
                # hand-edited must not take the whole book down.
                warnings.warn(f"skipping corrupt record at {self.path}:{lineno}")

    def _consider(self, record: TuningRecord) -> bool:
        improved = False
        current = self._best.get(record.key)
        if current is None or record.gflops > current.gflops:
            self._best[record.key] = record
            improved = True
        if record.signature:
            by_sig = self._best_by_signature.get(record.signature)
            if by_sig is None or record.gflops > by_sig.gflops:
                self._best_by_signature[record.signature] = record
        return improved

    # -- public API --------------------------------------------------------

    def add(self, record: TuningRecord) -> None:
        """Append a record (and persist it if a path is configured)."""
        self._consider(record)
        if self.path:
            # Single write + flush + fsync: the line is on disk (or not at
            # all) before add() returns, so a crash can truncate at most
            # the line being appended — which _read_all then skips.  The
            # flock serializes concurrent writer processes line-at-a-time.
            with open(self.path, "a") as f, locked(f):
                f.write(record.to_json() + "\n")
                f.flush()
                os.fsync(f.fileno())

    def add_metrics(self, payload: Dict) -> None:
        """Append a throughput/metrics side-channel line.

        Metrics ride in the same JSONL file tagged ``"type": "metrics"``;
        record loading skips typed lines, so old readers are unaffected.
        """
        if not self.path:
            return
        line = json.dumps({"type": "metrics", **payload})
        with open(self.path, "a") as f, locked(f):
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())

    def metrics(self) -> List[Dict]:
        """All metrics lines in append order (empty without a path)."""
        if not self.path or not self.path.exists():
            return []
        found = []
        for line in self.path.read_text().splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(payload, dict) and payload.get("type") == "metrics":
                found.append(payload)
        return found

    def best(self, key: str) -> Optional[TuningRecord]:
        """Best known record for a workload key, or None."""
        return self._best.get(key)

    def best_for_signature(self, signature: str) -> Optional[TuningRecord]:
        """Best known record for a structural operator signature, or None.

        O(1): served from the index maintained on every append and
        rebuilt on load — property-tested against a full file scan in
        ``tests/test_serve.py``.
        """
        if not signature:
            return None
        return self._best_by_signature.get(signature)

    def signatures(self) -> List[str]:
        """All indexed operator signatures, sorted."""
        return sorted(self._best_by_signature)

    def keys(self) -> List[str]:
        """All workload keys with at least one record, sorted."""
        return sorted(self._best)

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, key: str) -> bool:
        return key in self._best
