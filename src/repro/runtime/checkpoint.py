"""Crash-safe checkpointing of tuner state (JSONL, atomic replace).

A tuning run is hours of simulated (or real) measurements; losing the
H set, the visited set, and the Q-network to a crash means paying for
them again.  A checkpoint file holds one JSON snapshot per line, newest
last; writes go through a temp file + ``os.replace`` so a kill at any
instant leaves either the old file or the new one, never a torn write.
Loading walks the lines backwards and returns the newest parseable
snapshot, so even a checkpoint file truncated by a dying filesystem
still resumes from the latest intact state.

See ``docs/robustness.md`` for the snapshot schema.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path
from typing import Dict, List, Optional, Union

#: Schema version stamped into every snapshot.
CHECKPOINT_VERSION = 1


def save_checkpoint(
    path: Union[str, Path], snapshot: Dict, keep: int = 3
) -> None:
    """Append a snapshot to a JSONL checkpoint file atomically.

    The file retains at most ``keep`` snapshots (oldest dropped); the
    whole file is rewritten to a sibling temp file and renamed over the
    original, so readers never observe a partial write.
    """
    path = Path(path)
    snapshot = dict(snapshot)
    snapshot.setdefault("version", CHECKPOINT_VERSION)
    lines: List[str] = []
    if path.exists():
        text = path.read_text(errors="replace")
        lines = [l for l in text.splitlines() if l.strip()]
    lines.append(json.dumps(snapshot))
    lines = lines[-max(keep, 1):]
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w") as f:
        f.write("\n".join(lines) + "\n")
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def load_checkpoint(path: Union[str, Path]) -> Optional[Dict]:
    """The newest valid snapshot in a checkpoint file, or None.

    Corrupt or truncated lines (e.g. the process died mid-append on a
    filesystem without atomic rename) are skipped with a warning.
    """
    path = Path(path)
    if not path.exists():
        return None
    # errors="replace": a disk-level corruption dropping raw bytes into
    # the file must degrade to a skipped line, not an exception.
    lines = path.read_text(errors="replace").splitlines()
    for line in reversed(lines):
        line = line.strip()
        if not line:
            continue
        try:
            snapshot = json.loads(line)
        except json.JSONDecodeError:
            warnings.warn(f"skipping corrupt checkpoint line in {path}")
            continue
        if not isinstance(snapshot, dict):
            warnings.warn(f"skipping non-object checkpoint line in {path}")
            continue
        return snapshot
    return None
