"""Advisory file locking for multi-process JSONL appends.

Several tuner processes may share one ``--cache-dir`` (the persistent
:class:`~repro.runtime.cache.EvalCache`) or one record book.  A single
``write()`` of a short line is atomic on most POSIX filesystems, but
that is an implementation detail, not a guarantee — NFS and long lines
can interleave partial writes.  ``locked()`` takes an exclusive
``fcntl.flock`` on the open file for the duration of the append, so
concurrent writers serialize line-at-a-time and a reader never sees two
half-lines spliced together.

On platforms without ``fcntl`` (Windows) the lock degrades to a no-op:
appends fall back to the previous single-write behaviour.
"""

from __future__ import annotations

import contextlib
from typing import IO, Iterator

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX platform
    fcntl = None  # type: ignore[assignment]


@contextlib.contextmanager
def locked(handle: IO) -> Iterator[IO]:
    """Hold an exclusive advisory lock on an open file for the block.

    The lock is tied to the file description, so it is released even if
    the process dies mid-append — the crashed writer can truncate its
    own line (which the JSONL loaders already skip) but can never leave
    the file locked or splice into another writer's line.
    """
    if fcntl is None:
        yield handle
        return
    fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
    try:
        yield handle
    finally:
        fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
