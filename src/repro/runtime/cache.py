"""Persistent cross-run evaluation cache (level 2 of the two-level cache).

Level 1 is the :class:`~repro.runtime.measure.Evaluator`'s in-run memo
(raw points, drives the simulated clock).  This module adds the level-2
store: a bounded in-memory LRU in front of an append-only JSONL file,
keyed by ``(op signature, canonical point)`` so results survive across
processes and are shared by every tuner and ``tune_workload()``.

Entries record the final :class:`MeasureStatus` alongside the
performance value, so *permanent* failures (compile errors, lowering
errors, timeouts) are cached too and never re-measured on a warm run.
Like the PR-1 :class:`RecordBook`, a file truncated mid-append (killed
process) or hand-corrupted loses only the bad lines, never the cache.
"""

from __future__ import annotations

import json
import os
import warnings
from collections import OrderedDict
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union

from .locking import locked

#: On-disk format version; bump when the entry layout changes.
EVALCACHE_VERSION = 1

#: File name used inside a cache directory.
EVALCACHE_FILENAME = "evalcache.jsonl"


class EvalCache:
    """Two-level evaluation memo: in-memory LRU over an on-disk JSONL log.

    The cache maps ``(op_signature, canonical_point)`` to
    ``(performance, status_value)``.  ``op_signature`` is produced by the
    evaluator and encodes operator structure, shapes, target and device,
    so one directory can safely serve many workloads.  Writes append one
    fsync'd JSONL line (crash loses at most the line being written, which
    the loader then skips); reads hit the LRU first and fall back to the
    disk-loaded index.
    """

    def __init__(
        self,
        cache_dir: Optional[Union[str, Path]] = None,
        max_memory_entries: int = 4096,
    ):
        self.cache_dir = Path(cache_dir) if cache_dir else None
        self.max_memory_entries = max_memory_entries
        self._memory: "OrderedDict[Tuple[str, Tuple[int, ...]], Tuple[float, str]]" = OrderedDict()
        self._disk: Dict[Tuple[str, Tuple[int, ...]], Tuple[float, str]] = {}
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.disk_hits = 0
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
            self._load()

    @property
    def path(self) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        return self.cache_dir / EVALCACHE_FILENAME

    # -- persistence -------------------------------------------------------

    def _load(self) -> None:
        path = self.path
        if path is None or not path.exists():
            return
        for key, value in self._read_all(path):
            self._disk[key] = value

    @staticmethod
    def _read_all(path: Path) -> Iterator[Tuple[Tuple[str, Tuple[int, ...]], Tuple[float, str]]]:
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
                if payload.get("v", EVALCACHE_VERSION) != EVALCACHE_VERSION:
                    raise ValueError("version mismatch")
                key = (payload["sig"], tuple(int(x) for x in payload["point"]))
                value = (float(payload["perf"]), str(payload["status"]))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError):
                # Mirror RecordBook: a truncated or hand-edited line must
                # never take the whole cache down.
                warnings.warn(f"skipping corrupt cache entry at {path}:{lineno}")
                continue
            yield key, value

    def _append(self, signature: str, point: Tuple[int, ...], perf: float, status: str) -> None:
        path = self.path
        if path is None:
            return
        line = json.dumps({
            "v": EVALCACHE_VERSION,
            "sig": signature,
            "point": list(point),
            "perf": perf,
            "status": status,
        })
        # Open-per-append: worker processes forked mid-run never share a
        # stale file-descriptor offset with the parent.  The flock keeps
        # appends from separate tuner processes sharing one cache dir
        # whole-line atomic even where write() interleaving is possible.
        with open(path, "a") as f, locked(f):
            f.write(line + "\n")
            f.flush()
            os.fsync(f.fileno())

    # -- public API --------------------------------------------------------

    def get(self, signature: str, point: Tuple[int, ...]) -> Optional[Tuple[float, str]]:
        """Cached ``(performance, status)`` for a canonical point, or None."""
        key = (signature, tuple(point))
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            return entry
        entry = self._disk.get(key)
        if entry is not None:
            self.hits += 1
            self.disk_hits += 1
            self._remember(key, entry)
            return entry
        self.misses += 1
        return None

    def put(self, signature: str, point: Tuple[int, ...], perf: float, status: str) -> None:
        """Store one finished (permanent-status) evaluation."""
        key = (signature, tuple(point))
        if key in self._memory or key in self._disk:
            return
        self.stores += 1
        self._remember(key, (perf, status))
        if self.cache_dir is not None:
            # Mirror into the durable index too, so the entry survives
            # LRU eviction within this process exactly as it does a
            # restart.
            self._disk[key] = (perf, status)
            self._append(signature, key[1], perf, status)

    def _remember(self, key, value) -> None:
        self._memory[key] = value
        self._memory.move_to_end(key)
        while len(self._memory) > self.max_memory_entries:
            self._memory.popitem(last=False)

    def __len__(self) -> int:
        keys = set(self._disk)
        keys.update(self._memory)
        return len(keys)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        """Counters for the throughput report."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "disk_hits": self.disk_hits,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
            "entries": len(self),
        }
