"""Measurement harness, simulated exploration clock, fault injection,
checkpointing, and tuning records."""

from .checkpoint import CHECKPOINT_VERSION, load_checkpoint, save_checkpoint
from .fault import (
    Fault,
    FaultInjector,
    InjectedCompileError,
    InjectedHang,
    InjectedRuntimeError,
)
from .measure import (
    Evaluator,
    MeasureConfig,
    MeasureRecord,
    MeasureResult,
    MeasureStatus,
)
from .records import RecordBook, TuningRecord, workload_key

__all__ = [
    "CHECKPOINT_VERSION",
    "Evaluator",
    "Fault",
    "FaultInjector",
    "InjectedCompileError",
    "InjectedHang",
    "InjectedRuntimeError",
    "MeasureConfig",
    "MeasureRecord",
    "MeasureResult",
    "MeasureStatus",
    "RecordBook",
    "TuningRecord",
    "load_checkpoint",
    "save_checkpoint",
    "workload_key",
]
