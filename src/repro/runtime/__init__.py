"""Measurement harness, simulated exploration clock, and tuning records."""

from .measure import Evaluator, MeasureRecord
from .records import RecordBook, TuningRecord, workload_key

__all__ = ["Evaluator", "MeasureRecord", "RecordBook", "TuningRecord", "workload_key"]
