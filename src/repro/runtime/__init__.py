"""Measurement harness, simulated exploration clock, fault injection,
checkpointing, batched parallel evaluation, cluster supervision, and
tuning records."""

from .cache import EVALCACHE_VERSION, EvalCache
from .checkpoint import CHECKPOINT_VERSION, load_checkpoint, save_checkpoint
from .cluster import (
    BatchPlan,
    BreakerState,
    ClusterConfig,
    ClusterSupervisor,
    WorkerState,
)
from .fault import (
    Fault,
    FaultInjector,
    InjectedCompileError,
    InjectedHang,
    InjectedRuntimeError,
    NodeFault,
    NodeFaultInjector,
)
from .measure import (
    Evaluator,
    MeasureConfig,
    MeasureRecord,
    MeasureResult,
    MeasureStatus,
    op_signature_of,
)
from .parallel import BatchEngine
from .profile import HotPathProfiler
from .records import RecordBook, TuningRecord, parse_workload_key, workload_key

__all__ = [
    "BatchEngine",
    "BatchPlan",
    "BreakerState",
    "CHECKPOINT_VERSION",
    "ClusterConfig",
    "ClusterSupervisor",
    "EVALCACHE_VERSION",
    "EvalCache",
    "Evaluator",
    "Fault",
    "FaultInjector",
    "HotPathProfiler",
    "InjectedCompileError",
    "InjectedHang",
    "InjectedRuntimeError",
    "MeasureConfig",
    "MeasureRecord",
    "MeasureResult",
    "MeasureStatus",
    "NodeFault",
    "NodeFaultInjector",
    "RecordBook",
    "TuningRecord",
    "WorkerState",
    "load_checkpoint",
    "op_signature_of",
    "parse_workload_key",
    "save_checkpoint",
    "workload_key",
]
