"""Measurement harness, simulated exploration clock, fault injection,
checkpointing, batched parallel evaluation, and tuning records."""

from .cache import EVALCACHE_VERSION, EvalCache
from .checkpoint import CHECKPOINT_VERSION, load_checkpoint, save_checkpoint
from .fault import (
    Fault,
    FaultInjector,
    InjectedCompileError,
    InjectedHang,
    InjectedRuntimeError,
)
from .measure import (
    Evaluator,
    MeasureConfig,
    MeasureRecord,
    MeasureResult,
    MeasureStatus,
)
from .parallel import BatchEngine
from .records import RecordBook, TuningRecord, workload_key

__all__ = [
    "BatchEngine",
    "CHECKPOINT_VERSION",
    "EVALCACHE_VERSION",
    "EvalCache",
    "Evaluator",
    "Fault",
    "FaultInjector",
    "InjectedCompileError",
    "InjectedHang",
    "InjectedRuntimeError",
    "MeasureConfig",
    "MeasureRecord",
    "MeasureResult",
    "MeasureStatus",
    "RecordBook",
    "TuningRecord",
    "load_checkpoint",
    "save_checkpoint",
    "workload_key",
]
