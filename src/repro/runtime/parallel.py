"""Batched evaluation engine: fan candidate points across workers.

FlexTensor's exploration is embarrassingly parallel per trial — SA
proposes a batch of starting points and the agent scores whole
neighborhoods — so the engine accepts a *list* of candidate points,
serves what it can from the caches, deduplicates the rest by canonical
key, and measures the remainder concurrently (§5.2 runs candidates on
parallel devices; AutoTVM batches its builder/runner the same way).

Two execution modes share one billing model:

* ``workers=1`` — the deterministic fallback: the batch is evaluated by
  literally looping the serial :meth:`Evaluator.evaluate`, so seeded
  tests, fault injection and checkpoint/resume stay bit-identical to the
  pre-engine code path.
* ``workers>1`` — measurement is split into a pure worker half
  (:meth:`Evaluator.remote_outcome`, safe to run in a forked pool) and a
  parent billing half (:meth:`Evaluator.apply_remote`).  Real execution
  uses a ``multiprocessing`` fork pool when the host has more than one
  core; otherwise outcomes are computed in-process.  Either way the
  *simulated* clock advances by the batch makespan: job costs are
  assigned to the least-loaded of W virtual workers in submission order
  (LPT-style list scheduling), so W workers genuinely overlap simulated
  measurement time — the quantity Figures 6d/7 account in.

Determinism contract: for a fixed evaluator configuration and submission
order, results, records, clock values and caches are identical whether
outcomes were computed by a real pool or in-process — the billing half
never depends on real scheduling order.
"""

from __future__ import annotations

import os
import time
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..space import Point
from .measure import Evaluator

if TYPE_CHECKING:
    from ..explore.surrogate import SurrogateScreen
    from .cluster import ClusterSupervisor

#: Fork-inherited evaluator used by pool workers (set by the initializer).
_WORKER_EVALUATOR: Optional[Evaluator] = None


def _pool_init(evaluator: Evaluator) -> None:
    global _WORKER_EVALUATOR
    _WORKER_EVALUATOR = evaluator


def _pool_measure(job: Tuple[Tuple[int, ...], int]) -> Dict:
    point, base_attempt = job
    return _WORKER_EVALUATOR.remote_outcome(tuple(point), base_attempt)


class BatchEngine:
    """Evaluates batches of points against one :class:`Evaluator`.

    The engine owns no measurement logic — it orchestrates cache
    lookups, deduplication, worker fan-out and simulated-clock billing
    around the evaluator's fault-tolerant pipeline (retries, timeout
    budgets and quarantine behave exactly as in the serial path; see
    ``docs/parallel.md``).
    """

    def __init__(
        self,
        evaluator: Evaluator,
        workers: int = 1,
        use_pool: Optional[bool] = None,
        surrogate: Optional["SurrogateScreen"] = None,
        cluster: Optional["ClusterSupervisor"] = None,
    ):
        self.evaluator = evaluator
        if cluster is not None:
            # The supervisor's registry is the source of truth for the
            # worker count — a mismatched ``workers`` would bill a
            # different cluster than the one being supervised.
            workers = cluster.config.workers
        self.workers = max(1, int(workers))
        if use_pool is None:
            use_pool = (
                self.workers > 1
                and (os.cpu_count() or 1) > 1
                and hasattr(os, "fork")
            )
        self.use_pool = bool(use_pool) and self.workers > 1
        # Surrogate screen (repro.explore.surrogate): when attached, each
        # batch is ranked after the lint gate and cache probe, and only
        # the top fraction (plus the ε exploration slice) is measured.
        # Its fit/predict/featurize wall time lands in the evaluator's
        # hot-path profile so TuneResult carries one unified breakdown.
        self.surrogate = surrogate
        if surrogate is not None and getattr(surrogate, "profiler", None) is None:
            surrogate.profiler = evaluator.profiler
        # Cluster supervisor (repro.runtime.cluster): when attached,
        # simulated-clock billing runs through its lease/heartbeat/
        # speculation scheduler instead of plain LPT, and an all-open
        # breaker registry degrades the batch to the serial path.
        self.cluster = cluster
        self._pool = None
        self.num_batches = 0
        self.num_submitted = 0
        self.num_measured = 0
        self.num_cached = 0
        self.num_deduped = 0
        self.num_lint_rejected = 0
        self.num_screened = 0      # candidates answered by the surrogate
        self.num_pool_batches = 0  # batches whose outcomes a fork pool computed
        self.busy_seconds = 0.0    # simulated seconds of worker occupancy
        self.span_seconds = 0.0    # simulated makespan summed over batches
        self.wall_seconds = 0.0    # real time spent inside evaluate_batch

    # -- pool lifecycle ----------------------------------------------------

    def _get_pool(self):
        if self._pool is None:
            import multiprocessing

            context = multiprocessing.get_context("fork")
            self._pool = context.Pool(
                processes=self.workers,
                initializer=_pool_init,
                initargs=(self.evaluator,),
            )
        return self._pool

    def close(self) -> None:
        """Tear down the worker pool (idempotent)."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None

    def __enter__(self) -> "BatchEngine":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- evaluation --------------------------------------------------------

    def evaluate_batch(self, points: Sequence[Point]) -> List[float]:
        """Performance values for ``points``, in submission order."""
        started = time.perf_counter()
        try:
            if self.surrogate is not None:
                return self._evaluate_screened(points)
            if self.workers == 1:
                return self._evaluate_serial(points)
            if self.cluster_degraded():
                self.cluster.mark_degraded()
                return self._evaluate_serial(points)
            return self._evaluate_parallel(points)
        finally:
            self.wall_seconds += time.perf_counter() - started
            self.num_batches += 1
            self.num_submitted += len(points)

    def cluster_degraded(self) -> bool:
        """Whether the supervisor has no admittable worker left: every
        breaker open (or every node dead), so evaluation must take the
        bit-identical serial path instead of the cluster.  The tuners
        also consult this to degrade their trial *shape* to serial.
        (Side-effect-free except for cool-down re-admission inside
        ``any_available``, which is deterministic on the simulated
        clock.)"""
        if self.cluster is None or not self.workers > 1:
            return False
        return not self.cluster.any_available(self.evaluator.clock)

    def _evaluate_serial(self, points: Sequence[Point]) -> List[float]:
        """Bit-reproducible fallback: the exact serial evaluation loop.

        Per-point semantics (duplicate transients re-measure, quarantine
        ordering, clock accounting) are byte-for-byte those of calling
        ``evaluator.evaluate`` in a plain loop — because that is what
        this is.
        """
        ev = self.evaluator
        clock_before = ev.clock
        measured_before = ev.num_measurements
        lint_before = ev.num_lint_rejects
        results = [ev.evaluate(p) for p in points]
        measured = ev.num_measurements - measured_before
        lint_rejected = ev.num_lint_rejects - lint_before
        self.num_measured += measured
        self.num_lint_rejected += lint_rejected
        self.num_cached += len(points) - measured - lint_rejected
        self.span_seconds += ev.clock - clock_before
        self.busy_seconds += ev.clock - clock_before
        return results

    def _evaluate_screened(self, points: Sequence[Point]) -> List[float]:
        """The full measure pipeline with the surrogate stage enabled:
        lint gate -> cache probe -> surrogate screen -> measurement.

        Screened-out candidates are answered with the surrogate's
        predicted performance and billed only the model-inference cost
        (near-zero, like a lint reject); the forwarded slice runs through
        the usual serial or pooled measurement path.  Every fresh
        measurement is fed back into the surrogate's training set, and
        the screen's ranking is scored against the real results.
        """
        ev = self.evaluator
        surrogate = self.surrogate
        results: List[Optional[float]] = [None] * len(points)
        candidates: List[Tuple[int, Point]] = []
        for i, point in enumerate(points):
            point = tuple(point)
            rejected = ev.lint_reject(point)
            if rejected is not None:
                results[i] = rejected
                self.num_lint_rejected += 1
                continue
            cached = ev.lookup(point)
            if cached is not None:
                results[i] = cached
                self.num_cached += 1
                continue
            candidates.append((i, point))
        if not candidates:
            return [r for r in results]
        decision = surrogate.screen([p for _, p in candidates])
        for position, predicted in decision.screened:
            results[candidates[position][0]] = predicted
            self.num_screened += 1
        if decision.cost_seconds:
            # The whole batch pays one (near-zero) inference pass.
            ev.charge(decision.cost_seconds)
            self.span_seconds += decision.cost_seconds
            self.busy_seconds += decision.cost_seconds
        forward_points = [candidates[position][1] for position in decision.forward]
        records_before = len(ev.records)
        if forward_points:
            degraded = self.workers > 1 and self.cluster_degraded()
            if degraded:
                self.cluster.mark_degraded()
            if self.workers == 1 or degraded:
                clock_before = ev.clock
                measured_before = ev.num_measurements
                performances = [ev.evaluate(p) for p in forward_points]
                measured = ev.num_measurements - measured_before
                self.num_measured += measured
                self.num_cached += len(forward_points) - measured
                self.span_seconds += ev.clock - clock_before
                self.busy_seconds += ev.clock - clock_before
            else:
                performances = self._evaluate_parallel(forward_points)
            for position, performance in zip(decision.forward, performances):
                results[candidates[position][0]] = performance
        # Online training: every measurement this batch actually ran.
        for record in ev.records[records_before:]:
            surrogate.observe(record.point, record.performance)
        surrogate.note_quality(
            decision,
            [(position, results[candidates[position][0]])
             for position in decision.forward],
        )
        return [r for r in results]

    def _evaluate_parallel(self, points: Sequence[Point]) -> List[float]:
        ev = self.evaluator
        results: List[Optional[float]] = [None] * len(points)
        # 1. Lint first (a statically-illegal point must never reach the
        #    pool — it is rejected at zero simulated cost), then serve
        #    cache/quarantine hits for free, then dedup the rest by
        #    canonical key so one measurement covers every equivalent
        #    submission in the batch.
        jobs: List[Tuple[Point, int, List[int]]] = []
        job_by_key: Dict[Point, int] = {}
        for i, point in enumerate(points):
            point = tuple(point)
            rejected = ev.lint_reject(point)
            if rejected is not None:
                results[i] = rejected
                self.num_lint_rejected += 1
                continue
            cached = ev.lookup(point)
            if cached is not None:
                results[i] = cached
                self.num_cached += 1
                continue
            key = ev.canonical_key(point)
            existing = job_by_key.get(key)
            if existing is not None:
                jobs[existing][2].append(i)
                self.num_deduped += 1
                continue
            job_by_key[key] = len(jobs)
            jobs.append((point, ev._attempt_counts.get(point, 0), [i]))
        if not jobs:
            return [r for r in results]  # everything was cached
        # 2. Compute outcomes — pure, order-independent.
        if self.use_pool:
            try:
                pool = self._get_pool()
                outcomes = pool.map(
                    _pool_measure, [(list(p), base) for p, base, _ in jobs]
                )
                self.num_pool_batches += 1
            except Exception:
                # A broken pool must never kill the tuning run: fall back
                # to in-process outcomes (identical results by contract).
                self.close()
                self.use_pool = False
                outcomes = [ev.remote_outcome(p, base) for p, base, _ in jobs]
        else:
            outcomes = [ev.remote_outcome(p, base) for p, base, _ in jobs]
        # 3. Bill simulated time.  With a cluster supervisor attached the
        #    batch runs through its lease/heartbeat/speculation scheduler
        #    (node faults perturb timing and worker health, never the
        #    outcomes computed above); otherwise job costs are
        #    list-scheduled onto W virtual workers in submission order
        #    (LPT).  Either way the batch advances the clock by its
        #    makespan and each record is stamped with its own completion
        #    time.
        batch_start = ev.clock
        plan = None
        if self.cluster is not None:
            plan = self.cluster.schedule_batch(
                [ev.outcome_cost(o) for o in outcomes], clock=batch_start
            )
        if plan is not None:
            completions = plan.completions
            makespan = plan.makespan
            busy = plan.busy_seconds
        else:
            loads = [0.0] * self.workers
            completions = []
            for outcome in outcomes:
                worker = min(range(self.workers), key=lambda w: loads[w])
                loads[worker] += ev.outcome_cost(outcome)
                completions.append(loads[worker])
            makespan = max(loads)
            busy = sum(loads)
        # 4. Apply in completion order (stable for ties) so the record
        #    stream and convergence curve have monotone clocks.
        order = sorted(range(len(jobs)), key=lambda j: completions[j])
        for j in order:
            point, _base, indices = jobs[j]
            result = ev.apply_remote(
                point, outcomes[j], clock=batch_start + completions[j]
            )
            for i in indices:
                results[i] = result.performance
        ev.clock = batch_start + makespan
        self.num_measured += len(jobs)
        self.busy_seconds += busy
        self.span_seconds += makespan
        return [r for r in results]

    # -- reporting ---------------------------------------------------------

    def stats(self) -> Dict:
        """Throughput/caching counters for the end-of-tune report."""
        ev = self.evaluator
        simulated = self.span_seconds
        utilization = (
            self.busy_seconds / (simulated * self.workers) if simulated else 0.0
        )
        if not self.use_pool:
            engine_mode = "serial"
        elif self.num_pool_batches > 0:
            engine_mode = "fork-pool"
        else:
            engine_mode = "in-process-fallback"
        payload = {
            "workers": self.workers,
            # Whether a fork pool actually computed outcomes this run —
            # not the configured mode, which the in-process fallback can
            # silently override (single-core host, broken pool).
            "pool": self.num_pool_batches > 0,
            "pool_mode": self.use_pool,
            "engine_mode": engine_mode,
            "pool_batches": self.num_pool_batches,
            "batches": self.num_batches,
            "points_submitted": self.num_submitted,
            "points_measured": self.num_measured,
            "points_cached": self.num_cached,
            "points_deduped": self.num_deduped,
            "points_lint_rejected": self.num_lint_rejected,
            "points_screened": self.num_screened,
            "lint_rejects": ev.num_lint_rejects,
            "lint_rules": dict(ev.lint_rule_counts),
            "simulated_seconds": simulated,
            "wall_seconds": self.wall_seconds,
            "points_per_simulated_second": (
                self.num_submitted / simulated if simulated else 0.0
            ),
            "points_per_wall_second": (
                self.num_submitted / self.wall_seconds if self.wall_seconds else 0.0
            ),
            "pool_utilization": utilization,
            "cache_hit_rate": (
                self.num_cached / self.num_submitted if self.num_submitted else 0.0
            ),
            "memo_hits": ev.num_memo_hits,
            "canon_hits": ev.num_canon_hits,
            "disk_hits": ev.num_disk_hits,
            "quarantine_hits": ev.num_quarantine_hits,
        }
        if ev.lowering_memo is not None:
            payload["lowering"] = ev.lowering_memo.stats()
        payload["profile"] = ev.profiler.stats()
        if ev.eval_cache is not None:
            payload["eval_cache"] = ev.eval_cache.stats()
        if self.surrogate is not None:
            payload["surrogate"] = self.surrogate.stats()
        if self.cluster is not None:
            payload["cluster"] = self.cluster.stats()
        return payload

    def report(self) -> str:
        """Human-readable one-paragraph throughput summary."""
        s = self.stats()
        lines = [
            f"throughput: {s['points_submitted']} points in "
            f"{s['simulated_seconds']:.3f} simulated s "
            f"({s['points_per_simulated_second']:.1f} pts/s simulated, "
            f"{s['points_per_wall_second']:.1f} pts/s wall)",
            f"engine: mode={s['engine_mode']} workers={s['workers']} "
            f"pool={'on' if s['pool'] else 'off'} "
            f"utilization={s['pool_utilization']:.0%}",
            f"cache: hit_rate={s['cache_hit_rate']:.0%} "
            f"(memo={s['memo_hits']} canon={s['canon_hits']} "
            f"disk={s['disk_hits']} quarantine={s['quarantine_hits']}) "
            f"deduped={s['points_deduped']}",
        ]
        if s["lint_rejects"]:
            rules = " ".join(
                f"{rule}={count}" for rule, count in sorted(s["lint_rules"].items())
            )
            lines.append(
                f"lint: {s['lint_rejects']} points statically rejected "
                f"at zero cost ({rules})"
            )
        if "eval_cache" in s:
            ec = s["eval_cache"]
            lines.append(
                f"persistent: entries={ec['entries']} stores={ec['stores']} "
                f"hit_rate={ec['hit_rate']:.0%}"
            )
        if "surrogate" in s:
            su = s["surrogate"]
            lines.append(
                f"surrogate: {su['screened']} points screened out at near-zero "
                f"cost ({su['forwarded']} forwarded, {su['explored']} via "
                f"ε-exploration, {su['refits']} refits, rank correlation "
                f"{su['rank_correlation']:.2f})"
            )
        if "lowering" in s and (s["lowering"]["hits"] or s["lowering"]["misses"]):
            lo = s["lowering"]
            lines.append(
                f"lowering memo: hit_rate={lo['hit_rate']:.0%} "
                f"({lo['hits']} hits / {lo['misses']} misses, "
                f"{lo['entries']} structures)"
            )
        profile_line = self.evaluator.profiler.report()
        if "(no instrumented calls)" not in profile_line:
            lines.append(profile_line)
        if self.cluster is not None:
            lines.append(self.cluster.report())
        return "\n".join(lines)
