"""Deterministic fault injection for the measurement pipeline.

Real tuning loops survive a hostile environment: compilers reject
configurations, kernels hang past their timeout, devices drop
measurements transiently, and timers are noisy.  AutoTVM-style systems
(Chen et al., *Learning to Optimize Tensor Programs*) isolate their
builder/runner behind timeouts and retries for exactly this reason.  Our
hardware is simulated, so the faults must be simulated too: a
:class:`FaultInjector` imposes the real-world failure taxonomy on any
evaluator so the robustness machinery (:mod:`repro.runtime.measure`) is
testable.

Determinism: every decision is a pure function of ``(seed, point,
attempt)`` — no hidden RNG stream.  The same point on the same attempt
always faults the same way, independent of call order, which is what
makes checkpoint/resume reproduce an uninterrupted run bit-for-bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Tuple

import numpy as np


class Fault(enum.Enum):
    """Outcome of one injected-fault roll for a measurement attempt."""

    NONE = "none"
    COMPILE = "compile"        # toolchain rejects the kernel
    HANG = "hang"              # kernel never returns; timeout budget burned
    TRANSIENT = "transient"    # flaky device error; retry may succeed


class InjectedCompileError(RuntimeError):
    """Injected: the (simulated) compiler rejected this configuration."""


class InjectedRuntimeError(RuntimeError):
    """Injected: a transient device error ate this measurement attempt."""


class InjectedHang(RuntimeError):
    """Injected: the kernel hung and must be billed its timeout budget."""


@dataclass
class FaultInjector:
    """Seeded fault source for an :class:`~repro.runtime.Evaluator`.

    Rates are independent probabilities per *attempt*; they are checked
    in order compile → hang → transient against one uniform draw, so
    their sum must stay <= 1.  ``jitter`` is the relative standard
    deviation of multiplicative measurement noise.

    Attach with ``Evaluator(..., fault_injector=injector)`` or
    :meth:`attach`.
    """

    compile_error_rate: float = 0.0
    hang_rate: float = 0.0
    transient_error_rate: float = 0.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self):
        total = self.compile_error_rate + self.hang_rate + self.transient_error_rate
        if total > 1.0:
            raise ValueError(f"fault rates sum to {total} > 1")
        for name in ("compile_error_rate", "hang_rate", "transient_error_rate", "jitter"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # -- deterministic rolls ----------------------------------------------

    def _rng(self, point: Tuple[int, ...], attempt: int) -> np.random.Generator:
        """A generator keyed purely on (seed, point, attempt)."""
        key = (self.seed & 0xFFFFFFFF, attempt & 0xFFFFFFFF) + tuple(
            int(x) & 0xFFFFFFFF for x in point
        )
        return np.random.default_rng(key)

    def decide(self, point: Tuple[int, ...], attempt: int) -> Fault:
        """The fault (or NONE) injected into this measurement attempt."""
        roll = float(self._rng(point, attempt).random())
        if roll < self.compile_error_rate:
            return Fault.COMPILE
        roll -= self.compile_error_rate
        if roll < self.hang_rate:
            return Fault.HANG
        roll -= self.hang_rate
        if roll < self.transient_error_rate:
            return Fault.TRANSIENT
        return Fault.NONE

    def jitter_factor(self, point: Tuple[int, ...], attempt: int) -> float:
        """Multiplicative measurement-noise factor (1.0 when jitter off)."""
        if self.jitter <= 0.0:
            return 1.0
        rng = self._rng(point, attempt)
        rng.random()  # burn the fault draw so noise is independent of it
        return max(0.05, 1.0 + float(rng.normal(0.0, self.jitter)))

    def describe(self) -> str:
        """Compact identity string: folds the injector configuration into
        the persistent evaluation-cache key so runs with different fault
        setups never share cached outcomes."""
        return (
            f"{type(self).__name__}(c={self.compile_error_rate},"
            f"h={self.hang_rate},t={self.transient_error_rate},"
            f"j={self.jitter},seed={self.seed})"
        )

    # -- convenience -------------------------------------------------------

    def attach(self, evaluator) -> "FaultInjector":
        """Wrap an existing evaluator in place and return self."""
        evaluator.fault_injector = self
        return self


class NodeFault(enum.Enum):
    """Outcome of one injected node-level roll for a measurement lease.

    Unlike the per-measurement :class:`Fault` taxonomy above, node
    faults model the *machine* failing, not the candidate: they never
    change what a measurement would have returned, only whether (and
    when) its result reaches the supervisor.  That split is what keeps
    chaos runs result-identical to fault-free runs — see
    :mod:`repro.runtime.cluster`.
    """

    NONE = "none"
    CRASH = "crash"        # worker process dies mid-lease; work lost
    STALE = "stale"        # heartbeats stop; worker presumed lost
    SLOW = "slow"          # straggler: the lease runs slow_factor x
    FLAKY = "flaky"        # lease completes but the result is corrupt/dropped


#: Salt folded into the node-fault RNG key so node rolls never collide
#: with per-measurement rolls of the same seed.
_NODE_SALT = 0x9E3779B9


@dataclass
class NodeFaultInjector:
    """Seeded node-level fault source for a :class:`~repro.runtime.cluster.ClusterSupervisor`.

    Rates are independent probabilities per *lease*, checked in order
    crash → stale → slow → flaky against one uniform draw (their sum
    must stay <= 1).  Every decision is a pure function of ``(seed,
    worker, lease serial)`` — the lease serial is per-worker state the
    supervisor checkpoints, so a resumed run replays exactly the node
    faults an uninterrupted run would have seen.

    ``dead_after`` scripts permanent kills for chaos tests: mapping
    ``worker -> serial`` makes that worker crash fatally (no restart) on
    every lease from that serial on.
    """

    crash_rate: float = 0.0
    stale_rate: float = 0.0
    slow_rate: float = 0.0
    flaky_rate: float = 0.0
    slow_factor: float = 4.0
    seed: int = 0
    dead_after: Dict[int, int] = field(default_factory=dict)

    def __post_init__(self):
        total = self.crash_rate + self.stale_rate + self.slow_rate + self.flaky_rate
        if total > 1.0:
            raise ValueError(f"node fault rates sum to {total} > 1")
        for name in ("crash_rate", "stale_rate", "slow_rate", "flaky_rate"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")
        if self.slow_factor < 1.0:
            raise ValueError("slow_factor must be >= 1")

    # -- deterministic rolls ----------------------------------------------

    def _rng(self, worker: int, serial: int) -> np.random.Generator:
        """A generator keyed purely on (seed, worker, lease serial)."""
        key = (
            self.seed & 0xFFFFFFFF,
            _NODE_SALT,
            int(worker) & 0xFFFFFFFF,
            int(serial) & 0xFFFFFFFF,
        )
        return np.random.default_rng(key)

    def is_fatal(self, worker: int, serial: int) -> bool:
        """Whether this lease is a scripted permanent kill of the worker."""
        threshold = self.dead_after.get(worker)
        return threshold is not None and serial >= threshold

    def decide(self, worker: int, serial: int) -> NodeFault:
        """The node fault (or NONE) injected into this lease."""
        if self.is_fatal(worker, serial):
            return NodeFault.CRASH
        roll = float(self._rng(worker, serial).random())
        if roll < self.crash_rate:
            return NodeFault.CRASH
        roll -= self.crash_rate
        if roll < self.stale_rate:
            return NodeFault.STALE
        roll -= self.stale_rate
        if roll < self.slow_rate:
            return NodeFault.SLOW
        roll -= self.slow_rate
        if roll < self.flaky_rate:
            return NodeFault.FLAKY
        return NodeFault.NONE

    def crash_fraction(self, worker: int, serial: int) -> float:
        """How far through its lease a crashing worker gets, in (0.1, 0.9)."""
        rng = self._rng(worker, serial)
        rng.random()  # burn the fault draw so the fraction is independent
        return 0.1 + 0.8 * float(rng.random())

    def describe(self) -> str:
        """Compact identity string for reports and state snapshots."""
        dead = sorted(self.dead_after.items())
        return (
            f"{type(self).__name__}(c={self.crash_rate},s={self.stale_rate},"
            f"sl={self.slow_rate}x{self.slow_factor},f={self.flaky_rate},"
            f"seed={self.seed},dead={dead})"
        )
