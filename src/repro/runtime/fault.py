"""Deterministic fault injection for the measurement pipeline.

Real tuning loops survive a hostile environment: compilers reject
configurations, kernels hang past their timeout, devices drop
measurements transiently, and timers are noisy.  AutoTVM-style systems
(Chen et al., *Learning to Optimize Tensor Programs*) isolate their
builder/runner behind timeouts and retries for exactly this reason.  Our
hardware is simulated, so the faults must be simulated too: a
:class:`FaultInjector` imposes the real-world failure taxonomy on any
evaluator so the robustness machinery (:mod:`repro.runtime.measure`) is
testable.

Determinism: every decision is a pure function of ``(seed, point,
attempt)`` — no hidden RNG stream.  The same point on the same attempt
always faults the same way, independent of call order, which is what
makes checkpoint/resume reproduce an uninterrupted run bit-for-bit.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Tuple

import numpy as np


class Fault(enum.Enum):
    """Outcome of one injected-fault roll for a measurement attempt."""

    NONE = "none"
    COMPILE = "compile"        # toolchain rejects the kernel
    HANG = "hang"              # kernel never returns; timeout budget burned
    TRANSIENT = "transient"    # flaky device error; retry may succeed


class InjectedCompileError(RuntimeError):
    """Injected: the (simulated) compiler rejected this configuration."""


class InjectedRuntimeError(RuntimeError):
    """Injected: a transient device error ate this measurement attempt."""


class InjectedHang(RuntimeError):
    """Injected: the kernel hung and must be billed its timeout budget."""


@dataclass
class FaultInjector:
    """Seeded fault source for an :class:`~repro.runtime.Evaluator`.

    Rates are independent probabilities per *attempt*; they are checked
    in order compile → hang → transient against one uniform draw, so
    their sum must stay <= 1.  ``jitter`` is the relative standard
    deviation of multiplicative measurement noise.

    Attach with ``Evaluator(..., fault_injector=injector)`` or
    :meth:`attach`.
    """

    compile_error_rate: float = 0.0
    hang_rate: float = 0.0
    transient_error_rate: float = 0.0
    jitter: float = 0.0
    seed: int = 0

    def __post_init__(self):
        total = self.compile_error_rate + self.hang_rate + self.transient_error_rate
        if total > 1.0:
            raise ValueError(f"fault rates sum to {total} > 1")
        for name in ("compile_error_rate", "hang_rate", "transient_error_rate", "jitter"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")

    # -- deterministic rolls ----------------------------------------------

    def _rng(self, point: Tuple[int, ...], attempt: int) -> np.random.Generator:
        """A generator keyed purely on (seed, point, attempt)."""
        key = (self.seed & 0xFFFFFFFF, attempt & 0xFFFFFFFF) + tuple(
            int(x) & 0xFFFFFFFF for x in point
        )
        return np.random.default_rng(key)

    def decide(self, point: Tuple[int, ...], attempt: int) -> Fault:
        """The fault (or NONE) injected into this measurement attempt."""
        roll = float(self._rng(point, attempt).random())
        if roll < self.compile_error_rate:
            return Fault.COMPILE
        roll -= self.compile_error_rate
        if roll < self.hang_rate:
            return Fault.HANG
        roll -= self.hang_rate
        if roll < self.transient_error_rate:
            return Fault.TRANSIENT
        return Fault.NONE

    def jitter_factor(self, point: Tuple[int, ...], attempt: int) -> float:
        """Multiplicative measurement-noise factor (1.0 when jitter off)."""
        if self.jitter <= 0.0:
            return 1.0
        rng = self._rng(point, attempt)
        rng.random()  # burn the fault draw so noise is independent of it
        return max(0.05, 1.0 + float(rng.normal(0.0, self.jitter)))

    def describe(self) -> str:
        """Compact identity string: folds the injector configuration into
        the persistent evaluation-cache key so runs with different fault
        setups never share cached outcomes."""
        return (
            f"{type(self).__name__}(c={self.compile_error_rate},"
            f"h={self.hang_rate},t={self.transient_error_rate},"
            f"j={self.jitter},seed={self.seed})"
        )

    # -- convenience -------------------------------------------------------

    def attach(self, evaluator) -> "FaultInjector":
        """Wrap an existing evaluator in place and return self."""
        evaluator.fault_injector = self
        return self
