"""Per-stage wall-time accounting for the candidate-evaluation hot path.

Perf claims rot unless they stay attributable: the throughput bench used
to report one opaque wall-seconds number per run, so a regression in any
stage (lowering, featurization, surrogate fit/predict, model evaluation)
looked identical to noise.  :class:`HotPathProfiler` is a near-zero-cost
accumulator of cumulative wall seconds and call counts per stage, wired
through the evaluator and the surrogate screen and surfaced in
``TuneResult.throughput["profile"]``, :meth:`BatchEngine.report` and
``benchmarks/bench_throughput.py`` output.

Wall seconds only — the *simulated* clock is owned by the evaluator and
is deliberately untouched here.  The profiler is not checkpointed state:
wall time is a property of the host, not of the run, so a resumed run
reports the resumed portion only (like the engine's wall counters).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Dict

#: Stage names in reporting order.
SECTIONS = (
    "lower",
    "features",
    "surrogate_fit",
    "surrogate_predict",
    "model_eval",
)


class HotPathProfiler:
    """Cumulative wall seconds + call counts per hot-path stage."""

    def __init__(self):
        self.seconds: Dict[str, float] = {name: 0.0 for name in SECTIONS}
        self.calls: Dict[str, int] = {name: 0 for name in SECTIONS}

    @contextmanager
    def section(self, name: str):
        """Time one entry of stage ``name`` (unknown names are allowed —
        they simply add a new row to the report)."""
        started = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - started
            self.seconds[name] = self.seconds.get(name, 0.0) + elapsed
            self.calls[name] = self.calls.get(name, 0) + 1

    def add(self, name: str, seconds: float, calls: int = 1) -> None:
        """Fold in externally measured time (e.g. from a worker)."""
        self.seconds[name] = self.seconds.get(name, 0.0) + seconds
        self.calls[name] = self.calls.get(name, 0) + calls

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def stats(self) -> Dict:
        """JSON-compatible per-stage summary for TuneResult / the bench."""
        return {
            name: {"seconds": self.seconds[name], "calls": self.calls[name]}
            for name in self.seconds
        }

    def report(self) -> str:
        """One human-readable line, stages in declaration order."""
        parts = []
        for name in self.seconds:
            if not self.calls[name]:
                continue
            parts.append(
                f"{name}={self.seconds[name]:.3f}s/{self.calls[name]}"
            )
        if not parts:
            return "hot path: (no instrumented calls)"
        return "hot path: " + " ".join(parts)
