"""Measurement harness: evaluates schedule points and tracks exploration cost.

The paper's back-end obtains a performance value E for each visited point
either by running on the device or by querying an analytical model (§5.2).
Here the :class:`Evaluator` plays both roles: it lowers a space point,
asks the device's performance model for the kernel time, converts it to a
performance value (GFLOPS, higher is better), memoizes it, and advances a
**simulated wall clock** by the cost of that measurement (compile +
repeated runs on CPU/GPU; one model query on FPGA).  The clock drives the
exploration-time comparisons of Figures 6d and 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..codegen import flops_of
from ..graph import MiniGraph, get_graph
from ..model import INVALID_TIME, PerformanceModel, model_for, target_of
from ..schedule import GraphConfig, LoweringError, Scheduled, lower
from ..space import Point, ScheduleSpace, build_space


@dataclass
class MeasureRecord:
    """One evaluated point: performance (GFLOPS) and when it was measured."""

    point: Point
    performance: float
    seconds: float           # modeled kernel time
    clock: float             # simulated wall-clock at completion
    trial_index: int


class Evaluator:
    """Schedule-point evaluator with memoization and a simulated clock."""

    def __init__(
        self,
        output,
        device_spec,
        space: Optional[ScheduleSpace] = None,
        graph_config: Optional[GraphConfig] = None,
        model: Optional[PerformanceModel] = None,
    ):
        self.graph: MiniGraph = output if isinstance(output, MiniGraph) else get_graph(output)
        self.device_spec = device_spec
        self.target = target_of(device_spec)
        self.space = space or build_space(self.graph, self.target)
        self.graph_config = graph_config or GraphConfig()
        self.model = model or model_for(device_spec)
        self.flops = flops_of(self.graph.main_op)
        self._producer_overhead = self._materialization_seconds()
        self.cache: Dict[Point, float] = {}
        self.records: List[MeasureRecord] = []
        self.clock = 0.0
        self.num_measurements = 0

    # -- evaluation --------------------------------------------------------

    def lower_point(self, point: Point) -> Scheduled:
        """Lower a space point to its scheduled loop nest."""
        config = self.space.decode(point)
        return lower(self.graph, config, self.target, self.graph_config)

    def evaluate(self, point: Point) -> float:
        """Performance value E of a point in GFLOPS (0 for invalid).

        Cached: re-evaluating a visited point costs no simulated time,
        matching the paper's "record the visited points to avoid repeated
        searching".
        """
        if point in self.cache:
            return self.cache[point]
        try:
            scheduled = self.lower_point(point)
            seconds = self.model.estimate_seconds(scheduled)
        except LoweringError:
            seconds = INVALID_TIME
        if seconds >= INVALID_TIME:
            performance = 0.0
        else:
            seconds += self._producer_overhead
            performance = self.flops / seconds / 1e9
        self.clock += self.model.measurement_seconds(min(seconds, 1.0))
        self.num_measurements += 1
        self.cache[point] = performance
        self.records.append(
            MeasureRecord(point, performance, seconds, self.clock, self.num_measurements)
        )
        return performance

    def _materialization_seconds(self) -> float:
        """Cost of producer nodes the graph config does *not* inline.

        An un-inlined padding/expansion node runs as its own elementwise
        kernel: write its output, read it back in the consumer, plus a
        launch.  Inlining (Algorithm 1's graph schedule, FlexTensor's
        default) makes this free; template baselines that materialize
        data-rearrangement stages pay it.
        """
        main = self.graph.main_op
        bandwidth = getattr(self.device_spec, "bandwidth_gbs", None)
        if bandwidth is None:
            bandwidth = getattr(self.device_spec, "ddr_bandwidth_gbs")
        launch = getattr(self.device_spec, "kernel_launch_us", 5.0) * 1e-6
        total = 0.0
        for op in self.graph.compute_ops:
            if op is main or self.graph_config.should_inline(op.name):
                continue
            bytes_moved = op.output.size * 4 * 3  # write + read back + input read
            total += bytes_moved / (bandwidth * 1e9) + launch
        return total

    def charge(self, seconds: float) -> None:
        """Advance the simulated clock for non-measurement work (e.g.
        cost-model training in the AutoTVM baseline)."""
        self.clock += seconds

    # -- results -------------------------------------------------------------

    def best(self) -> Tuple[Optional[Point], float]:
        """The best evaluated point and its performance so far."""
        if not self.cache:
            return None, 0.0
        point = max(self.cache, key=self.cache.get)
        return point, self.cache[point]

    def convergence_curve(self) -> List[Tuple[float, float]]:
        """(simulated seconds, best GFLOPS so far) per measurement —
        the data behind Figure 7."""
        curve = []
        best = 0.0
        for record in self.records:
            best = max(best, record.performance)
            curve.append((record.clock, best))
        return curve

    def time_to_reach(self, target_performance: float) -> Optional[float]:
        """Simulated seconds until the search first reached the target
        (Figure 6d's exploration-time metric); None if never reached."""
        best = 0.0
        for record in self.records:
            best = max(best, record.performance)
            if best >= target_performance:
                return record.clock
        return None
