"""Measurement harness: evaluates schedule points and tracks exploration cost.

The paper's back-end obtains a performance value E for each visited point
either by running on the device or by querying an analytical model (§5.2).
Here the :class:`Evaluator` plays both roles: it lowers a space point,
asks the device's performance model for the kernel time, converts it to a
performance value (GFLOPS, higher is better), memoizes it, and advances a
**simulated wall clock** by the cost of that measurement (compile +
repeated runs on CPU/GPU; one model query on FPGA).  The clock drives the
exploration-time comparisons of Figures 6d and 7.

Unlike the seed implementation, measurement is fault tolerant: every
attempt is classified into a :class:`MeasureStatus`, hangs are billed
their full timeout budget, transient errors are retried with backoff,
and points that keep failing are quarantined — see ``docs/robustness.md``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..codegen import flops_of
from ..graph import MiniGraph, get_graph
from ..model import INVALID_TIME, PerformanceModel, model_for, target_of
from ..schedule import GraphConfig, LoweringError, Scheduled, lower
from ..space import Point, ScheduleSpace, build_space
from .fault import (
    Fault,
    FaultInjector,
    InjectedCompileError,
    InjectedHang,
    InjectedRuntimeError,
)

#: Legacy cap on the kernel runtime billed per measurement when no
#: explicit timeout is configured (a real runner never waits forever).
DEFAULT_CHARGE_CAP = 1.0


class MeasureStatus(enum.Enum):
    """Classification of one finished measurement."""

    OK = "ok"                          # clean measurement
    LOWER_ERROR = "lower_error"        # schedule could not be lowered
    COMPILE_ERROR = "compile_error"    # toolchain rejected the kernel
    RUN_TIMEOUT = "run_timeout"        # kernel exceeded the timeout budget
    RUNTIME_ERROR = "runtime_error"    # transient device error, retries exhausted
    FLAKY_RETRIED = "flaky_retried"    # succeeded after >=1 transient failure

    @property
    def ok(self) -> bool:
        return self in (MeasureStatus.OK, MeasureStatus.FLAKY_RETRIED)

    @property
    def permanent(self) -> bool:
        """Whether re-measuring the same point can never help."""
        return self in (
            MeasureStatus.OK,
            MeasureStatus.FLAKY_RETRIED,
            MeasureStatus.LOWER_ERROR,
            MeasureStatus.COMPILE_ERROR,
            MeasureStatus.RUN_TIMEOUT,
        )


@dataclass
class MeasureResult:
    """One evaluated point: performance (GFLOPS), status, and accounting."""

    point: Point
    performance: float
    seconds: float           # modeled kernel time
    clock: float             # simulated wall-clock at completion
    trial_index: int
    status: MeasureStatus = MeasureStatus.OK
    attempts: int = 1
    error: Optional[str] = None

    def to_dict(self) -> Dict:
        """JSON-compatible form (checkpoint files)."""
        return {
            "point": list(self.point),
            "performance": self.performance,
            "seconds": self.seconds,
            "clock": self.clock,
            "trial_index": self.trial_index,
            "status": self.status.value,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "MeasureResult":
        return cls(
            point=tuple(payload["point"]),
            performance=payload["performance"],
            seconds=payload["seconds"],
            clock=payload["clock"],
            trial_index=payload["trial_index"],
            status=MeasureStatus(payload.get("status", "ok")),
            attempts=payload.get("attempts", 1),
            error=payload.get("error"),
        )


#: Backwards-compatible alias: the seed called the record type MeasureRecord.
MeasureRecord = MeasureResult


@dataclass
class MeasureConfig:
    """Timeout / retry / quarantine policy of the measurement pipeline.

    ``timeout_seconds = None`` disables timeout classification (legacy
    behaviour) while still capping the billed runtime at
    :data:`DEFAULT_CHARGE_CAP`.
    """

    timeout_seconds: Optional[float] = None
    max_retries: int = 2                # extra attempts after a transient error
    backoff_seconds: float = 0.1        # base wall-clock pause, doubled per retry
    quarantine_threshold: int = 3       # failed measurements before quarantine
    quarantine_max: int = 128           # FIFO capacity of the quarantine set

    @property
    def charge_cap(self) -> float:
        return self.timeout_seconds if self.timeout_seconds else DEFAULT_CHARGE_CAP


class Evaluator:
    """Schedule-point evaluator with memoization, a simulated clock, and a
    fault-tolerant measurement pipeline."""

    def __init__(
        self,
        output,
        device_spec,
        space: Optional[ScheduleSpace] = None,
        graph_config: Optional[GraphConfig] = None,
        model: Optional[PerformanceModel] = None,
        measure_config: Optional[MeasureConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
    ):
        self.graph: MiniGraph = output if isinstance(output, MiniGraph) else get_graph(output)
        self.device_spec = device_spec
        self.target = target_of(device_spec)
        self.space = space or build_space(self.graph, self.target)
        self.graph_config = graph_config or GraphConfig()
        self.model = model or model_for(device_spec)
        self.measure_config = measure_config or MeasureConfig()
        self.fault_injector = fault_injector
        self.flops = flops_of(self.graph.main_op)
        self._producer_overhead = self._materialization_seconds()
        self.cache: Dict[Point, float] = {}
        self.records: List[MeasureResult] = []
        self.clock = 0.0
        self.num_measurements = 0
        self.status_counts: Dict[str, int] = {}
        # Fault bookkeeping: lifetime attempt index per point (keys the
        # injector so re-tries of a flaky point see fresh rolls), failed
        # non-permanent measurements per point, and the quarantine FIFO.
        self._attempt_counts: Dict[Point, int] = {}
        self._failure_counts: Dict[Point, int] = {}
        self._quarantine: List[Point] = []
        self._quarantined: set = set()
        self.num_quarantine_hits = 0

    # -- evaluation --------------------------------------------------------

    def lower_point(self, point: Point) -> Scheduled:
        """Lower a space point to its scheduled loop nest."""
        config = self.space.decode(point)
        return lower(self.graph, config, self.target, self.graph_config)

    def evaluate(self, point: Point) -> float:
        """Performance value E of a point in GFLOPS (0 for failures).

        Cached: re-evaluating a visited point costs no simulated time,
        matching the paper's "record the visited points to avoid repeated
        searching".  Transient failures are *not* cached, so a later
        visit re-measures — unless the point has been quarantined.
        """
        if point in self.cache:
            return self.cache[point]
        if point in self._quarantined:
            self.num_quarantine_hits += 1
            return 0.0
        result = self.measure(point)
        return result.performance

    def measure(self, point: Point) -> MeasureResult:
        """Run the full fault-tolerant measurement pipeline on one point."""
        config = self.measure_config
        attempts = 0
        result: Optional[MeasureResult] = None
        while True:
            attempts += 1
            outcome = self._attempt(point)
            status, seconds, error = outcome
            if status is MeasureStatus.RUNTIME_ERROR and attempts <= config.max_retries:
                # Transient: pay the failed attempt plus a backoff pause,
                # then try again.  Real tuners pay wall-clock for both.
                self.clock += self.model.measurement_seconds(0.0)
                self.clock += config.backoff_seconds * (2 ** (attempts - 1))
                continue
            result = self._finish(point, status, seconds, attempts, error)
            break
        return result

    def _attempt(self, point: Point) -> Tuple[MeasureStatus, float, Optional[str]]:
        """One measurement attempt: (status, kernel seconds, error)."""
        config = self.measure_config
        attempt_index = self._attempt_counts.get(point, 0)
        self._attempt_counts[point] = attempt_index + 1
        fault = Fault.NONE
        if self.fault_injector is not None:
            fault = self.fault_injector.decide(point, attempt_index)
        try:
            if fault is Fault.COMPILE:
                raise InjectedCompileError("injected compile failure")
            scheduled = self.lower_point(point)
            if fault is Fault.HANG:
                raise InjectedHang("injected kernel hang")
            if fault is Fault.TRANSIENT:
                raise InjectedRuntimeError("injected transient device error")
            seconds = self.model.estimate_seconds(scheduled)
        except LoweringError as exc:
            return MeasureStatus.LOWER_ERROR, INVALID_TIME, str(exc)
        except InjectedHang as exc:
            return MeasureStatus.RUN_TIMEOUT, INVALID_TIME, str(exc)
        except InjectedRuntimeError as exc:
            return MeasureStatus.RUNTIME_ERROR, INVALID_TIME, str(exc)
        except Exception as exc:  # noqa: BLE001 -- ValidationError, arithmetic
            # errors from exotic points, injected compile errors: a broken
            # candidate must never kill the tuning run (ISSUE #1).
            return MeasureStatus.COMPILE_ERROR, INVALID_TIME, f"{type(exc).__name__}: {exc}"
        if seconds >= INVALID_TIME:
            return MeasureStatus.COMPILE_ERROR, INVALID_TIME, "model rejected configuration"
        if self.fault_injector is not None:
            seconds *= self.fault_injector.jitter_factor(point, attempt_index)
        seconds += self._producer_overhead
        if config.timeout_seconds is not None and seconds > config.timeout_seconds:
            return MeasureStatus.RUN_TIMEOUT, seconds, "kernel exceeded timeout"
        return MeasureStatus.OK, seconds, None

    def _finish(
        self,
        point: Point,
        status: MeasureStatus,
        seconds: float,
        attempts: int,
        error: Optional[str],
    ) -> MeasureResult:
        """Charge the clock, classify, cache, and record one measurement."""
        config = self.measure_config
        if status is MeasureStatus.OK and attempts > 1:
            status = MeasureStatus.FLAKY_RETRIED
        if status.ok:
            performance = self.flops / seconds / 1e9
        else:
            performance = 0.0
        # A hang (or a kernel past the timeout) bills the *full* timeout
        # budget — real tuners pay wall-clock waiting for the deadline.
        self.clock += self.model.measurement_seconds(min(seconds, config.charge_cap))
        self.num_measurements += 1
        if status.permanent:
            self.cache[point] = performance
        else:
            self._record_failure(point)
        self.status_counts[status.value] = self.status_counts.get(status.value, 0) + 1
        result = MeasureResult(
            point, performance, seconds, self.clock, self.num_measurements,
            status=status, attempts=attempts, error=error,
        )
        self.records.append(result)
        return result

    # -- fault bookkeeping -------------------------------------------------

    def _record_failure(self, point: Point) -> None:
        count = self._failure_counts.get(point, 0) + 1
        self._failure_counts[point] = count
        if count >= self.measure_config.quarantine_threshold:
            self._quarantine_point(point)

    def _quarantine_point(self, point: Point) -> None:
        if point in self._quarantined:
            return
        self._quarantine.append(point)
        self._quarantined.add(point)
        while len(self._quarantine) > self.measure_config.quarantine_max:
            evicted = self._quarantine.pop(0)
            self._quarantined.discard(evicted)
            # Evicted points get a clean slate: they may be re-measured.
            self._failure_counts.pop(evicted, None)

    @property
    def quarantine(self) -> Tuple[Point, ...]:
        """Quarantined points, oldest first."""
        return tuple(self._quarantine)

    def recent_error_rate(self, window: int = 20) -> float:
        """Fraction of failed measurements among the last ``window`` —
        the signal tuners use to degrade gracefully when a neighborhood
        is poisoned."""
        if not self.records:
            return 0.0
        recent = self.records[-window:]
        failed = sum(1 for r in recent if not r.status.ok)
        return failed / len(recent)

    def _materialization_seconds(self) -> float:
        """Cost of producer nodes the graph config does *not* inline.

        An un-inlined padding/expansion node runs as its own elementwise
        kernel: write its output, read it back in the consumer, plus a
        launch.  Inlining (Algorithm 1's graph schedule, FlexTensor's
        default) makes this free; template baselines that materialize
        data-rearrangement stages pay it.
        """
        main = self.graph.main_op
        bandwidth = getattr(self.device_spec, "bandwidth_gbs", None)
        if bandwidth is None:
            bandwidth = getattr(self.device_spec, "ddr_bandwidth_gbs")
        launch = getattr(self.device_spec, "kernel_launch_us", 5.0) * 1e-6
        total = 0.0
        for op in self.graph.compute_ops:
            if op is main or self.graph_config.should_inline(op.name):
                continue
            bytes_moved = op.output.size * 4 * 3  # write + read back + input read
            total += bytes_moved / (bandwidth * 1e9) + launch
        return total

    def charge(self, seconds: float) -> None:
        """Advance the simulated clock for non-measurement work (e.g.
        cost-model training in the AutoTVM baseline)."""
        self.clock += seconds

    # -- checkpointing -----------------------------------------------------

    def get_state(self) -> Dict:
        """JSON-compatible snapshot of all mutable evaluator state."""
        return {
            "clock": self.clock,
            "num_measurements": self.num_measurements,
            "cache": [[list(p), perf] for p, perf in self.cache.items()],
            "records": [r.to_dict() for r in self.records],
            "status_counts": dict(self.status_counts),
            "attempt_counts": [[list(p), c] for p, c in self._attempt_counts.items()],
            "failure_counts": [[list(p), c] for p, c in self._failure_counts.items()],
            "quarantine": [list(p) for p in self._quarantine],
            "num_quarantine_hits": self.num_quarantine_hits,
        }

    def set_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self.clock = state["clock"]
        self.num_measurements = state["num_measurements"]
        self.cache = {tuple(p): perf for p, perf in state["cache"]}
        self.records = [MeasureResult.from_dict(r) for r in state["records"]]
        self.status_counts = dict(state.get("status_counts", {}))
        self._attempt_counts = {tuple(p): c for p, c in state.get("attempt_counts", [])}
        self._failure_counts = {tuple(p): c for p, c in state.get("failure_counts", [])}
        self._quarantine = [tuple(p) for p in state.get("quarantine", [])]
        self._quarantined = set(self._quarantine)
        self.num_quarantine_hits = state.get("num_quarantine_hits", 0)

    # -- results -------------------------------------------------------------

    def best(self) -> Tuple[Optional[Point], float]:
        """The best evaluated point and its performance so far."""
        if not self.cache:
            return None, 0.0
        point = max(self.cache, key=self.cache.get)
        return point, self.cache[point]

    def convergence_curve(self) -> List[Tuple[float, float]]:
        """(simulated seconds, best GFLOPS so far) per measurement —
        the data behind Figure 7."""
        curve = []
        best = 0.0
        for record in self.records:
            best = max(best, record.performance)
            curve.append((record.clock, best))
        return curve

    def time_to_reach(self, target_performance: float) -> Optional[float]:
        """Simulated seconds until the search first reached the target
        (Figure 6d's exploration-time metric); None if never reached."""
        best = 0.0
        for record in self.records:
            best = max(best, record.performance)
            if best >= target_performance:
                return record.clock
        return None
