"""Measurement harness: evaluates schedule points and tracks exploration cost.

The paper's back-end obtains a performance value E for each visited point
either by running on the device or by querying an analytical model (§5.2).
Here the :class:`Evaluator` plays both roles: it lowers a space point,
asks the device's performance model for the kernel time, converts it to a
performance value (GFLOPS, higher is better), memoizes it, and advances a
**simulated wall clock** by the cost of that measurement (compile +
repeated runs on CPU/GPU; one model query on FPGA).  The clock drives the
exploration-time comparisons of Figures 6d and 7.

Unlike the seed implementation, measurement is fault tolerant: every
attempt is classified into a :class:`MeasureStatus`, hangs are billed
their full timeout budget, transient errors are retried with backoff,
and points that keep failing are quarantined — see ``docs/robustness.md``.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Tuple

if TYPE_CHECKING:
    from ..analysis.lint import ScheduleLinter

from ..codegen import flops_of
from ..graph import MiniGraph, get_graph
from ..ir import format_operation
from ..model import INVALID_TIME, PerformanceModel, model_for, target_of
from ..schedule import GraphConfig, LoweringError, LoweringMemo, Scheduled, lower
from .profile import HotPathProfiler
from ..space import Point, ScheduleSpace, build_space
from .cache import EvalCache
from .fault import (
    Fault,
    FaultInjector,
    InjectedCompileError,
    InjectedHang,
    InjectedRuntimeError,
)

#: Legacy cap on the kernel runtime billed per measurement when no
#: explicit timeout is configured (a real runner never waits forever).
DEFAULT_CHARGE_CAP = 1.0


def op_signature_of(
    graph,
    device_spec,
    measure_config: Optional["MeasureConfig"] = None,
    graph_config: Optional[GraphConfig] = None,
    fault_injector: Optional[FaultInjector] = None,
) -> str:
    """Stable identity of (operator, shapes, device, run settings).

    The one signature definition shared by :meth:`Evaluator.op_signature`
    and callers that need an operator's identity *without* paying for an
    evaluator (e.g. the network task scheduler deduping layers before any
    schedule space is built).  Folds in everything that changes a
    measured value: the compute definition (the pseudo-code hash covers
    shapes and expressions), the target and device, graph inline
    decisions, the timeout policy, and the fault-injector configuration
    when one is active.
    """
    graph = graph if isinstance(graph, MiniGraph) else get_graph(graph)
    measure_config = measure_config or MeasureConfig()
    graph_config = graph_config or GraphConfig()
    op = graph.main_op
    digest = hashlib.md5(format_operation(op).encode()).hexdigest()[:16]
    device = getattr(device_spec, "name", str(device_spec))
    parts = [
        f"op={op.name}",
        f"shape={tuple(op.output.shape)}",
        f"ir={digest}",
        f"target={target_of(device_spec)}",
        f"device={device}",
        f"timeout={measure_config.timeout_seconds}",
    ]
    inline = sorted(graph_config.inline.items())
    if inline:
        parts.append(f"inline={inline}")
    if fault_injector is not None:
        parts.append(f"faults={fault_injector.describe()}")
    return "|".join(parts)


class MeasureStatus(enum.Enum):
    """Classification of one finished measurement."""

    OK = "ok"                          # clean measurement
    LOWER_ERROR = "lower_error"        # schedule could not be lowered
    COMPILE_ERROR = "compile_error"    # toolchain rejected the kernel
    RUN_TIMEOUT = "run_timeout"        # kernel exceeded the timeout budget
    RUNTIME_ERROR = "runtime_error"    # transient device error, retries exhausted
    FLAKY_RETRIED = "flaky_retried"    # succeeded after >=1 transient failure
    ILLEGAL = "illegal"                # statically rejected by the linter

    @property
    def ok(self) -> bool:
        return self in (MeasureStatus.OK, MeasureStatus.FLAKY_RETRIED)

    @property
    def permanent(self) -> bool:
        """Whether re-measuring the same point can never help."""
        return self in (
            MeasureStatus.OK,
            MeasureStatus.FLAKY_RETRIED,
            MeasureStatus.LOWER_ERROR,
            MeasureStatus.COMPILE_ERROR,
            MeasureStatus.RUN_TIMEOUT,
            MeasureStatus.ILLEGAL,
        )


@dataclass
class MeasureResult:
    """One evaluated point: performance (GFLOPS), status, and accounting."""

    point: Point
    performance: float
    seconds: float           # modeled kernel time
    clock: float             # simulated wall-clock at completion
    trial_index: int
    status: MeasureStatus = MeasureStatus.OK
    attempts: int = 1
    error: Optional[str] = None

    def to_dict(self) -> Dict:
        """JSON-compatible form (checkpoint files)."""
        return {
            "point": list(self.point),
            "performance": self.performance,
            "seconds": self.seconds,
            "clock": self.clock,
            "trial_index": self.trial_index,
            "status": self.status.value,
            "attempts": self.attempts,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "MeasureResult":
        return cls(
            point=tuple(payload["point"]),
            performance=payload["performance"],
            seconds=payload["seconds"],
            clock=payload["clock"],
            trial_index=payload["trial_index"],
            status=MeasureStatus(payload.get("status", "ok")),
            attempts=payload.get("attempts", 1),
            error=payload.get("error"),
        )


#: Backwards-compatible alias: the seed called the record type MeasureRecord.
MeasureRecord = MeasureResult


@dataclass
class MeasureConfig:
    """Timeout / retry / quarantine policy of the measurement pipeline.

    ``timeout_seconds = None`` disables timeout classification (legacy
    behaviour) while still capping the billed runtime at
    :data:`DEFAULT_CHARGE_CAP`.
    """

    timeout_seconds: Optional[float] = None
    max_retries: int = 2                # extra attempts after a transient error
    backoff_seconds: float = 0.1        # base wall-clock pause, doubled per retry
    quarantine_threshold: int = 3       # failed measurements before quarantine
    quarantine_max: int = 128           # FIFO capacity of the quarantine set

    @property
    def charge_cap(self) -> float:
        return self.timeout_seconds if self.timeout_seconds else DEFAULT_CHARGE_CAP


class Evaluator:
    """Schedule-point evaluator with memoization, a simulated clock, and a
    fault-tolerant measurement pipeline."""

    def __init__(
        self,
        output,
        device_spec,
        space: Optional[ScheduleSpace] = None,
        graph_config: Optional[GraphConfig] = None,
        model: Optional[PerformanceModel] = None,
        measure_config: Optional[MeasureConfig] = None,
        fault_injector: Optional[FaultInjector] = None,
        eval_cache: Optional[EvalCache] = None,
        canonicalize: bool = True,
        linter: Optional["ScheduleLinter"] = None,
        memoize_lowering: bool = True,
    ):
        self.graph: MiniGraph = output if isinstance(output, MiniGraph) else get_graph(output)
        self.device_spec = device_spec
        self.target = target_of(device_spec)
        self.space = space or build_space(self.graph, self.target)
        self.graph_config = graph_config or GraphConfig()
        self.model = model or model_for(device_spec)
        self.measure_config = measure_config or MeasureConfig()
        self.fault_injector = fault_injector
        self.flops = flops_of(self.graph.main_op)
        self._producer_overhead = self._materialization_seconds()
        self.cache: Dict[Point, float] = {}
        self.records: List[MeasureResult] = []
        self.clock = 0.0
        self.num_measurements = 0
        self.status_counts: Dict[str, int] = {}
        # Fault bookkeeping: lifetime attempt index per point (keys the
        # injector so re-tries of a flaky point see fresh rolls), failed
        # non-permanent measurements per point, and the quarantine FIFO.
        self._attempt_counts: Dict[Point, int] = {}
        self._failure_counts: Dict[Point, int] = {}
        self._quarantine: List[Point] = []
        self._quarantined: set = set()
        self.num_quarantine_hits = 0
        # Canonicalization (ISSUE #2): equivalent points share one
        # measurement.  The memo above stays keyed by *raw* points (so
        # records, quarantine and resume are untouched); the index below
        # maps each canonical key to the first measured representative.
        self.canonicalize = canonicalize
        self.eval_cache = eval_cache
        self._canon_index: Dict[Point, Point] = {}
        self._canon_memo: Dict[Point, Point] = {}
        self.num_memo_hits = 0
        self.num_canon_hits = 0
        self.num_disk_hits = 0
        self._op_signature: Optional[str] = None
        # Static linting (ISSUE #3): with a linter attached, points whose
        # error-severity rules fire are rejected before any measurement —
        # zero simulated cost, MeasureStatus.ILLEGAL, per-rule histogram.
        self.linter = linter
        self.num_lint_rejects = 0
        self.lint_rule_counts: Dict[str, int] = {}
        # Hot path (ISSUE #7): memoize the structural half of lowering
        # across points sharing split/reorder/fuse decisions, and account
        # wall seconds per stage.  Both are pure accelerations — results
        # are bit-identical with the memo on or off.
        self.lowering_memo = LoweringMemo() if memoize_lowering else None
        self.profiler = HotPathProfiler()

    # -- evaluation --------------------------------------------------------

    def lower_point(self, point: Point) -> Scheduled:
        """Lower a space point to its scheduled loop nest."""
        config = self.space.decode(point)
        return lower(
            self.graph, config, self.target, self.graph_config,
            memo=self.lowering_memo,
        )

    def evaluate(self, point: Point) -> float:
        """Performance value E of a point in GFLOPS (0 for failures).

        Cached: re-evaluating a visited point costs no simulated time,
        matching the paper's "record the visited points to avoid repeated
        searching".  Transient failures are *not* cached, so a later
        visit re-measures — unless the point has been quarantined.

        This is the *strict* serial path: with no persistent cache
        attached its behaviour (including which points get measured) is
        bit-identical to the pre-engine evaluator.  Canonical-equivalence
        serving — one measurement covering permuted-but-equivalent
        points — happens in :meth:`lookup`, the probe the batch engine
        uses, and through the opt-in persistent cache below.
        """
        if point in self.cache:
            self.num_memo_hits += 1
            return self.cache[point]
        if point in self._quarantined:
            self.num_quarantine_hits += 1
            return 0.0
        rejected = self.lint_reject(point)
        if rejected is not None:
            return rejected
        if self.eval_cache is not None:
            performance = self._disk_lookup(point)
            if performance is not None:
                return performance
        result = self.measure(point)
        return result.performance

    def lint_reject(self, point: Point) -> Optional[float]:
        """Statically reject a point, or None if it passes (or no linter).

        A rejection is billed at **zero simulated cost**: the clock does
        not advance and ``num_measurements`` stays put — the whole point
        of linting is that legality is decidable without paying for a
        measurement.  The point is still cached at performance 0 (with a
        :attr:`MeasureStatus.ILLEGAL` record carrying the diagnostics),
        so tuners, quarantine-style accounting and the persistent cache
        see it exactly like any other permanently failed point.
        """
        if self.linter is None or point in self.cache:
            return None
        config = self.space.decode(point)
        diagnostics = self.linter.errors(config)
        if not diagnostics:
            return None
        self.num_lint_rejects += 1
        for diagnostic in diagnostics:
            self.lint_rule_counts[diagnostic.rule] = (
                self.lint_rule_counts.get(diagnostic.rule, 0) + 1
            )
        performance = 0.0
        self.cache[point] = performance
        canon = self.canonical_key(point)
        self._canon_index.setdefault(canon, point)
        if self.eval_cache is not None:
            self.eval_cache.put(
                self.op_signature(), canon, performance, MeasureStatus.ILLEGAL.value
            )
        status = MeasureStatus.ILLEGAL
        self.status_counts[status.value] = self.status_counts.get(status.value, 0) + 1
        result = MeasureResult(
            point, performance, INVALID_TIME, self.clock, self.num_measurements,
            status=status, attempts=0,
            error="; ".join(str(d) for d in diagnostics),
        )
        self.records.append(result)
        return performance

    def lookup(self, point: Point) -> Optional[float]:
        """Free-of-charge cache probe, or None if the point needs measuring.

        Consulted in order: the raw in-run memo, the canonical index
        (an equivalent point was already measured — :meth:`canonical_key`
        membership *before* the miss is declared, per ISSUE #2), the
        quarantine set, and finally the persistent cross-run cache.  None
        of these advance the simulated clock or append a record.
        """
        if point in self.cache:
            self.num_memo_hits += 1
            return self.cache[point]
        canon = self.canonical_key(point)
        representative = self._canon_index.get(canon)
        if representative is not None and representative in self.cache:
            self.num_canon_hits += 1
            return self.cache[representative]
        if point in self._quarantined:
            self.num_quarantine_hits += 1
            return 0.0
        if self.eval_cache is not None:
            return self._disk_lookup(point, canon)
        return None

    def _disk_lookup(self, point: Point, canon: Optional[Point] = None) -> Optional[float]:
        """Probe the persistent cache; fold a hit into the in-run memo."""
        if canon is None:
            canon = self.canonical_key(point)
        entry = self.eval_cache.get(self.op_signature(), canon)
        if entry is None:
            return None
        performance, _status = entry
        self.cache[point] = performance
        self._canon_index.setdefault(canon, point)
        self.num_disk_hits += 1
        return performance

    def canonical_key(self, point: Point) -> Point:
        """Canonical representative of a point (identity when disabled)."""
        if not self.canonicalize:
            return point
        canon = self._canon_memo.get(point)
        if canon is None:
            canon = self.space.canonical_point(point)
            self._canon_memo[point] = canon
        return canon

    def op_signature(self) -> str:
        """Stable identity of (operator, shapes, device, run settings) —
        the first half of the persistent cache key.  Two evaluators share
        cache entries iff their signatures match, so the signature folds
        in everything that changes a measured value: the compute
        definition (pseudo-code hash covers shapes and expressions), the
        target and device, graph inline decisions, the timeout policy,
        and the fault-injector configuration when one is active."""
        if self._op_signature is None:
            self._op_signature = op_signature_of(
                self.graph, self.device_spec,
                measure_config=self.measure_config,
                graph_config=self.graph_config,
                fault_injector=self.fault_injector,
            )
        return self._op_signature

    def _retry_loop(self, next_attempt, on_retry=None):
        """The one retry policy shared by the serial and pooled paths.

        ``next_attempt(attempts)`` runs attempt number ``attempts``
        (1-based) and returns ``(status, seconds, error)``; a transient
        :attr:`MeasureStatus.RUNTIME_ERROR` is retried up to
        ``max_retries`` times, invoking ``on_retry(retry_index)`` (0-based)
        before each re-roll.  Returns ``(status, seconds, attempts,
        error)`` of the final attempt.  Keeping this in one place means
        backoff/billing changes cannot diverge between
        :meth:`measure` and :meth:`remote_outcome`.
        """
        config = self.measure_config
        attempts = 0
        while True:
            attempts += 1
            status, seconds, error = next_attempt(attempts)
            if status is MeasureStatus.RUNTIME_ERROR and attempts <= config.max_retries:
                if on_retry is not None:
                    on_retry(attempts - 1)
                continue
            return status, seconds, attempts, error

    def retry_charge(self, retry_index: int) -> float:
        """Simulated seconds one failed-then-retried attempt bills: the
        compile cost of the wasted attempt plus exponential backoff.
        Single source of truth for serial billing (:meth:`measure`) and
        pooled billing (:meth:`outcome_cost`)."""
        return (
            self.model.measurement_seconds(0.0)
            + self.measure_config.backoff_seconds * (2 ** retry_index)
        )

    def measure(self, point: Point) -> MeasureResult:
        """Run the full fault-tolerant measurement pipeline on one point."""

        def on_retry(retry_index: int) -> None:
            # Transient: pay the failed attempt plus a backoff pause,
            # then try again.  Real tuners pay wall-clock for both.
            self.clock += self.retry_charge(retry_index)

        status, seconds, attempts, error = self._retry_loop(
            lambda _attempts: self._attempt(point), on_retry=on_retry
        )
        return self._finish(point, status, seconds, attempts, error)

    # -- pool-safe measurement halves (repro.runtime.parallel) -------------

    def remote_outcome(self, point: Point, base_attempt: int = 0) -> Dict:
        """The *pure* half of :meth:`measure`: run the retry loop and
        return a picklable outcome dict, mutating no evaluator state.

        ``base_attempt`` is the point's lifetime attempt count at
        submission time, so fault-injector rolls are identical to the
        rolls the serial path would have made.  The parent applies the
        outcome (clock, cache, records) with :meth:`apply_remote`.
        """
        status, seconds, attempts, error = self._retry_loop(
            lambda attempts: self._attempt_at(point, base_attempt + attempts - 1)
        )
        return {
            "point": list(point),
            "status": status.value,
            "seconds": seconds,
            "attempts": attempts,
            "error": error,
        }

    def outcome_cost(self, outcome: Dict) -> float:
        """Simulated seconds one outcome bills — identical accounting to
        the serial :meth:`measure` path: each failed-then-retried attempt
        pays a compile cost plus exponential backoff, and the final
        attempt pays the (capped) kernel time."""
        cost = 0.0
        for retry in range(outcome["attempts"] - 1):
            cost += self.retry_charge(retry)
        cost += self.model.measurement_seconds(
            min(outcome["seconds"], self.measure_config.charge_cap)
        )
        return cost

    def apply_remote(self, point: Point, outcome: Dict, clock: float) -> MeasureResult:
        """The *billing* half of :meth:`measure`: fold a worker outcome
        into evaluator state, stamping the record with the simulated
        completion ``clock`` computed by the batch engine."""
        self._attempt_counts[point] = (
            self._attempt_counts.get(point, 0) + outcome["attempts"]
        )
        return self._finish(
            point,
            MeasureStatus(outcome["status"]),
            outcome["seconds"],
            outcome["attempts"],
            outcome["error"],
            clock=clock,
        )

    def _attempt(self, point: Point) -> Tuple[MeasureStatus, float, Optional[str]]:
        """One measurement attempt: (status, kernel seconds, error)."""
        attempt_index = self._attempt_counts.get(point, 0)
        self._attempt_counts[point] = attempt_index + 1
        return self._attempt_at(point, attempt_index)

    def _attempt_at(
        self, point: Point, attempt_index: int
    ) -> Tuple[MeasureStatus, float, Optional[str]]:
        """One measurement attempt at an explicit lifetime attempt index.

        Pure with respect to *simulated* state: touches no counters, no
        clock, no records — safe to run inside a forked worker process.
        (The lowering memo and wall-time profiler are touched, but both
        are pure accelerations/diagnostics with no effect on results.)
        """
        config = self.measure_config
        fault = Fault.NONE
        if self.fault_injector is not None:
            fault = self.fault_injector.decide(point, attempt_index)
        try:
            if fault is Fault.COMPILE:
                raise InjectedCompileError("injected compile failure")
            with self.profiler.section("lower"):
                scheduled = self.lower_point(point)
            if fault is Fault.HANG:
                raise InjectedHang("injected kernel hang")
            if fault is Fault.TRANSIENT:
                raise InjectedRuntimeError("injected transient device error")
            with self.profiler.section("model_eval"):
                seconds = self.model.estimate_seconds(scheduled)
        except LoweringError as exc:
            return MeasureStatus.LOWER_ERROR, INVALID_TIME, str(exc)
        except InjectedHang as exc:
            return MeasureStatus.RUN_TIMEOUT, INVALID_TIME, str(exc)
        except InjectedRuntimeError as exc:
            return MeasureStatus.RUNTIME_ERROR, INVALID_TIME, str(exc)
        except Exception as exc:  # noqa: BLE001 -- ValidationError, arithmetic
            # errors from exotic points, injected compile errors: a broken
            # candidate must never kill the tuning run (ISSUE #1).
            return MeasureStatus.COMPILE_ERROR, INVALID_TIME, f"{type(exc).__name__}: {exc}"
        if seconds >= INVALID_TIME:
            return MeasureStatus.COMPILE_ERROR, INVALID_TIME, "model rejected configuration"
        if self.fault_injector is not None:
            seconds *= self.fault_injector.jitter_factor(point, attempt_index)
        seconds += self._producer_overhead
        if config.timeout_seconds is not None and seconds > config.timeout_seconds:
            return MeasureStatus.RUN_TIMEOUT, seconds, "kernel exceeded timeout"
        return MeasureStatus.OK, seconds, None

    def _finish(
        self,
        point: Point,
        status: MeasureStatus,
        seconds: float,
        attempts: int,
        error: Optional[str],
        clock: Optional[float] = None,
    ) -> MeasureResult:
        """Charge the clock, classify, cache, and record one measurement.

        ``clock=None`` is the serial path: the evaluator's own clock
        advances by the (capped) measurement cost.  The batch engine
        passes an explicit simulated completion time instead — worker
        costs overlap, so the engine owns the clock arithmetic.
        """
        config = self.measure_config
        if status is MeasureStatus.OK and attempts > 1:
            status = MeasureStatus.FLAKY_RETRIED
        if status.ok:
            performance = self.flops / seconds / 1e9
        else:
            performance = 0.0
        if clock is None:
            # A hang (or a kernel past the timeout) bills the *full*
            # timeout budget — real tuners pay wall-clock waiting for the
            # deadline.
            self.clock += self.model.measurement_seconds(min(seconds, config.charge_cap))
            clock = self.clock
        self.num_measurements += 1
        if status.permanent:
            self.cache[point] = performance
            canon = self.canonical_key(point)
            self._canon_index.setdefault(canon, point)
            if self.eval_cache is not None:
                self.eval_cache.put(self.op_signature(), canon, performance, status.value)
        else:
            self._record_failure(point)
        self.status_counts[status.value] = self.status_counts.get(status.value, 0) + 1
        result = MeasureResult(
            point, performance, seconds, clock, self.num_measurements,
            status=status, attempts=attempts, error=error,
        )
        self.records.append(result)
        return result

    # -- fault bookkeeping -------------------------------------------------

    def _record_failure(self, point: Point) -> None:
        count = self._failure_counts.get(point, 0) + 1
        self._failure_counts[point] = count
        if count >= self.measure_config.quarantine_threshold:
            self._quarantine_point(point)

    def _quarantine_point(self, point: Point) -> None:
        if point in self._quarantined:
            return
        self._quarantine.append(point)
        self._quarantined.add(point)
        self._evict_quarantine_overflow()

    def _evict_quarantine_overflow(self) -> None:
        """Apply the FIFO bound, keeping list and membership set in
        lock-step (the pair must never diverge — see the invariant test
        in ``tests/test_fault_runtime.py``)."""
        while len(self._quarantine) > self.measure_config.quarantine_max:
            evicted = self._quarantine.pop(0)
            self._quarantined.discard(evicted)
            # Evicted points get a clean slate: they may be re-measured.
            self._failure_counts.pop(evicted, None)

    def _set_quarantine(self, points) -> None:
        """Rebuild the quarantine FIFO + membership set as one
        invariant-preserving operation: duplicates collapse (a snapshot
        from an older version or a hand-edited file must not leave the
        list and the set disagreeing) and the FIFO bound is re-applied
        (the configured ``quarantine_max`` may have shrunk since the
        snapshot was written)."""
        self._quarantine = []
        self._quarantined = set()
        for point in points:
            point = tuple(point)
            if point in self._quarantined:
                continue
            self._quarantine.append(point)
            self._quarantined.add(point)
        self._evict_quarantine_overflow()

    @property
    def quarantine(self) -> Tuple[Point, ...]:
        """Quarantined points, oldest first."""
        return tuple(self._quarantine)

    @property
    def num_retries(self) -> int:
        """Measurement attempts beyond the first, summed over all records
        — the retry bill the CLI's measurement-health report surfaces."""
        return sum(max(0, r.attempts - 1) for r in self.records)

    def recent_error_rate(self, window: int = 20) -> float:
        """Fraction of failed measurements among the last ``window`` —
        the signal tuners use to degrade gracefully when a neighborhood
        is poisoned."""
        if not self.records:
            return 0.0
        recent = self.records[-window:]
        failed = sum(1 for r in recent if not r.status.ok)
        return failed / len(recent)

    def _materialization_seconds(self) -> float:
        """Cost of producer nodes the graph config does *not* inline.

        An un-inlined padding/expansion node runs as its own elementwise
        kernel: write its output, read it back in the consumer, plus a
        launch.  Inlining (Algorithm 1's graph schedule, FlexTensor's
        default) makes this free; template baselines that materialize
        data-rearrangement stages pay it.
        """
        main = self.graph.main_op
        bandwidth = getattr(self.device_spec, "bandwidth_gbs", None)
        if bandwidth is None:
            bandwidth = getattr(self.device_spec, "ddr_bandwidth_gbs")
        launch = getattr(self.device_spec, "kernel_launch_us", 5.0) * 1e-6
        total = 0.0
        for op in self.graph.compute_ops:
            if op is main or self.graph_config.should_inline(op.name):
                continue
            bytes_moved = op.output.size * 4 * 3  # write + read back + input read
            total += bytes_moved / (bandwidth * 1e9) + launch
        return total

    def charge(self, seconds: float) -> None:
        """Advance the simulated clock for non-measurement work (e.g.
        cost-model training in the AutoTVM baseline)."""
        self.clock += seconds

    # -- checkpointing -----------------------------------------------------

    def get_state(self) -> Dict:
        """JSON-compatible snapshot of all mutable evaluator state."""
        return {
            "clock": self.clock,
            "num_measurements": self.num_measurements,
            "cache": [[list(p), perf] for p, perf in self.cache.items()],
            "records": [r.to_dict() for r in self.records],
            "status_counts": dict(self.status_counts),
            "attempt_counts": [[list(p), c] for p, c in self._attempt_counts.items()],
            "failure_counts": [[list(p), c] for p, c in self._failure_counts.items()],
            "quarantine": [list(p) for p in self._quarantine],
            "num_quarantine_hits": self.num_quarantine_hits,
            "num_memo_hits": self.num_memo_hits,
            "num_canon_hits": self.num_canon_hits,
            "num_disk_hits": self.num_disk_hits,
            "num_lint_rejects": self.num_lint_rejects,
            "lint_rule_counts": dict(self.lint_rule_counts),
        }

    def set_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self.clock = state["clock"]
        self.num_measurements = state["num_measurements"]
        self.cache = {tuple(p): perf for p, perf in state["cache"]}
        self.records = [MeasureResult.from_dict(r) for r in state["records"]]
        self.status_counts = dict(state.get("status_counts", {}))
        self._attempt_counts = {tuple(p): c for p, c in state.get("attempt_counts", [])}
        self._failure_counts = {tuple(p): c for p, c in state.get("failure_counts", [])}
        self._set_quarantine(state.get("quarantine", []))
        self.num_quarantine_hits = state.get("num_quarantine_hits", 0)
        self.num_memo_hits = state.get("num_memo_hits", 0)
        self.num_canon_hits = state.get("num_canon_hits", 0)
        self.num_disk_hits = state.get("num_disk_hits", 0)
        self.num_lint_rejects = state.get("num_lint_rejects", 0)
        self.lint_rule_counts = dict(state.get("lint_rule_counts", {}))
        # Rebuild the canonical index from the memo in insertion order so
        # each class maps to the same first-measured representative an
        # uninterrupted run would have chosen.
        self._canon_index = {}
        for p in self.cache:
            self._canon_index.setdefault(self.canonical_key(p), p)

    # -- results -------------------------------------------------------------

    def best(self) -> Tuple[Optional[Point], float]:
        """The best evaluated point and its performance so far."""
        if not self.cache:
            return None, 0.0
        point = max(self.cache, key=self.cache.get)
        return point, self.cache[point]

    def convergence_curve(self) -> List[Tuple[float, float]]:
        """(simulated seconds, best GFLOPS so far) per measurement —
        the data behind Figure 7."""
        curve = []
        best = 0.0
        for record in self.records:
            best = max(best, record.performance)
            curve.append((record.clock, best))
        return curve

    def time_to_reach(self, target_performance: float) -> Optional[float]:
        """Simulated seconds until the search first reached the target
        (Figure 6d's exploration-time metric); None if never reached."""
        best = 0.0
        for record in self.records:
            best = max(best, record.performance)
            if best >= target_performance:
                return record.clock
        return None
