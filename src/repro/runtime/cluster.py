"""Supervised measurement cluster: heartbeats, leases, speculation, breakers.

FlexTensor's evaluation (§6) distributes measurement across machines
(2.1x on 4 machines), and MetaSchedule-style systems supervise their
builder/runner fleet for the same reason: on a real cluster workers
hang, crash, straggle and flake, and an unsupervised fan-out either
stalls the whole batch or silently eats measurement budget.  This
module adds that supervision layer between the tuners and the fork
pool — against *simulated* hardware, so node failures must be simulated
too (:class:`~repro.runtime.fault.NodeFaultInjector`) and the whole
layer is testable as a pure function of the seed.

A :class:`ClusterSupervisor` maintains a worker registry and, per
candidate batch, runs a deterministic discrete-event simulation of the
assignment on the simulated measurement clock:

* **Leases** — each in-flight measurement is a lease with a deadline
  (``lease_factor`` x its nominal cost).  A lease that misses its
  deadline is cancelled and the job reassigned.
* **Heartbeats** — workers heartbeat on the simulated clock; a worker
  silent for ``heartbeat_timeout`` seconds is declared lost and its
  lease reassigned (crash detection is also heartbeat-driven: a dead
  worker is only *noticed* once its heartbeats stop arriving).
* **Speculative re-execution** — a lease running past a percentile
  threshold of recently completed lease durations (``straggler_pct``)
  gets a speculative copy on an idle worker; the first result wins and
  the loser's partial cost is billed, exactly like the engine's
  LPT-style simulated-clock billing.
* **Health scoring + circuit breaker** — every lease outcome folds into
  a per-worker EWMA health score driving a three-state breaker
  (closed → probing → open): a worker whose health drops below
  ``open_threshold`` is quarantined (no new leases), re-admitted as
  *probing* after ``cooldown_seconds``, closed again on a successful
  probe, re-opened on a failed one.

Determinism contract: node faults affect **scheduling and billing
only** — which worker runs a job, how long the batch's simulated
makespan is, what the supervisor's health state becomes — never the
measurement outcomes themselves (those are pure functions of the
point, computed before scheduling).  A chaos run therefore finds the
same best schedule as a fault-free run at equal trial count, and the
supervisor's full state (registry, lease history, breakers, health
EWMAs, RNG) checkpoints beside the Q-network for bit-identical
kill+resume.  When every worker's breaker is open the engine degrades
to the bit-identical serial path (see ``docs/cluster.md``).
"""

from __future__ import annotations

import enum
import heapq
from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from .fault import NodeFault, NodeFaultInjector


class BreakerState(enum.Enum):
    """Circuit-breaker state of one worker."""

    CLOSED = "closed"      # healthy: receives leases normally
    PROBING = "probing"    # cooled down after a trip: one probe lease at a time
    OPEN = "open"          # quarantined: receives no leases until cool-down


@dataclass
class ClusterConfig:
    """Supervision policy of a :class:`ClusterSupervisor`.

    All times are *simulated* seconds on the measurement clock.
    """

    workers: int = 4
    #: Heartbeat cadence of a healthy worker (registry bookkeeping).
    heartbeat_interval: float = 0.05
    #: Silence beyond this declares a worker lost and expires its lease.
    heartbeat_timeout: float = 0.25
    #: Lease deadline = max(lease_min_seconds, lease_factor * nominal cost).
    lease_factor: float = 4.0
    lease_min_seconds: float = 0.05
    #: Percentile of recent lease durations beyond which a running lease
    #: counts as a straggler and may be speculatively re-executed.
    straggler_pct: float = 95.0
    straggler_min_samples: int = 5
    #: Master switch for speculative re-execution.
    speculate: bool = True
    #: EWMA factor of the per-worker health score (1 = only last outcome).
    health_alpha: float = 0.25
    #: Health below this trips a CLOSED breaker to OPEN.
    open_threshold: float = 0.45
    #: Health granted to a worker re-admitted for probing.
    probe_health: float = 0.55
    #: Simulated seconds an OPEN breaker waits before PROBING.
    cooldown_seconds: float = 5.0
    #: Simulated seconds a crashed (non-fatally) worker takes to restart.
    restart_seconds: float = 2.0
    #: Node-level reassignments of one job before its (already computed)
    #: outcome is force-accepted — guarantees termination under any chaos.
    max_reassign: int = 4
    #: Completed-lease durations kept for the straggler percentile.
    duration_window: int = 64


@dataclass
class WorkerState:
    """Registry entry for one supervised worker."""

    worker_id: int
    health: float = 1.0
    breaker: BreakerState = BreakerState.CLOSED
    opened_at: float = 0.0        # simulated clock when the breaker opened
    lease_serial: int = 0         # lifetime leases granted (keys node faults)
    last_heartbeat: float = 0.0   # simulated clock of the last heartbeat seen
    dead: bool = False            # permanently crashed (scripted kill)
    completed: int = 0
    failed: int = 0
    crashes: int = 0
    trips: int = 0                # CLOSED -> OPEN transitions

    def to_dict(self) -> Dict:
        return {
            "worker_id": self.worker_id,
            "health": self.health,
            "breaker": self.breaker.value,
            "opened_at": self.opened_at,
            "lease_serial": self.lease_serial,
            "last_heartbeat": self.last_heartbeat,
            "dead": self.dead,
            "completed": self.completed,
            "failed": self.failed,
            "crashes": self.crashes,
            "trips": self.trips,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "WorkerState":
        return cls(
            worker_id=int(payload["worker_id"]),
            health=float(payload["health"]),
            breaker=BreakerState(payload.get("breaker", "closed")),
            opened_at=float(payload.get("opened_at", 0.0)),
            lease_serial=int(payload.get("lease_serial", 0)),
            last_heartbeat=float(payload.get("last_heartbeat", 0.0)),
            dead=bool(payload.get("dead", False)),
            completed=int(payload.get("completed", 0)),
            failed=int(payload.get("failed", 0)),
            crashes=int(payload.get("crashes", 0)),
            trips=int(payload.get("trips", 0)),
        )


@dataclass
class BatchPlan:
    """Result of scheduling one batch: per-job simulated completion
    times (relative to the batch start), the batch makespan, and the
    total worker-busy seconds billed (including wasted speculative,
    crashed and expired work)."""

    completions: List[float]
    makespan: float
    busy_seconds: float


#: Counter names persisted in supervisor snapshots, in a fixed order.
_COUNTERS = (
    "num_batches", "num_degraded_batches", "num_serial_drained",
    "num_leases", "num_reassigned", "num_expired", "num_crashes",
    "num_stale", "num_flaky_drops", "num_forced",
    "num_speculative", "num_speculative_wins",
    "num_breaker_trips", "num_reopened", "num_probes_passed",
)


class ClusterSupervisor:
    """Deterministic worker-supervision layer for the batch engine.

    The supervisor owns no measurement logic: the engine computes every
    outcome (a pure function of the point) *before* asking the
    supervisor to schedule the batch, so supervision decisions — lease
    reassignment, speculation, breaker trips — can only change simulated
    timing and worker health, never results.
    """

    def __init__(
        self,
        config: Optional[ClusterConfig] = None,
        node_faults: Optional[NodeFaultInjector] = None,
        seed: int = 0,
        workers: Optional[int] = None,
    ):
        config = config or ClusterConfig()
        if workers is not None:
            config = replace(config, workers=int(workers))
        if config.workers < 1:
            raise ValueError("a cluster needs at least one worker")
        if config.heartbeat_timeout <= 0:
            raise ValueError("heartbeat_timeout must be positive")
        self.config = config
        self.node_faults = node_faults
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.workers = [WorkerState(i) for i in range(config.workers)]
        self._durations: List[float] = []   # recent completed lease durations
        for name in _COUNTERS:
            setattr(self, name, 0)

    # -- registry / admission ----------------------------------------------

    def _admittable(self, worker: WorkerState, clock: float) -> bool:
        """Whether a worker may receive a lease at simulated ``clock``.

        Promotes a cooled-down OPEN breaker to PROBING as a side effect,
        so re-admission happens exactly when the clock crosses the
        cool-down boundary, mid-batch included.
        """
        if worker.dead:
            return False
        if worker.breaker is BreakerState.OPEN:
            if clock - worker.opened_at >= self.config.cooldown_seconds:
                worker.breaker = BreakerState.PROBING
                worker.health = max(worker.health, self.config.probe_health)
                return True
            return False
        return True

    def any_available(self, clock: float) -> bool:
        """Whether at least one worker may receive leases at ``clock``.
        When false the engine must degrade to the serial path."""
        return any(self._admittable(w, clock) for w in self.workers)

    def mark_degraded(self) -> None:
        """Record one batch routed to the serial path (all breakers open)."""
        self.num_degraded_batches += 1

    # -- health / breaker --------------------------------------------------

    def _health_up(self, worker: WorkerState, clock: float) -> None:
        alpha = self.config.health_alpha
        worker.health = (1 - alpha) * worker.health + alpha
        worker.completed += 1
        worker.last_heartbeat = clock
        if worker.breaker is BreakerState.PROBING:
            worker.breaker = BreakerState.CLOSED
            self.num_probes_passed += 1

    def _health_down(self, worker: WorkerState, clock: float) -> None:
        alpha = self.config.health_alpha
        worker.health = (1 - alpha) * worker.health
        worker.failed += 1
        if worker.dead:
            worker.breaker = BreakerState.OPEN
            worker.opened_at = clock
            return
        if worker.breaker is BreakerState.PROBING:
            # A failed probe re-opens immediately: one strike in probing.
            worker.breaker = BreakerState.OPEN
            worker.opened_at = clock
            self.num_reopened += 1
        elif (
            worker.breaker is BreakerState.CLOSED
            and worker.health < self.config.open_threshold
        ):
            worker.breaker = BreakerState.OPEN
            worker.opened_at = clock
            worker.trips += 1
            self.num_breaker_trips += 1

    # -- straggler threshold -----------------------------------------------

    def _note_duration(self, duration: float) -> None:
        self._durations.append(duration)
        if len(self._durations) > self.config.duration_window:
            del self._durations[: len(self._durations) - self.config.duration_window]

    def straggler_threshold(self) -> Optional[float]:
        """Duration beyond which a running lease counts as a straggler,
        or None while too few leases have completed to judge."""
        if len(self._durations) < self.config.straggler_min_samples:
            return None
        data = sorted(self._durations)
        rank = int(np.ceil(self.config.straggler_pct / 100.0 * len(data))) - 1
        return data[min(max(rank, 0), len(data) - 1)]

    # -- batch scheduling ---------------------------------------------------

    def schedule_batch(
        self, costs: Sequence[float], clock: float
    ) -> Optional[BatchPlan]:
        """Simulate assigning ``len(costs)`` jobs across the cluster.

        ``costs[j]`` is job j's nominal simulated cost (the engine's
        ``outcome_cost``); ``clock`` is the evaluator clock at batch
        start.  Returns the per-job completion times and makespan, or
        None when no worker is admittable — the engine then degrades to
        the bit-identical serial path.

        The simulation is event-driven on relative time ``t`` (absolute
        = ``clock + t``) and fully deterministic: heap ties break on an
        event sequence number, idle workers are picked lowest-id first,
        and node faults key on per-worker lease serials.
        """
        if not self.any_available(clock):
            return None
        self.num_batches += 1
        cfg = self.config
        n = len(costs)
        completions: List[Optional[float]] = [None] * n
        pending = deque(range(n))
        assign_counts = [0] * n
        # One active lease per worker; leases_by_job tracks unresolved
        # copies so speculation and sibling-cancellation can find them.
        active: Dict[int, Dict[str, Any]] = {}
        leases_by_job: Dict[int, List[Dict[str, Any]]] = {}
        offline_until: Dict[int, float] = {}
        heap: List = []
        seq = 0
        busy = 0.0
        span = 0.0
        finished = 0

        def push(t: float, kind: str, payload) -> None:
            nonlocal seq
            heapq.heappush(heap, (t, seq, kind, payload))
            seq += 1

        def bill(seconds: float) -> None:
            nonlocal busy
            busy += max(seconds, 0.0)

        def unresolved(job: int) -> List[Dict[str, Any]]:
            return [
                lease for lease in leases_by_job.get(job, [])
                if not lease["resolved"] and not lease["cancelled"]
            ]

        def idle_worker(t: float) -> Optional[WorkerState]:
            for worker in self.workers:
                if worker.worker_id in active:
                    continue
                if offline_until.get(worker.worker_id, 0.0) > t:
                    continue
                if self._admittable(worker, clock + t):
                    return worker
            return None

        def grant(worker: WorkerState, job: int, t: float, speculative: bool) -> None:
            serial = worker.lease_serial
            worker.lease_serial += 1
            self.num_leases += 1
            fault = NodeFault.NONE
            fatal = False
            if self.node_faults is not None:
                fault = self.node_faults.decide(worker.worker_id, serial)
                fatal = self.node_faults.is_fatal(worker.worker_id, serial)
            cost = max(float(costs[job]), 1e-9)
            duration = cost
            if fault is NodeFault.SLOW and self.node_faults is not None:
                duration *= self.node_faults.slow_factor
            deadline = t + max(cfg.lease_min_seconds, cfg.lease_factor * cost)
            lease = {
                "worker": worker.worker_id,
                "job": job,
                "start": t,
                "duration": duration,
                "deadline": deadline,
                "fault": fault,
                "fatal": fatal,
                "speculative": speculative,
                "resolved": False,
                "cancelled": False,
            }
            active[worker.worker_id] = lease
            leases_by_job.setdefault(job, []).append(lease)
            worker.last_heartbeat = clock + t
            if speculative:
                self.num_speculative += 1
            if fault is NodeFault.CRASH:
                fraction = (
                    self.node_faults.crash_fraction(worker.worker_id, serial)
                    if self.node_faults is not None else 0.5
                )
                push(t + fraction * duration, "crash", lease)
            elif fault is NodeFault.STALE:
                if duration <= cfg.heartbeat_timeout:
                    # Heartbeats resume before anyone noticed the gap.
                    push(t + duration, "done", lease)
                else:
                    lease["busy_until"] = t + duration
                    push(t + cfg.heartbeat_timeout, "lost", lease)
            elif t + duration <= lease["deadline"]:
                push(t + duration, "flaky" if fault is NodeFault.FLAKY else "done", lease)
            else:
                push(lease["deadline"], "expire", lease)

        def finish_job(job: int, t: float, winner: Optional[Dict[str, Any]]) -> None:
            nonlocal finished
            completions[job] = t
            finished += 1
            if winner is not None and winner["speculative"]:
                self.num_speculative_wins += 1
            # First result wins: cancel every other copy still running
            # and bill its partial work (the LPT clock already paid it).
            for sibling in leases_by_job.get(job, []):
                if sibling is winner or sibling["resolved"] or sibling["cancelled"]:
                    continue
                sibling["cancelled"] = True
                if active.get(sibling["worker"]) is sibling:
                    del active[sibling["worker"]]
                bill(t - sibling["start"])

        def requeue(lease, t: float) -> None:
            """Put a node-failed job back at the head of the queue (or
            force-accept its outcome once max_reassign is exhausted)."""
            job = lease["job"]
            if completions[job] is not None or unresolved(job):
                return  # a sibling copy is still running (or already won)
            assign_counts[job] += 1
            if assign_counts[job] > cfg.max_reassign:
                self.num_forced += 1
                finish_job(job, t, None)
            else:
                self.num_reassigned += 1
                pending.appendleft(job)

        def dispatch(t: float) -> None:
            while pending:
                worker = idle_worker(t)
                if worker is None:
                    return
                grant(worker, pending.popleft(), t, speculative=False)
            if not cfg.speculate:
                return
            threshold = self.straggler_threshold()
            if threshold is None:
                return
            while True:
                worker = idle_worker(t)
                if worker is None:
                    return
                stragglers = [
                    lease for lease in active.values()
                    if not lease["resolved"] and not lease["cancelled"]
                    and completions[lease["job"]] is None
                    and len(unresolved(lease["job"])) == 1
                    and t - lease["start"] > threshold
                ]
                if not stragglers:
                    return
                stragglers.sort(key=lambda lease: (lease["start"], lease["job"]))
                longest = stragglers[0]["start"]
                candidates = [s for s in stragglers if s["start"] == longest]
                pick = candidates[int(self.rng.integers(len(candidates)))]
                grant(worker, pick["job"], t, speculative=True)

        dispatch(0.0)
        while heap:
            t, _seq, kind, payload = heapq.heappop(heap)
            span = max(span, t)
            if kind == "restart":
                dispatch(t)
                continue
            lease = payload
            if kind == "detect":
                # Crash detection fires on a lease the crash handler
                # already resolved — only a win by a speculative sibling
                # (checked inside requeue) makes it moot.
                requeue(lease, t)
                dispatch(t)
                continue
            if lease["cancelled"] or lease["resolved"]:
                continue
            worker = self.workers[lease["worker"]]
            if kind == "done":
                lease["resolved"] = True
                del active[worker.worker_id]
                bill(lease["duration"])
                self._note_duration(lease["duration"])
                self._health_up(worker, clock + t)
                if completions[lease["job"]] is None:
                    finish_job(lease["job"], t, lease)
            elif kind == "flaky":
                # The lease ran to completion but delivered garbage: bill
                # the full duration, drop the result, requeue the job.
                lease["resolved"] = True
                del active[worker.worker_id]
                bill(lease["duration"])
                self.num_flaky_drops += 1
                self._health_down(worker, clock + t)
                requeue(lease, t)
            elif kind == "crash":
                # The worker dies mid-lease.  Nobody knows yet: detection
                # waits for the heartbeat gap; the job stays in limbo.
                lease["resolved"] = True
                del active[worker.worker_id]
                bill(t - lease["start"])
                worker.crashes += 1
                self.num_crashes += 1
                if lease["fatal"]:
                    worker.dead = True
                else:
                    offline_until[worker.worker_id] = t + cfg.restart_seconds
                    push(t + cfg.restart_seconds, "restart", None)
                self._health_down(worker, clock + t)
                push(t + cfg.heartbeat_timeout, "detect", lease)
                continue  # requeue happens at detection time
            elif kind == "lost":
                # Stale heartbeats: the supervisor declares the worker
                # lost and reassigns, but the ghost keeps running to
                # completion (billed in full); its late result is
                # discarded — outcomes are pure, so nothing is lost.
                lease["resolved"] = True
                del active[worker.worker_id]
                bill(lease["duration"])
                self.num_stale += 1
                offline_until[worker.worker_id] = lease["busy_until"]
                push(lease["busy_until"], "restart", None)
                self._health_down(worker, clock + t)
                requeue(lease, t)
            elif kind == "expire":
                # Deadline missed (e.g. a slow node with a tight lease):
                # cancel the lease, bill the partial work, reassign.
                lease["resolved"] = True
                del active[worker.worker_id]
                bill(t - lease["start"])
                self.num_expired += 1
                self._health_down(worker, clock + t)
                requeue(lease, t)
            dispatch(t)

        if finished < n:
            # Every worker is dead, open or offline with jobs left: drain
            # the remainder serially on the local host so the batch (and
            # the tuning run) still completes.
            remaining = [job for job in range(n) if completions[job] is None]
            cursor = span
            for job in remaining:
                cursor += max(float(costs[job]), 1e-9)
                completions[job] = cursor
                bill(max(float(costs[job]), 1e-9))
            self.num_serial_drained += len(remaining)
            span = cursor
        span = max([span] + [c for c in completions if c is not None])
        return BatchPlan(
            completions=[float(c) for c in completions],  # type: ignore[arg-type]
            makespan=span,
            busy_seconds=busy,
        )

    # -- checkpointing ------------------------------------------------------

    def get_state(self) -> Dict:
        """JSON-compatible snapshot of all mutable supervisor state:
        the worker registry (health, breakers, lease serials), the
        lease-duration window behind the straggler threshold, the
        speculation RNG, and every lifetime counter."""
        return {
            "seed": self.seed,
            "rng": self.rng.bit_generator.state,
            "workers": [w.to_dict() for w in self.workers],
            "durations": list(self._durations),
            "counters": {name: getattr(self, name) for name in _COUNTERS},
        }

    def set_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`."""
        self.rng.bit_generator.state = state["rng"]
        self.workers = [WorkerState.from_dict(w) for w in state["workers"]]
        self._durations = [float(d) for d in state.get("durations", [])]
        counters = state.get("counters", {})
        for name in _COUNTERS:
            setattr(self, name, int(counters.get(name, 0)))

    # -- reporting ----------------------------------------------------------

    def stats(self) -> Dict:
        """Supervision counters and the live registry for reports."""
        return {
            "workers": self.config.workers,
            "alive": sum(1 for w in self.workers if not w.dead),
            "open": sum(
                1 for w in self.workers if w.breaker is BreakerState.OPEN
            ),
            "probing": sum(
                1 for w in self.workers if w.breaker is BreakerState.PROBING
            ),
            "health": [round(w.health, 4) for w in self.workers],
            "straggler_pct": self.config.straggler_pct,
            "speculate": self.config.speculate,
            **{name: getattr(self, name) for name in _COUNTERS},
        }

    def report(self) -> str:
        """Human-readable one-paragraph supervision summary."""
        s = self.stats()
        lines = [
            f"cluster: {s['alive']}/{s['workers']} workers alive "
            f"({s['open']} open, {s['probing']} probing), "
            f"health={['%.2f' % h for h in s['health']]}",
            f"leases: {s['num_leases']} granted, {s['num_reassigned']} reassigned "
            f"({s['num_crashes']} crashes, {s['num_stale']} stale, "
            f"{s['num_expired']} expired, {s['num_flaky_drops']} flaky drops, "
            f"{s['num_forced']} forced)",
            f"speculation: {s['num_speculative']} launched, "
            f"{s['num_speculative_wins']} won (p{s['straggler_pct']:g} threshold)",
            f"breakers: {s['num_breaker_trips']} trips, {s['num_reopened']} "
            f"re-opened, {s['num_probes_passed']} probes passed; "
            f"{s['num_degraded_batches']} batches degraded serial, "
            f"{s['num_serial_drained']} jobs serially drained",
        ]
        return "\n".join(lines)
