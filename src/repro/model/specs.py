"""Device specifications for the simulated heterogeneous testbed.

These mirror the paper's evaluation hardware (§6.1): NVIDIA V100, P100 and
Titan X (Pascal) GPUs, the Intel Xeon E5-2699 v4 CPU, and the Xilinx VU9P
FPGA.  Numbers are the public datasheet figures; they parameterize the
analytical performance models that substitute for real measurement.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GpuSpec:
    """CUDA-class accelerator."""

    name: str
    num_sms: int
    peak_gflops: float            # fp32
    bandwidth_gbs: float          # device memory
    max_threads_per_block: int = 1024
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    shared_mem_per_block: int = 48 * 1024
    shared_mem_per_sm: int = 96 * 1024
    registers_per_sm: int = 65536
    max_registers_per_thread: int = 255
    kernel_launch_us: float = 5.0
    compile_seconds: float = 0.8  # simulated TVM build time per candidate
    run_repeats: int = 5          # timed executions per measurement
    tensor_core_rate: float = 1.0  # mma throughput relative to fp32 peak


@dataclass(frozen=True)
class CpuSpec:
    """Multicore SIMD CPU."""

    name: str
    num_cores: int
    ghz: float
    vector_lanes: int             # fp32 lanes per SIMD op (AVX2 = 8)
    fma_units: int                # FMA pipes per core
    bandwidth_gbs: float
    l1_kb: int = 32
    l2_kb: int = 256
    l3_mb: float = 55.0
    thread_spawn_us: float = 20.0
    compile_seconds: float = 0.5
    run_repeats: int = 5

    @property
    def peak_gflops_per_core(self) -> float:
        """Theoretical per-core fp32 throughput (lanes x FMA x clock)."""
        # lanes * 2 (FMA = mul+add) * units * GHz
        return self.vector_lanes * 2 * self.fma_units * self.ghz

    @property
    def peak_gflops(self) -> float:
        """Theoretical chip-wide fp32 throughput."""
        return self.peak_gflops_per_core * self.num_cores


@dataclass(frozen=True)
class FpgaSpec:
    """FPGA accelerator card programmed through HLS/OpenCL."""

    name: str
    num_dsps: int
    bram_kb: int                  # on-chip block RAM
    ddr_bandwidth_gbs: float      # single bank
    max_partitions: int = 16      # memory partition factor limit
    mhz: float = 250.0
    dsps_per_pe: int = 5          # fp32 multiply-add cost in DSP slices
    synthesis_seconds: float = 3600.0   # why we use the analytical model
    model_query_seconds: float = 0.05   # cost of one §5.2 model evaluation

    @property
    def max_pes(self) -> int:
        """Largest PE array the DSP budget allows."""
        return self.num_dsps // self.dsps_per_pe


V100 = GpuSpec(
    name="V100",
    num_sms=80,
    peak_gflops=15700.0,
    bandwidth_gbs=900.0,
    shared_mem_per_sm=96 * 1024,
    tensor_core_rate=8.0,  # 125 TFLOPS tensor cores vs 15.7 fp32
)

P100 = GpuSpec(
    name="P100",
    num_sms=56,
    peak_gflops=9300.0,
    bandwidth_gbs=732.0,
    shared_mem_per_sm=64 * 1024,
)

TITAN_X = GpuSpec(
    name="TitanX",
    num_sms=28,
    peak_gflops=10970.0,
    bandwidth_gbs=480.0,
    shared_mem_per_sm=64 * 1024,
)

XEON_E5_2699V4 = CpuSpec(
    name="XeonE5-2699v4",
    num_cores=22,
    ghz=2.2,
    vector_lanes=8,    # AVX2: the paper observes vectorization length 8
    fma_units=2,
    bandwidth_gbs=76.8,
)

VU9P = FpgaSpec(
    name="VU9P",
    num_dsps=6840,
    bram_kb=9 * 1024,
    ddr_bandwidth_gbs=19.2,
)

DEVICES = {
    "V100": V100,
    "P100": P100,
    "TitanX": TITAN_X,
    "XeonE5-2699v4": XEON_E5_2699V4,
    "VU9P": VU9P,
}


def target_of(spec) -> str:
    """The lowering target name for a device spec."""
    if isinstance(spec, GpuSpec):
        return "gpu"
    if isinstance(spec, CpuSpec):
        return "cpu"
    if isinstance(spec, FpgaSpec):
        return "fpga"
    raise TypeError(f"unknown device spec {spec!r}")
