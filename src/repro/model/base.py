"""Performance-model interface.

The paper evaluates candidate schedules either by running them on the
device or by querying an analytical model (§5.2) and treats the two as
interchangeable evaluators.  Our reproduction has no physical devices, so
every target uses an analytical model; the interface also reports the
*simulated measurement cost* of a trial (compile + repeated runs on
CPU/GPU, a model query on FPGA), which drives the exploration-time results
of Figures 6d and 7.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from ..schedule import Scheduled

#: Estimate returned for configurations a real toolchain would reject
#: (too many threads, shared memory over budget, ...).  Finite so that the
#: annealing arithmetic stays well-behaved, but far beyond any real time.
INVALID_TIME = 1.0e3


class InvalidSchedule(Exception):
    """The configuration violates a hard hardware constraint."""


class PerformanceModel(ABC):
    """Estimates wall-clock seconds for a scheduled program on one device."""

    def __init__(self, spec):
        self.spec = spec

    @property
    def name(self) -> str:
        """The device name this model simulates."""
        return self.spec.name

    @abstractmethod
    def estimate_seconds(self, scheduled: Scheduled) -> float:
        """Predicted kernel time in seconds (``INVALID_TIME`` if illegal)."""

    @abstractmethod
    def measurement_seconds(self, runtime: float) -> float:
        """Simulated wall-clock cost of obtaining one measurement."""

    def gflops(self, scheduled: Scheduled) -> float:
        """Achieved GFLOPS under the model's time estimate."""
        from ..codegen import flops_of

        seconds = self.estimate_seconds(scheduled)
        if seconds <= 0:
            return 0.0
        return flops_of(scheduled.op) / seconds / 1e9
