"""Analytical CPU performance model (multicore + SIMD).

Substitutes for measurement on the Xeon E5-2699 v4.  The knobs FlexTensor
tunes on CPU (Fig. 4a) all move the estimate: fusing more outer loops
exposes parallel chunks (too few chunks starve cores, awkward counts cause
imbalance); the innermost split factor is the vectorization length (AVX2
fits 8 fp32 lanes — the paper notes tuned schedules converge to 8); tile
shapes set the per-core working set against the cache hierarchy; reorder
decides whether the vector unit runs over spatial (good) or reduction
(horizontal-add penalty) loops.
"""

from __future__ import annotations

import math
from typing import Dict

from ..analysis.lint import cpu_parallel_chunks
from ..codegen import access_stride, flops_of, tensor_reads, tile_footprint
from ..schedule import (
    REORDER_INTERLEAVED,
    REORDER_REDUCE_INNER,
    REORDER_SPATIAL_INNER,
    Scheduled,
    VECTORIZE,
)
from .base import INVALID_TIME, PerformanceModel
from .resources import tensorize_rate
from .specs import CpuSpec

_DTYPE_BYTES = 4

_REORDER_EFFICIENCY = {
    REORDER_REDUCE_INNER: 1.00,
    REORDER_SPATIAL_INNER: 0.90,
    REORDER_INTERLEAVED: 0.96,
}


class CpuModel(PerformanceModel):
    """Time estimator for multicore SIMD CPUs."""

    def __init__(self, spec: CpuSpec):
        super().__init__(spec)

    def measurement_seconds(self, runtime: float) -> float:
        """Compile + repeated timed runs, the CPU tuning cost per trial."""
        spec = self.spec
        return spec.compile_seconds + spec.run_repeats * max(runtime, 1e-5) + 0.1

    def estimate_seconds(self, scheduled: Scheduled) -> float:
        """Predicted kernel seconds under the multicore/SIMD model."""
        if scheduled.target != "cpu":
            raise ValueError(f"CPU model got a {scheduled.target!r} schedule")
        spec = self.spec
        config = scheduled.config
        op = scheduled.op

        # Parallelism: chunks of the fused outer loop over physical cores
        # (shared with the linter's CPU002 starvation rule).
        chunks = cpu_parallel_chunks(config)
        rounds = math.ceil(chunks / spec.num_cores)
        effective_cores = chunks / rounds  # average active cores per round

        # Vectorization of the innermost loop.
        vector_eff = 1.0 / spec.vector_lanes  # scalar baseline
        vector_loops = [l for l in scheduled.loops if l.annotation == VECTORIZE]
        if vector_loops:
            loop = vector_loops[-1]
            length = loop.extent
            lanes = spec.vector_lanes
            utilization = length / (math.ceil(length / lanes) * lanes)
            role = loop.role
            if isinstance(role[0], tuple):  # a fused loop: judge by its innermost part
                role = role[-1]
            kind, axis_idx = role[0], role[1]
            if kind == "reduce":
                utilization *= 0.6  # horizontal reduction at the tail
                axis = op.reduce_axes[axis_idx]
            else:
                axis = op.axes[axis_idx]
            stride_penalty = self._gather_penalty(op, axis)
            vector_eff = utilization * stride_penalty
        if getattr(config, "tensorize", ""):
            # The intrinsic replaces the innermost loops outright: bill its
            # rate relative to full-width fp32 SIMD (dot4 VNNI packs 4 int8
            # MACs per lane, so the rate can exceed 1.0).
            vector_eff = tensorize_rate(config, spec)

        unroll_boost = 1.0 + (0.08 if config.unroll_depth else 0.0)
        # Register blocking quality: the innermost tile should fill the FMA
        # pipelines without spilling (~16 fp32 accumulator registers).
        inner_tile = 1
        for factors in config.spatial_factors:
            inner_tile *= factors[2]
        pipeline_eff = min(1.0, inner_tile / 16.0) ** 0.35
        spill = max(1.0, inner_tile / 64.0)

        flops = flops_of(op)
        compute_time = flops / (
            spec.peak_gflops_per_core
            * 1e9
            * effective_cores
            * vector_eff
            * unroll_boost
            * pipeline_eff
            * _REORDER_EFFICIENCY[config.reorder]
            / spill
        )

        # Memory: per-core working set vs the cache hierarchy.
        tile: Dict = {}
        for axis, factors in zip(op.axes, config.spatial_factors):
            tile[axis] = factors[1] * factors[2]
        for axis, factors in zip(op.reduce_axes, config.reduce_factors):
            tile[axis] = factors[1]
        reduce_total = 1
        for axis in op.reduce_axes:
            reduce_total *= axis.extent
        reduce_inner = 1
        for factors in config.reduce_factors:
            reduce_inner *= factors[1]
        reduce_trips = reduce_total // max(reduce_inner, 1)

        working_set = 0
        tile_loads = 0
        for tensor in op.input_tensors:
            footprint = tile_footprint(op, tensor, tile) * _DTYPE_BYTES
            working_set += footprint
            tile_loads += footprint
        outer_iterations = 1
        for factors in config.spatial_factors:
            outer_iterations *= factors[0]
        l2_bytes = spec.l2_kb * 1024
        if working_set <= l2_bytes:
            miss_factor = 1.0
        else:
            # The tile no longer fits: every reduce pass re-streams it.
            miss_factor = min(working_set / l2_bytes, float(max(reduce_trips, 1)))
        traffic = outer_iterations * tile_loads * miss_factor
        traffic += op.output.size * _DTYPE_BYTES  # stores
        memory_time = traffic / (spec.bandwidth_gbs * 1e9)

        spawn = spec.thread_spawn_us * 1e-6 * min(chunks, spec.num_cores)
        return max(compute_time, memory_time) + spawn

    def _gather_penalty(self, op, axis) -> float:
        """SIMD loads want the vectorized axis contiguous in its inputs."""
        worst = 1.0
        for ref in tensor_reads(op):
            from ..ir import stride_of

            stride = stride_of(ref.indices, ref.tensor.shape, axis)
            if stride is None:
                worst = min(worst, 0.3)
            elif abs(stride) > 1:
                worst = min(worst, 0.45)
        return worst
