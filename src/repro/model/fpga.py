"""Analytical FPGA performance model — the paper's §5.2 equation.

    Execution_time = workload / #PE * max(R, C, W)

where ``R``/``C``/``W`` are the read / compute / write stage times of one
round of the three-stage coarse-grained pipeline (Fig. 4c), ``#PE`` the
number of parallel processing elements.  Hardware constraints: the PE
array is bounded by DSP slices, line buffers by BRAM, and the effective
DDR bandwidth scales with the memory partition factor.  Synthesis takes
hours on a real VU9P, which is exactly why the paper (and this
reproduction) evaluates FPGA candidates through this model rather than by
measurement.
"""

from __future__ import annotations

import math
from typing import Dict

from ..analysis.lint import fpga_bram_bytes, fpga_num_pes
from ..codegen import flops_of, tile_footprint
from ..schedule import Scheduled
from .base import INVALID_TIME, PerformanceModel
from .specs import FpgaSpec

_DTYPE_BYTES = 4


class FpgaModel(PerformanceModel):
    """The three-stage-pipeline estimator of §5.2."""

    def __init__(self, spec: FpgaSpec):
        super().__init__(spec)

    def measurement_seconds(self, runtime: float) -> float:
        """One analytical-model query (synthesis is never run)."""
        # Candidates are scored by the analytical model, never synthesized.
        return self.spec.model_query_seconds

    def estimate_seconds(self, scheduled: Scheduled) -> float:
        """The §5.2 pipeline equation under DSP/BRAM constraints."""
        if scheduled.target != "fpga":
            raise ValueError(f"FPGA model got a {scheduled.target!r} schedule")
        spec = self.spec
        config = scheduled.config
        op = scheduled.op

        num_pe = fpga_num_pes(config)
        assert num_pe == scheduled.parallel_extent
        if num_pe > spec.max_pes:
            return INVALID_TIME

        reduce_total = 1
        for axis in op.reduce_axes:
            reduce_total *= axis.extent

        # One round: the PE array produces #PE output elements, each a full
        # reduction.  Buffering more input lines amortizes DDR bursts.
        # The BRAM legality gate shares its arithmetic with the linter
        # (repro.analysis.lint), one source of truth for the budget.
        pe_tile: Dict = {}
        for axis, factors in zip(op.axes, config.spatial_factors):
            pe_tile[axis] = factors[1]
        for axis in op.reduce_axes:
            pe_tile[axis] = axis.extent
        buffer_lines = max(config.fpga_buffer_lines, 1)
        read_bytes = 0
        for tensor in op.input_tensors:
            read_bytes += tile_footprint(op, tensor, pe_tile) * _DTYPE_BYTES
        bram_bytes = fpga_bram_bytes(op, config)
        if bram_bytes > spec.bram_kb * 1024:
            return INVALID_TIME

        partition = min(max(config.fpga_partition, 1), spec.max_partitions)
        # Partitioning multiplies usable banks with diminishing returns.
        bandwidth = spec.ddr_bandwidth_gbs * 1e9 * (1 + 0.75 * math.log2(partition))
        burst_eff = min(1.0, 0.4 + 0.15 * math.log2(1 + buffer_lines))

        cycles = reduce_total  # one MAC per PE per cycle
        compute_stage = cycles / (spec.mhz * 1e6)
        # Line-buffering ``buffer_lines`` rounds of input amortizes each
        # DDR burst across that many rounds.
        read_stage = read_bytes / (bandwidth * burst_eff) / buffer_lines
        write_stage = num_pe * _DTYPE_BYTES / (spec.ddr_bandwidth_gbs * 1e9)

        # The paper's model: time per round is the longest pipeline stage
        # when all three stages overlap; with fewer stages the unoverlapped
        # parts serialize.  Compute is always charged in full.
        if config.fpga_pipeline >= 3:
            round_time = max(read_stage, compute_stage, write_stage)
        elif config.fpga_pipeline == 2:
            round_time = max(compute_stage, read_stage + write_stage)
        else:
            round_time = compute_stage + read_stage + write_stage

        rounds = math.ceil(op.output.size / num_pe)
        return max(rounds * round_time, 1e-9)
