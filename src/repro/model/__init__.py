"""Simulated heterogeneous hardware: device specs and analytical models."""

from .base import INVALID_TIME, InvalidSchedule, PerformanceModel
from .cpu import CpuModel
from .fpga import FpgaModel
from .gpu import GpuModel
from .resources import FpgaResourceReport, fpga_resource_report, tensorize_rate
from .specs import (
    CpuSpec,
    DEVICES,
    FpgaSpec,
    GpuSpec,
    P100,
    TITAN_X,
    V100,
    VU9P,
    XEON_E5_2699V4,
    target_of,
)


def model_for(spec) -> PerformanceModel:
    """Instantiate the right performance model for a device spec."""
    if isinstance(spec, GpuSpec):
        return GpuModel(spec)
    if isinstance(spec, CpuSpec):
        return CpuModel(spec)
    if isinstance(spec, FpgaSpec):
        return FpgaModel(spec)
    raise TypeError(f"unknown device spec {spec!r}")


__all__ = [
    "CpuModel", "CpuSpec", "DEVICES", "FpgaModel", "FpgaSpec", "GpuModel",
    "FpgaResourceReport", "fpga_resource_report", "GpuSpec", "INVALID_TIME", "InvalidSchedule", "P100", "PerformanceModel",
    "TITAN_X", "V100", "VU9P", "XEON_E5_2699V4", "model_for", "target_of",
    "tensorize_rate",
]
