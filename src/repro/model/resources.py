"""Accelerator resource accounting.

Two concerns live here: FPGA utilization reporting (the summary an HLS
flow prints — the §5.2 model bounds schedules by DSP and BRAM budgets;
:func:`fpga_resource_report` exposes the same accounting as a structured
report so users and the FPGA benchmark can see *why* a configuration is
legal or rejected), and :func:`tensorize_rate`, the shared throughput
multiplier the CPU and GPU models bill for a tensorized schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..codegen import tile_footprint
from ..schedule import Scheduled
from .specs import FpgaSpec


def tensorize_rate(config, spec) -> float:
    """Throughput multiplier of the intrinsic a config tensorizes with.

    Returns 1.0 for untensorized configs.  Lowering raises on any illegal
    tensorization before a model ever sees the schedule, so the rate only
    prices *accepted* matches; GPU intrinsics additionally scale by the
    device's tensor-core rate (mma units run far above the fp32 pipes).
    """
    name = getattr(config, "tensorize", "")
    if not name:
        return 1.0
    from ..analysis.intrin import INTRINSICS

    intrin = INTRINSICS.get(name)
    if intrin is None:
        return 1.0
    rate = intrin.rate
    if intrin.target == "gpu":
        rate *= getattr(spec, "tensor_core_rate", 1.0)
    return rate


@dataclass(frozen=True)
class FpgaResourceReport:
    """Utilization of one scheduled design against the device budget."""

    num_pes: int
    dsps_used: int
    dsps_available: int
    bram_bytes_used: int
    bram_bytes_available: int
    partition_factor: int
    pipeline_stages: int

    @property
    def dsp_utilization(self) -> float:
        """Fraction of the device's DSP slices consumed."""
        return self.dsps_used / self.dsps_available

    @property
    def bram_utilization(self) -> float:
        """Fraction of the device's block RAM consumed."""
        return self.bram_bytes_used / self.bram_bytes_available

    @property
    def fits(self) -> bool:
        """True when the design respects both DSP and BRAM budgets."""
        return self.dsp_utilization <= 1.0 and self.bram_utilization <= 1.0

    def summary(self) -> str:
        """One-line synthesis-report-style utilization summary."""
        return (
            f"PEs={self.num_pes} "
            f"DSP {self.dsps_used}/{self.dsps_available} "
            f"({self.dsp_utilization:.0%}), "
            f"BRAM {self.bram_bytes_used // 1024}KiB/"
            f"{self.bram_bytes_available // 1024}KiB "
            f"({self.bram_utilization:.0%}), "
            f"partition x{self.partition_factor}, "
            f"{self.pipeline_stages}-stage pipeline"
            + ("" if self.fits else "  [OVER BUDGET]")
        )


def fpga_resource_report(scheduled: Scheduled, spec: FpgaSpec) -> FpgaResourceReport:
    """Account the DSP/BRAM usage of an FPGA schedule (§5.2 constraints)."""
    if scheduled.target != "fpga":
        raise ValueError(f"expected an FPGA schedule, got {scheduled.target!r}")
    config = scheduled.config
    op = scheduled.op
    num_pes = scheduled.parallel_extent

    pe_tile: Dict = {}
    for axis, factors in zip(op.axes, config.spatial_factors):
        pe_tile[axis] = factors[1]
    for axis in op.reduce_axes:
        pe_tile[axis] = axis.extent
    buffer_lines = max(config.fpga_buffer_lines, 1)
    bram_bytes = sum(
        tile_footprint(op, tensor, pe_tile) * 4 * buffer_lines
        for tensor in op.input_tensors
    )
    return FpgaResourceReport(
        num_pes=num_pes,
        dsps_used=num_pes * spec.dsps_per_pe,
        dsps_available=spec.num_dsps,
        bram_bytes_used=bram_bytes,
        bram_bytes_available=spec.bram_kb * 1024,
        partition_factor=config.fpga_partition,
        pipeline_stages=config.fpga_pipeline,
    )
