"""Analytical GPU performance model.

Substitutes for real measurement on V100 / P100 / Titan X (see DESIGN.md).
The model charges the two classical terms — compute throughput degraded by
occupancy, warp granularity and instruction-level parallelism, and memory
traffic degraded by coalescing — and takes their max per wave of thread
blocks, plus kernel launch overhead.  All inputs come from the lowered
schedule, so the knobs FlexTensor tunes (tiling, binding, shared-memory
caching, unroll, reorder, vectorize) all move the estimate the way they
move real kernels:

* more threads/blocks -> better latency hiding, until register/shared
  memory pressure throttles occupancy;
* larger register tiles -> more reuse and ILP, until spilling;
* shared-memory caching -> traffic drops by the tile reuse factor, cost is
  occupancy;
* thread binding onto a stride-1 axis -> coalesced loads.
"""

from __future__ import annotations

import math

from ..analysis.lint import (
    gpu_active_blocks,
    gpu_block_tile,
    gpu_register_estimate,
    gpu_smem_bytes,
)
from ..codegen import coalescing_efficiency, flops_of, tensor_reads, tile_footprint
from ..schedule import (
    REORDER_INTERLEAVED,
    REORDER_REDUCE_INNER,
    REORDER_SPATIAL_INNER,
    Scheduled,
    VECTORIZE,
)
from .base import INVALID_TIME, PerformanceModel
from .resources import tensorize_rate
from .specs import GpuSpec

_REORDER_EFFICIENCY = {
    REORDER_REDUCE_INNER: 1.00,   # accumulate in registers, spill never
    REORDER_SPATIAL_INNER: 0.88,  # accumulator re-read every reduce step
    REORDER_INTERLEAVED: 0.96,
}

_DTYPE_BYTES = 4


class GpuModel(PerformanceModel):
    """Time estimator for CUDA-class devices."""

    def __init__(self, spec: GpuSpec):
        super().__init__(spec)

    # -- measurement cost (drives Figures 6d / 7) ------------------------

    def measurement_seconds(self, runtime: float) -> float:
        """Compile + repeated timed runs, the GPU tuning cost per trial."""
        spec = self.spec
        return spec.compile_seconds + spec.run_repeats * max(runtime, 1e-5) + 0.2

    # -- the model --------------------------------------------------------

    def estimate_seconds(self, scheduled: Scheduled) -> float:
        """Predicted kernel seconds under the occupancy/coalescing model."""
        if scheduled.target != "gpu":
            raise ValueError(f"GPU model got a {scheduled.target!r} schedule")
        spec = self.spec
        config = scheduled.config
        op = scheduled.op

        threads_per_block = scheduled.block_threads
        grid = scheduled.grid_size
        if threads_per_block > spec.max_threads_per_block:
            return INVALID_TIME

        # Per-thread register tile: vthread and inner parts of each axis.
        acc_tile = 1
        for factors in config.spatial_factors:
            acc_tile *= factors[1] * factors[3]
        inner_tile = 1
        for factors in config.spatial_factors:
            inner_tile *= factors[3]

        reduce_total = 1
        for axis in op.reduce_axes:
            reduce_total *= axis.extent
        reduce_inner = 1
        for factors in config.reduce_factors:
            reduce_inner *= factors[1]
        reduce_outer_trips = reduce_total // max(reduce_inner, 1)

        # Shared memory: the block's input tiles for one reduce-outer step.
        # Static legality (footprints, register pressure, occupancy) comes
        # from repro.analysis.lint so the linter and this model can never
        # disagree on what is rejected.
        block_tile = gpu_block_tile(op, config)
        smem_bytes = gpu_smem_bytes(op, config, scheduled.cached_tensors)
        if scheduled.cached_tensors and smem_bytes > spec.shared_mem_per_block:
            return INVALID_TIME

        registers = gpu_register_estimate(config)
        spill_penalty = 1.0
        if registers > spec.max_registers_per_thread:
            spill_penalty = registers / spec.max_registers_per_thread

        # Occupancy (the register cap is applied inside gpu_active_blocks).
        active_blocks = gpu_active_blocks(spec, threads_per_block, smem_bytes, registers)
        if active_blocks == 0:
            return INVALID_TIME
        occupancy = active_blocks * threads_per_block / spec.max_threads_per_sm

        # Compute term.
        flops = flops_of(op)
        warp_eff = threads_per_block / (math.ceil(threads_per_block / 32) * 32)
        latency_hiding = min(1.0, math.sqrt(occupancy) * 1.05)
        ilp_bonus = min(1.25, 1.0 + 0.06 * math.log2(1 + inner_tile))
        per_thread_work = acc_tile * reduce_total
        loop_overhead = per_thread_work / (per_thread_work + 12.0)
        unroll_boost = 1.0 + (0.06 if config.unroll_depth else 0.0)
        efficiency = (
            warp_eff
            * min(1.0, latency_hiding * ilp_bonus)
            * loop_overhead
            * unroll_boost
            * _REORDER_EFFICIENCY[config.reorder]
            / spill_penalty
        )
        compute_time = flops / (spec.peak_gflops * 1e9 * max(efficiency, 1e-4))
        # Tensorized inner loops run on the mma units at their own rate.
        compute_time /= tensorize_rate(config, spec)

        # Memory term.
        thread_axis, run_threads = self._fastest_thread_axis(scheduled)
        traffic = 0.0
        if scheduled.cached_tensors:
            for tensor in scheduled.cached_tensors:
                per_step = tile_footprint(op, tensor, block_tile) * _DTYPE_BYTES
                coalesce = coalescing_efficiency(op, tensor, thread_axis, run_threads)
                traffic += grid * per_step * reduce_outer_trips / coalesce
        else:
            reads = tensor_reads(op)
            iteration_total = op.output.size * reduce_total
            l2_catch = 0.2  # implicit cache captures some reuse
            for ref in reads:
                coalesce = coalescing_efficiency(op, ref.tensor, thread_axis, run_threads)
                traffic += iteration_total * _DTYPE_BYTES * l2_catch / coalesce
        store_coalesce = _store_coalescing(op, thread_axis, run_threads)
        store_bytes = op.output.size * _DTYPE_BYTES / store_coalesce
        vector_boost = 1.0
        if any(l.annotation == VECTORIZE and l.extent % 4 == 0 for l in scheduled.loops):
            vector_boost = 1.08  # float4 transactions
        memory_time = (traffic + store_bytes) / (
            spec.bandwidth_gbs * 1e9 * vector_boost
        )

        # Wave quantization: a partial last wave wastes SM compute, so the
        # compute term divides by occupancy of the wave grid.  Memory is
        # different: a modest number of in-flight warps can already stream
        # a large fraction of DRAM bandwidth, so the memory term divides by
        # a gentler request-parallelism factor.
        wave_capacity = active_blocks * spec.num_sms
        waves = math.ceil(grid / wave_capacity)
        tail_eff = grid / (waves * wave_capacity)
        inflight = grid * min(threads_per_block, 128)
        mem_parallel = min(1.0, math.sqrt(inflight / (spec.num_sms * 256.0)))
        kernel_time = max(
            compute_time / max(tail_eff, 1e-3),
            memory_time / max(mem_parallel, 0.02),
        )
        return kernel_time + spec.kernel_launch_us * 1e-6

    def _fastest_thread_axis(self, scheduled: Scheduled):
        """(axis, run length): the original axis whose thread part varies
        fastest inside the fused threadIdx (the last axis with a thread
        factor > 1) and how many consecutive threads walk it."""
        config = scheduled.config
        op = scheduled.op
        fastest, run = None, 1
        for axis, factors in zip(op.axes, config.spatial_factors):
            if factors[2] > 1:
                fastest, run = axis, factors[2]
        return fastest, run


def _store_coalescing(op, thread_axis, run_threads: int) -> float:
    """Warp coalescing of the output writes."""
    from ..codegen import output_write_stride

    floor = 1.0 / 8.0
    if thread_axis is None:
        return floor
    stride = output_write_stride(op, thread_axis)
    if stride == 0:
        return floor  # thread axis is a reduce axis: serialized writes
    return min(1.0, max(floor, run_threads / (8.0 * stride)))
