"""Schedule validation: prove a lowered loop nest is well-formed.

Used by tests and available as a debugging aid when developing new
lowering paths: :func:`validate_schedule` checks structural invariants
and *proves* that the index reconstruction is a bijection — the property
that makes every schedule semantics-preserving.

The proof is symbolic, so it works on iteration spaces of any size
(the paper's GPU spaces run to 10^12 points; the old enumeration check
simply gave up past 200k).  Every index expression our lowering builds is
a **mixed-radix recomposition** of digit atoms::

    axis = d_1 + d_2*r_1 + d_3*r_1*r_2 + ...     (split: (f0*e1 + f1)*e2 ...)
    d    = V | V % m | V // q | (V // q) % m     (fuse recovery digits)

so bijectivity decomposes into three checkable chain conditions:

1. **Per-variable digit partition** — the atoms mentioning one loop
   variable ``V`` (extent ``E``), sorted by divisor, must tile it
   exactly: divisors ``q_1=1, q_{i+1} = q_i * r_i`` and ``q_k * r_k = E``
   (``r_i`` the atom's value range).  Then ``V -> (d_1..d_k)`` is the
   standard mixed-radix digit decomposition — a bijection from ``[0,E)``
   onto the digit box.
2. **Per-axis stride chain** — an axis expression ``sum(c_i * d_i)``
   (zero offset), sorted by coefficient, must satisfy ``c_1 = 1``,
   ``c_{i+1} = c_i * r_i`` and ``c_k * r_k = extent``: the mixed-radix
   *recomposition*, a bijection from the digit box onto ``[0, extent)``.
3. **Exactly-once consumption** — every digit atom appears in exactly
   one axis chain, and every variable's digits are all consumed.

Together: loop space -> digit space is a bijection (1, applied per
variable), digit space -> iteration space is a bijection (2, applied per
axis over disjoint digit sets by 3), and the composition is the index
map — hence a bijection.  Extent-1 loops and range-1 atoms carry no
information (their value is constantly 0) and are dropped on both sides.

Expressions outside this fragment (hand-corrupted maps, exotic future
lowerings) fall back to the old exhaustive enumeration when the space is
small enough to walk; a symbolic *disproof* on a space too large to
enumerate is reported as a validation error directly.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Tuple

from ..ir import Add, Expr, FloorDiv, IntImm, Mod, Mul, Var, evaluate
from .loopnest import Scheduled


class ScheduleValidationError(AssertionError):
    """A lowered schedule violates a well-formedness invariant."""


class _ParseFailure(Exception):
    """An index expression lies outside the linear mixed-radix fragment."""


#: A digit atom in canonical form: (loop var, divisor, value range) —
#: the value ``(var // divisor) % range`` (modulus folded into the range).
_Atom = Tuple[Var, int, int]


def _atom(expr: Expr, extents: Dict[Var, int]) -> _Atom:
    """Canonicalize ``V``, ``V % m``, ``V // q`` or ``(V // q) % m``.

    Raises :class:`_ParseFailure` when ``expr`` has none of these shapes
    or its constants do not divide cleanly (nothing our lowering emits).
    """
    divisor, modulus = 1, None
    base = expr
    if isinstance(base, Mod) and isinstance(base.b, IntImm):
        modulus = base.b.value
        base = base.a
    if isinstance(base, FloorDiv) and isinstance(base.b, IntImm):
        divisor = base.b.value
        base = base.a
    if not isinstance(base, Var):
        raise _ParseFailure(f"not a digit atom: {expr!r}")
    extent = extents.get(base)
    if extent is None:
        raise _ParseFailure(f"unknown loop variable {base.name}")
    if divisor <= 0 or extent % divisor:
        raise _ParseFailure(f"divisor {divisor} does not divide extent {extent}")
    base_range = extent // divisor
    if modulus is None or modulus >= base_range:
        # the modulus (if any) is a no-op on the quotient's range
        return (base, divisor, base_range)
    if modulus <= 0 or base_range % modulus:
        raise _ParseFailure(f"modulus {modulus} does not divide range {base_range}")
    return (base, divisor, modulus)


def _linearize(expr: Expr, extents: Dict[Var, int]) -> Tuple[int, Dict[_Atom, int]]:
    """Flatten ``expr`` to ``const + sum(coeff * atom)`` (atoms merged)."""
    const = 0
    terms: Dict[_Atom, int] = {}

    def walk(node: Expr, scale: int) -> None:
        nonlocal const
        if isinstance(node, IntImm):
            const += scale * node.value
            return
        if isinstance(node, Add):
            walk(node.a, scale)
            walk(node.b, scale)
            return
        if isinstance(node, Mul):
            if isinstance(node.b, IntImm):
                walk(node.a, scale * node.b.value)
                return
            if isinstance(node.a, IntImm):
                walk(node.b, scale * node.a.value)
                return
        atom = _atom(node, extents)
        terms[atom] = terms.get(atom, 0) + scale

    walk(expr, 1)
    return const, terms


def _validate_symbolic(scheduled: Scheduled) -> None:
    """The divisibility/stride bijection proof described in the module
    docstring.  Raises :class:`ScheduleValidationError` on a disproof and
    :class:`_ParseFailure` when an expression is outside the fragment."""
    op = scheduled.op
    extents = {loop.var: loop.extent for loop in scheduled.loops}
    usage: Dict[_Atom, int] = {}
    digits_by_var: Dict[Var, List[_Atom]] = {}

    for axis in op.all_axes:
        const, terms = _linearize(scheduled.index_map[axis], extents)
        if const != 0:
            raise ScheduleValidationError(
                f"axis {axis.name} reconstructs with a nonzero offset {const}"
            )
        live = sorted(
            ((coeff, atom) for atom, coeff in terms.items() if atom[2] > 1 and coeff),
            key=lambda t: t[0],
        )
        stride = 1
        for coeff, atom in live:
            if coeff != stride:
                raise ScheduleValidationError(
                    f"axis {axis.name}: digit stride chain broken — expected "
                    f"coefficient {stride}, found {coeff}"
                )
            stride *= atom[2]
        if stride != axis.extent:
            raise ScheduleValidationError(
                f"axis {axis.name} reconstructs only {stride} of its "
                f"{axis.extent} values — the schedule is not a bijection"
            )
        for _coeff, atom in live:
            usage[atom] = usage.get(atom, 0) + 1
            digits_by_var.setdefault(atom[0], []).append(atom)

    for atom, count in usage.items():
        if count > 1:
            var, divisor, rng = atom
            raise ScheduleValidationError(
                f"digit ({var.name} // {divisor}) % {rng} is consumed by "
                f"{count} axis reconstructions — the schedule is not injective"
            )

    for loop in scheduled.loops:
        if loop.extent == 1:
            continue  # a constant-0 variable carries no information
        chain = sorted(digits_by_var.get(loop.var, []), key=lambda a: a[1])
        position = 1
        for _var, divisor, rng in chain:
            if divisor != position:
                raise ScheduleValidationError(
                    f"loop {loop.var.name}: digits {'overlap' if divisor < position else 'leave a gap'} "
                    f"at divisor {divisor} (expected {position})"
                )
            position = divisor * rng
        if position != loop.extent:
            raise ScheduleValidationError(
                f"loop {loop.var.name}: only {position} of {loop.extent} "
                f"values are consumed — the schedule is not injective"
            )


def _validate_by_enumeration(scheduled: Scheduled, iteration_space: int) -> None:
    """Ground truth for small spaces: walk all loops, check every original
    iteration point is reconstructed exactly once."""
    op = scheduled.op
    axes = list(op.all_axes)
    ranges = [range(loop.extent) for loop in scheduled.loops]
    loop_vars = [loop.var for loop in scheduled.loops]
    seen = set()
    for point in itertools.product(*ranges):
        env = dict(zip(loop_vars, point))
        coords = []
        for axis in axes:
            value = evaluate(scheduled.index_map[axis], env)
            if not 0 <= value < axis.extent:
                raise ScheduleValidationError(
                    f"axis {axis.name} reconstructed out of range: {value} "
                    f"not in [0, {axis.extent})"
                )
            coords.append(value)
        coords = tuple(coords)
        if coords in seen:
            raise ScheduleValidationError(
                f"iteration point {coords} visited twice — the schedule "
                "is not a bijection"
            )
        seen.add(coords)
    if len(seen) != iteration_space:
        raise ScheduleValidationError(
            f"only {len(seen)} of {iteration_space} iteration points covered"
        )


def validate_schedule(scheduled: Scheduled, max_enumeration: int = 200_000) -> None:
    """Raise :class:`ScheduleValidationError` on any violated invariant.

    Checks:

    1. the loop-extent product equals the op's iteration-space size;
    2. every original axis has an index expression over the loop vars;
    3. walking all loops reconstructs every original iteration point
       exactly once — split/fuse/reorder compose to a bijection.  Proven
       symbolically (any space size) via the mixed-radix digit argument;
       expressions outside the symbolic fragment fall back to exhaustive
       enumeration when the space has at most ``max_enumeration`` points.
    """
    op = scheduled.op
    iteration_space = 1
    for axis in op.all_axes:
        iteration_space *= axis.extent
    loop_product = scheduled.iteration_count
    if loop_product != iteration_space:
        raise ScheduleValidationError(
            f"loop nest iterates {loop_product} points, op has {iteration_space}"
        )

    missing = [a.name for a in op.all_axes if a not in scheduled.index_map]
    if missing:
        raise ScheduleValidationError(f"axes without index expressions: {missing}")

    try:
        _validate_symbolic(scheduled)
        return  # proven, at any scale
    except _ParseFailure:
        disproof = None  # unrecognized shape: the proof says nothing either way
    except ScheduleValidationError as error:
        disproof = error
    if iteration_space <= max_enumeration:
        # Enumeration is ground truth: it settles both unparsed
        # expressions and symbolic disproofs (which, for expressions in
        # the fragment, it always confirms).
        _validate_by_enumeration(scheduled, iteration_space)
        return
    if disproof is not None:
        raise disproof
    # Unparseable and too large to enumerate: structural checks only
    # (the pre-symbolic behaviour for every space this large).


def quick_report(scheduled: Scheduled) -> List[str]:
    """Human-readable invariant summary (all lines prefixed ok/FAIL)."""
    lines = []
    try:
        validate_schedule(scheduled)
        lines.append("ok: loop nest is a verified bijection over the iteration space")
    except ScheduleValidationError as error:
        lines.append(f"FAIL: {error}")
    lines.append(
        f"ok: {len(scheduled.loops)} loops, grid={scheduled.grid_size}, "
        f"threads={scheduled.block_threads}, parallel={scheduled.parallel_extent}"
    )
    return lines
