"""Schedule validation: prove a lowered loop nest is well-formed.

Used by tests and available as a debugging aid when developing new
lowering paths: :func:`validate_schedule` checks structural invariants
and, for small iteration spaces, *proves* the index reconstruction is a
bijection by enumeration — the property that makes every schedule
semantics-preserving.
"""

from __future__ import annotations

import itertools
from typing import List

from ..ir import evaluate
from .loopnest import Scheduled


class ScheduleValidationError(AssertionError):
    """A lowered schedule violates a well-formedness invariant."""


def validate_schedule(scheduled: Scheduled, max_enumeration: int = 200_000) -> None:
    """Raise :class:`ScheduleValidationError` on any violated invariant.

    Checks:

    1. the loop-extent product equals the op's iteration-space size;
    2. every original axis has an index expression over the loop vars;
    3. (if the space is small enough) walking all loops reconstructs every
       original iteration point exactly once — split/fuse/reorder compose
       to a bijection.
    """
    op = scheduled.op
    iteration_space = 1
    for axis in op.all_axes:
        iteration_space *= axis.extent
    loop_product = scheduled.iteration_count
    if loop_product != iteration_space:
        raise ScheduleValidationError(
            f"loop nest iterates {loop_product} points, op has {iteration_space}"
        )

    missing = [a.name for a in op.all_axes if a not in scheduled.index_map]
    if missing:
        raise ScheduleValidationError(f"axes without index expressions: {missing}")

    if iteration_space > max_enumeration:
        return  # structural checks only; enumeration would be too slow

    axes = list(op.all_axes)
    ranges = [range(loop.extent) for loop in scheduled.loops]
    loop_vars = [loop.var for loop in scheduled.loops]
    seen = set()
    for point in itertools.product(*ranges):
        env = dict(zip(loop_vars, point))
        coords = []
        for axis in axes:
            value = evaluate(scheduled.index_map[axis], env)
            if not 0 <= value < axis.extent:
                raise ScheduleValidationError(
                    f"axis {axis.name} reconstructed out of range: {value} "
                    f"not in [0, {axis.extent})"
                )
            coords.append(value)
        coords = tuple(coords)
        if coords in seen:
            raise ScheduleValidationError(
                f"iteration point {coords} visited twice — the schedule "
                "is not a bijection"
            )
        seen.add(coords)
    if len(seen) != iteration_space:
        raise ScheduleValidationError(
            f"only {len(seen)} of {iteration_space} iteration points covered"
        )


def quick_report(scheduled: Scheduled) -> List[str]:
    """Human-readable invariant summary (all lines prefixed ok/FAIL)."""
    lines = []
    try:
        validate_schedule(scheduled)
        lines.append("ok: loop nest is a verified bijection over the iteration space")
    except ScheduleValidationError as error:
        lines.append(f"FAIL: {error}")
    lines.append(
        f"ok: {len(scheduled.loops)} loops, grid={scheduled.grid_size}, "
        f"threads={scheduled.block_threads}, parallel={scheduled.parallel_extent}"
    )
    return lines
