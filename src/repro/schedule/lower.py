"""Lowering schedule configurations to loop nests (§5.3, Figure 4).

One lowering function per target, mirroring the paper's hardware-specific
schedule generation:

* **CPU** (Fig. 4a) — multi-level tiling (3-part splits), dynamic fusion of
  outer loops into one parallel hyper-loop, reorder, unroll, vectorize the
  innermost loop.
* **GPU** (Fig. 4b) — 4-part splits (block / vthread / thread / register
  tile), bind fused outer parts to ``blockIdx`` and fused thread parts to
  ``threadIdx``, shared-memory caching of inputs, register tile for
  results, unroll + reorder of inner loops.
* **FPGA** (Fig. 4c) — PE-parallel decomposition feeding a three-stage
  read / compute / write pipeline with input line-buffering and memory
  partitioning (these affect the analytical model; the loop nest itself
  stays a PE-parallel tiling).

Helper nodes (padding / expansion) are inlined per the graph config, the
paper's pre-determined decision for data-rearrangement nodes.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..graph import MiniGraph, get_graph
from ..ir import ComputeOp, Expr, IterVar, Var
from .config import (
    GraphConfig,
    NodeConfig,
    REORDER_INTERLEAVED,
    REORDER_REDUCE_INNER,
    REORDER_SPATIAL_INNER,
)
from .loopnest import (
    BLOCK_X,
    LoopDef,
    PARALLEL,
    PE_PARALLEL,
    SERIAL,
    Scheduled,
    THREAD_X,
    UNROLL,
    VECTORIZE,
    VTHREAD,
    fuse_loops,
    split_axis,
    substitute_vars,
)

GPU_SPATIAL_PARTS = 4
GPU_REDUCE_PARTS = 2
CPU_SPATIAL_PARTS = 3
CPU_REDUCE_PARTS = 2
FPGA_SPATIAL_PARTS = 2

TARGETS = ("gpu", "cpu", "fpga")


class LoweringError(ValueError):
    """Raised when a configuration cannot be lowered for a target."""


def lower(
    output,
    config: NodeConfig,
    target: str,
    graph_config: Optional[GraphConfig] = None,
) -> Scheduled:
    """Lower the main node of ``output``'s graph under ``config``.

    ``output`` may be a tensor or a :class:`MiniGraph`.  Helper compute
    nodes are inlined according to ``graph_config`` (all inlined by
    default).
    """
    from ..ir import Reduce

    graph = output if isinstance(output, MiniGraph) else get_graph(output)
    graph_config = graph_config or GraphConfig()
    main = graph.main_op
    inlined = tuple(
        op
        for op in graph.compute_ops
        if op is not main
        and graph_config.should_inline(op.name)
        and not isinstance(op.body, Reduce)  # reductions cannot be inlined
    )
    if target == "gpu":
        scheduled = _lower_gpu(main, config)
    elif target == "cpu":
        scheduled = _lower_cpu(main, config)
    elif target == "fpga":
        scheduled = _lower_fpga(main, config)
    else:
        raise LoweringError(f"unknown target {target!r}; expected one of {TARGETS}")
    scheduled.inlined = inlined
    for op in inlined:
        scheduled.primitives.append(f"inline {op.name}")
    # Clean up the mechanically built index reconstructions so generated
    # code and interpretation avoid no-op arithmetic.
    from ..ir import simplify

    scheduled.index_map = {
        axis: simplify(expr) for axis, expr in scheduled.index_map.items()
    }
    return scheduled


def _check_parts(config: NodeConfig, op: ComputeOp, spatial: int, reduce_: int) -> None:
    if len(config.spatial_factors) != len(op.axes):
        raise LoweringError(
            f"config has {len(config.spatial_factors)} spatial splits, "
            f"op {op.name} has {len(op.axes)} spatial axes"
        )
    if len(config.reduce_factors) != len(op.reduce_axes):
        raise LoweringError(
            f"config has {len(config.reduce_factors)} reduce splits, "
            f"op {op.name} has {len(op.reduce_axes)} reduce axes"
        )
    for factors in config.spatial_factors:
        if len(factors) != spatial:
            raise LoweringError(f"expected {spatial}-part spatial splits, got {factors}")
    for factors in config.reduce_factors:
        if len(factors) != reduce_:
            raise LoweringError(f"expected {reduce_}-part reduce splits, got {factors}")


def _split_all(
    axes: Sequence[IterVar], factor_lists, kind: str, primitives: List[str]
) -> Tuple[List[List[LoopDef]], Dict[IterVar, Expr]]:
    loops_per_axis: List[List[LoopDef]] = []
    index_map: Dict[IterVar, Expr] = {}
    for idx, (axis, factors) in enumerate(zip(axes, factor_lists)):
        loops, index = split_axis(axis, factors, kind, idx)
        loops_per_axis.append(loops)
        index_map[axis] = index
        primitives.append(f"split {axis.name}({axis.extent}) -> {tuple(factors)}")
    return loops_per_axis, index_map


def _apply_recovery(index_map: Dict[IterVar, Expr], recovery: Dict[Var, Expr]) -> None:
    for axis, expr in index_map.items():
        index_map[axis] = substitute_vars(expr, recovery)


def _mark_unroll(loops: List[LoopDef], unroll_depth: int) -> None:
    """Annotate innermost serial loops whose combined body fits the unroll
    budget, emulating TVM's ``auto_unroll_max_step`` pragma."""
    if unroll_depth <= 0:
        return
    budget = unroll_depth
    for loop in reversed(loops):
        if loop.annotation != SERIAL:
            continue
        if loop.extent <= budget:
            loop.annotation = UNROLL
            budget //= loop.extent
        else:
            break


def _order_inner(
    reorder: int,
    reduce_outer: List[LoopDef],
    spatial_inner: List[LoopDef],
    reduce_inner: List[LoopDef],
) -> List[LoopDef]:
    """Arrange the per-thread (or per-core) tile loops per the reorder knob."""
    if reorder == REORDER_REDUCE_INNER:
        return reduce_outer + spatial_inner + reduce_inner
    if reorder == REORDER_SPATIAL_INNER:
        return reduce_outer + reduce_inner + spatial_inner
    if reorder == REORDER_INTERLEAVED:
        if spatial_inner:
            return (
                reduce_outer
                + spatial_inner[:-1]
                + reduce_inner
                + [spatial_inner[-1]]
            )
        return reduce_outer + reduce_inner
    raise LoweringError(f"unknown reorder choice {reorder}")


def _lower_gpu(op: ComputeOp, config: NodeConfig) -> Scheduled:
    _check_parts(config, op, GPU_SPATIAL_PARTS, GPU_REDUCE_PARTS)
    primitives: List[str] = []
    spatial_loops, index_map = _split_all(op.axes, config.spatial_factors, "spatial", primitives)
    reduce_loops, reduce_index = _split_all(op.reduce_axes, config.reduce_factors, "reduce", primitives)
    index_map.update(reduce_index)

    block_parts = [loops[0] for loops in spatial_loops]
    vthread_parts = [loops[1] for loops in spatial_loops]
    thread_parts = [loops[2] for loops in spatial_loops]
    inner_parts = [loops[3] for loops in spatial_loops]

    block_loop, recovery = fuse_loops(block_parts, f"{op.name}.blockIdx")
    block_loop.annotation = BLOCK_X
    _apply_recovery(index_map, recovery)
    primitives.append(
        "fuse " + ", ".join(l.var.name for l in block_parts) + " -> blockIdx.x"
    )
    primitives.append("bind blockIdx.x")

    thread_loop, recovery = fuse_loops(thread_parts, f"{op.name}.threadIdx")
    thread_loop.annotation = THREAD_X
    _apply_recovery(index_map, recovery)
    primitives.append(
        "fuse " + ", ".join(l.var.name for l in thread_parts) + " -> threadIdx.x"
    )
    primitives.append("bind threadIdx.x")

    for loop in vthread_parts:
        loop.annotation = VTHREAD

    reduce_outer = [loops[0] for loops in reduce_loops]
    reduce_inner = [loops[1] for loops in reduce_loops]
    inner = _order_inner(config.reorder, reduce_outer, inner_parts, reduce_inner)
    primitives.append(f"reorder choice {config.reorder}")

    loops = [block_loop, thread_loop] + vthread_parts + inner
    if config.vectorize and inner and loops[-1].role[0] == "spatial":
        loops[-1].annotation = VECTORIZE
        primitives.append(f"vectorize {loops[-1].var.name}")
    _mark_unroll(loops, config.unroll_depth)
    if config.unroll_depth:
        primitives.append(f"unroll depth {config.unroll_depth}")

    cached = op.input_tensors if config.use_shared else ()
    for tensor in cached:
        primitives.append(f"cache {tensor.name} in shared memory")

    return Scheduled(
        op=op,
        target="gpu",
        loops=loops,
        index_map=index_map,
        cached_tensors=tuple(cached),
        primitives=primitives,
        config=config,
    )


def _lower_cpu(op: ComputeOp, config: NodeConfig) -> Scheduled:
    _check_parts(config, op, CPU_SPATIAL_PARTS, CPU_REDUCE_PARTS)
    if config.fuse_levels > len(op.axes):
        raise LoweringError(
            f"fuse_levels {config.fuse_levels} exceeds spatial axes {len(op.axes)}"
        )
    primitives: List[str] = []
    spatial_loops, index_map = _split_all(op.axes, config.spatial_factors, "spatial", primitives)
    reduce_loops, reduce_index = _split_all(op.reduce_axes, config.reduce_factors, "reduce", primitives)
    index_map.update(reduce_index)

    outer_parts = [loops[0] for loops in spatial_loops]
    middle_parts = [loops[1] for loops in spatial_loops]
    inner_parts = [loops[2] for loops in spatial_loops]

    fused_outer, recovery = fuse_loops(outer_parts[: config.fuse_levels], f"{op.name}.parallel")
    fused_outer.annotation = PARALLEL
    _apply_recovery(index_map, recovery)
    primitives.append(
        "fuse "
        + ", ".join(l.var.name for l in outer_parts[: config.fuse_levels])
        + " -> outer"
    )
    primitives.append("parallel outer")

    remaining_outer = outer_parts[config.fuse_levels :]
    reduce_outer = [loops[0] for loops in reduce_loops]
    reduce_inner = [loops[1] for loops in reduce_loops]
    inner = _order_inner(config.reorder, reduce_outer, inner_parts, reduce_inner)
    primitives.append(f"reorder choice {config.reorder}")

    loops = [fused_outer] + remaining_outer + middle_parts + inner
    if config.vectorize and len(loops) > 1:
        loops[-1].annotation = VECTORIZE
        primitives.append(f"vectorize {loops[-1].var.name}")
    _mark_unroll(loops, config.unroll_depth)
    if config.unroll_depth:
        primitives.append(f"unroll depth {config.unroll_depth}")

    return Scheduled(
        op=op,
        target="cpu",
        loops=loops,
        index_map=index_map,
        primitives=primitives,
        config=config,
    )


def _lower_fpga(op: ComputeOp, config: NodeConfig) -> Scheduled:
    _check_parts(config, op, FPGA_SPATIAL_PARTS, 1)
    primitives: List[str] = []
    spatial_loops, index_map = _split_all(op.axes, config.spatial_factors, "spatial", primitives)
    reduce_loops, reduce_index = _split_all(
        op.reduce_axes, config.reduce_factors, "reduce", primitives
    )
    index_map.update(reduce_index)

    outer_parts = [loops[0] for loops in spatial_loops]
    pe_parts = [loops[1] for loops in spatial_loops]
    pe_loop, recovery = fuse_loops(pe_parts, f"{op.name}.pe")
    pe_loop.annotation = PE_PARALLEL
    _apply_recovery(index_map, recovery)
    primitives.append("fuse " + ", ".join(l.var.name for l in pe_parts) + " -> PE")
    primitives.append(f"pipeline stages {config.fpga_pipeline}")
    primitives.append(f"partition factor {config.fpga_partition}")
    primitives.append(f"buffer {config.fpga_buffer_lines} input lines")

    reduce_flat = [loops[0] for loops in reduce_loops]
    loops = outer_parts + [pe_loop] + reduce_flat
    _mark_unroll(loops, config.unroll_depth)

    return Scheduled(
        op=op,
        target="fpga",
        loops=loops,
        index_map=index_map,
        cached_tensors=tuple(op.input_tensors),  # BRAM line buffers
        primitives=primitives,
        config=config,
    )
