"""Lowering schedule configurations to loop nests (§5.3, Figure 4).

One lowering function per target, mirroring the paper's hardware-specific
schedule generation:

* **CPU** (Fig. 4a) — multi-level tiling (3-part splits), dynamic fusion of
  outer loops into one parallel hyper-loop, reorder, unroll, vectorize the
  innermost loop.
* **GPU** (Fig. 4b) — 4-part splits (block / vthread / thread / register
  tile), bind fused outer parts to ``blockIdx`` and fused thread parts to
  ``threadIdx``, shared-memory caching of inputs, register tile for
  results, unroll + reorder of inner loops.
* **FPGA** (Fig. 4c) — PE-parallel decomposition feeding a three-stage
  read / compute / write pipeline with input line-buffering and memory
  partitioning (these affect the analytical model; the loop nest itself
  stays a PE-parallel tiling).

Helper nodes (padding / expansion) are inlined per the graph config, the
paper's pre-determined decision for data-rearrangement nodes.
"""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Mapping, MutableMapping
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..graph import MiniGraph, get_graph
from ..ir import ComputeOp, Expr, IterVar, Var
from .config import (
    GraphConfig,
    NodeConfig,
    REORDER_INTERLEAVED,
    REORDER_REDUCE_INNER,
    REORDER_SPATIAL_INNER,
)
from .loopnest import (
    BLOCK_X,
    LoopDef,
    PARALLEL,
    PE_PARALLEL,
    SERIAL,
    Scheduled,
    TENSORIZE,
    THREAD_X,
    UNROLL,
    VECTORIZE,
    VTHREAD,
    substitute_vars,
)

GPU_SPATIAL_PARTS = 4
GPU_REDUCE_PARTS = 2
CPU_SPATIAL_PARTS = 3
CPU_REDUCE_PARTS = 2
FPGA_SPATIAL_PARTS = 2

TARGETS = ("gpu", "cpu", "fpga")


class LoweringError(ValueError):
    """Raised when a configuration cannot be lowered for a target."""


class LazyIndexMap(Mapping):
    """Index map whose expression construction, fuse-recovery substitution
    and simplification are all deferred to the first value read.

    The axis -> expression reconstruction is the most expensive part of
    lowering (building the split re-composition expressions, tree-walking
    ``substitute_vars`` per fused loop, then ``simplify``), yet the
    performance models never read it — only code generation,
    interpretation and schedule validation do.  The structural phase
    therefore records only *recipes*: per axis the ``(var, extent)``
    chain of its split loops, plus per fused loop the ``(fused_var,
    parts)`` pair.  Keys are known up front (the op's axes), so
    membership checks and ``len`` are free; the first
    ``[]``/``items()``/``values()`` builds the expressions exactly as the
    eager path would (same construction order, same substitution order,
    same ``simplify`` pass) and caches them for every subsequent read.
    Instances are immutable and shared across all :class:`Scheduled`
    objects built from one structure, so each unique loop structure pays
    for reconstruction at most once per process.
    """

    __slots__ = ("_split_specs", "_fuse_specs", "_final")

    def __init__(self, split_specs, fuse_specs):
        # axis -> ((var, extent), ...) outermost-first split chain
        self._split_specs = split_specs
        # ((fused_var, ((var, extent), ...)), ...) in application order
        self._fuse_specs = fuse_specs
        self._final: Optional[Dict[IterVar, Expr]] = None

    def _materialize(self) -> Dict[IterVar, Expr]:
        final = self._final
        if final is None:
            from ..ir import simplify

            recoveries = []
            for fused_var, parts in self._fuse_specs:
                total = 1
                for _, extent in parts:
                    total *= extent
                recovery: Dict[Var, Expr] = {}
                trailing = total
                for var, extent in parts:
                    trailing //= extent
                    recovery[var] = (
                        (fused_var // trailing) % extent
                        if trailing > 1
                        else fused_var % extent
                    )
                recoveries.append(recovery)
            final = {}
            for axis, parts in self._split_specs.items():
                expr: Expr = parts[0][0]
                for var, extent in parts[1:]:
                    expr = expr * extent + var
                for recovery in recoveries:
                    expr = substitute_vars(expr, recovery)
                final[axis] = simplify(expr)
            self._final = final
        return final

    def __getitem__(self, axis: IterVar) -> Expr:
        return self._materialize()[axis]

    def __iter__(self):
        return iter(self._split_specs)

    def __len__(self) -> int:
        return len(self._split_specs)

    def __contains__(self, axis) -> bool:
        return axis in self._split_specs

    def view(self) -> "IndexMapView":
        return IndexMapView(self)


_DELETED = object()


class IndexMapView(MutableMapping):
    """Per-:class:`Scheduled` copy-on-write facade over a shared
    :class:`LazyIndexMap`.

    The lazy map (and its memoized expressions) is shared by every
    ``Scheduled`` built from one cached structure, so it must never be
    written.  Callers that patch an index map — validation tests corrupt
    entries on purpose — get their writes stored in a private overlay,
    leaving the shared map and every sibling schedule untouched.
    """

    __slots__ = ("_base", "_overrides")

    def __init__(self, base: Mapping):
        self._base = base
        self._overrides: Optional[Dict] = None

    def __getitem__(self, axis):
        if self._overrides is not None:
            value = self._overrides.get(axis, _DELETED)
            if value is not _DELETED:
                return value
            if axis in self._overrides:
                raise KeyError(axis)
        return self._base[axis]

    def __setitem__(self, axis, expr) -> None:
        if self._overrides is None:
            self._overrides = {}
        self._overrides[axis] = expr

    def __delitem__(self, axis) -> None:
        if axis not in self:
            raise KeyError(axis)
        if self._overrides is None:
            self._overrides = {}
        self._overrides[axis] = _DELETED

    def __contains__(self, axis) -> bool:
        # Delegates to the lazy map's key set — must NOT go through
        # __getitem__ (the MutableMapping default), which would force
        # expression materialization just to answer membership.
        if self._overrides is not None and axis in self._overrides:
            return self._overrides[axis] is not _DELETED
        return axis in self._base

    def __iter__(self):
        overrides = self._overrides or {}
        for axis in self._base:
            if overrides.get(axis, None) is not _DELETED:
                yield axis
        for axis in overrides:
            if axis not in self._base and overrides[axis] is not _DELETED:
                yield axis

    def __len__(self) -> int:
        return sum(1 for _ in self)


@dataclass(frozen=True)
class LoweredStructure:
    """The reusable (annotation-independent) half of a lowered schedule.

    Lowering splits into two phases: the *structural* phase — axis
    splits, loop fusion, reorder, index-expression reconstruction, which
    depends only on :func:`structural_key` — and the cheap *annotation*
    phase (vectorize / unroll marking, cache declarations, config-valued
    primitives).  Two configs sharing a structural key share one
    ``LoweredStructure``; each gets fresh :class:`LoopDef` objects
    (annotations are mutated in place) while the ``Var`` objects and the
    (lazy, materialize-once) index map are shared.
    """

    loop_specs: Tuple[Tuple[Var, int, Tuple, str], ...]
    index_map: LazyIndexMap                  # shared across Scheduled uses
    primitives: Tuple[str, ...]              # structural trace prefix
    has_inner: bool                          # GPU: inner tile loops exist


def structural_key(config: NodeConfig, target: str) -> Tuple:
    """Hashable identity of the structural phase of lowering ``config``.

    Annotation knobs (unroll / vectorize / shared, FPGA pipeline /
    partition / buffer) are deliberately excluded: points differing only
    in them lower to the same loop nest and index map.
    """
    if target == "gpu":
        return (
            "gpu", config.spatial_factors, config.reduce_factors, config.reorder,
        )
    if target == "cpu":
        return (
            "cpu", config.spatial_factors, config.reduce_factors,
            config.reorder, config.fuse_levels,
        )
    if target == "fpga":
        return ("fpga", config.spatial_factors, config.reduce_factors)
    raise LoweringError(f"unknown target {target!r}; expected one of {TARGETS}")


class LoweringMemo:
    """Bounded LRU of :class:`LoweredStructure` keyed by structural key.

    One memo per evaluator (op, target and graph config are fixed
    there), so the key does not need to repeat them.  Configurations
    that fail to lower are never cached — they re-raise on every
    attempt, exactly like the unmemoized path.
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = max(1, int(capacity))
        self._entries: "OrderedDict[Tuple, LoweredStructure]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple) -> Optional[LoweredStructure]:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
        else:
            self.misses += 1
        return entry

    def put(self, key: Tuple, structure: LoweredStructure) -> None:
        self._entries[key] = structure
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self._entries),
        }


def lower(
    output,
    config: NodeConfig,
    target: str,
    graph_config: Optional[GraphConfig] = None,
    memo: Optional[LoweringMemo] = None,
) -> Scheduled:
    """Lower the main node of ``output``'s graph under ``config``.

    ``output`` may be a tensor or a :class:`MiniGraph`.  Helper compute
    nodes are inlined according to ``graph_config`` (all inlined by
    default).  With a ``memo``, the structural phase (splits, fusion,
    reorder, index simplification) is reused across configs that differ
    only in annotation knobs; the result is bit-identical to the
    unmemoized path (pinned by ``tests/test_hotpath_parity.py``).
    """
    from ..ir import Reduce

    graph = output if isinstance(output, MiniGraph) else get_graph(output)
    graph_config = graph_config or GraphConfig()
    main = graph.main_op
    inlined = tuple(
        op
        for op in graph.compute_ops
        if op is not main
        and graph_config.should_inline(op.name)
        and not isinstance(op.body, Reduce)  # reductions cannot be inlined
    )
    structure = None
    if memo is not None:
        structure = memo.get(structural_key(config, target))
    if structure is None:
        structure = _structural_lower(main, config, target)
        if memo is not None:
            memo.put(structural_key(config, target), structure)
    scheduled = _annotate(main, structure, config, target)
    scheduled.inlined = inlined
    for op in inlined:
        scheduled.primitives.append(f"inline {op.name}")
    return scheduled


def _structural_lower(op: ComputeOp, config: NodeConfig, target: str) -> LoweredStructure:
    """Run the expensive half of lowering and freeze it for reuse."""
    if target == "gpu":
        loops, raw, recoveries, primitives, has_inner = _structural_gpu(op, config)
    elif target == "cpu":
        loops, raw, recoveries, primitives = _structural_cpu(op, config)
        has_inner = len(loops) > 1
    elif target == "fpga":
        loops, raw, recoveries, primitives = _structural_fpga(op, config)
        has_inner = False
    else:
        raise LoweringError(f"unknown target {target!r}; expected one of {TARGETS}")
    # Fuse-recovery substitution and simplification (the cleanup that
    # lets generated code and interpretation avoid no-op arithmetic) are
    # deferred: the performance models never read the index map, so
    # model-driven tuning skips that cost entirely.
    index_map = LazyIndexMap(raw, recoveries)
    return LoweredStructure(
        loop_specs=tuple(
            (loop.var, loop.extent, loop.role, loop.annotation) for loop in loops
        ),
        index_map=index_map,
        primitives=tuple(primitives),
        has_inner=has_inner,
    )


def _annotate(
    op: ComputeOp, structure: LoweredStructure, config: NodeConfig, target: str
) -> Scheduled:
    """Apply the cheap, annotation-knob-dependent tail of lowering to a
    fresh clone of the structural loop nest."""
    loops = [
        LoopDef(var, extent, role, annotation)
        for var, extent, role, annotation in structure.loop_specs
    ]
    primitives = list(structure.primitives)
    cached: Tuple = ()
    tensorized = _apply_tensorize(op, loops, config, target, primitives)
    if target == "gpu":
        if (
            not tensorized
            and config.vectorize
            and structure.has_inner
            and loops[-1].role[0] == "spatial"
        ):
            loops[-1].annotation = VECTORIZE
            primitives.append(f"vectorize {loops[-1].var.name}")
        _mark_unroll(loops, config.unroll_depth)
        if config.unroll_depth:
            primitives.append(f"unroll depth {config.unroll_depth}")
        cached = op.input_tensors if config.use_shared else ()
        for tensor in cached:
            primitives.append(f"cache {tensor.name} in shared memory")
    elif target == "cpu":
        if not tensorized and config.vectorize and len(loops) > 1:
            loops[-1].annotation = VECTORIZE
            primitives.append(f"vectorize {loops[-1].var.name}")
        _mark_unroll(loops, config.unroll_depth)
        if config.unroll_depth:
            primitives.append(f"unroll depth {config.unroll_depth}")
    else:  # fpga
        primitives.append(f"pipeline stages {config.fpga_pipeline}")
        primitives.append(f"partition factor {config.fpga_partition}")
        primitives.append(f"buffer {config.fpga_buffer_lines} input lines")
        _mark_unroll(loops, config.unroll_depth)
        cached = tuple(op.input_tensors)  # BRAM line buffers
    return Scheduled(
        op=op,
        target=target,
        loops=loops,
        index_map=structure.index_map.view(),
        cached_tensors=tuple(cached),
        primitives=primitives,
        config=config,
    )


def _apply_tensorize(
    op: ComputeOp,
    loops: List[LoopDef],
    config: NodeConfig,
    target: str,
    primitives: List[str],
) -> bool:
    """Apply the ``tensorize`` knob: mark the intrinsic's covered loops.

    Legality comes from :func:`repro.analysis.match.tensorize_rejections`
    — the same oracle the TEN lint rules report — so a lint error is a
    proof this raises, and vice versa.  The covered loops stay in the nest
    (the interpreter executes them as one batched intrinsic call with an
    ordered accumulate, so numerics are bit-identical to the scalar nest)
    but are annotated ``TENSORIZE``: vectorize is subsumed and the models
    bill the compute term at the intrinsic's accelerator rate.  Purely an
    annotation, so the structural memo key is untouched.
    """
    if not getattr(config, "tensorize", ""):
        return False
    from ..analysis.match import covered_inner_roles, tensorize_rejections

    rejections = tensorize_rejections(op, config, target)
    if rejections:
        raise LoweringError(
            "illegal tensorize: "
            + "; ".join(f"{rule}: {message}" for rule, message, _hint in rejections)
        )
    covered = set(covered_inner_roles(op, config.tensorize, target))
    marked = []
    for loop in loops:
        if loop.role in covered:
            loop.annotation = TENSORIZE
            marked.append(loop.var.name)
    primitives.append(f"tensorize {config.tensorize} over " + ", ".join(marked))
    return True


def _check_parts(config: NodeConfig, op: ComputeOp, spatial: int, reduce_: int) -> None:
    if len(config.spatial_factors) != len(op.axes):
        raise LoweringError(
            f"config has {len(config.spatial_factors)} spatial splits, "
            f"op {op.name} has {len(op.axes)} spatial axes"
        )
    if len(config.reduce_factors) != len(op.reduce_axes):
        raise LoweringError(
            f"config has {len(config.reduce_factors)} reduce splits, "
            f"op {op.name} has {len(op.reduce_axes)} reduce axes"
        )
    for factors in config.spatial_factors:
        if len(factors) != spatial:
            raise LoweringError(f"expected {spatial}-part spatial splits, got {factors}")
    for factors in config.reduce_factors:
        if len(factors) != reduce_:
            raise LoweringError(f"expected {reduce_}-part reduce splits, got {factors}")


def _split_all(
    axes: Sequence[IterVar], factor_lists, kind: str, primitives: List[str]
) -> Tuple[List[List[LoopDef]], Dict[IterVar, Tuple]]:
    """Split every axis, recording index-map *recipes* instead of exprs.

    Validation and loop construction match :func:`split_axis` exactly;
    the index re-composition expression is deferred to
    :class:`LazyIndexMap` (the models never read it).
    """
    loops_per_axis: List[List[LoopDef]] = []
    split_specs: Dict[IterVar, Tuple] = {}
    for idx, (axis, factors) in enumerate(zip(axes, factor_lists)):
        product = 1
        for f in factors:
            product *= f
        if product != axis.extent:
            raise ValueError(
                f"split factors {tuple(factors)} do not multiply to extent "
                f"{axis.extent} of {axis.name}"
            )
        loops = [
            LoopDef(Var(f"{axis.name}.{part}"), factor, (kind, idx, part))
            for part, factor in enumerate(factors)
        ]
        loops_per_axis.append(loops)
        split_specs[axis] = tuple((loop.var, loop.extent) for loop in loops)
        primitives.append(f"split {axis.name}({axis.extent}) -> {tuple(factors)}")
    return loops_per_axis, split_specs


def _fuse_structural(loops: Sequence[LoopDef], name: str) -> Tuple[LoopDef, Tuple]:
    """Fuse adjacent loops, deferring the div/mod recovery expressions.

    The fused :class:`LoopDef` matches :func:`fuse_loops` exactly; the
    recovery recipe is handed to :class:`LazyIndexMap`, which builds the
    same ``(fused // trailing) % extent`` expressions on first read.
    """
    if not loops:
        raise ValueError("cannot fuse zero loops")
    total = 1
    for loop in loops:
        total *= loop.extent
    fused = LoopDef(Var(name), total, tuple(l.role for l in loops))
    return fused, (fused.var, tuple((l.var, l.extent) for l in loops))


def _mark_unroll(loops: List[LoopDef], unroll_depth: int) -> None:
    """Annotate innermost serial loops whose combined body fits the unroll
    budget, emulating TVM's ``auto_unroll_max_step`` pragma."""
    if unroll_depth <= 0:
        return
    budget = unroll_depth
    for loop in reversed(loops):
        if loop.annotation != SERIAL:
            continue
        if loop.extent <= budget:
            loop.annotation = UNROLL
            budget //= loop.extent
        else:
            break


def _order_inner(
    reorder: int,
    reduce_outer: List[LoopDef],
    spatial_inner: List[LoopDef],
    reduce_inner: List[LoopDef],
) -> List[LoopDef]:
    """Arrange the per-thread (or per-core) tile loops per the reorder knob."""
    if reorder == REORDER_REDUCE_INNER:
        return reduce_outer + spatial_inner + reduce_inner
    if reorder == REORDER_SPATIAL_INNER:
        return reduce_outer + reduce_inner + spatial_inner
    if reorder == REORDER_INTERLEAVED:
        if spatial_inner:
            return (
                reduce_outer
                + spatial_inner[:-1]
                + reduce_inner
                + [spatial_inner[-1]]
            )
        return reduce_outer + reduce_inner
    raise LoweringError(f"unknown reorder choice {reorder}")


def _structural_gpu(op: ComputeOp, config: NodeConfig):
    _check_parts(config, op, GPU_SPATIAL_PARTS, GPU_REDUCE_PARTS)
    primitives: List[str] = []
    spatial_loops, index_map = _split_all(op.axes, config.spatial_factors, "spatial", primitives)
    reduce_loops, reduce_index = _split_all(op.reduce_axes, config.reduce_factors, "reduce", primitives)
    index_map.update(reduce_index)

    block_parts = [loops[0] for loops in spatial_loops]
    vthread_parts = [loops[1] for loops in spatial_loops]
    thread_parts = [loops[2] for loops in spatial_loops]
    inner_parts = [loops[3] for loops in spatial_loops]

    recoveries = []
    block_loop, recovery = _fuse_structural(block_parts, f"{op.name}.blockIdx")
    block_loop.annotation = BLOCK_X
    recoveries.append(recovery)
    primitives.append(
        "fuse " + ", ".join(l.var.name for l in block_parts) + " -> blockIdx.x"
    )
    primitives.append("bind blockIdx.x")

    thread_loop, recovery = _fuse_structural(thread_parts, f"{op.name}.threadIdx")
    thread_loop.annotation = THREAD_X
    recoveries.append(recovery)
    primitives.append(
        "fuse " + ", ".join(l.var.name for l in thread_parts) + " -> threadIdx.x"
    )
    primitives.append("bind threadIdx.x")

    for loop in vthread_parts:
        loop.annotation = VTHREAD

    reduce_outer = [loops[0] for loops in reduce_loops]
    reduce_inner = [loops[1] for loops in reduce_loops]
    inner = _order_inner(config.reorder, reduce_outer, inner_parts, reduce_inner)
    primitives.append(f"reorder choice {config.reorder}")

    loops = [block_loop, thread_loop] + vthread_parts + inner
    return loops, index_map, recoveries, primitives, bool(inner)


def _structural_cpu(op: ComputeOp, config: NodeConfig):
    _check_parts(config, op, CPU_SPATIAL_PARTS, CPU_REDUCE_PARTS)
    if config.fuse_levels > len(op.axes):
        raise LoweringError(
            f"fuse_levels {config.fuse_levels} exceeds spatial axes {len(op.axes)}"
        )
    primitives: List[str] = []
    spatial_loops, index_map = _split_all(op.axes, config.spatial_factors, "spatial", primitives)
    reduce_loops, reduce_index = _split_all(op.reduce_axes, config.reduce_factors, "reduce", primitives)
    index_map.update(reduce_index)

    outer_parts = [loops[0] for loops in spatial_loops]
    middle_parts = [loops[1] for loops in spatial_loops]
    inner_parts = [loops[2] for loops in spatial_loops]

    fused_outer, recovery = _fuse_structural(outer_parts[: config.fuse_levels], f"{op.name}.parallel")
    fused_outer.annotation = PARALLEL
    recoveries = [recovery]
    primitives.append(
        "fuse "
        + ", ".join(l.var.name for l in outer_parts[: config.fuse_levels])
        + " -> outer"
    )
    primitives.append("parallel outer")

    remaining_outer = outer_parts[config.fuse_levels :]
    reduce_outer = [loops[0] for loops in reduce_loops]
    reduce_inner = [loops[1] for loops in reduce_loops]
    inner = _order_inner(config.reorder, reduce_outer, inner_parts, reduce_inner)
    primitives.append(f"reorder choice {config.reorder}")

    loops = [fused_outer] + remaining_outer + middle_parts + inner
    return loops, index_map, recoveries, primitives


def _structural_fpga(op: ComputeOp, config: NodeConfig):
    _check_parts(config, op, FPGA_SPATIAL_PARTS, 1)
    primitives: List[str] = []
    spatial_loops, index_map = _split_all(op.axes, config.spatial_factors, "spatial", primitives)
    reduce_loops, reduce_index = _split_all(
        op.reduce_axes, config.reduce_factors, "reduce", primitives
    )
    index_map.update(reduce_index)

    outer_parts = [loops[0] for loops in spatial_loops]
    pe_parts = [loops[1] for loops in spatial_loops]
    pe_loop, recovery = _fuse_structural(pe_parts, f"{op.name}.pe")
    pe_loop.annotation = PE_PARALLEL
    recoveries = [recovery]
    primitives.append("fuse " + ", ".join(l.var.name for l in pe_parts) + " -> PE")

    reduce_flat = [loops[0] for loops in reduce_loops]
    loops = outer_parts + [pe_loop] + reduce_flat
    return loops, index_map, recoveries, primitives
