"""Scheduled loop nests.

Lowering a :class:`~repro.ir.ComputeOp` under a schedule configuration
produces a :class:`Scheduled` object: an ordered list of loops (with
annotations saying how each maps to hardware — thread blocks, threads,
parallel workers, vector lanes) plus, for every original iteration axis, an
index expression over the new loop variables that reconstructs it.  The
interpreter executes this structure directly, so every transformation the
optimizer can express is also executable and testable for semantics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..ir import ComputeOp, Expr, IterVar, Var

# Loop annotations (how a loop is realized on the target).
SERIAL = "serial"
PARALLEL = "parallel"          # CPU worker threads
VECTORIZE = "vectorize"        # SIMD lanes
UNROLL = "unroll"
BLOCK_X = "blockIdx.x"         # GPU grid
THREAD_X = "threadIdx.x"       # GPU threads in a block
VTHREAD = "vthread"            # GPU serial-in-thread outer tile
PE_PARALLEL = "pe"             # FPGA processing elements
TENSORIZE = "tensorize"        # loops replaced by one intrinsic call

ANNOTATIONS = (
    SERIAL, PARALLEL, VECTORIZE, UNROLL, BLOCK_X, THREAD_X, VTHREAD,
    PE_PARALLEL, TENSORIZE,
)


@dataclass
class LoopDef:
    """One loop of the transformed nest.

    ``role`` records the loop's origin as ``(kind, axis_index, part_index)``
    with kind ``"spatial"`` or ``"reduce"``; fused loops carry a tuple of
    the roles they merged.
    """

    var: Var
    extent: int
    role: Tuple
    annotation: str = SERIAL

    def __post_init__(self):
        if self.annotation not in ANNOTATIONS:
            raise ValueError(f"unknown loop annotation {self.annotation!r}")
        if self.extent <= 0:
            raise ValueError(f"loop {self.var.name} has non-positive extent")


@dataclass
class Scheduled:
    """A fully lowered schedule for one compute node.

    Attributes:
        op: the compute node being scheduled.
        target: target name ("gpu", "cpu", "fpga").
        loops: the transformed loop nest, outermost first.
        index_map: original :class:`IterVar` -> expression over loop vars.
        inlined: producer ops whose bodies are computed in place (padding,
            expansion nodes — the paper's ``inline`` primitive).
        cached_tensors: input tensors staged in GPU shared memory / FPGA
            BRAM (the ``cache``/``buffer`` primitives).
        primitives: human-readable trace of applied primitives, in order.
        config: the schedule configuration this was lowered from.
    """

    op: ComputeOp
    target: str
    loops: List[LoopDef]
    index_map: Dict[IterVar, Expr]
    inlined: Tuple = ()
    cached_tensors: Tuple = ()
    primitives: List[str] = field(default_factory=list)
    config: Optional[object] = None

    def __post_init__(self):
        missing = [a.name for a in self.op.all_axes if a not in self.index_map]
        if missing:
            raise ValueError(f"index_map missing axes: {missing}")

    # -- queries used by cost models and codegen -------------------------

    def loops_with(self, annotation: str) -> List[LoopDef]:
        return [l for l in self.loops if l.annotation == annotation]

    def extent_product(self, annotation: str) -> int:
        total = 1
        for loop in self.loops_with(annotation):
            total *= loop.extent
        return total

    @property
    def grid_size(self) -> int:
        """Number of GPU thread blocks (or 1 off-GPU)."""
        return self.extent_product(BLOCK_X)

    @property
    def block_threads(self) -> int:
        """Threads per GPU block (or 1 off-GPU)."""
        return self.extent_product(THREAD_X)

    @property
    def parallel_extent(self) -> int:
        """CPU parallel workers / FPGA PEs exposed by the schedule."""
        return max(self.extent_product(PARALLEL), self.extent_product(PE_PARALLEL))

    @property
    def iteration_count(self) -> int:
        total = 1
        for loop in self.loops:
            total *= loop.extent
        return total

    def describe(self) -> str:
        """Multi-line summary of the loop nest."""
        lines = [f"schedule[{self.target}] of {self.op.name}"]
        indent = "  "
        for loop in self.loops:
            tag = "" if loop.annotation == SERIAL else f"  # {loop.annotation}"
            lines.append(f"{indent}for {loop.var.name} in range({loop.extent}):{tag}")
            indent += "  "
        lines.append(f"{indent}{self.op.name}[...] = ...")
        return "\n".join(lines)


def split_axis(axis: IterVar, factors: Sequence[int], kind: str, axis_idx: int) -> Tuple[List[LoopDef], Expr]:
    """Split ``axis`` into ``len(factors)`` nested loops.

    ``factors`` are outermost-first and must multiply to the axis extent
    (divisible splits only — the paper's parameter pruning, §4.2).  Returns
    the new loops and the expression reconstructing the original index:
    ``((f0*e1 + f1)*e2 + f2) ...``.
    """
    product = 1
    for f in factors:
        product *= f
    if product != axis.extent:
        raise ValueError(
            f"split factors {tuple(factors)} do not multiply to extent "
            f"{axis.extent} of {axis.name}"
        )
    loops = []
    for part, factor in enumerate(factors):
        var = Var(f"{axis.name}.{part}")
        loops.append(LoopDef(var, factor, (kind, axis_idx, part)))
    index: Expr = loops[0].var
    for loop in loops[1:]:
        index = index * loop.extent + loop.var
    return loops, index


def fuse_loops(loops: Sequence[LoopDef], name: str) -> Tuple[LoopDef, Dict[Var, Expr]]:
    """Fuse adjacent loops into one hyper-loop.

    Returns the fused loop and a mapping from each original loop variable
    to its reconstruction (div/mod of the fused variable), outermost first.
    """
    if not loops:
        raise ValueError("cannot fuse zero loops")
    total = 1
    for loop in loops:
        total *= loop.extent
    fused_var = Var(name)
    fused = LoopDef(fused_var, total, tuple(l.role for l in loops))
    recovery: Dict[Var, Expr] = {}
    remaining: Expr = fused_var
    trailing = total
    for loop in loops:
        trailing //= loop.extent
        recovery[loop.var] = (remaining // trailing) % loop.extent if trailing > 1 else remaining % loop.extent
    return fused, recovery


def substitute_vars(expr: Expr, mapping: Dict[Var, Expr]) -> Expr:
    """Replace loop variables in ``expr`` according to ``mapping``."""
    from ..ir import BinaryOp

    if isinstance(expr, Var) and expr in mapping:
        return mapping[expr]
    if isinstance(expr, BinaryOp):
        cls = type(expr)
        return cls(substitute_vars(expr.a, mapping), substitute_vars(expr.b, mapping))
    return expr
