"""Schedule configurations — points of the schedule space (Figure 3e).

A :class:`NodeConfig` encodes one schedule for one compute node as the
paper's vector of primitive parameters: split factors per loop, a reorder
choice, fusion depth, unroll depth, vectorization and memory-customization
flags.  A :class:`GraphConfig` adds the graph-level decisions (which helper
nodes to inline) produced by ``Schedule_for_graph`` in Algorithm 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

#: Reorder choices for the innermost tile (which loops end up innermost).
REORDER_REDUCE_INNER = 0   # ... spatial tile, then reduce-inner innermost
REORDER_SPATIAL_INNER = 1  # ... reduce-inner, then spatial tile innermost
REORDER_INTERLEAVED = 2    # reduce-inner between the spatial tile loops
REORDER_CHOICES = (REORDER_REDUCE_INNER, REORDER_SPATIAL_INNER, REORDER_INTERLEAVED)

#: Unroll pragma depths offered by the space (0 disables).
UNROLL_CHOICES = (0, 16, 64, 256)


@dataclass(frozen=True)
class NodeConfig:
    """Schedule parameters for a single compute node.

    ``spatial_factors[d]`` are the ordered split factors of spatial axis d
    (outermost first; their product equals the axis extent); likewise
    ``reduce_factors``.  GPU lowering expects 4 spatial parts
    (block, vthread, thread, inner) and 2 reduce parts (outer, inner); CPU
    lowering expects 3 spatial parts (parallel-outer, middle, inner) and 2
    reduce parts; FPGA lowering expects 2 spatial parts (PE, serial).
    """

    spatial_factors: Tuple[Tuple[int, ...], ...]
    reduce_factors: Tuple[Tuple[int, ...], ...] = ()
    reorder: int = REORDER_REDUCE_INNER
    fuse_levels: int = 1          # CPU: #outer parts fused into the parallel loop
    unroll_depth: int = 0
    vectorize: bool = True
    use_shared: bool = True       # GPU shared-memory caching of inputs
    tensorize: str = ""           # intrinsic name from repro.analysis.INTRINSICS
    # FPGA-specific parameters (ignored by other targets):
    fpga_partition: int = 1       # memory partition factor (bandwidth multiplier)
    fpga_pipeline: int = 3        # pipeline stages (read / compute / write)
    fpga_buffer_lines: int = 1    # input rows buffered per round

    def __post_init__(self):
        if self.reorder not in REORDER_CHOICES:
            raise ValueError(f"unknown reorder choice {self.reorder}")
        if self.unroll_depth not in UNROLL_CHOICES:
            raise ValueError(f"unknown unroll depth {self.unroll_depth}")
        if self.fuse_levels < 1:
            raise ValueError("fuse_levels must be >= 1")
        for factors in tuple(self.spatial_factors) + tuple(self.reduce_factors):
            if any(f < 1 for f in factors):
                raise ValueError(f"split factors must be positive, got {factors}")

    def tile_extents(self, parts: slice) -> Tuple[int, ...]:
        """Per-spatial-axis product of the selected split parts."""
        return tuple(_product(f[parts]) for f in self.spatial_factors)

    def reduce_tile_extents(self, parts: slice) -> Tuple[int, ...]:
        return tuple(_product(f[parts]) for f in self.reduce_factors)

    def with_(self, **changes) -> "NodeConfig":
        """A copy with the given fields replaced."""
        return replace(self, **changes)

    def as_vector(self) -> Tuple[int, ...]:
        """The paper's flat encoding of the schedule point (Fig. 3e)."""
        flat = []
        for factors in self.spatial_factors:
            flat.extend(factors)
        for factors in self.reduce_factors:
            flat.extend(factors)
        flat.extend(
            [
                self.reorder,
                self.fuse_levels,
                self.unroll_depth,
                int(self.vectorize),
                int(self.use_shared),
                self.fpga_partition,
                self.fpga_pipeline,
                self.fpga_buffer_lines,
            ]
        )
        return tuple(flat)


def _product(values) -> int:
    total = 1
    for v in values:
        total *= v
    return total


@dataclass(frozen=True)
class GraphConfig:
    """Graph-level schedule decisions (Algorithm 1, line 8).

    ``inline`` maps helper-node names to whether their computation is
    inlined into the consumer.  FlexTensor's pre-determined decision is to
    inline data-rearrangement nodes (padding, expansion), which is also our
    default when a name is absent.
    """

    inline: Dict[str, bool] = field(default_factory=dict)

    def should_inline(self, op_name: str) -> bool:
        return self.inline.get(op_name, True)
