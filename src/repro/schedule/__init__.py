"""Schedule representation, configuration and lowering (Table 2, §5.3)."""

from .config import (
    GraphConfig,
    NodeConfig,
    REORDER_CHOICES,
    REORDER_INTERLEAVED,
    REORDER_REDUCE_INNER,
    REORDER_SPATIAL_INNER,
    UNROLL_CHOICES,
)
from .loopnest import (
    ANNOTATIONS,
    BLOCK_X,
    LoopDef,
    PARALLEL,
    PE_PARALLEL,
    SERIAL,
    Scheduled,
    TENSORIZE,
    THREAD_X,
    UNROLL,
    VECTORIZE,
    VTHREAD,
    fuse_loops,
    split_axis,
    substitute_vars,
)
from .validate import ScheduleValidationError, quick_report, validate_schedule
from .lower import (
    CPU_REDUCE_PARTS,
    CPU_SPATIAL_PARTS,
    FPGA_SPATIAL_PARTS,
    GPU_REDUCE_PARTS,
    GPU_SPATIAL_PARTS,
    LoweredStructure,
    LoweringError,
    LoweringMemo,
    TARGETS,
    lower,
    structural_key,
)

__all__ = [
    "ANNOTATIONS", "BLOCK_X", "CPU_REDUCE_PARTS", "CPU_SPATIAL_PARTS",
    "FPGA_SPATIAL_PARTS", "GPU_REDUCE_PARTS", "GPU_SPATIAL_PARTS",
    "GraphConfig", "LoopDef", "LoweredStructure", "LoweringError",
    "LoweringMemo", "NodeConfig", "PARALLEL",
    "PE_PARALLEL", "REORDER_CHOICES", "REORDER_INTERLEAVED",
    "REORDER_REDUCE_INNER", "REORDER_SPATIAL_INNER", "SERIAL", "Scheduled",
    "TARGETS", "TENSORIZE", "THREAD_X", "UNROLL", "UNROLL_CHOICES",
    "VECTORIZE", "VTHREAD",
    "fuse_loops", "lower", "split_axis", "structural_key", "substitute_vars",
    "ScheduleValidationError", "quick_report", "validate_schedule",
]
