"""DNN case study: networks, partitioning, fusion (§6.6)."""

from .network import (
    LayerResult,
    LayerSpec,
    Network,
    NetworkResult,
    SubGraph,
    optimize_network,
    overfeat,
    partition_network,
    yolo_v1,
)

__all__ = [
    "LayerResult", "LayerSpec", "Network", "NetworkResult", "SubGraph",
    "optimize_network", "overfeat", "partition_network", "yolo_v1",
]
