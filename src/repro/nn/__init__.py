"""DNN case study: networks, partitioning, fusion, and the network-level
task scheduler (§6.6)."""

from .network import (
    LayerResult,
    LayerSpec,
    Network,
    NetworkResult,
    SubGraph,
    optimize_network,
    overfeat,
    partition_network,
    yolo_v1,
)
from .tuner import (
    NetworkChaos,
    NetworkKilled,
    NetworkTaskScheduler,
    NetworkTuneResult,
    TuneTask,
    tune_network,
)

__all__ = [
    "LayerResult", "LayerSpec", "Network", "NetworkChaos", "NetworkKilled",
    "NetworkResult", "NetworkTaskScheduler", "NetworkTuneResult", "SubGraph",
    "TuneTask", "optimize_network", "overfeat", "partition_network",
    "tune_network", "yolo_v1",
]
