"""Network-level task scheduler: signature dedup + gain-driven trials.

``optimize_network`` used to hand every layer an identical, independent
trial budget — wasteful twice over: structurally identical layers were
tuned separately, and layers whose schedules had long converged kept
burning measurements that the still-improving layers needed.  This
module turns the §6.6 network case study into a *task scheduling*
problem in the style of MetaSchedule/Ansor:

1. **Dedup** — layers are grouped by structural operator identity
   (:func:`~repro.runtime.op_signature_of`, the same signature that keys
   the :class:`~repro.runtime.EvalCache` and the RecordBook's O(1) serve
   index).  Each distinct signature becomes one :class:`TuneTask` whose
   *weight* is the summed ``flops x multiplicity`` of every layer it
   covers, so a task's importance is its contribution to end-to-end
   network time.

2. **Gain-driven allocation** — tuning proceeds in rounds of short trial
   slices (``optimize(checkpoint=..., resume=True, checkpoint_every=1)``
   — sliced tuning is bit-identical to one-shot, the PR-6 contract).
   Every round re-ranks the runnable tasks by *predicted end-to-end
   latency gain*: the observed improvement of the task's network-time
   contribution per trial over its recent slices.  Cold tasks (no trials
   yet) rank first, heaviest first; an ε floor forces any task that has
   not been served for ``starve_rounds`` rounds into the next round, so
   low-gain tasks are never starved.  Tasks whose improvement curve has
   been flat for ``patience`` consecutive slices stop early — that is
   where the measurement savings come from — while high-gain tasks may
   run past the uniform per-layer budget (up to ``cap_boost`` times it)
   within the same *global* budget uniform allocation would have spent.

3. **Sharing** — all tasks share one :class:`~repro.runtime.EvalCache`
   and one :class:`~repro.runtime.RecordBook`.  Every improving slice is
   stamped into the record book (with its signature, so ``python -m
   repro lookup`` and the serve read path answer network-layer queries
   directly), and a task's first slice warm-starts from the book's best
   known schedule for its signature — exact hit first, same-family
   nearest shape as a fallback.

Everything the scheduler decides is a pure function of the seed and the
initial store state: ranking uses no RNG, ties break deterministically
on (weight, task index), and the whole run checkpoints after every
slice, so a mid-run kill resumes bit-identically — allocation decisions
included.  See ``docs/network.md``.
"""

from __future__ import annotations

import math
import tempfile
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from ..runtime import (
    EvalCache,
    MeasureConfig,
    RecordBook,
    TuningRecord,
    load_checkpoint,
    op_signature_of,
    parse_workload_key,
    save_checkpoint,
    workload_key,
)
from ..utils.serialization import config_from_dict, config_to_dict
from .network import (
    LayerResult,
    Network,
    NetworkResult,
    _epilogue_seconds,
    partition_network,
)

#: Workload-family aliases mapping onto the CLI / serve vocabulary, so
#: records stamped by a network tune answer ``python -m repro lookup
#: --op conv2d ...`` (and the serve read path) out of the box.
SERVE_OPERATORS = {"C2D": "conv2d", "GMM": "gemm", "GMV": "gemv"}

#: File name of the scheduler's own checkpoint inside ``checkpoint_dir``.
NETWORK_CHECKPOINT = "network.ckpt"

_SCHEDULER_NAME = "network-scheduler"


class NetworkKilled(BaseException):
    """Raised by :class:`NetworkChaos` to simulate a hard daemon kill.

    A ``BaseException`` (like serve's ``DaemonKilled``) so ordinary
    ``except Exception`` handlers cannot swallow the kill.
    """


@dataclass
class NetworkChaos:
    """Deterministic kill script for crash-recovery tests.

    ``kill_after_slices=n`` raises :class:`NetworkKilled` immediately
    after the n-th slice (lifetime count, including slices restored from
    a checkpoint) has committed — its task checkpoint and the scheduler
    snapshot are durable, everything after is lost.  Slice boundaries
    are the scheduler's durable commit points, mirroring the tuning
    service's preemption grain.
    """

    kill_after_slices: Optional[int] = None


@dataclass
class TuneTask:
    """One distinct tuning task: a signature and the layers it covers."""

    index: int
    signature: str
    workload: object               # repro.ops.Workload (representative)
    layer_indices: List[int]       # indices into network.layers
    multiplicity: int              # total occurrences covered
    weight_flops: int              # sum of flops x multiplicity over covered layers
    max_trials: int
    # -- mutable tuning state (checkpointed) --------------------------------
    trials_done: int = 0
    best_gflops: float = 0.0
    kernel_seconds: float = float("inf")
    config_dict: Optional[Dict] = None
    curve: List[Tuple[int, float]] = field(default_factory=list)  # (trials, kernel_s)
    num_measurements: int = 0
    exploration_seconds: float = 0.0
    stale_slices: int = 0
    last_served_round: int = -1
    done: bool = False
    done_reason: str = ""
    warm_source: str = ""
    # -- multi-start state: each restart is a fresh search (derived seed,
    #    warm-started from best-so-far); lifetime totals stay monotone.
    restarts: int = 0
    run_trials: int = 0            # trials inside the current (re)start
    measurements_base: int = 0     # measurements from completed earlier runs
    seconds_base: float = 0.0      # exploration clock from earlier runs

    # -- gain model ---------------------------------------------------------

    def latency(self, kernel_seconds: Optional[float] = None) -> float:
        """This task's contribution to end-to-end network time (epilogues
        excluded — they are schedule-independent constants)."""
        seconds = self.kernel_seconds if kernel_seconds is None else kernel_seconds
        if not math.isfinite(seconds):
            return float("inf")
        return seconds * self.multiplicity

    def gain_rate(self, window: int = 1) -> float:
        """Observed end-to-end seconds gained per trial over the last
        ``window`` slices — the marginal-gain estimate the allocator
        ranks by.  ``inf`` while the curve is too short to estimate
        (an unknown task is worth exploring)."""
        samples = [s for s in self.curve if math.isfinite(s[1])]
        if len(samples) < 2:
            return float("inf")
        recent = samples[-(window + 1):]
        trials = recent[-1][0] - recent[0][0]
        if trials <= 0:
            return 0.0
        gained = (recent[0][1] - recent[-1][1]) * self.multiplicity
        return max(0.0, gained) / trials

    # -- checkpointing ------------------------------------------------------

    def get_state(self) -> Dict:
        return {
            "signature": self.signature,
            "trials_done": self.trials_done,
            "best_gflops": self.best_gflops,
            "kernel_seconds": (
                self.kernel_seconds if math.isfinite(self.kernel_seconds) else None
            ),
            "config": self.config_dict,
            "curve": [
                [t, s if math.isfinite(s) else None] for t, s in self.curve
            ],
            "num_measurements": self.num_measurements,
            "exploration_seconds": self.exploration_seconds,
            "stale_slices": self.stale_slices,
            "last_served_round": self.last_served_round,
            "done": self.done,
            "done_reason": self.done_reason,
            "warm_source": self.warm_source,
            "restarts": self.restarts,
            "run_trials": self.run_trials,
            "measurements_base": self.measurements_base,
            "seconds_base": self.seconds_base,
        }

    def set_state(self, state: Dict) -> None:
        self.trials_done = int(state["trials_done"])
        self.best_gflops = float(state["best_gflops"])
        seconds = state["kernel_seconds"]
        self.kernel_seconds = float("inf") if seconds is None else float(seconds)
        self.config_dict = state["config"]
        self.curve = [
            (int(t), float("inf") if s is None else float(s))
            for t, s in state["curve"]
        ]
        self.num_measurements = int(state["num_measurements"])
        self.exploration_seconds = float(state["exploration_seconds"])
        self.stale_slices = int(state["stale_slices"])
        self.last_served_round = int(state["last_served_round"])
        self.done = bool(state["done"])
        self.done_reason = str(state["done_reason"])
        self.warm_source = str(state["warm_source"])
        self.restarts = int(state.get("restarts", 0))
        self.run_trials = int(state.get("run_trials", state["trials_done"]))
        self.measurements_base = int(state.get("measurements_base", 0))
        self.seconds_base = float(state.get("seconds_base", 0.0))


@dataclass
class NetworkTuneResult:
    """Outcome of one network-level tuning run."""

    network: str
    device: str
    method: str
    mode: str                      # "allocated" | "uniform"
    seed: int
    tasks: List[TuneTask]
    layers: List[LayerResult]
    rounds: int
    slices_run: int
    trials_budget: int
    trials_spent: int
    total_measurements: int        # real measurements summed over tasks
    exploration_seconds: float     # summed simulated tuning clock
    wall_seconds: float
    trace: List[Dict] = field(default_factory=list)
    dedup_layers_covered: int = 0  # layers served by an already-seen signature

    @property
    def total_seconds(self) -> float:
        """End-to-end inference time of the whole network."""
        return sum(l.total_seconds for l in self.layers)

    @property
    def gflops(self) -> float:
        total_flops = sum(
            l.layer.workload.flops() * l.layer.multiplicity for l in self.layers
        )
        seconds = self.total_seconds
        return total_flops / seconds / 1e9 if seconds > 0 else 0.0

    @property
    def found(self) -> bool:
        return all(t.best_gflops > 0 for t in self.tasks)

    def to_network_result(self) -> NetworkResult:
        """The classic §6.6 result shape, for existing consumers."""
        return NetworkResult(self.network, self.device, self.method, list(self.layers))

    def state_digest(self) -> Dict:
        """Canonical run outcome for determinism / kill+resume parity
        comparisons — everything except wall-clock time."""
        return {
            "network": self.network,
            "mode": self.mode,
            "seed": self.seed,
            "rounds": self.rounds,
            "slices_run": self.slices_run,
            "trials_spent": self.trials_spent,
            "total_measurements": self.total_measurements,
            "exploration_seconds": self.exploration_seconds,
            "total_seconds": self.total_seconds,
            "trace": self.trace,
            "tasks": [t.get_state() for t in self.tasks],
        }

    def summary(self) -> str:
        lines = [
            f"{self.network} on {self.device} ({self.mode}, method={self.method}): "
            f"{len(self.tasks)} tasks over "
            f"{sum(len(t.layer_indices) for t in self.tasks)} distinct layers",
            f"end-to-end: {self.total_seconds * 1e3:.3f} ms "
            f"({self.gflops:.1f} GFLOPS aggregate)",
            f"budget: {self.trials_spent}/{self.trials_budget} trials in "
            f"{self.rounds} rounds / {self.slices_run} slices, "
            f"{self.total_measurements} real measurements",
        ]
        if self.dedup_layers_covered:
            lines.append(
                f"dedup: {self.dedup_layers_covered} layer(s) served by an "
                f"already-tuned signature at zero cost"
            )
        for task in self.tasks:
            warm = f" warm={task.warm_source}" if task.warm_source else ""
            lines.append(
                f"  task {task.index:>2} x{task.multiplicity} "
                f"{task.workload.operator}:{task.workload.name:<16} "
                f"{task.trials_done:>3} trials {task.best_gflops:8.1f} GFLOPS "
                f"({task.done_reason or 'running'}){warm}"
            )
        return "\n".join(lines)


def _shape_distance(a: Dict[str, int], b: Dict[str, int]) -> Optional[float]:
    """Log-scale distance between two parameter dicts of one family.

    None when the dicts do not describe comparable workloads (different
    parameter sets).  Symmetric, 0 for identical shapes.
    """
    if set(a) != set(b):
        return None
    distance = 0.0
    for key in sorted(a):
        va, vb = a[key], b[key]
        if va == vb:
            continue
        if va <= 0 or vb <= 0:
            distance += abs(va - vb)
        else:
            distance += abs(math.log2(va / vb))
    return distance


class NetworkTaskScheduler:
    """Round-based gain-driven trial allocator over deduped layer tasks.

    Instantiated (and driven) through :func:`tune_network`; split out as
    a class so tests can exercise the pure planning function
    (:meth:`plan_round`) against synthetic task states.
    """

    def __init__(
        self,
        network: Network,
        device_spec,
        trials: int = 25,
        method: str = "q",
        fuse: bool = True,
        seed: int = 0,
        slice_trials: int = 3,
        round_slots: Optional[int] = None,
        starve_rounds: int = 4,
        patience: int = 2,
        min_trials: Optional[int] = None,
        gain_window: int = 1,
        stale_rel: float = 1e-3,
        cap_boost: float = 2.0,
        budget_frac: float = 1.0,
        topup_frac: float = 0.25,
        max_restarts: int = 1,
        restart_trials: Optional[int] = None,
        records: Optional[Union[RecordBook, str, Path]] = None,
        eval_cache: Optional[Union[EvalCache, str, Path]] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        resume: bool = False,
        chaos: Optional[NetworkChaos] = None,
        measure_config: Optional[MeasureConfig] = None,
        **tuner_kwargs,
    ):
        self.network = network
        self.device_spec = device_spec
        self.trials = int(trials)
        self.method = method
        self.fuse = fuse
        self.seed = seed
        self.slice_trials = max(1, int(slice_trials))
        self.starve_rounds = max(1, int(starve_rounds))
        self.patience = max(1, int(patience))
        self.min_trials = (
            2 * self.slice_trials if min_trials is None else max(1, int(min_trials))
        )
        self.gain_window = max(1, int(gain_window))
        self.stale_rel = float(stale_rel)
        self.max_restarts = max(0, int(max_restarts))
        # A restart pays a fixed re-seeding overhead before its fresh
        # trajectory can overtake the merged best; a runway shorter than
        # that overhead wastes the entire second run.  The first slice of
        # a restart run is therefore sized to the full runway, and a
        # restart only fires when the remaining budget can fund it.
        self.restart_trials = (
            2 * self.slice_trials
            if restart_trials is None else max(1, int(restart_trials))
        )
        self.measure_config = measure_config
        self.tuner_kwargs = tuner_kwargs
        if isinstance(records, (str, Path)):
            records = RecordBook(records)
        self.records = records
        if isinstance(eval_cache, (str, Path)):
            eval_cache = EvalCache(eval_cache)
        self.eval_cache = eval_cache
        self.chaos = chaos
        self._tempdir: Optional[tempfile.TemporaryDirectory] = None
        if checkpoint_dir is None:
            # Slicing needs per-task checkpoint files even when the caller
            # does not want durability; keep them in a run-scoped temp dir.
            self._tempdir = tempfile.TemporaryDirectory(prefix="repro-net-")
            checkpoint_dir = self._tempdir.name
        self.checkpoint_dir = Path(checkpoint_dir)
        self.checkpoint_dir.mkdir(parents=True, exist_ok=True)

        # -- dedup: one task per distinct operator signature ----------------
        self.tasks: List[TuneTask] = []
        self.task_of_layer: List[int] = []
        self.dedup_layers_covered = 0
        by_signature: Dict[str, int] = {}
        max_trials = max(1, math.ceil(cap_boost * self.trials))
        for layer_index, layer in enumerate(network.layers):
            signature = op_signature_of(
                layer.workload.build(), device_spec,
                measure_config=measure_config,
            )
            task_index = by_signature.get(signature)
            if task_index is None:
                task_index = len(self.tasks)
                by_signature[signature] = task_index
                self.tasks.append(TuneTask(
                    index=task_index,
                    signature=signature,
                    workload=layer.workload,
                    layer_indices=[layer_index],
                    multiplicity=layer.multiplicity,
                    weight_flops=layer.workload.flops() * layer.multiplicity,
                    max_trials=max_trials,
                ))
            else:
                task = self.tasks[task_index]
                task.layer_indices.append(layer_index)
                task.multiplicity += layer.multiplicity
                task.weight_flops += layer.workload.flops() * layer.multiplicity
                self.dedup_layers_covered += 1
            self.task_of_layer.append(task_index)

        self.round_slots = (
            max(1, math.ceil(len(self.tasks) / 3))
            if round_slots is None else max(1, int(round_slots))
        )
        # Global budget: a fraction of what uniform allocation would
        # spend on the un-deduped layer list (``budget_frac=1.0`` means
        # exactly uniform's spend) — the scheduler may redistribute it,
        # never exceed it.
        self.trials_budget = max(
            1, int(round(float(budget_frac) * self.trials * len(network.layers)))
        )
        self.budget_left = self.trials_budget
        # Trials held back from the gain loop for the headroom-ranked
        # top-up phase, so convergence stops can never starve it.
        self.topup_reserve = int(round(
            max(0.0, min(1.0, float(topup_frac))) * self.trials_budget
        ))
        self.phase = "main"
        self.round_index = 0
        self.slices_run = 0
        self.plan: Optional[List[Tuple[int, str]]] = None
        self.plan_done = 0
        self.trace: List[Dict] = []
        restored = self._restore() if resume else False
        if not restored:
            # A fresh run must not inherit per-task slice checkpoints from
            # an earlier run in the same directory — optimize(resume=True)
            # would silently fast-forward those tasks.
            for stale in self.checkpoint_dir.glob("*.ckpt"):
                stale.unlink()

    # -- checkpointing ------------------------------------------------------

    @property
    def _checkpoint_path(self) -> Path:
        return self.checkpoint_dir / NETWORK_CHECKPOINT

    def _task_checkpoint(self, task: TuneTask) -> Path:
        # One checkpoint file per (task, restart): a restarted search must
        # not resume the trajectory it is restarting away from.
        return self.checkpoint_dir / (
            f"task-{task.index:03d}-r{task.restarts}.ckpt"
        )

    def _task_seed(self, task: TuneTask) -> int:
        """Seed of the task's current search run.  Restart runs use a
        deterministically derived seed so multi-start actually explores a
        different trajectory (still a pure function of the base seed)."""
        if task.restarts == 0:
            return self.seed
        return self.seed + 100_003 * task.restarts + 97 * task.index

    def _save(self) -> None:
        save_checkpoint(self._checkpoint_path, {
            "tuner": _SCHEDULER_NAME,
            "network": self.network.name,
            "seed": self.seed,
            "phase": self.phase,
            "round": self.round_index,
            "plan": [list(entry) for entry in (self.plan or [])],
            "has_plan": self.plan is not None,
            "plan_done": self.plan_done,
            "budget_left": self.budget_left,
            "slices_run": self.slices_run,
            "trace": self.trace,
            "tasks": [task.get_state() for task in self.tasks],
        })

    def _restore(self) -> bool:
        snapshot = load_checkpoint(self._checkpoint_path)
        if snapshot is None:
            return False
        if (
            snapshot.get("tuner") != _SCHEDULER_NAME
            or snapshot.get("network") != self.network.name
            or len(snapshot.get("tasks", ())) != len(self.tasks)
            or any(
                state.get("signature") != task.signature
                for state, task in zip(snapshot["tasks"], self.tasks)
            )
        ):
            import warnings

            warnings.warn(
                f"checkpoint {self._checkpoint_path} does not match this "
                f"network run; starting fresh"
            )
            return False
        self.phase = str(snapshot.get("phase", "main"))
        self.round_index = int(snapshot["round"])
        self.plan = (
            [(int(i), str(reason)) for i, reason in snapshot["plan"]]
            if snapshot.get("has_plan") else None
        )
        self.plan_done = int(snapshot["plan_done"])
        self.budget_left = int(snapshot["budget_left"])
        self.slices_run = int(snapshot["slices_run"])
        self.trace = list(snapshot["trace"])
        for task, state in zip(self.tasks, snapshot["tasks"]):
            task.set_state(state)
        return True

    # -- planning -----------------------------------------------------------

    def plan_round(self, round_index: int, tasks: List[TuneTask]) -> List[Tuple[int, str]]:
        """Choose which runnable tasks get a slice this round.

        A pure function of the task states (no RNG): starved tasks first
        (the ε floor — any runnable task unserved for ``starve_rounds``
        rounds), then cold tasks heaviest-first, then warm tasks by
        marginal gain with a deterministic (weight, index) tie-break.
        """
        runnable = [t for t in tasks if not t.done]
        starved = [
            t for t in runnable
            if t.trials_done > 0
            and round_index - t.last_served_round >= self.starve_rounds
        ]
        starved.sort(key=lambda t: (t.last_served_round, t.index))
        cold = [t for t in runnable if t.trials_done == 0]
        cold.sort(key=lambda t: (-t.weight_flops, t.index))
        warm = [t for t in runnable if t.trials_done > 0]
        warm.sort(
            key=lambda t: (-t.gain_rate(self.gain_window), -t.weight_flops, t.index)
        )
        plan: List[Tuple[int, str]] = []
        chosen = set()
        for group, reason in ((starved, "floor"), (cold, "cold"), (warm, "gain")):
            for task in group:
                if len(plan) >= self.round_slots:
                    return plan
                if task.index in chosen:
                    continue
                chosen.add(task.index)
                plan.append((task.index, reason))
        return plan

    # -- warm starting ------------------------------------------------------

    def _warm_start(self, task: TuneTask):
        """Best known schedule for this task from the shared record book:
        exact signature hit first, same-family nearest shape fallback."""
        if self.records is None:
            return None, ""
        exact = self.records.best_for_signature(task.signature)
        if exact is not None:
            return exact.config, "signature"
        alias = SERVE_OPERATORS.get(task.workload.operator, task.workload.operator)
        device = getattr(self.device_spec, "name", str(self.device_spec))
        best_key: Optional[str] = None
        best_distance = float("inf")
        for key in self.records.keys():
            parsed = parse_workload_key(key)
            if parsed is None:
                continue
            operator, params, key_device = parsed
            if operator != alias or key_device != device:
                continue
            distance = _shape_distance(dict(task.workload.params), params)
            if distance is None:
                continue
            if distance < best_distance or (
                distance == best_distance and (best_key is None or key < best_key)
            ):
                best_key, best_distance = key, distance
        if best_key is None:
            return None, ""
        return self.records.best(best_key).config, f"family:{best_key}"

    # -- slices -------------------------------------------------------------

    def _stamp(self, task: TuneTask, result) -> None:
        """Fold an improving slice into the shared record book."""
        if self.records is None or not result.found:
            return
        alias = SERVE_OPERATORS.get(task.workload.operator, task.workload.operator)
        device = getattr(self.device_spec, "name", str(self.device_spec))
        self.records.add(TuningRecord(
            key=workload_key(alias, task.workload.params, device),
            config=result.config,
            gflops=result.gflops,
            trials=task.trials_done,
            seed=self.seed,
            signature=task.signature,
        ))

    def _run_slice(self, task: TuneTask, reason: str) -> None:
        from ..optimize import optimize  # local: avoid an import cycle

        available = self.budget_left
        if self.phase == "main":
            available -= self.topup_reserve
        slice_size = self.slice_trials
        if task.run_trials == 0 and task.restarts > 0:
            # Guaranteed runway: a restart's first slice is the full
            # restart allotment, so the fresh run cannot be re-ranked
            # away before it has had a chance to overtake the merged best.
            slice_size = self.restart_trials
        increment = min(
            slice_size, available, task.max_trials - task.trials_done
        )
        if increment <= 0:
            task.done = True
            task.done_reason = "capped" if available > 0 else "budget"
            return
        warm = None
        first_slice_of_run = task.run_trials == 0
        if first_slice_of_run:
            if task.restarts == 0:
                warm, task.warm_source = self._warm_start(task)
            elif task.config_dict is not None:
                # Multi-start: a restarted search explores from a derived
                # seed but begins at the best schedule found so far.
                warm = config_from_dict(task.config_dict)
        target = task.run_trials + increment
        result = optimize(
            task.workload.build(),
            self.device_spec,
            trials=target,
            method=self.method,
            seed=self._task_seed(task),
            warm_start=warm,
            eval_cache=self.eval_cache,
            measure_config=self.measure_config,
            checkpoint=self._task_checkpoint(task),
            checkpoint_every=1,
            resume=True,
            **self.tuner_kwargs,
        )
        previous_latency = task.latency()
        previous_best = task.best_gflops
        task.run_trials = target
        task.trials_done += increment
        self.budget_left -= increment
        if result.gflops > task.best_gflops:
            # Best-so-far is kept *across* restarts: a restart can improve
            # a task's final schedule, never worsen it.
            task.best_gflops = result.gflops
            task.kernel_seconds = result.kernel_seconds
            task.config_dict = (
                config_to_dict(result.config) if result.config is not None else None
            )
        task.num_measurements = (
            task.measurements_base + result.tuning.num_measurements
        )
        task.exploration_seconds = (
            task.seconds_base + result.tuning.exploration_seconds
        )
        task.curve.append((task.trials_done, task.kernel_seconds))
        # Convergence: a slice that moved this task's network-time
        # contribution by less than ``stale_rel`` of its value is stale;
        # ``patience`` consecutive stale slices end the task.
        improvement = previous_latency - task.latency()
        if not math.isfinite(task.latency()):
            task.stale_slices += 1    # still no valid schedule: not improving
        elif not math.isfinite(improvement):
            # First valid schedule: latency went inf -> finite, the
            # largest possible improvement — never a stale slice.
            task.stale_slices = 0
        elif improvement <= self.stale_rel * task.latency():
            task.stale_slices += 1
        else:
            task.stale_slices = 0
        if task.trials_done >= task.max_trials:
            task.done = True
            task.done_reason = "capped"
        elif task.trials_done >= self.min_trials and task.stale_slices >= self.patience:
            task.done = True
            task.done_reason = "converged"
        if task.best_gflops > previous_best:
            self._stamp(task, result)
        if first_slice_of_run:
            warm_label = "restart" if task.restarts else task.warm_source
        else:
            warm_label = ""
        self.trace.append({
            "round": self.round_index,
            "task": task.index,
            "op": f"{task.workload.operator}:{task.workload.name}",
            "reason": reason,
            "trials": [task.trials_done - increment, task.trials_done],
            "restart": task.restarts,
            "best_gflops": task.best_gflops,
            "kernel_seconds": (
                task.kernel_seconds if math.isfinite(task.kernel_seconds) else None
            ),
            "measurements": task.num_measurements,
            "warm": warm_label,
            "done": task.done_reason,
        })

    def _maybe_kill(self) -> None:
        if (
            self.chaos is not None
            and self.chaos.kill_after_slices is not None
            and self.slices_run >= self.chaos.kill_after_slices
        ):
            raise NetworkKilled(
                f"chaos kill after slice {self.slices_run} commit"
            )

    # -- the allocation loop ------------------------------------------------

    def _drain_plan(self) -> None:
        """Run the current plan's remaining slices, committing after each."""
        while self.plan_done < len(self.plan):
            task_index, reason = self.plan[self.plan_done]
            self._run_slice(self.tasks[task_index], reason)
            self.plan_done += 1
            self.slices_run += 1
            self._save()
            self._maybe_kill()
        self.plan = None
        self.round_index += 1
        self._save()

    def _main_loop(self) -> None:
        """Phase A: gain-driven rounds until the runnable set or the
        budget runs dry."""
        while True:
            if self.plan is None:
                if (
                    self.budget_left <= self.topup_reserve
                    or all(t.done for t in self.tasks)
                ):
                    return
                self.plan = self.plan_round(self.round_index, self.tasks)
                self.plan_done = 0
                if not self.plan:
                    return
                for task_index, _reason in self.plan:
                    self.tasks[task_index].last_served_round = self.round_index
                self._save()
            self._drain_plan()

    def _restart(self, task: TuneTask) -> None:
        """Begin a fresh search run for a plateaued task (multi-start).

        The new run draws a derived seed and warm-starts from the task's
        best schedule so far; best-so-far is merged with ``max`` across
        runs, so a restart can only improve the task's final result."""
        task.measurements_base = task.num_measurements
        task.seconds_base = task.exploration_seconds
        task.restarts += 1
        task.run_trials = 0
        task.stale_slices = 0
        task.done = False
        task.done_reason = ""

    def _topup_loop(self) -> None:
        """Phase B: reinvest leftover budget into the tasks where extra
        trials are most likely to move end-to-end time, up to the
        per-task cap.  This is where measurement savings from early
        convergence turn into latency wins uniform allocation never
        sees: its tail trials are spread evenly, ours are concentrated
        where headroom remains.

        Ranking: latency x headroom x decay^stale.  *Latency* is the
        task's current contribution to end-to-end time — a trial moved
        here can move the network most.  *Headroom* discounts a task by
        how close its best GFLOPS already sits to the best any sibling
        achieved on this device (floored at 10%, because the fleet-best
        task can still improve against itself).  *Staleness decay*
        (x0.5 per consecutive non-improving slice) walks a stalling
        task down the ranking, so the budget rotates deterministically
        across the heavy-with-headroom tasks instead of re-creating
        uniform's even spread.  Deterministic ((latency, index)
        tie-break).  The main loop's ε floor extends here: every
        ``starve_rounds``-th plan serves the least-progressed task
        (lowest trials/horizon) regardless of priority, so a light task
        is never starved out of its uniform horizon by heavier tasks'
        decayed probes.

        A chosen converged task below the uniform per-layer horizon
        (``trials`` x completed runs) is **revived** for one slice along
        its existing trajectory — bit-identical to the uniform prefix,
        so these probes only ever converge the task *toward* uniform's
        own result.  Staleness is deliberately NOT reset: a fruitless
        probe re-converges immediately and halves the task's rank
        (geometric backoff), while an improving probe resets it to the
        front of the queue.  A converged task *at* its horizon has
        exhausted the risk-free continuation, so it is **restarted**: a
        fresh search from a derived seed, warm-started at the task's
        best-so-far (multi-start search).  At most ``max_restarts``
        fresh runs per task; best-so-far merges across runs, so neither
        move can ever worsen a task."""
        if self.plan is not None:
            self._drain_plan()
        while self.budget_left > 0:
            candidates = [t for t in self.tasks if self._topup_eligible(t)]
            if not candidates:
                return
            fleet_best = max(t.best_gflops for t in self.tasks)
            def priority(task):
                headroom = max(0.1, 1.0 - task.best_gflops / fleet_best)
                return task.latency() * headroom * 0.5 ** task.stale_slices
            if self.round_index % self.starve_rounds == 0:
                # The ε floor, extended into the top-up phase: every
                # ``starve_rounds``-th plan serves the least-progressed
                # eligible task (lowest trials/horizon) regardless of
                # priority, so decayed heavy tasks cannot starve a light
                # task out of its uniform horizon.
                candidates.sort(
                    key=lambda t: (t.trials_done / self._horizon(t), t.index)
                )
            else:
                candidates.sort(
                    key=lambda t: (-priority(t), -t.latency(), t.index)
                )
            pool = candidates
            # Serve one task per plan: the budget check for a restart
            # runway is exact at decision time, and the ranking re-reads
            # the observed curves after every slice.
            plan = None
            for task in pool:
                if not task.done:
                    plan = (task.index, "topup")
                    break
                if (
                    task.done_reason == "converged"
                    and task.trials_done >= self._horizon(task)
                ):
                    if self.budget_left < self.restart_trials:
                        continue    # cannot fund the runway: skip, not waste
                    self._restart(task)
                    plan = (task.index, "restart")
                    break
                # Probe: one slice along the existing trajectory, with
                # staleness (and so the geometric rank backoff) kept.
                task.done = False
                task.done_reason = ""
                plan = (task.index, "revive")
                break
            if plan is None:
                return
            self.plan = [plan]
            self.plan_done = 0
            self._save()
            self._drain_plan()

    def _horizon(self, task: TuneTask) -> int:
        """Lifetime trials at which the task's current run has consumed
        a full uniform per-layer budget — the boundary between risk-free
        continuation (revive probes) and speculative multi-start."""
        return (task.restarts + 1) * self.trials

    def _topup_eligible(self, task: TuneTask) -> bool:
        if task.trials_done >= task.max_trials or task.best_gflops <= 0:
            return False
        if not task.done:
            return True
        if task.done_reason == "budget":
            # Cut off by the main phase's reserve boundary — a phase
            # artifact, not a property of the task; always revivable.
            return True
        if task.done_reason != "converged":
            return False
        if task.trials_done >= self._horizon(task):
            return task.restarts < self.max_restarts
        return True    # under the horizon: continuing the run is always safe

    def run(self) -> NetworkTuneResult:
        start = time.perf_counter()
        try:
            if self.phase == "main":
                self._main_loop()
                self.phase = "topup"
                self._save()
            self._topup_loop()
            for task in self.tasks:
                if not task.done:
                    task.done = True
                    task.done_reason = task.done_reason or "budget"
            self._save()
        finally:
            if self._tempdir is not None:
                self._tempdir.cleanup()
                self._tempdir = None
        return self._result(time.perf_counter() - start)

    def _result(self, wall_seconds: float) -> NetworkTuneResult:
        groups = partition_network(self.network, fuse=self.fuse)
        layers = []
        for layer_index, group in enumerate(groups):
            task = self.tasks[self.task_of_layer[layer_index]]
            epilogue = _epilogue_seconds(
                group.anchor.workload, self.device_spec,
                fused=bool(group.fused_elementwise),
            )
            layers.append(LayerResult(
                group.anchor, task.kernel_seconds, epilogue, task.best_gflops,
            ))
        return NetworkTuneResult(
            network=self.network.name,
            device=getattr(self.device_spec, "name", str(self.device_spec)),
            method=self.method,
            mode="allocated",
            seed=self.seed,
            tasks=self.tasks,
            layers=layers,
            rounds=self.round_index,
            slices_run=self.slices_run,
            trials_budget=self.trials_budget,
            trials_spent=self.trials_budget - self.budget_left,
            total_measurements=sum(t.num_measurements for t in self.tasks),
            exploration_seconds=sum(t.exploration_seconds for t in self.tasks),
            wall_seconds=wall_seconds,
            trace=self.trace,
            dedup_layers_covered=self.dedup_layers_covered,
        )


def _tune_uniform(
    network: Network,
    device_spec,
    trials: int,
    method: str,
    fuse: bool,
    seed: int,
    records: Optional[Union[RecordBook, str, Path]],
    eval_cache: Optional[Union[EvalCache, str, Path]],
    measure_config: Optional[MeasureConfig],
    **tuner_kwargs,
) -> NetworkTuneResult:
    """The flat baseline: every distinct layer tuned independently with
    an identical budget — no dedup, no warm starting, no reallocation —
    but with the same measurement accounting as the scheduler, so the
    two modes are directly comparable (``benchmarks/bench_network.py``)."""
    from ..optimize import optimize  # local: avoid an import cycle

    if isinstance(records, (str, Path)):
        records = RecordBook(records)
    if isinstance(eval_cache, (str, Path)):
        eval_cache = EvalCache(eval_cache)
    start = time.perf_counter()
    groups = partition_network(network, fuse=fuse)
    device = getattr(device_spec, "name", str(device_spec))
    tasks: List[TuneTask] = []
    layers: List[LayerResult] = []
    for layer_index, group in enumerate(groups):
        layer = group.anchor
        result = optimize(
            layer.workload.build(), device_spec, trials=trials, method=method,
            seed=seed, eval_cache=eval_cache, measure_config=measure_config,
            **tuner_kwargs,
        )
        task = TuneTask(
            index=layer_index,
            signature=op_signature_of(
                layer.workload.build(), device_spec, measure_config=measure_config,
            ),
            workload=layer.workload,
            layer_indices=[layer_index],
            multiplicity=layer.multiplicity,
            weight_flops=layer.workload.flops() * layer.multiplicity,
            max_trials=trials,
            trials_done=trials,
            best_gflops=result.gflops,
            kernel_seconds=result.kernel_seconds,
            config_dict=(
                config_to_dict(result.config) if result.config is not None else None
            ),
            curve=[(trials, result.kernel_seconds)],
            num_measurements=result.tuning.num_measurements,
            exploration_seconds=result.tuning.exploration_seconds,
            done=True,
            done_reason="uniform",
        )
        tasks.append(task)
        if records is not None and result.found:
            alias = SERVE_OPERATORS.get(layer.workload.operator, layer.workload.operator)
            records.add(TuningRecord(
                key=workload_key(alias, layer.workload.params, device),
                config=result.config, gflops=result.gflops,
                trials=trials, seed=seed,
                signature=task.signature,
            ))
        epilogue = _epilogue_seconds(
            layer.workload, device_spec, fused=bool(group.fused_elementwise)
        )
        layers.append(LayerResult(layer, result.kernel_seconds, epilogue, result.gflops))
    return NetworkTuneResult(
        network=network.name,
        device=device,
        method=method,
        mode="uniform",
        seed=seed,
        tasks=tasks,
        layers=layers,
        rounds=0,
        slices_run=len(tasks),
        trials_budget=trials * len(network.layers),
        trials_spent=trials * len(network.layers),
        total_measurements=sum(t.num_measurements for t in tasks),
        exploration_seconds=sum(t.exploration_seconds for t in tasks),
        wall_seconds=time.perf_counter() - start,
    )


def tune_network(
    network: Network,
    device_spec,
    trials: int = 25,
    method: str = "q",
    fuse: bool = True,
    seed: int = 0,
    allocate: bool = True,
    records: Optional[Union[RecordBook, str, Path]] = None,
    eval_cache: Optional[Union[EvalCache, str, Path]] = None,
    checkpoint_dir: Optional[Union[str, Path]] = None,
    resume: bool = False,
    chaos: Optional[NetworkChaos] = None,
    measure_config: Optional[MeasureConfig] = None,
    **scheduler_kwargs,
) -> NetworkTuneResult:
    """Tune a whole network through the task scheduler.

    Args:
        network: a :class:`~repro.nn.Network` (e.g. ``yolo_v1()``).
        device_spec: a device from :mod:`repro.model`.
        trials: the per-layer budget anchor.  The global budget is
            ``trials x len(network.layers)`` — exactly what uniform
            allocation spends — and the scheduler redistributes it:
            converged tasks stop early, high-gain tasks may run up to
            ``cap_boost x trials`` (default 2x).
        method: any :func:`repro.optimize.optimize` method.
        fuse: fuse elementwise epilogues into their producing kernels.
        seed: RNG seed — the whole run, allocation decisions included,
            is a pure function of it (plus the initial store state).
        allocate: ``False`` runs the flat uniform baseline with the same
            accounting (the comparison arm of ``bench_network.py``).
        records: a shared :class:`~repro.runtime.RecordBook` (or path):
            every improving slice is stamped with its signature, and new
            tasks warm-start from the best known schedule (exact
            signature hit, then same-family nearest shape).
        eval_cache: a shared :class:`~repro.runtime.EvalCache` (or
            cache directory) serving previously measured points across
            tasks and runs.
        checkpoint_dir: directory of the scheduler checkpoint plus the
            per-task slice checkpoints; required for ``resume``.
        resume: restore the scheduler snapshot (if any) and continue —
            a killed run resumes bit-identically, allocation decisions
            included.
        chaos: a :class:`NetworkChaos` kill script (tests).
        measure_config: measurement pipeline policy, folded into task
            signatures.
        **scheduler_kwargs: :class:`NetworkTaskScheduler` knobs
            (``slice_trials``, ``round_slots``, ``starve_rounds``,
            ``patience``, ``cap_boost``, ...) plus any
            :func:`~repro.optimize.optimize` tuner options.
    """
    if not allocate:
        # Scheduler-only knobs make no sense on the flat path.
        for knob in ("slice_trials", "round_slots", "starve_rounds", "patience",
                     "min_trials", "gain_window", "stale_rel", "cap_boost",
                     "budget_frac", "topup_frac", "max_restarts",
                     "restart_trials"):
            scheduler_kwargs.pop(knob, None)
        return _tune_uniform(
            network, device_spec, trials=trials, method=method, fuse=fuse,
            seed=seed, records=records, eval_cache=eval_cache,
            measure_config=measure_config, **scheduler_kwargs,
        )
    scheduler = NetworkTaskScheduler(
        network, device_spec, trials=trials, method=method, fuse=fuse,
        seed=seed, records=records, eval_cache=eval_cache,
        checkpoint_dir=checkpoint_dir, resume=resume, chaos=chaos,
        measure_config=measure_config, **scheduler_kwargs,
    )
    return scheduler.run()
