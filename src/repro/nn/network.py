"""Full-network case study (§6.6): YOLO-v1 and OverFeat.

A :class:`Network` is a sequence of convolution layers (with
multiplicities for repeated shapes).  Following the paper, the network is
partitioned into sub-graphs, elementwise epilogues (bias/ReLU) are fused
into their producing operator, and each fused operator is handed to
FlexTensor (or the AutoTVM baseline) for schedule optimization; end-to-end
time is the sum over layers of optimized kernel time plus, for unfused
epilogues, an extra elementwise memory pass.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ops.workloads import Workload, overfeat_layers, yolo_v1_layers


@dataclass(frozen=True)
class LayerSpec:
    """One distinct layer: a workload, how many times it repeats in the
    network, and its elementwise epilogue."""

    workload: Workload
    multiplicity: int = 1
    activation: str = "relu"


@dataclass
class Network:
    """An inference network as a list of distinct layers."""

    name: str
    layers: List[LayerSpec]

    @property
    def num_layers(self) -> int:
        """Total layer count including multiplicities."""
        return sum(layer.multiplicity for layer in self.layers)

    def total_flops(self) -> int:
        """FLOPs of one full inference pass."""
        return sum(l.workload.flops() * l.multiplicity for l in self.layers)


def yolo_v1(batch: int = 1) -> Network:
    """YOLO-v1: 24 convolution layers, 15 distinct shapes (Table 4)."""
    layers = [
        LayerSpec(workload, multiplicity)
        for workload, multiplicity in yolo_v1_layers(batch)
    ]
    return Network("YOLO-v1", layers)


def overfeat(batch: int = 1) -> Network:
    """OverFeat (fast): 5 convolution layers."""
    layers = [
        LayerSpec(workload, multiplicity)
        for workload, multiplicity in overfeat_layers(batch)
    ]
    return Network("OverFeat", layers)


@dataclass
class SubGraph:
    """A fusion group: one anchor operator plus fused elementwise tail."""

    anchor: LayerSpec
    fused_elementwise: Tuple[str, ...] = ()


def partition_network(network: Network, fuse: bool = True) -> List[SubGraph]:
    """Partition into sub-graphs and fuse elementwise epilogues (§6.6).

    With ``fuse=False`` every activation stays a separate elementwise
    kernel (charged a full memory round-trip at evaluation time).
    """
    groups = []
    for layer in network.layers:
        if fuse and layer.activation:
            groups.append(SubGraph(layer, (layer.activation,)))
        else:
            groups.append(SubGraph(layer, ()))
    return groups


@dataclass
class LayerResult:
    """Tuned timing of one distinct layer (kernel + epilogue)."""
    layer: LayerSpec
    kernel_seconds: float
    epilogue_seconds: float
    gflops: float

    @property
    def total_seconds(self) -> float:
        """Layer time across all its occurrences in the network."""
        return (self.kernel_seconds + self.epilogue_seconds) * self.layer.multiplicity


@dataclass
class NetworkResult:
    """End-to-end outcome: per-layer results and aggregate time."""
    network: str
    device: str
    method: str
    layers: List[LayerResult] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        """End-to-end inference time of the whole network."""
        return sum(l.total_seconds for l in self.layers)

    @property
    def gflops(self) -> float:
        """Aggregate throughput of the optimized network."""
        total_flops = sum(
            l.layer.workload.flops() * l.layer.multiplicity for l in self.layers
        )
        return total_flops / self.total_seconds / 1e9


def _epilogue_seconds(workload: Workload, device_spec, fused: bool) -> float:
    """Cost of the elementwise activation: free when fused into the
    producing kernel, a full read-modify-write pass otherwise."""
    if fused:
        return 0.0
    out = workload.build()
    # Element size follows the output dtype — an int8 workload moves a
    # quarter of the bytes a float32 one does.
    element_bytes = np.dtype(out.dtype).itemsize
    bytes_moved = out.size * element_bytes * 2
    bandwidth = getattr(device_spec, "bandwidth_gbs", None)
    if bandwidth is None:
        bandwidth = getattr(device_spec, "ddr_bandwidth_gbs")
    launch = getattr(device_spec, "kernel_launch_us", 5.0) * 1e-6
    return bytes_moved / (bandwidth * 1e9) + launch


def optimize_network(
    network: Network,
    device_spec,
    trials: int = 25,
    method: str = "q",
    fuse: bool = True,
    seed: int = 0,
    scheduler: str = "uniform",
    **tuner_kwargs,
) -> NetworkResult:
    """Optimize every distinct layer and assemble end-to-end time.

    ``method`` accepts the :func:`repro.optimize.optimize` methods plus
    ``"autotvm"`` for the template baseline.

    ``scheduler`` selects the trial allocation policy:

    - ``"uniform"`` (default): every distinct layer is tuned
      independently with an identical ``trials`` budget — the historical
      behavior.
    - ``"allocated"``: the network-level task scheduler
      (:func:`repro.nn.tuner.tune_network`) — layers deduped by operator
      signature, trial slices steered toward the tasks with the highest
      predicted end-to-end gain within the same global budget.  Not
      available for ``method="autotvm"``.
    """
    from ..baselines import autotvm_optimize
    from ..optimize import optimize

    if scheduler not in ("uniform", "allocated"):
        raise ValueError(f"unknown scheduler {scheduler!r}")
    if scheduler == "allocated":
        if method == "autotvm":
            raise ValueError("scheduler='allocated' requires an optimize() method")
        from .tuner import tune_network

        return tune_network(
            network, device_spec, trials=trials, method=method, fuse=fuse,
            seed=seed, **tuner_kwargs,
        ).to_network_result()

    groups = partition_network(network, fuse=fuse)
    result = NetworkResult(network.name, device_spec.name, method)
    for group in groups:
        layer = group.anchor
        output = layer.workload.build()
        if method == "autotvm":
            tuned = autotvm_optimize(output, device_spec, trials=trials, seed=seed)
            kernel_seconds = tuned.best_seconds
            gflops = tuned.best_performance
        else:
            opt = optimize(
                output, device_spec, trials=trials, method=method, seed=seed,
                **tuner_kwargs,
            )
            kernel_seconds = opt.kernel_seconds
            gflops = opt.gflops
        epilogue = _epilogue_seconds(
            layer.workload, device_spec, fused=bool(group.fused_elementwise)
        )
        result.layers.append(LayerResult(layer, kernel_seconds, epilogue, gflops))
    return result
