"""Loop-nest interpreter: executes scheduled programs for correctness.

The interpreter runs a :class:`~repro.schedule.Scheduled` loop nest exactly
as lowered — transformed loop order, fused/split indices, inlined producer
bodies — so semantic preservation of every schedule transformation is
directly testable against the numpy references in ``repro.ops``.

Annotations (parallel, vectorize, bind) do not change semantics; they are
executed as ordinary serial loops.  Tensorized loops are executed as one
"intrinsic call" per outer-loop point: all lane values of the covered
innermost loops are gathered first, then folded into the output in the
same order the scalar loops would have used, so an accepted tensorization
is bit-identical to the untensorized schedule.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

import numpy as np

from ..graph import get_graph
from ..ir import (
    ComputeOp,
    EvalError,
    PlaceholderOp,
    Reduce,
    Tensor,
    evaluate,
)
from ..schedule import Scheduled, TENSORIZE


class _InlineReader:
    """Presents an inlined compute op as an indexable buffer: reading
    element ``idx`` evaluates the producer's body at that point."""

    def __init__(self, op: ComputeOp, buffers: "_BufferSpace"):
        self._op = op
        self._buffers = buffers

    def __getitem__(self, idx):
        env = dict(zip(self._op.axes, idx))
        body = self._op.body
        if isinstance(body, Reduce):
            raise EvalError(f"cannot inline reduction node {self._op.name}")
        return evaluate(body, env, self._buffers)


class _BufferSpace:
    """Tensor->buffer mapping that transparently serves inlined producers."""

    def __init__(self, buffers: Dict[Tensor, np.ndarray], inlined):
        self._buffers = dict(buffers)
        self._inline_ops = {op.output: op for op in inlined}

    def __contains__(self, tensor: Tensor) -> bool:
        return tensor in self._buffers or tensor in self._inline_ops

    def __getitem__(self, tensor: Tensor):
        if tensor in self._buffers:
            return self._buffers[tensor]
        return _InlineReader(self._inline_ops[tensor], self)

    def __setitem__(self, tensor: Tensor, array: np.ndarray) -> None:
        self._buffers[tensor] = array


def execute_compute_op(op: ComputeOp, buffers) -> np.ndarray:
    """Execute one compute node naively (definition order) into a new array."""
    body = op.body
    out = np.zeros(op.output.shape, dtype=np.float64)
    spatial_ranges = [range(a.extent) for a in op.axes]
    if isinstance(body, Reduce):
        if body.combiner == "max":
            out.fill(-np.inf)
        reduce_ranges = [range(a.extent) for a in body.axes]
        for point in itertools.product(*spatial_ranges):
            env = dict(zip(op.axes, point))
            acc = body.identity
            for rpoint in itertools.product(*reduce_ranges):
                env.update(zip(body.axes, rpoint))
                value = evaluate(body.body, env, buffers)
                acc = acc + value if body.combiner == "sum" else max(acc, value)
            out[point] = acc
    else:
        for point in itertools.product(*spatial_ranges):
            env = dict(zip(op.axes, point))
            out[point] = evaluate(body, env, buffers)
    return out


def execute_reference(output: Tensor, inputs: Dict[str, np.ndarray]) -> np.ndarray:
    """Execute the *unscheduled* computation: every node in post order,
    in its definition loop order.  The semantic baseline."""
    graph = get_graph(output)
    buffers = _bind_inputs(graph, inputs)
    space = _BufferSpace(buffers, inlined=())
    for op in graph.compute_ops:
        space[op.output] = execute_compute_op(op, space)
    return space[output]


def execute_scheduled(
    scheduled: Scheduled,
    inputs: Dict[str, np.ndarray],
    graph=None,
) -> np.ndarray:
    """Execute a scheduled main node (plus any non-inlined producers).

    ``inputs`` maps placeholder names to numpy arrays.  Producer nodes not
    inlined by the schedule are materialized naively first; the main node
    then runs in its *transformed* loop order, reconstructing original
    indices through the schedule's index map.
    """
    op = scheduled.op
    graph = graph or get_graph(op.output)
    buffers = _bind_inputs(graph, inputs)
    space = _BufferSpace(buffers, inlined=scheduled.inlined)
    inlined_set = set(scheduled.inlined)
    for producer in graph.compute_ops:
        if producer is op or producer in inlined_set:
            continue
        space[producer.output] = execute_compute_op(producer, space)

    out = np.zeros(op.output.shape, dtype=np.float64)
    body = op.body
    is_reduce = isinstance(body, Reduce)
    if is_reduce and body.combiner == "max":
        out.fill(-np.inf)
    inner_body = body.body if is_reduce else body

    loop_vars = [loop.var for loop in scheduled.loops]
    ranges = [range(loop.extent) for loop in scheduled.loops]
    spatial_axes = op.axes
    index_map = scheduled.index_map

    def store(idx, value):
        if is_reduce:
            if body.combiner == "sum":
                out[idx] += value
            else:
                out[idx] = max(out[idx], value)
        else:
            out[idx] = value

    split = _tensorized_split(scheduled)
    if split is None:
        for point in itertools.product(*ranges):
            env = dict(zip(loop_vars, point))
            axis_env = {
                axis: evaluate(expr, env) for axis, expr in index_map.items()
            }
            store(tuple(axis_env[a] for a in spatial_axes),
                  evaluate(inner_body, axis_env, space))
        return out

    # Tensorized path: the covered innermost loops become one intrinsic
    # call per outer point — gather every lane's value, then fold the
    # batch in the exact order the scalar loops would have used.
    for opoint in itertools.product(*ranges[:split]):
        env = dict(zip(loop_vars[:split], opoint))
        lanes = []
        for ipoint in itertools.product(*ranges[split:]):
            env.update(zip(loop_vars[split:], ipoint))
            axis_env = {
                axis: evaluate(expr, env) for axis, expr in index_map.items()
            }
            lanes.append((tuple(axis_env[a] for a in spatial_axes),
                          evaluate(inner_body, axis_env, space)))
        for idx, value in lanes:
            store(idx, value)
    return out


def _tensorized_split(scheduled: Scheduled) -> Optional[int]:
    """Index of the first tensorize-annotated loop, or ``None``.

    Lowering only marks a contiguous innermost suffix (TEN003 rejects
    anything else), so one split point captures the whole intrinsic.
    """
    marks = [
        i for i, loop in enumerate(scheduled.loops)
        if loop.annotation == TENSORIZE
    ]
    return min(marks) if marks else None


def _bind_inputs(graph, inputs: Dict[str, np.ndarray]) -> Dict[Tensor, np.ndarray]:
    buffers: Dict[Tensor, np.ndarray] = {}
    for op in graph.placeholders:
        if op.name not in inputs:
            raise KeyError(f"missing input buffer for placeholder {op.name!r}")
        array = np.asarray(inputs[op.name], dtype=np.float64)
        if array.shape != op.output.shape:
            raise ValueError(
                f"input {op.name!r} has shape {array.shape}, expected {op.output.shape}"
            )
        buffers[op.output] = array
    return buffers


def random_inputs(output: Tensor, seed: int = 0) -> Dict[str, np.ndarray]:
    """Random input buffers for every placeholder of the computation."""
    rng = np.random.default_rng(seed)
    graph = get_graph(output)
    return {
        op.name: rng.standard_normal(op.output.shape)
        for op in graph.placeholders
    }
