"""Feature extraction from scheduled programs for the machine models.

The models need two things the schedule alone doesn't state directly:

* **tile footprints** — how many elements of each input a tile of the
  iteration space touches (determines shared-memory/BRAM usage, cache
  working sets and memory traffic), and
* **access strides** — the flat-memory stride of a given loop variable in
  each input (determines GPU coalescing and CPU vectorization quality).

Both are derived from the affine structure of the tensor index expressions
(``repro.ir.evalexpr``); non-affine accesses (e.g. BCM's modular indexing
or grouped convolution's ``k // group_size``) conservatively fall back to
whole-dimension footprints.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..ir import (
    ComputeOp,
    IterVar,
    Reduce,
    Tensor,
    affine_coefficients,
    collect_tensor_refs,
    stride_of,
)


def tensor_reads(op: ComputeOp):
    """All tensor-element reads in the op body (including duplicates).

    Memoized — the read set is a fixed property of the op, and the models
    ask for it on every candidate evaluation.
    """
    entry = _READS_CACHE.get(id(op))
    if entry is not None:
        return entry[0]
    body = op.body.body if isinstance(op.body, Reduce) else op.body
    reads = collect_tensor_refs(body)
    _READS_CACHE.put(id(op), reads, op)
    return reads


#: LRU capacity of the coefficient cache.  One entry per (op, tensor)
#: pair is plenty for any single tuning run; the cap keeps long
#: multi-workload sessions (hundreds of distinct ops) from growing the
#: cache — and its keep-alive pins — without bound.
COEFFICIENT_CACHE_CAP = 128


class _PinnedLRU:
    """Bounded LRU for id-keyed memoization of pure analysis queries.

    Values are stored together with the objects whose ``id()`` appears in
    the key, so those ids stay unique while (and only while) the entry is
    cached; eviction drops the pin with the entry (the same discipline as
    ``_COEFFICIENT_CACHE``).  ``get`` returns the ``(value, pins)`` entry
    or ``None``, so legitimately-``None`` values are representable.
    """

    __slots__ = ("cap", "data")

    def __init__(self, cap: int):
        self.cap = cap
        self.data: "OrderedDict" = OrderedDict()

    def get(self, key):
        entry = self.data.get(key)
        if entry is not None:
            self.data.move_to_end(key)
        return entry

    def put(self, key, value, pins) -> None:
        self.data[key] = (value, pins)
        while len(self.data) > self.cap:
            self.data.popitem(last=False)


# The performance models call these for every candidate point; the
# answers depend only on (op, tensor, tile/axis) identity, so memoizing
# them turns the per-point model evaluation into mostly table lookups
# (ISSUE #7's hot-path vectorization).
_FLOPS_CACHE = _PinnedLRU(COEFFICIENT_CACHE_CAP)
_READS_CACHE = _PinnedLRU(COEFFICIENT_CACHE_CAP)
_STRIDE_CACHE = _PinnedLRU(1024)
_FOOTPRINT_CACHE = _PinnedLRU(4096)

# Maps (id(op), id(tensor)) -> (result, op, tensor).  The op/tensor are
# stored in the value so their ids stay unique while (and only while)
# the entry is cached; eviction drops the pin together with the entry.
_COEFFICIENT_CACHE: "OrderedDict" = OrderedDict()


def access_coefficients(op: ComputeOp, tensor: Tensor):
    """Per-dimension affine coefficients of the op's first read of
    ``tensor`` over ``op.all_axes`` (None for non-affine dimensions).

    Cached (bounded LRU): the performance models call this for every
    candidate point, and the probing answer only depends on (op, tensor).
    """
    key = (id(op), id(tensor))
    cached = _COEFFICIENT_CACHE.get(key)
    if cached is not None:
        _COEFFICIENT_CACHE.move_to_end(key)
        return cached[0]
    axes = list(op.all_axes)
    refs = [r for r in tensor_reads(op) if r.tensor is tensor]
    if not refs:
        result = None
    else:
        ref = refs[0]
        result = [affine_coefficients(index, axes) for index in ref.indices]
    _COEFFICIENT_CACHE[key] = (result, op, tensor)
    while len(_COEFFICIENT_CACHE) > COEFFICIENT_CACHE_CAP:
        _COEFFICIENT_CACHE.popitem(last=False)
    return result


def tile_footprint(op: ComputeOp, tensor: Tensor, tile: Dict[IterVar, int]) -> int:
    """Elements of ``tensor`` touched by one tile of the iteration space.

    ``tile`` maps each axis of ``op`` to its tile extent; omitted axes
    default to extent 1.  For each tensor dimension the touched range is
    ``1 + Σ_axes |coeff| * (tile_extent - 1)`` (clipped to the dimension),
    the standard affine footprint bound; a non-affine dimension counts in
    full.
    """
    key = (id(op), id(tensor), tuple((id(a), e) for a, e in tile.items()))
    entry = _FOOTPRINT_CACHE.get(key)
    if entry is not None:
        return entry[0]
    per_dim = access_coefficients(op, tensor)
    if per_dim is None:
        footprint = 0
    else:
        axes = list(op.all_axes)
        footprint = 1
        for size, coeffs in zip(tensor.shape, per_dim):
            if coeffs is None:
                footprint *= size
                continue
            reach = 1
            for axis, coeff in zip(axes, coeffs[:-1]):
                extent = tile.get(axis, 1)
                reach += abs(coeff) * (extent - 1)
            footprint *= min(reach, size)
    _FOOTPRINT_CACHE.put(key, footprint, (op, tensor, tuple(tile)))
    return footprint


def reuse_factor(op: ComputeOp, tensor: Tensor, tile: Dict[IterVar, int]) -> float:
    """How many times each fetched element of ``tensor`` is used within a
    tile: tile iterations / footprint.  >1 means caching the tile pays."""
    iterations = 1
    for axis in op.all_axes:
        iterations *= tile.get(axis, 1)
    footprint = tile_footprint(op, tensor, tile)
    if footprint == 0:
        return 1.0
    return iterations / footprint


def access_stride(op: ComputeOp, tensor: Tensor, axis: IterVar) -> Optional[int]:
    """Flat row-major stride of ``axis`` in the op's read of ``tensor``.

    ``None`` means non-affine; ``0`` means the axis does not index the
    tensor (full reuse along it).
    """
    key = (id(op), id(tensor), id(axis))
    entry = _STRIDE_CACHE.get(key)
    if entry is not None:
        return entry[0]
    stride = _access_stride(op, tensor, axis)
    _STRIDE_CACHE.put(key, stride, (op, tensor, axis))
    return stride


def _access_stride(op: ComputeOp, tensor: Tensor, axis: IterVar) -> Optional[int]:
    per_dim = access_coefficients(op, tensor)
    if per_dim is None:
        return 0
    axes = list(op.all_axes)
    try:
        position = next(i for i, a in enumerate(axes) if a is axis)
    except StopIteration:
        return 0
    stride = 0
    row_major = 1
    for size, coeffs in zip(reversed(tensor.shape), reversed(per_dim)):
        if coeffs is None:
            return None
        stride += coeffs[position] * row_major
        row_major *= size
    return stride


def coalescing_efficiency(
    op: ComputeOp, tensor: Tensor, axis: Optional[IterVar], run_threads: int = 32
) -> float:
    """Fraction of a memory transaction usefully consumed by a warp whose
    consecutive threads step ``axis``, ``run_threads`` of them before the
    next-outer fused index changes.

    * stride 0 — all lanes read one address (broadcast): perfect;
    * stride 1 — ``run_threads`` consecutive floats per run: a 32-byte
      sector serves ``min(run_threads, 8)`` of them, so efficiency is
      ``run_threads / 8`` until runs fill whole sectors;
    * stride s — runs are s-spread, wasting a factor of ~s more;
    * non-affine — worst case, one useful word per sector.

    This is what makes *shape-adapted* thread tiling matter: putting 14 or
    28 threads on a width-28 axis yields long coalesced runs, while a
    power-of-two template is stuck at runs of 2 or 4 (§2.3's motivation).
    """
    floor = 1.0 / 8.0
    if axis is None:
        return floor
    stride = access_stride(op, tensor, axis)
    if stride is None:
        return floor
    stride = abs(stride)
    if stride == 0:
        return 1.0
    run = max(run_threads, 1)
    return min(1.0, max(floor, run / (8.0 * stride)))


def output_write_stride(op: ComputeOp, axis: IterVar) -> int:
    """Row-major stride of ``axis`` in the output write."""
    stride = 1
    position = None
    for i, a in enumerate(op.axes):
        if a is axis:
            position = i
            break
    if position is None:
        return 0
    for size in op.output.shape[position + 1 :]:
        stride *= size
    return stride


def flops_of(op: ComputeOp) -> int:
    """Total floating-point operations of the node (MAC = 2)."""
    from ..ir import count_flops_per_point

    entry = _FLOPS_CACHE.get(id(op))
    if entry is not None:
        return entry[0]
    total = op.output.size
    for axis in op.reduce_axes:
        total *= axis.extent
    total *= count_flops_per_point(op.body)
    _FLOPS_CACHE.put(id(op), total, op)
    return total


def bytes_of(tensor: Tensor, dtype_bytes: int = 4) -> int:
    return tensor.size * dtype_bytes


def read_tensors(op: ComputeOp) -> List[Tensor]:
    """Distinct tensors read by the op body, in first-read order."""
    tensors: List[Tensor] = []
    for ref in tensor_reads(op):
        if not any(ref.tensor is t for t in tensors):
            tensors.append(ref.tensor)
    return tensors


def point_features(space, point) -> np.ndarray:
    """Surrogate feature vector of one schedule-space point.

    The learned screen (``repro.explore.surrogate``) needs features that
    correlate with modeled kernel time, not just with knob identity, so
    this combines:

    * the space's per-knob one-hot encoding (what the Q-network sees),
    * log2 trip counts of every split factor plus each axis's inner-tile
      extent (the loop structure the models price),
    * annotation signals — log unroll depth, vectorize/shared flags,
      fuse levels, a reorder one-hot,
    * per-input-tensor memory behaviour under the chosen inner tile:
      log tile footprint, log reuse factor, the innermost axis's flat
      access stride, and its coalescing efficiency.

    Deterministic, fixed-length per space, and cheap: the affine
    coefficients behind footprints/strides come from the bounded
    :func:`access_coefficients` cache.

    ``space`` is duck-typed (``op``, ``decode``, ``features``) to keep
    ``repro.codegen`` free of an import cycle with ``repro.space``.
    """
    op: ComputeOp = space.op
    config = space.decode(point)
    values: List[float] = [float(v) for v in space.features(point)]

    tile: Dict[IterVar, int] = {}
    for axis, factors in zip(op.axes, config.spatial_factors):
        inner = 1
        for factor in factors[1:]:
            inner *= factor
        tile[axis] = inner
        values.extend(math.log2(max(factor, 1)) for factor in factors)
        values.append(math.log2(max(inner, 1)))
    for axis, factors in zip(op.reduce_axes, config.reduce_factors):
        inner = 1
        for factor in factors[1:]:
            inner *= factor
        tile[axis] = inner
        values.extend(math.log2(max(factor, 1)) for factor in factors)
        values.append(math.log2(max(inner, 1)))

    values.append(math.log2(1 + config.unroll_depth))
    values.append(1.0 if config.vectorize else 0.0)
    values.append(1.0 if config.use_shared else 0.0)
    values.append(float(config.fuse_levels))
    values.extend(1.0 if config.reorder == choice else 0.0 for choice in (0, 1, 2))
    # Only spaces that actually expose the tensorize knob get the feature:
    # appending a constant 0.0 to every existing space would shift GBT
    # splits and perturb pinned trajectories for no information.
    if any(k.name == "tensorize" for k in getattr(space, "knobs", ())):
        from ..analysis.intrin import intrinsic_feature

        values.append(intrinsic_feature(config.tensorize))

    innermost = op.axes[-1] if op.axes else None
    for tensor in read_tensors(op):
        footprint = tile_footprint(op, tensor, tile)
        values.append(math.log1p(footprint))
        values.append(math.log1p(reuse_factor(op, tensor, tile)))
        stride = access_stride(op, tensor, innermost) if innermost is not None else 0
        values.append(-1.0 if stride is None else math.log1p(abs(stride)))
        values.append(coalescing_efficiency(op, tensor, innermost))
    return np.asarray(values, dtype=np.float64)


#: LRU capacity of the per-space batch-featurization plan cache.
_BATCH_PLAN_CACHE_CAP = 16

# Maps id(space) -> (plan, space); the space rides along to pin its id.
_BATCH_PLAN_CACHE: "OrderedDict" = OrderedDict()


def _exact_log1p(values: np.ndarray) -> np.ndarray:
    """``math.log1p`` applied elementwise through a unique-value table.

    The scalar featurizer uses ``math.log1p``; ``np.log1p`` may route
    through a different libm and disagree in the last bit, so the batch
    path maps each *distinct* value through ``math.log1p`` and gathers —
    bit-identical by construction, and cheap because tile footprints and
    reuse factors repeat heavily within a batch.
    """
    uniques, inverse = np.unique(values, return_inverse=True)
    table = np.array([math.log1p(float(v)) for v in uniques], dtype=np.float64)
    return table[inverse.reshape(values.shape)]


class _BatchFeaturePlan:
    """Per-space compilation of :func:`point_features` into array ops.

    Everything that depends only on the space (knob feature encodings,
    per-choice log2 tables, affine coefficients, per-tensor stride and
    coalescing constants) is computed once with the *scalar* helpers, so
    each term is the exact float the scalar featurizer would emit; the
    per-point work reduces to integer gathers, one integer matrix product
    per tensor dimension, and two exact-log1p gathers per tensor.
    """

    def __init__(self, space):
        op: ComputeOp = space.op
        self.space = space
        self.num_knobs = len(space.knobs)
        # Block 1: the space's own per-knob encoding.
        self.knob_tables = [
            np.array([knob.features(i) for i in range(len(knob.choices))],
                     dtype=np.float64)
            for knob in space.knobs
        ]
        names = [knob.name for knob in space.knobs]
        # Blocks 2-3: per split knob, [log2(f) for f in factors] + [log2(inner)],
        # plus the integer inner-tile extent feeding the tensor terms.
        self.split_columns: List[Tuple[int, np.ndarray]] = []
        self.inner_extent_columns: List[Tuple[int, np.ndarray]] = []
        axis_names = [f"sp{i}" for i in range(len(op.axes))] + [
            f"re{i}" for i in range(len(op.reduce_axes))
        ]
        for name in axis_names:
            ki = names.index(name)
            knob = space.knobs[ki]
            rows = []
            inners = []
            for factors in knob.choices:
                inner = 1
                for factor in factors[1:]:
                    inner *= factor
                rows.append(
                    [math.log2(max(f, 1)) for f in factors]
                    + [math.log2(max(inner, 1))]
                )
                inners.append(inner)
            self.split_columns.append((ki, np.array(rows, dtype=np.float64)))
            self.inner_extent_columns.append((ki, np.array(inners, dtype=np.int64)))

        def choice_table(name: str, encode, default_row) -> Tuple[Optional[int], np.ndarray]:
            if name not in names:
                return None, np.array(default_row, dtype=np.float64)
            ki = names.index(name)
            rows = [encode(value) for value in space.knobs[ki].choices]
            return ki, np.array(rows, dtype=np.float64)

        # Blocks 4-8: annotation knobs (decode() defaults when absent).
        self.annotation_tables = [
            choice_table("unroll", lambda v: [math.log2(1 + v)], [0.0]),
            choice_table("vectorize", lambda v: [1.0 if v else 0.0], [1.0]),
            choice_table("shared", lambda v: [1.0 if v else 0.0], [1.0]),
            choice_table("fuse", lambda v: [float(v)], [1.0]),
            choice_table(
                "reorder",
                lambda v: [1.0 if v == choice else 0.0 for choice in (0, 1, 2)],
                [1.0, 0.0, 0.0],
            ),
        ]
        if "tensorize" in names:
            from ..analysis.intrin import intrinsic_feature

            self.annotation_tables.append(
                choice_table("tensorize", lambda v: [intrinsic_feature(v)], [0.0])
            )
        # Tensor block: affine structure and per-tensor constants.
        axes = list(op.all_axes)
        innermost = op.axes[-1] if op.axes else None
        self.tensor_terms = []
        for tensor in read_tensors(op):
            stride = (
                access_stride(op, tensor, innermost) if innermost is not None else 0
            )
            stride_value = -1.0 if stride is None else math.log1p(abs(stride))
            coalescing = coalescing_efficiency(op, tensor, innermost)
            per_dim = access_coefficients(op, tensor)
            if per_dim is None:
                # No read of this tensor: footprint 0, reuse pinned at 1.
                self.tensor_terms.append(
                    ("const", math.log1p(0), math.log1p(1.0), stride_value, coalescing)
                )
                continue
            dims = []
            for size, coeffs in zip(tensor.shape, per_dim):
                if coeffs is None:
                    dims.append(("full", int(size), None, 0))
                    continue
                weights = np.array(
                    [abs(c) for c in coeffs[: len(axes)]], dtype=np.int64
                )
                offset = 1 - int(weights.sum())
                dims.append(("affine", int(size), weights, offset))
            self.tensor_terms.append(("affine", dims, stride_value, coalescing))
        self.feature_size = None  # filled by the first batch

    def __call__(self, points) -> np.ndarray:
        op: ComputeOp = self.space.op
        chosen = np.asarray([list(p) for p in points], dtype=np.intp)
        if chosen.size == 0:
            chosen = chosen.reshape(0, self.num_knobs)
        blocks: List[np.ndarray] = []
        for ki, table in enumerate(self.knob_tables):
            blocks.append(table[chosen[:, ki]])
        for ki, table in self.split_columns:
            blocks.append(table[chosen[:, ki]])
        for ki, table in self.annotation_tables:
            if ki is None:
                blocks.append(np.broadcast_to(table, (len(chosen), table.shape[-1])))
            else:
                blocks.append(table[chosen[:, ki]])
        if self.tensor_terms:
            extents = np.empty((len(chosen), len(self.inner_extent_columns)),
                               dtype=np.int64)
            for j, (ki, inners) in enumerate(self.inner_extent_columns):
                extents[:, j] = inners[chosen[:, ki]]
            iterations = extents.prod(axis=1)
            for term in self.tensor_terms:
                if term[0] == "const":
                    _kind, log_fp, log_reuse, stride_value, coalescing = term
                    blocks.append(np.broadcast_to(
                        np.array([log_fp, log_reuse, stride_value, coalescing]),
                        (len(chosen), 4),
                    ))
                    continue
                _kind, dims, stride_value, coalescing = term
                footprint = np.ones(len(chosen), dtype=np.int64)
                for kind, size, weights, offset in dims:
                    if kind == "full":
                        footprint *= size
                        continue
                    reach = extents @ weights + offset
                    footprint *= np.minimum(reach, size)
                blocks.append(np.stack(
                    [
                        _exact_log1p(footprint),
                        _exact_log1p(iterations / footprint),
                        np.full(len(chosen), stride_value),
                        np.full(len(chosen), coalescing),
                    ],
                    axis=1,
                ))
        matrix = np.hstack(blocks) if blocks else np.zeros((len(chosen), 0))
        self.feature_size = matrix.shape[1]
        return matrix


def batch_point_features(space, points) -> np.ndarray:
    """Vectorized :func:`point_features`: one (n_points, n_features)
    matrix, each row **bit-identical** to ``point_features(space, p)``.

    Per-space invariants (affine coefficients, read-tensor order, axis
    lists, per-choice log tables) are compiled once into a cached
    :class:`_BatchFeaturePlan`; the per-point cost is integer gathers and
    one small matrix product per tensor dimension instead of a
    ``decode()`` + Python loop round trip per candidate.  The parity is
    pinned by ``tests/test_hotpath_parity.py`` across gemm/conv2d spaces
    on every target.
    """
    key = id(space)
    cached = _BATCH_PLAN_CACHE.get(key)
    if cached is not None and cached[1] is space:
        _BATCH_PLAN_CACHE.move_to_end(key)
        plan = cached[0]
    else:
        plan = _BatchFeaturePlan(space)
        _BATCH_PLAN_CACHE[key] = (plan, space)
        while len(_BATCH_PLAN_CACHE) > _BATCH_PLAN_CACHE_CAP:
            _BATCH_PLAN_CACHE.popitem(last=False)
    return plan(points)
