"""Feature extraction from scheduled programs for the machine models.

The models need two things the schedule alone doesn't state directly:

* **tile footprints** — how many elements of each input a tile of the
  iteration space touches (determines shared-memory/BRAM usage, cache
  working sets and memory traffic), and
* **access strides** — the flat-memory stride of a given loop variable in
  each input (determines GPU coalescing and CPU vectorization quality).

Both are derived from the affine structure of the tensor index expressions
(``repro.ir.evalexpr``); non-affine accesses (e.g. BCM's modular indexing
or grouped convolution's ``k // group_size``) conservatively fall back to
whole-dimension footprints.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Dict, List, Optional

import numpy as np

from ..ir import (
    ComputeOp,
    IterVar,
    Reduce,
    Tensor,
    affine_coefficients,
    collect_tensor_refs,
    stride_of,
)


def tensor_reads(op: ComputeOp):
    """All tensor-element reads in the op body (including duplicates)."""
    body = op.body.body if isinstance(op.body, Reduce) else op.body
    return collect_tensor_refs(body)


#: LRU capacity of the coefficient cache.  One entry per (op, tensor)
#: pair is plenty for any single tuning run; the cap keeps long
#: multi-workload sessions (hundreds of distinct ops) from growing the
#: cache — and its keep-alive pins — without bound.
COEFFICIENT_CACHE_CAP = 128

# Maps (id(op), id(tensor)) -> (result, op, tensor).  The op/tensor are
# stored in the value so their ids stay unique while (and only while)
# the entry is cached; eviction drops the pin together with the entry.
_COEFFICIENT_CACHE: "OrderedDict" = OrderedDict()


def access_coefficients(op: ComputeOp, tensor: Tensor):
    """Per-dimension affine coefficients of the op's first read of
    ``tensor`` over ``op.all_axes`` (None for non-affine dimensions).

    Cached (bounded LRU): the performance models call this for every
    candidate point, and the probing answer only depends on (op, tensor).
    """
    key = (id(op), id(tensor))
    cached = _COEFFICIENT_CACHE.get(key)
    if cached is not None:
        _COEFFICIENT_CACHE.move_to_end(key)
        return cached[0]
    axes = list(op.all_axes)
    refs = [r for r in tensor_reads(op) if r.tensor is tensor]
    if not refs:
        result = None
    else:
        ref = refs[0]
        result = [affine_coefficients(index, axes) for index in ref.indices]
    _COEFFICIENT_CACHE[key] = (result, op, tensor)
    while len(_COEFFICIENT_CACHE) > COEFFICIENT_CACHE_CAP:
        _COEFFICIENT_CACHE.popitem(last=False)
    return result


def tile_footprint(op: ComputeOp, tensor: Tensor, tile: Dict[IterVar, int]) -> int:
    """Elements of ``tensor`` touched by one tile of the iteration space.

    ``tile`` maps each axis of ``op`` to its tile extent; omitted axes
    default to extent 1.  For each tensor dimension the touched range is
    ``1 + Σ_axes |coeff| * (tile_extent - 1)`` (clipped to the dimension),
    the standard affine footprint bound; a non-affine dimension counts in
    full.
    """
    per_dim = access_coefficients(op, tensor)
    if per_dim is None:
        return 0
    axes = list(op.all_axes)
    footprint = 1
    for size, coeffs in zip(tensor.shape, per_dim):
        if coeffs is None:
            footprint *= size
            continue
        reach = 1
        for axis, coeff in zip(axes, coeffs[:-1]):
            extent = tile.get(axis, 1)
            reach += abs(coeff) * (extent - 1)
        footprint *= min(reach, size)
    return footprint


def reuse_factor(op: ComputeOp, tensor: Tensor, tile: Dict[IterVar, int]) -> float:
    """How many times each fetched element of ``tensor`` is used within a
    tile: tile iterations / footprint.  >1 means caching the tile pays."""
    iterations = 1
    for axis in op.all_axes:
        iterations *= tile.get(axis, 1)
    footprint = tile_footprint(op, tensor, tile)
    if footprint == 0:
        return 1.0
    return iterations / footprint


def access_stride(op: ComputeOp, tensor: Tensor, axis: IterVar) -> Optional[int]:
    """Flat row-major stride of ``axis`` in the op's read of ``tensor``.

    ``None`` means non-affine; ``0`` means the axis does not index the
    tensor (full reuse along it).
    """
    per_dim = access_coefficients(op, tensor)
    if per_dim is None:
        return 0
    axes = list(op.all_axes)
    try:
        position = next(i for i, a in enumerate(axes) if a is axis)
    except StopIteration:
        return 0
    stride = 0
    row_major = 1
    for size, coeffs in zip(reversed(tensor.shape), reversed(per_dim)):
        if coeffs is None:
            return None
        stride += coeffs[position] * row_major
        row_major *= size
    return stride


def coalescing_efficiency(
    op: ComputeOp, tensor: Tensor, axis: Optional[IterVar], run_threads: int = 32
) -> float:
    """Fraction of a memory transaction usefully consumed by a warp whose
    consecutive threads step ``axis``, ``run_threads`` of them before the
    next-outer fused index changes.

    * stride 0 — all lanes read one address (broadcast): perfect;
    * stride 1 — ``run_threads`` consecutive floats per run: a 32-byte
      sector serves ``min(run_threads, 8)`` of them, so efficiency is
      ``run_threads / 8`` until runs fill whole sectors;
    * stride s — runs are s-spread, wasting a factor of ~s more;
    * non-affine — worst case, one useful word per sector.

    This is what makes *shape-adapted* thread tiling matter: putting 14 or
    28 threads on a width-28 axis yields long coalesced runs, while a
    power-of-two template is stuck at runs of 2 or 4 (§2.3's motivation).
    """
    floor = 1.0 / 8.0
    if axis is None:
        return floor
    stride = access_stride(op, tensor, axis)
    if stride is None:
        return floor
    stride = abs(stride)
    if stride == 0:
        return 1.0
    run = max(run_threads, 1)
    return min(1.0, max(floor, run / (8.0 * stride)))


def output_write_stride(op: ComputeOp, axis: IterVar) -> int:
    """Row-major stride of ``axis`` in the output write."""
    stride = 1
    position = None
    for i, a in enumerate(op.axes):
        if a is axis:
            position = i
            break
    if position is None:
        return 0
    for size in op.output.shape[position + 1 :]:
        stride *= size
    return stride


def flops_of(op: ComputeOp) -> int:
    """Total floating-point operations of the node (MAC = 2)."""
    from ..ir import count_flops_per_point

    total = op.output.size
    for axis in op.reduce_axes:
        total *= axis.extent
    return total * count_flops_per_point(op.body)


def bytes_of(tensor: Tensor, dtype_bytes: int = 4) -> int:
    return tensor.size * dtype_bytes


def read_tensors(op: ComputeOp) -> List[Tensor]:
    """Distinct tensors read by the op body, in first-read order."""
    tensors: List[Tensor] = []
    for ref in tensor_reads(op):
        if not any(ref.tensor is t for t in tensors):
            tensors.append(ref.tensor)
    return tensors


def point_features(space, point) -> np.ndarray:
    """Surrogate feature vector of one schedule-space point.

    The learned screen (``repro.explore.surrogate``) needs features that
    correlate with modeled kernel time, not just with knob identity, so
    this combines:

    * the space's per-knob one-hot encoding (what the Q-network sees),
    * log2 trip counts of every split factor plus each axis's inner-tile
      extent (the loop structure the models price),
    * annotation signals — log unroll depth, vectorize/shared flags,
      fuse levels, a reorder one-hot,
    * per-input-tensor memory behaviour under the chosen inner tile:
      log tile footprint, log reuse factor, the innermost axis's flat
      access stride, and its coalescing efficiency.

    Deterministic, fixed-length per space, and cheap: the affine
    coefficients behind footprints/strides come from the bounded
    :func:`access_coefficients` cache.

    ``space`` is duck-typed (``op``, ``decode``, ``features``) to keep
    ``repro.codegen`` free of an import cycle with ``repro.space``.
    """
    op: ComputeOp = space.op
    config = space.decode(point)
    values: List[float] = [float(v) for v in space.features(point)]

    tile: Dict[IterVar, int] = {}
    for axis, factors in zip(op.axes, config.spatial_factors):
        inner = 1
        for factor in factors[1:]:
            inner *= factor
        tile[axis] = inner
        values.extend(math.log2(max(factor, 1)) for factor in factors)
        values.append(math.log2(max(inner, 1)))
    for axis, factors in zip(op.reduce_axes, config.reduce_factors):
        inner = 1
        for factor in factors[1:]:
            inner *= factor
        tile[axis] = inner
        values.extend(math.log2(max(factor, 1)) for factor in factors)
        values.append(math.log2(max(inner, 1)))

    values.append(math.log2(1 + config.unroll_depth))
    values.append(1.0 if config.vectorize else 0.0)
    values.append(1.0 if config.use_shared else 0.0)
    values.append(float(config.fuse_levels))
    values.extend(1.0 if config.reorder == choice else 0.0 for choice in (0, 1, 2))

    innermost = op.axes[-1] if op.axes else None
    for tensor in read_tensors(op):
        footprint = tile_footprint(op, tensor, tile)
        values.append(math.log1p(footprint))
        values.append(math.log1p(reuse_factor(op, tensor, tile)))
        stride = access_stride(op, tensor, innermost) if innermost is not None else 0
        values.append(-1.0 if stride is None else math.log1p(abs(stride)))
        values.append(coalescing_efficiency(op, tensor, innermost))
    return np.asarray(values, dtype=np.float64)
