"""Source-code generation from scheduled loop nests.

Two backends:

* :func:`emit_python` / :func:`compile_python` — real, executable Python:
  the transformed loop nest as nested ``for`` loops over numpy buffers.
  This is the "generated low-level code" of the reproduction; it must (and
  is tested to) agree with the interpreter and the numpy references.
* :func:`emit_pseudo` — CUDA/C/HLS-flavoured pseudo-code for humans,
  showing how loops map to blocks/threads/PEs on each target.
"""

from __future__ import annotations

from typing import Dict, List

import numpy as np

from ..graph import get_graph
from ..ir import (
    And,
    BinaryOp,
    Compare,
    ComputeOp,
    Condition,
    Expr,
    FloatImm,
    FloorDiv,
    IntImm,
    IterVar,
    Max,
    Min,
    Mod,
    Or,
    Reduce,
    Select,
    TensorRef,
    Var,
)
from ..schedule import (
    BLOCK_X,
    PARALLEL,
    PE_PARALLEL,
    Scheduled,
    TENSORIZE,
    THREAD_X,
    UNROLL,
    VECTORIZE,
    VTHREAD,
)

_ANNOTATION_COMMENT = {
    BLOCK_X: "bind blockIdx.x",
    THREAD_X: "bind threadIdx.x",
    VTHREAD: "virtual thread",
    PARALLEL: "parallel",
    VECTORIZE: "vectorize",
    UNROLL: "unroll",
    PE_PARALLEL: "PE array",
    TENSORIZE: "tensorize intrinsic",
}


def expr_to_python(expr: Expr, env: Dict, inlined: Dict) -> str:
    """Render an expression as Python source.

    ``env`` maps variables to source strings; ``inlined`` maps tensors to
    their producer :class:`ComputeOp` whose body is expanded in place.
    """
    if isinstance(expr, IntImm):
        return str(expr.value)
    if isinstance(expr, FloatImm):
        return repr(expr.value)
    if isinstance(expr, (Var, IterVar)):
        try:
            return env[expr]
        except KeyError:
            raise KeyError(f"unbound variable {expr.name!r} during codegen") from None
    from ..ir import Unary

    if isinstance(expr, Unary):
        return f"math.{expr.fn}({expr_to_python(expr.a, env, inlined)})"
    if isinstance(expr, Min):
        return f"min({expr_to_python(expr.a, env, inlined)}, {expr_to_python(expr.b, env, inlined)})"
    if isinstance(expr, Max):
        return f"max({expr_to_python(expr.a, env, inlined)}, {expr_to_python(expr.b, env, inlined)})"
    if isinstance(expr, BinaryOp):
        return (
            f"({expr_to_python(expr.a, env, inlined)} {expr.symbol} "
            f"{expr_to_python(expr.b, env, inlined)})"
        )
    if isinstance(expr, Select):
        return (
            f"({expr_to_python(expr.then_value, env, inlined)} "
            f"if {condition_to_python(expr.condition, env, inlined)} "
            f"else {expr_to_python(expr.else_value, env, inlined)})"
        )
    if isinstance(expr, TensorRef):
        indices = [expr_to_python(i, env, inlined) for i in expr.indices]
        tensor = expr.tensor
        if tensor in inlined:
            producer = inlined[tensor]
            inner_env = dict(env)
            for axis, index_src in zip(producer.axes, indices):
                inner_env[axis] = f"({index_src})"
            return expr_to_python(producer.body, inner_env, inlined)
        return f"{tensor.name}[{', '.join(indices)}]"
    if isinstance(expr, Reduce):
        raise TypeError("Reduce must be handled by the loop emitter")
    raise TypeError(f"unknown expression node {expr!r}")


def condition_to_python(cond: Condition, env: Dict, inlined: Dict) -> str:
    if isinstance(cond, Compare):
        return (
            f"({expr_to_python(cond.a, env, inlined)} {cond.op} "
            f"{expr_to_python(cond.b, env, inlined)})"
        )
    if isinstance(cond, And):
        return f"({condition_to_python(cond.a, env, inlined)} and {condition_to_python(cond.b, env, inlined)})"
    if isinstance(cond, Or):
        return f"({condition_to_python(cond.a, env, inlined)} or {condition_to_python(cond.b, env, inlined)})"
    raise TypeError(f"unknown condition node {cond!r}")


def emit_python(scheduled: Scheduled, function_name: str = "kernel") -> str:
    """Generate executable Python for the scheduled main node.

    The function signature is ``kernel(buffers)`` where ``buffers`` maps
    tensor names (placeholders and materialized producers) to numpy
    arrays; it returns the output array.
    """
    op = scheduled.op
    body = op.body
    is_reduce = isinstance(body, Reduce)
    inner_body = body.body if is_reduce else body
    inlined = {producer.output: producer for producer in scheduled.inlined}

    lines: List[str] = [f"def {function_name}(buffers):"]
    graph = get_graph(op.output)
    needed = set()
    for producer in graph.operations:
        if producer is op:
            continue
        if isinstance(producer, ComputeOp) and producer in set(scheduled.inlined):
            continue
        needed.add(producer.output)
    # Only bind tensors actually read (transitively through inlining).
    for tensor in sorted(needed, key=lambda t: t.name):
        lines.append(f"    {tensor.name} = buffers[{tensor.name!r}]")
    init = "-float('inf')" if is_reduce and body.combiner == "max" else "0.0"
    shape = ", ".join(str(s) for s in op.output.shape)
    if init == "0.0":
        lines.append(f"    out = np.zeros(({shape},))")
    else:
        lines.append(f"    out = np.full(({shape},), {init})")

    indent = "    "
    env: Dict = {}
    for loop in scheduled.loops:
        comment = _ANNOTATION_COMMENT.get(loop.annotation)
        suffix = f"  # {comment}" if comment else ""
        var_src = loop.var.name.replace(".", "_")
        env[loop.var] = var_src
        lines.append(f"{indent}for {var_src} in range({loop.extent}):{suffix}")
        indent += "    "
    # Reconstruct the original iteration indices.
    axis_env: Dict = {}
    for axis in op.all_axes:
        src = expr_to_python(scheduled.index_map[axis], env, {})
        axis_src = axis.name.replace(".", "_")
        lines.append(f"{indent}{axis_src} = {src}")
        axis_env[axis] = axis_src
    out_idx = ", ".join(axis_env[a] for a in op.axes)
    value = expr_to_python(inner_body, axis_env, inlined)
    if is_reduce and body.combiner == "sum":
        lines.append(f"{indent}out[{out_idx}] += {value}")
    elif is_reduce:
        lines.append(f"{indent}out[{out_idx}] = max(out[{out_idx}], {value})")
    else:
        lines.append(f"{indent}out[{out_idx}] = {value}")
    lines.append("    return out")
    return "\n".join(lines)


def compile_python(scheduled: Scheduled, function_name: str = "kernel"):
    """Compile the generated Python and return the callable."""
    source = emit_python(scheduled, function_name)
    import math

    namespace = {"np": np, "math": math}
    exec(compile(source, f"<generated {scheduled.op.name}>", "exec"), namespace)
    return namespace[function_name]


def run_generated(scheduled: Scheduled, inputs: Dict[str, np.ndarray]) -> np.ndarray:
    """Materialize non-inlined producers, then run the generated kernel."""
    from .interp import _bind_inputs, _BufferSpace, execute_compute_op

    op = scheduled.op
    graph = get_graph(op.output)
    buffers = _bind_inputs(graph, inputs)
    space = _BufferSpace(buffers, inlined=scheduled.inlined)
    named: Dict[str, np.ndarray] = {t.name: b for t, b in buffers.items()}
    inlined_set = set(scheduled.inlined)
    for producer in graph.compute_ops:
        if producer is op or producer in inlined_set:
            continue
        array = execute_compute_op(producer, space)
        space[producer.output] = array
        named[producer.output.name] = array
    kernel = compile_python(scheduled)
    return kernel(named)


_TARGET_HEADER = {
    "gpu": "// CUDA-like pseudo-code (each blockIdx/threadIdx loop is a hardware index)",
    "cpu": "// C-like pseudo-code (parallel = OpenMP worksharing, vectorize = SIMD)",
    "fpga": "// HLS-like pseudo-code (PE loop unrolled into the processing-element array)",
}


def emit_pseudo(scheduled: Scheduled) -> str:
    """Human-readable target-flavoured pseudo-code of the schedule."""
    op = scheduled.op
    lines = [_TARGET_HEADER.get(scheduled.target, "//"), f"// kernel {op.name}"]
    for tensor in scheduled.cached_tensors:
        scope = "__shared__" if scheduled.target == "gpu" else "local_buffer"
        lines.append(f"{scope} float {tensor.name}_tile[...];")
    indent = ""
    for loop in scheduled.loops:
        note = _ANNOTATION_COMMENT.get(loop.annotation, "")
        pragma = f"  // {note}" if note else ""
        lines.append(f"{indent}for (int {loop.var.name.replace('.', '_')} = 0; "
                     f"< {loop.extent}; ++){pragma}")
        indent += "  "
    out_idx = ", ".join(a.name for a in op.axes)
    lines.append(f"{indent}{op.name}[{out_idx}] (+)= ...;")
    return "\n".join(lines)
