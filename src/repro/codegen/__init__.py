"""Code generation and execution of scheduled programs."""

from .features import (
    access_stride,
    batch_point_features,
    bytes_of,
    coalescing_efficiency,
    flops_of,
    output_write_stride,
    point_features,
    read_tensors,
    reuse_factor,
    tensor_reads,
    tile_footprint,
)
from .interp import (
    execute_compute_op,
    execute_reference,
    execute_scheduled,
    random_inputs,
)
from .pycodegen import (
    compile_python,
    emit_pseudo,
    emit_python,
    expr_to_python,
    run_generated,
)

__all__ = [
    "access_stride", "batch_point_features", "bytes_of",
    "coalescing_efficiency", "compile_python",
    "emit_pseudo", "emit_python", "execute_compute_op", "execute_reference",
    "execute_scheduled", "expr_to_python", "flops_of", "output_write_stride",
    "point_features", "random_inputs", "read_tensors", "reuse_factor",
    "run_generated", "tensor_reads", "tile_footprint",
]
