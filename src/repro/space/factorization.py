"""Integer factorization utilities for split-factor enumeration (§4.2).

FlexTensor prunes split parameters to *divisible* splits: the choices for
splitting a loop of extent L into N parts are exactly the ordered
N-factorizations of L.  The neighborhood structure of the rearranged
space moves factor mass between two positions: the neighbor of
``[f1..fN]`` at direction ``(i, j)`` multiplies ``f_i`` and divides
``f_j`` by the same prime.
"""

from __future__ import annotations

from functools import lru_cache
from typing import List, Optional, Tuple


@lru_cache(maxsize=None)
def prime_factors(n: int) -> Tuple[int, ...]:
    """Prime factorization of ``n`` (with multiplicity, ascending)."""
    if n < 1:
        raise ValueError("n must be positive")
    factors = []
    remaining = n
    divisor = 2
    while divisor * divisor <= remaining:
        while remaining % divisor == 0:
            factors.append(divisor)
            remaining //= divisor
        divisor += 1 if divisor == 2 else 2
    if remaining > 1:
        factors.append(remaining)
    return tuple(factors)


@lru_cache(maxsize=None)
def divisors(n: int) -> Tuple[int, ...]:
    """All positive divisors of ``n``, ascending."""
    small, large = [], []
    d = 1
    while d * d <= n:
        if n % d == 0:
            small.append(d)
            if d != n // d:
                large.append(n // d)
        d += 1
    return tuple(small + large[::-1])


@lru_cache(maxsize=None)
def factorizations(n: int, parts: int) -> Tuple[Tuple[int, ...], ...]:
    """All ordered tuples of ``parts`` positive integers with product ``n``.

    The count is ``Π_p C(e_p + parts - 1, parts - 1)`` over the prime
    exponents of ``n``; e.g. 1024 into 4 parts gives 286 choices.
    """
    if parts < 1:
        raise ValueError("parts must be >= 1")
    if parts == 1:
        return ((n,),)
    result: List[Tuple[int, ...]] = []
    for d in divisors(n):
        for rest in factorizations(n // d, parts - 1):
            result.append((d,) + rest)
    return tuple(result)


def num_factorizations(n: int, parts: int) -> int:
    """Count ordered factorizations without enumerating them."""
    from math import comb

    count = 1
    exponents = {}
    for p in prime_factors(n):
        exponents[p] = exponents.get(p, 0) + 1
    for e in exponents.values():
        count *= comb(e + parts - 1, parts - 1)
    return count


def move_factor(
    factors: Tuple[int, ...], src: int, dst: int
) -> Optional[Tuple[int, ...]]:
    """Neighbor of a factorization at direction ``(dst, src)``: divide
    position ``src`` by its smallest prime and multiply position ``dst``.

    Returns ``None`` when ``factors[src] == 1`` (no mass to move).
    """
    if src == dst:
        raise ValueError("src and dst must differ")
    if factors[src] == 1:
        return None
    prime = prime_factors(factors[src])[0]
    moved = list(factors)
    moved[src] //= prime
    moved[dst] *= prime
    return tuple(moved)


def closest_factorization(
    n: int, parts: int, desired: Tuple[int, ...]
) -> Tuple[int, ...]:
    """The valid factorization nearest to a desired (possibly invalid)
    tuple, by log-space distance.  Used to seed the search with heuristic
    tile shapes."""
    from math import log2

    def distance(candidate):
        return sum(
            abs(log2(c) - log2(max(d, 1))) for c, d in zip(candidate, desired)
        )

    return min(factorizations(n, parts), key=distance)
