"""Schedule-space knobs: the dimensions of the rearranged search space.

Each knob owns its list of choices plus a *neighborhood*: the directions
one can move along and the neighbor each direction leads to.  A point of
the space is a tuple of per-knob choice indices; moving along a direction
changes exactly one knob (§5.1: "its adjacent points are different from p
at only one position").
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from .factorization import factorizations, move_factor


class Knob(ABC):
    """One dimension of the schedule space."""

    def __init__(self, name: str):
        self.name = name

    @property
    @abstractmethod
    def choices(self) -> Sequence:
        """All values this knob can take."""

    @property
    @abstractmethod
    def num_directions(self) -> int:
        """Number of movement directions within this knob."""

    @abstractmethod
    def neighbor(self, choice_index: int, direction: int) -> Optional[int]:
        """Choice index reached by moving along ``direction`` (or None)."""

    @abstractmethod
    def features(self, choice_index: int) -> List[float]:
        """Normalized numeric encoding of a choice (Q-network input)."""

    @property
    def feature_size(self) -> int:
        return len(self.features(0))

    def __len__(self) -> int:
        return len(self.choices)

    def __repr__(self):
        return f"{type(self).__name__}({self.name}, {len(self)} choices)"


class SplitKnob(Knob):
    """Ordered factorization of one loop extent into ``parts`` factors.

    Directions are the paper's ``(i, j)`` lattice moves: neighbor ``g`` has
    ``g_i > f_i``, ``g_j < f_j``, all other positions equal (§4.2).
    """

    def __init__(self, name: str, extent: int, parts: int,
                 allowed: Optional[Sequence[Tuple[int, ...]]] = None):
        super().__init__(name)
        self.extent = extent
        self.parts = parts
        base = factorizations(extent, parts) if allowed is None else tuple(allowed)
        if not base:
            raise ValueError(f"knob {name!r} has no choices")
        self._choices = base
        self._index: Dict[Tuple[int, ...], int] = {c: i for i, c in enumerate(base)}
        self._directions = [
            (dst, src)
            for dst in range(parts)
            for src in range(parts)
            if dst != src
        ]
        self._log_extent = max(math.log2(extent), 1.0)

    @property
    def choices(self) -> Sequence[Tuple[int, ...]]:
        return self._choices

    @property
    def num_directions(self) -> int:
        return len(self._directions)

    def neighbor(self, choice_index: int, direction: int) -> Optional[int]:
        dst, src = self._directions[direction]
        moved = move_factor(self._choices[choice_index], src, dst)
        if moved is None:
            return None
        return self._index.get(moved)  # None if pruned out of `allowed`

    def features(self, choice_index: int) -> List[float]:
        return [
            math.log2(f) / self._log_extent for f in self._choices[choice_index]
        ]

    def index_of(self, factors: Tuple[int, ...]) -> int:
        return self._index[tuple(factors)]


class ChoiceKnob(Knob):
    """A categorical/ordinal knob (reorder, unroll depth, flags, ...).

    Directions are +1/-1 in the declared order of values.
    """

    def __init__(self, name: str, values: Sequence):
        super().__init__(name)
        values = list(values)
        if not values:
            raise ValueError(f"knob {name!r} has no choices")
        self._choices = values

    @property
    def choices(self) -> Sequence:
        return self._choices

    @property
    def num_directions(self) -> int:
        return 2 if len(self._choices) > 1 else 0

    def neighbor(self, choice_index: int, direction: int) -> Optional[int]:
        step = 1 if direction == 0 else -1
        target = choice_index + step
        if 0 <= target < len(self._choices):
            return target
        return None

    def features(self, choice_index: int) -> List[float]:
        if len(self._choices) == 1:
            return [0.0]
        return [choice_index / (len(self._choices) - 1)]

    def index_of(self, value) -> int:
        return self._choices.index(value)
