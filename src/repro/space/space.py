"""Schedule-space construction, pruning and rearrangement (§4.2).

``build_space`` turns the static analysis of a computation into a
hardware-specific :class:`ScheduleSpace`.  Pruning per the paper:

1. **Depth limits** — the number of split parts per loop is fixed per
   target (4 on GPU, 3 on CPU, 2 on FPGA), bounding recursive
   split/fuse chains.
2. **Divisible splits only** — split-factor choices are the ordered
   factorizations of each extent.
3. **Pre-determined hardware decisions** — binding, parallelization and
   pipeline structure are fixed per target (encoded in the lowering), so
   the space only contains the knobs worth exploring.

Rearrangement: rather than a flat 1-D list, the space is the product of
per-knob neighborhoods; moving along a direction changes one position of
the configuration vector, so neighboring points share structure and tend
to perform similarly (§4.2's high-dimensional rearrangement).
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from ..graph import MiniGraph, get_graph
from ..ir import ComputeOp
from ..schedule import (
    CPU_REDUCE_PARTS,
    CPU_SPATIAL_PARTS,
    FPGA_SPATIAL_PARTS,
    GPU_REDUCE_PARTS,
    GPU_SPATIAL_PARTS,
    NodeConfig,
    REORDER_CHOICES,
    REORDER_REDUCE_INNER,
    UNROLL_CHOICES,
)
from .factorization import closest_factorization
from .knobs import ChoiceKnob, Knob, SplitKnob


class Point(tuple):
    """A schedule-space point: one choice index per knob.

    ``Point`` subclasses :class:`tuple`, so instances hash and compare
    equal to the plain tuples used throughout the codebase — every API
    that accepts a tuple accepts a ``Point`` and vice versa.  The only
    addition is :meth:`canonical`, which maps the point onto the
    canonical representative of its measurement-equivalence class (see
    :meth:`ScheduleSpace.canonical_point`).
    """

    __slots__ = ()

    def canonical(self, space: "ScheduleSpace") -> "Point":
        """Canonical representative of this point's equivalence class."""
        return space.canonical_point(self)


class ScheduleSpace:
    """The rearranged schedule space of one compute node on one target."""

    def __init__(self, op: ComputeOp, target: str, knobs: Sequence[Knob]):
        self.op = op
        self.target = target
        self.knobs: Tuple[Knob, ...] = tuple(knobs)
        self._knob_by_name = {k.name: k for k in self.knobs}
        # Global direction table: (knob index, local direction).
        self.directions: List[Tuple[int, int]] = [
            (ki, d)
            for ki, knob in enumerate(self.knobs)
            for d in range(knob.num_directions)
        ]
        self._feature_size = sum(k.feature_size for k in self.knobs)
        self._canonical_rules = self._build_canonical_rules()
        # Hot-path tables (ISSUE #7): every per-point query the explorers
        # issue — neighbor moves, feature encodings, decoded configs — is a
        # pure function of the point, so precompute the per-knob answers
        # once and memoize the per-point ones.  The caches are capped and
        # cleared wholesale so multi-workload sessions stay bounded.
        self._direction_moves: List[List[Optional[int]]] = [
            [knob.neighbor(c, local) for c in range(len(knob))]
            for ki, local in self.directions
            for knob in (self.knobs[ki],)
        ]
        self._knob_features: List[List[Tuple[float, ...]]] = [
            [tuple(knob.features(c)) for c in range(len(knob))]
            for knob in self.knobs
        ]
        self._neighbors_cache: dict = {}
        self._features_cache: dict = {}
        self._decode_cache: dict = {}

    _CACHE_CAP = 8192

    def _build_canonical_rules(self):
        """Precompute the knob positions used by :meth:`canonical_point`.

        Two measurement-equivalences hold for the performance models in
        this repo (verified by ``tests/test_parallel_engine.py``):

        * All nonzero unroll depths are equivalent — every model only
          tests ``config.unroll_depth`` for truthiness, and the lowering
          annotation carries no depth the models read.
        * On GPU, ``vectorize`` is dead when the reorder choice keeps the
          reduction innermost (``REORDER_REDUCE_INNER``) and the op has
          reduce axes: lowering only vectorizes an innermost *spatial*
          loop, so both settings lower (and cost) identically.
        """
        rules = {}
        unroll = self._knob_by_name.get("unroll")
        if unroll is not None:
            nonzero = [i for i, v in enumerate(unroll.choices) if v]
            if nonzero:
                rules["unroll"] = (
                    [k.name for k in self.knobs].index("unroll"),
                    min(nonzero),
                )
        if (
            self.target == "gpu"
            and "vectorize" in self._knob_by_name
            and "reorder" in self._knob_by_name
            and self.op.reduce_axes
        ):
            names = [k.name for k in self.knobs]
            reorder = self._knob_by_name["reorder"]
            dead_reorders = {
                i for i, v in enumerate(reorder.choices) if v == REORDER_REDUCE_INNER
            }
            rules["vectorize"] = (
                names.index("vectorize"),
                names.index("reorder"),
                dead_reorders,
                self._knob_by_name["vectorize"].index_of(False),
            )
        return rules

    def canonical_point(self, point: Point) -> Point:
        """Map ``point`` onto the canonical representative of its
        measurement-equivalence class.

        Equivalent points lower to schedules with identical modeled cost,
        so evaluating one representative suffices; the evaluator uses this
        to avoid re-measuring permuted-but-equivalent configurations.
        Points that are already canonical are returned unchanged (as the
        same tuple value), so canonicalization is idempotent.
        """
        rules = self._canonical_rules
        if not rules:
            return Point(point)
        values = list(point)
        unroll_rule = rules.get("unroll")
        if unroll_rule is not None:
            position, smallest_nonzero = unroll_rule
            if self.knobs[position].choices[values[position]]:
                values[position] = smallest_nonzero
        vector_rule = rules.get("vectorize")
        if vector_rule is not None:
            vec_pos, reorder_pos, dead_reorders, off_index = vector_rule
            if values[reorder_pos] in dead_reorders:
                values[vec_pos] = off_index
        return Point(values)

    # -- basic geometry ---------------------------------------------------

    @property
    def size(self) -> int:
        """Number of points (the paper reports 3.9e9 .. 2.4e12 for GPU)."""
        total = 1
        for knob in self.knobs:
            total *= len(knob)
        return total

    @property
    def num_directions(self) -> int:
        return len(self.directions)

    @property
    def feature_size(self) -> int:
        return self._feature_size

    def knob(self, name: str) -> Knob:
        return self._knob_by_name[name]

    def random_point(self, rng: np.random.Generator) -> Point:
        return tuple(int(rng.integers(len(knob))) for knob in self.knobs)

    def neighbor(self, point: Point, direction: int) -> Optional[Point]:
        """The adjacent point along a global direction, or None."""
        ki, _ = self.directions[direction]
        moved = self._direction_moves[direction][point[ki]]
        if moved is None:
            return None
        replaced = list(point)
        replaced[ki] = moved
        return tuple(replaced)

    def neighbors(self, point: Point) -> List[Tuple[int, Point]]:
        """All (direction, neighbor) pairs reachable from ``point``.

        Memoized per point (callers only iterate the result).
        """
        key = tuple(point)
        cached = self._neighbors_cache.get(key)
        if cached is not None:
            return cached
        result = []
        for d, (ki, _) in enumerate(self.directions):
            moved = self._direction_moves[d][point[ki]]
            if moved is None:
                continue
            replaced = list(point)
            replaced[ki] = moved
            result.append((d, tuple(replaced)))
        if len(self._neighbors_cache) >= self._CACHE_CAP:
            self._neighbors_cache.clear()
        self._neighbors_cache[key] = result
        return result

    def features(self, point: Point) -> np.ndarray:
        """Numeric encoding of a point (Q-network / cost-model input).

        Memoized per point (callers stack/read, never write; the cached
        array is marked read-only to keep it that way).
        """
        key = tuple(point)
        cached = self._features_cache.get(key)
        if cached is not None:
            return cached
        values: List[float] = []
        for table, choice in zip(self._knob_features, point):
            values.extend(table[choice])
        encoded = np.asarray(values, dtype=np.float64)
        encoded.flags.writeable = False
        if len(self._features_cache) >= self._CACHE_CAP:
            self._features_cache.clear()
        self._features_cache[key] = encoded
        return encoded

    # -- decoding ----------------------------------------------------------

    def decode(self, point: Point) -> NodeConfig:
        """Turn a space point into a schedule configuration (memoized —
        ``NodeConfig`` is immutable)."""
        key = tuple(point)
        cached = self._decode_cache.get(key)
        if cached is not None:
            return cached
        config = self._decode(point)
        if len(self._decode_cache) >= self._CACHE_CAP:
            self._decode_cache.clear()
        self._decode_cache[key] = config
        return config

    def _decode(self, point: Point) -> NodeConfig:
        values = {
            knob.name: knob.choices[choice]
            for knob, choice in zip(self.knobs, point)
        }
        spatial = tuple(
            values[f"sp{i}"] for i in range(len(self.op.axes))
        )
        reduce_ = tuple(
            values[f"re{i}"] for i in range(len(self.op.reduce_axes))
        )
        return NodeConfig(
            spatial_factors=spatial,
            reduce_factors=reduce_,
            reorder=values.get("reorder", 0),
            fuse_levels=values.get("fuse", 1),
            unroll_depth=values.get("unroll", 0),
            vectorize=values.get("vectorize", True),
            use_shared=values.get("shared", True),
            tensorize=values.get("tensorize", ""),
            fpga_partition=values.get("partition", 1),
            fpga_pipeline=values.get("pipeline", 3),
            fpga_buffer_lines=values.get("buffer", 1),
        )

    def encode(self, config: NodeConfig) -> Point:
        """Inverse of :meth:`decode` (raises if a value is pruned away)."""
        point = []
        for knob in self.knobs:
            if knob.name.startswith("sp"):
                value = config.spatial_factors[int(knob.name[2:])]
            elif knob.name.startswith("re") and knob.name != "reorder":
                value = config.reduce_factors[int(knob.name[2:])]
            else:
                value = {
                    "reorder": config.reorder,
                    "fuse": config.fuse_levels,
                    "unroll": config.unroll_depth,
                    "vectorize": config.vectorize,
                    "shared": config.use_shared,
                    "tensorize": config.tensorize,
                    "partition": config.fpga_partition,
                    "pipeline": config.fpga_pipeline,
                    "buffer": config.fpga_buffer_lines,
                }[knob.name]
            point.append(knob.index_of(value))
        return tuple(point)

    def __repr__(self):
        return (
            f"ScheduleSpace({self.op.name}, {self.target}, "
            f"{len(self.knobs)} knobs, size={self.size:.3g})"
        )


def build_space(output, target: str, spec=None, tensorize: bool = False) -> ScheduleSpace:
    """Generate the pruned schedule space for the main node of ``output``.

    With a device ``spec``, split-knob choices that are *unconditionally*
    illegal on that device are dropped up front: a choice is pruned only
    when one axis alone busts a hard budget (its thread part exceeding
    ``max_threads_per_block`` on GPU, its PE part exceeding ``max_pes``
    on FPGA), so every pruned point is one the error-severity lint rules
    (``repro.analysis.lint``) would reject regardless of the other knobs.
    Joint violations — several axes legal alone but illegal multiplied
    together — stay in the space and are caught by the per-point linter.

    With ``tensorize=True`` (ISSUE #8, default off so existing
    trajectories are untouched), a ``tensorize`` choice knob is added when
    the static matcher (:func:`repro.analysis.matching_intrinsics`) finds
    intrinsics whose pattern the op instantiates; choice ``""`` keeps the
    untensorized schedules in the space.
    """
    graph = output if isinstance(output, MiniGraph) else get_graph(output)
    op = graph.main_op
    if target == "gpu":
        return _gpu_space(op, spec, tensorize=tensorize)
    if target == "cpu":
        return _cpu_space(op, tensorize=tensorize)
    if target == "fpga":
        return _fpga_space(op, spec)
    raise ValueError(f"unknown target {target!r}")


def _tensorize_knob(op: ComputeOp, target: str) -> Optional[ChoiceKnob]:
    """The tensorize choice knob, or None when no intrinsic matches."""
    from ..analysis import matching_intrinsics

    matched = matching_intrinsics(op, target)
    if not matched:
        return None
    return ChoiceKnob("tensorize", [""] + list(matched))


def _pruned_split(name: str, extent: int, parts: int, keep) -> SplitKnob:
    """A SplitKnob restricted to choices passing ``keep`` (never empty)."""
    knob = SplitKnob(name, extent, parts)
    allowed = [c for c in knob.choices if keep(c)]
    if not allowed or len(allowed) == len(knob.choices):
        return knob
    return SplitKnob(name, extent, parts, allowed=allowed)


def _gpu_space(op: ComputeOp, spec=None, tensorize: bool = False) -> ScheduleSpace:
    knobs: List[Knob] = []
    thread_cap = getattr(spec, "max_threads_per_block", None)
    for i, axis in enumerate(op.axes):
        if thread_cap:
            knobs.append(_pruned_split(
                f"sp{i}", axis.extent, GPU_SPATIAL_PARTS,
                lambda c: c[2] <= thread_cap,
            ))
        else:
            knobs.append(SplitKnob(f"sp{i}", axis.extent, GPU_SPATIAL_PARTS))
    for i, axis in enumerate(op.reduce_axes):
        knobs.append(SplitKnob(f"re{i}", axis.extent, GPU_REDUCE_PARTS))
    knobs.append(ChoiceKnob("reorder", list(REORDER_CHOICES)))
    knobs.append(ChoiceKnob("unroll", list(UNROLL_CHOICES)))
    knobs.append(ChoiceKnob("vectorize", [False, True]))
    knobs.append(ChoiceKnob("shared", [False, True]))
    if tensorize:
        knob = _tensorize_knob(op, "gpu")
        if knob is not None:
            knobs.append(knob)
    return ScheduleSpace(op, "gpu", knobs)


def _cpu_space(op: ComputeOp, tensorize: bool = False) -> ScheduleSpace:
    knobs: List[Knob] = []
    for i, axis in enumerate(op.axes):
        knobs.append(SplitKnob(f"sp{i}", axis.extent, CPU_SPATIAL_PARTS))
    for i, axis in enumerate(op.reduce_axes):
        knobs.append(SplitKnob(f"re{i}", axis.extent, CPU_REDUCE_PARTS))
    knobs.append(ChoiceKnob("reorder", list(REORDER_CHOICES)))
    knobs.append(ChoiceKnob("unroll", list(UNROLL_CHOICES)))
    knobs.append(ChoiceKnob("vectorize", [False, True]))
    knobs.append(ChoiceKnob("fuse", list(range(1, len(op.axes) + 1))))
    if tensorize:
        knob = _tensorize_knob(op, "cpu")
        if knob is not None:
            knobs.append(knob)
    return ScheduleSpace(op, "cpu", knobs)


def _fpga_space(op: ComputeOp, spec=None) -> ScheduleSpace:
    knobs: List[Knob] = []
    pe_cap = getattr(spec, "max_pes", None)
    for i, axis in enumerate(op.axes):
        if pe_cap:
            knobs.append(_pruned_split(
                f"sp{i}", axis.extent, FPGA_SPATIAL_PARTS,
                lambda c: c[1] <= pe_cap,
            ))
        else:
            knobs.append(SplitKnob(f"sp{i}", axis.extent, FPGA_SPATIAL_PARTS))
    for i, axis in enumerate(op.reduce_axes):
        knobs.append(SplitKnob(f"re{i}", axis.extent, 1))
    knobs.append(ChoiceKnob("partition", [1, 2, 4, 8, 16]))
    knobs.append(ChoiceKnob("pipeline", [1, 2, 3]))
    knobs.append(ChoiceKnob("buffer", [1, 2, 4, 8, 16]))
    return ScheduleSpace(op, "fpga", knobs)


def heuristic_seed_points(space: ScheduleSpace, count: int, rng: np.random.Generator) -> List[Point]:
    """Seed points for the exploration: a few rule-of-thumb tilings plus
    random points.  The rules mirror common expert starting schedules:
    a bounded thread/worker budget distributed innermost-first across the
    spatial axes, modest register tiles, small reduce-inner chunks."""
    seeds: List[Point] = []
    for desired in _seed_plans(space):
        point = []
        for knob in space.knobs:
            if isinstance(knob, SplitKnob):
                point.append(knob.index_of(
                    closest_factorization(knob.extent, knob.parts, desired[knob.name])
                ))
            else:
                point.append(_default_choice(knob))
        seeds.append(tuple(point))
    # Variants without shared-memory caching: operators with non-affine
    # access patterns (grouped conv, BCM, shift) often cannot stage tiles,
    # so at least one uncached seed must be valid from the start.
    knob_names = [knob.name for knob in space.knobs]
    if "shared" in knob_names:
        position = knob_names.index("shared")
        off = space.knob("shared").index_of(False)
        interleaved: List[Point] = []
        for seed in seeds:
            variant = list(seed)
            variant[position] = off
            interleaved.append(seed)
            interleaved.append(tuple(variant))
        seeds = interleaved
    unique: List[Point] = []
    for seed in seeds:
        if seed not in unique:
            unique.append(seed)
    seeds = unique
    while len(seeds) < count:
        seeds.append(space.random_point(rng))
    return seeds[:count]


def _div_cap(extent: int, cap: int) -> int:
    """Largest divisor of ``extent`` that is <= cap (at least 1)."""
    from .factorization import divisors

    best = 1
    for d in divisors(extent):
        if d <= cap:
            best = d
    return best


def _seed_plans(space: ScheduleSpace):
    """Desired split shapes per knob for each seed (snapped to valid
    factorizations later).  All picks are divisors of their extent, so the
    snap cannot inflate them past hardware budgets (e.g. an extent of 111
    must tile as 3 x 37, never a rounded 32).  Budgets are global: threads
    multiply across axes, so the budget is spent innermost-axis-first."""
    op = space.op
    extents = [a.extent for a in op.axes]
    plans = []
    if space.target == "gpu":
        # Spatial-first plans (direct-convolution flavour) and
        # channel-first plans (GEMM flavour, axis 1 gets threads first).
        for budget, inner_cap, r_inner, channel_first in (
            (256, 2, 4, False), (64, 4, 8, False), (512, 1, 2, False),
            (256, 1, 8, True), (128, 2, 8, True),
        ):
            plan = {}
            remaining = budget
            threads = [1] * len(extents)
            order = list(range(len(extents) - 1, -1, -1))
            if channel_first and len(extents) > 1:
                order = [1] + [i for i in order if i != 1]
            for i in order:
                cap = 64 if channel_first else 32
                t = _div_cap(extents[i], min(remaining, cap))
                threads[i] = t
                remaining = max(remaining // max(t, 1), 1)
            for i, extent in enumerate(extents):
                inner = _div_cap(extent // threads[i], inner_cap)
                block = max(extent // (threads[i] * inner), 1)
                plan[f"sp{i}"] = (block, 1, threads[i], inner)
            for i, axis in enumerate(op.reduce_axes):
                ri = _div_cap(axis.extent, r_inner)
                plan[f"re{i}"] = (axis.extent // ri, ri)
            plans.append(plan)
    elif space.target == "cpu":
        for inner_cap, middle_cap in ((8, 4), (8, 1), (16, 2)):
            plan = {}
            for i, extent in enumerate(extents):
                if i == len(extents) - 1:
                    inner = _div_cap(extent, inner_cap)
                else:
                    inner = 1
                middle = _div_cap(extent // inner, middle_cap)
                plan[f"sp{i}"] = (extent // (middle * inner), middle, inner)
            for i, axis in enumerate(op.reduce_axes):
                ri = _div_cap(axis.extent, 4)
                plan[f"re{i}"] = (axis.extent // ri, ri)
            plans.append(plan)
    else:  # fpga
        for budget in (64, 256, 16):
            plan = {}
            remaining = budget
            for i in range(len(extents) - 1, -1, -1):
                pe = _div_cap(extents[i], min(remaining, 32))
                remaining = max(remaining // max(pe, 1), 1)
                plan[f"sp{i}"] = (extents[i] // pe, pe)
            for i, axis in enumerate(op.reduce_axes):
                plan[f"re{i}"] = (axis.extent,)
            plans.append(plan)
    return plans


def _default_choice(knob: ChoiceKnob) -> int:
    defaults = {
        "reorder": 0,
        "unroll": 0,
        "vectorize": True,
        "shared": True,
        "tensorize": "",
        "fuse": max(v for v in knob.choices if isinstance(v, int)) if knob.name == "fuse" else None,
        "partition": 4,
        "pipeline": 3,
        "buffer": 2,
    }
    value = defaults.get(knob.name)
    if value is None or value not in list(knob.choices):
        return 0
    return knob.index_of(value)
