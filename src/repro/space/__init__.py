"""Schedule-space generation, pruning and neighborhood structure (§4.2)."""

from .factorization import (
    closest_factorization,
    divisors,
    factorizations,
    move_factor,
    num_factorizations,
    prime_factors,
)
from .knobs import ChoiceKnob, Knob, SplitKnob
from .space import Point, ScheduleSpace, build_space, heuristic_seed_points

__all__ = [
    "ChoiceKnob", "Knob", "Point", "ScheduleSpace", "SplitKnob",
    "build_space", "closest_factorization", "divisors", "factorizations",
    "heuristic_seed_points", "move_factor", "num_factorizations",
    "prime_factors",
]
