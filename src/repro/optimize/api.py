"""Public optimization API — Algorithm 1 and the user entry point.

``optimize(output, device)`` runs the whole FlexTensor flow on one tensor
computation: front-end static analysis and space generation, back-end
exploration (Q-method by default), and schedule implementation for the
device's target.  The result carries the best schedule, its generated
code, and the exploration statistics the benchmarks report.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

from ..analysis import AnalysisResult, ScheduleLinter, analyze
from ..codegen import emit_pseudo, emit_python
from ..explore import (
    FlexTensorTuner,
    PMethodTuner,
    RandomSampleTuner,
    RandomWalkTuner,
    SurrogateScreen,
    TuneResult,
)
from ..graph import MiniGraph, get_graph
from ..model import model_for, target_of
from ..runtime import (
    BatchEngine,
    ClusterConfig,
    ClusterSupervisor,
    EvalCache,
    Evaluator,
    FaultInjector,
    MeasureConfig,
    NodeFaultInjector,
)
from ..schedule import GraphConfig, NodeConfig, Scheduled, lower
from ..space import ScheduleSpace, build_space

_TUNERS = {
    "q": FlexTensorTuner,
    "p": PMethodTuner,
    "random-walk": RandomWalkTuner,
    "random-sample": RandomSampleTuner,
}


@dataclass
class OptimizeResult:
    """Everything FlexTensor produced for one computation on one device."""

    device: str
    target: str
    analysis: AnalysisResult
    space_size: int
    config: Optional[NodeConfig]
    graph_config: GraphConfig
    schedule: Optional[Scheduled]
    gflops: float
    kernel_seconds: float
    tuning: TuneResult
    evaluator: Evaluator = field(repr=False, default=None)

    @property
    def found(self) -> bool:
        return self.schedule is not None

    def generated_code(self) -> str:
        """The generated (executable) Python kernel for the best schedule."""
        if self.schedule is None:
            raise RuntimeError("no valid schedule was found")
        return emit_python(self.schedule)

    def pseudo_code(self) -> str:
        """Target-flavoured pseudo-code of the best schedule."""
        if self.schedule is None:
            raise RuntimeError("no valid schedule was found")
        return emit_pseudo(self.schedule)

    def summary(self) -> str:
        lines = [
            f"device={self.device} target={self.target}",
            f"space size: {self.space_size:.3g}",
            f"best: {self.gflops:.1f} GFLOPS ({self.kernel_seconds * 1e3:.3f} ms)",
            f"measurements: {self.tuning.num_measurements}, "
            f"simulated exploration: {self.tuning.exploration_seconds:.0f} s",
        ]
        if self.tuning.surrogate is not None and self.tuning.num_screened:
            su = self.tuning.surrogate
            lines.append(
                f"surrogate: {self.tuning.num_screened} points screened out at "
                f"near-zero cost (rank correlation {su['rank_correlation']:.2f})"
            )
        if self.tuning.lint_rejects:
            rules = ", ".join(
                f"{rule}={count}"
                for rule, count in sorted(self.tuning.lint_rules.items())
            )
            lines.append(
                f"lint: {self.tuning.lint_rejects} points statically rejected "
                f"at zero cost ({rules})"
            )
        if self.tuning.num_failures:
            counts = ", ".join(
                f"{status}={count}"
                for status, count in sorted(self.tuning.status_counts.items())
                if status not in ("ok", "flaky_retried", "illegal")
            )
            lines.append(f"failed measurements: {self.tuning.num_failures} ({counts})")
        if self.tuning.cluster is not None:
            c = self.tuning.cluster
            lines.append(
                f"cluster: {c['alive']}/{c['workers']} workers alive, "
                f"{c['num_leases']} leases ({c['num_reassigned']} reassigned, "
                f"{c['num_speculative']} speculative), "
                f"{c['num_breaker_trips']} breaker trips"
            )
        if self.schedule is not None:
            lines.append("primitives: " + "; ".join(self.schedule.primitives))
        return "\n".join(lines)


def _materialization_seconds(graph, graph_config: GraphConfig, device_spec) -> float:
    """Elementwise-pass cost of helper nodes the graph schedule left
    un-inlined (mirrors the Evaluator's accounting)."""
    main = graph.main_op
    bandwidth = getattr(device_spec, "bandwidth_gbs", None)
    if bandwidth is None:
        bandwidth = getattr(device_spec, "ddr_bandwidth_gbs")
    launch = getattr(device_spec, "kernel_launch_us", 5.0) * 1e-6
    total = 0.0
    for op in graph.compute_ops:
        if op is main or graph_config.should_inline(op.name):
            continue
        total += op.output.size * 4 * 3 / (bandwidth * 1e9) + launch
    return total


def _schedule_for_graph(
    graph, config: NodeConfig, target: str, base: GraphConfig, evaluator: Evaluator
) -> GraphConfig:
    """Algorithm 1, line 8: choose the graph-level schedule.

    With the main node's configuration fixed, compare inlining each helper
    node against materializing it (its own elementwise kernel plus a
    memory round-trip) under the device model, and keep the better choice
    per node.  Inlining wins almost always — which is exactly why the
    paper fixes it as the pre-determined decision — but shows up here as a
    measured decision, not an assumption.
    """
    helpers = [op for op in graph.compute_ops if op is not graph.main_op]
    if not helpers:
        return base
    decisions = dict(base.inline)
    for helper in helpers:
        candidates = {}
        for inline in (True, False):
            trial = GraphConfig(inline={**decisions, helper.name: inline})
            scheduled = lower(graph, config, target, trial)
            seconds = evaluator.model.estimate_seconds(scheduled)
            seconds += _materialization_seconds(graph, trial, evaluator.device_spec)
            candidates[inline] = seconds
        decisions[helper.name] = min(candidates, key=candidates.get)
    return GraphConfig(inline=decisions)


def _build_supervisor(
    cluster, workers: int, node_faults, straggler_pct, seed: int
) -> Optional[ClusterSupervisor]:
    """Normalize the ``optimize(cluster=)`` argument into a supervisor.

    Accepts False/None (off), True (supervise ``workers`` nodes), a
    :class:`ClusterConfig`, or a pre-built :class:`ClusterSupervisor`
    (returned as-is; ``node_faults``/``straggler_pct`` must then be
    configured on it directly).
    """
    if not cluster:
        return None
    if isinstance(cluster, ClusterSupervisor):
        return cluster
    if isinstance(cluster, ClusterConfig):
        config = cluster
    else:
        config = ClusterConfig(workers=max(1, int(workers)))
    if straggler_pct is not None:
        config = replace(config, straggler_pct=float(straggler_pct))
    return ClusterSupervisor(config, node_faults=node_faults, seed=seed)


def optimize(
    output,
    device_spec,
    trials: int = 40,
    method: str = "q",
    num_seeds: int = 4,
    num_starting_points: int = 4,
    gamma: float = 2.0,
    seed: int = 0,
    graph_config: Optional[GraphConfig] = None,
    space: Optional[ScheduleSpace] = None,
    warm_start: Optional[NodeConfig] = None,
    measure_config: Optional[MeasureConfig] = None,
    fault_injector: Optional[FaultInjector] = None,
    checkpoint=None,
    checkpoint_every: int = 1,
    resume: bool = False,
    workers: int = 1,
    cache_dir=None,
    eval_cache: Optional[EvalCache] = None,
    lint: bool = False,
    prune_space: bool = False,
    surrogate: bool = False,
    screen_ratio: float = 0.25,
    cluster=False,
    node_faults: Optional[NodeFaultInjector] = None,
    straggler_pct: Optional[float] = None,
    tensorize: bool = False,
) -> OptimizeResult:
    """Optimize one tensor computation for one device (Algorithm 1).

    Args:
        output: the output tensor (or mini-graph) of the computation.
        device_spec: a device from :mod:`repro.model` (V100, XEON..., VU9P).
        trials: exploration trials (each expands ``num_starting_points``
            points; the Q-method trains its network every 5 trials).
        method: "q" (FlexTensor), "p", "random-walk" or "random-sample".
        num_seeds: heuristic + random seed points evaluated up front.
        num_starting_points: SA starting points per trial.
        gamma: SA temperature of the starting-point distribution.
        seed: RNG seed (the whole run is deterministic given it).
        graph_config: graph-level decisions; defaults to inlining helper
            nodes (Algorithm 1 line 8).
        space: pre-built schedule space (rebuilt from analysis otherwise).
        warm_start: a previously tuned configuration (e.g. from a
            :class:`~repro.runtime.RecordBook`) evaluated before searching.
        measure_config: timeout / retry / quarantine policy of the
            measurement pipeline (``docs/robustness.md``).
        fault_injector: a :class:`~repro.runtime.FaultInjector` imposing
            simulated compile errors, hangs and flaky measurements.
        checkpoint: path of a JSONL checkpoint file; tuner state is
            snapshotted every ``checkpoint_every`` trials when set.
        resume: restore the newest checkpoint snapshot (if any) and
            continue the interrupted run from its trial index.
        workers: candidate evaluations per batch.  1 (default) keeps the
            bit-reproducible serial path; >1 overlaps simulated
            measurement time across that many workers (and uses a real
            process pool on multi-core hosts) — ``docs/parallel.md``.
        cache_dir: directory of a persistent cross-run evaluation cache;
            warm runs serve previously measured (canonical) points for
            free.  ``None`` (default) disables persistence.
        eval_cache: a pre-built :class:`~repro.runtime.EvalCache` to use
            instead of constructing one from ``cache_dir`` — lets many
            ``optimize()`` calls (e.g. the network task scheduler's
            per-task trial slices, ``repro.nn.tuner``) share one
            in-memory cache without re-reading its backing file per call.
            Takes precedence over ``cache_dir``.
        lint: run the static schedule linter (``repro.analysis.lint``)
            on every candidate before measuring; statically-illegal
            points are rejected at zero simulated cost with
            ``MeasureStatus.ILLEGAL``.  Off by default so existing seeded
            trajectories (clock values, measurement counts) stay
            bit-identical; the best point found is the same either way.
        prune_space: shrink split-knob choices that are unconditionally
            illegal on this device (one axis alone busting a budget)
            before exploring — ``docs/lint.md``.
        surrogate: screen candidate batches through an online learned
            cost model (``repro.explore.surrogate``): after the lint gate
            and cache probe, only the top ``screen_ratio`` fraction of
            each batch (plus an ε-greedy exploration slice) is actually
            measured; the rest are answered with the model's prediction
            at near-zero simulated cost.  Off by default so seeded
            trajectories stay bit-identical — ``docs/surrogate.md``.
        screen_ratio: fraction of each ranked batch forwarded to real
            measurement when ``surrogate`` is on.
        cluster: supervise the measurement workers
            (``repro.runtime.cluster``): heartbeats, lease-based
            assignment with deadlines, speculative re-execution of
            stragglers, and a per-worker health circuit breaker that
            degrades to the bit-identical serial path when every worker
            is quarantined.  ``True`` builds a supervisor over
            ``workers`` nodes; pass a :class:`ClusterConfig` or a
            pre-built :class:`ClusterSupervisor` for full control.  Off
            by default — ``docs/cluster.md``.
        node_faults: a :class:`~repro.runtime.NodeFaultInjector` imposing
            seeded node-level faults (worker crash, stale heartbeat,
            slow node, flaky node) on the supervised cluster.  Node
            faults perturb scheduling and billing only, never
            measurement outcomes, so a chaos run finds the same best
            schedule as a fault-free run at equal trial count.
        straggler_pct: percentile of recent lease durations beyond which
            a running lease is speculatively re-executed (default from
            :class:`ClusterConfig`; only meaningful with ``cluster``).
        tensorize: add the ``tensorize`` knob to the space when any
            registered intrinsic (``repro.analysis.INTRINSICS``)
            statically matches the computation's innermost loops — the
            search then chooses between scalar/vectorized code and the
            intrinsic.  Off by default so existing spaces (and seeded
            trajectories over them) stay bit-identical —
            ``docs/tensorize.md``.
    """
    graph = output if isinstance(output, MiniGraph) else get_graph(output)
    # Front-end: static analysis + schedule space (pruned + rearranged).
    analysis = analyze(graph)
    target = target_of(device_spec)
    space = space or build_space(
        graph, target, spec=device_spec if prune_space else None,
        tensorize=tensorize,
    )
    graph_config = graph_config or GraphConfig()

    # Back-end: exploration over the space.
    linter = ScheduleLinter(space.op, target, device_spec) if lint else None
    if eval_cache is None:
        eval_cache = EvalCache(cache_dir) if cache_dir else None
    evaluator = Evaluator(
        graph, device_spec, space=space, graph_config=graph_config,
        measure_config=measure_config, fault_injector=fault_injector,
        eval_cache=eval_cache, linter=linter,
    )
    try:
        tuner_cls = _TUNERS[method]
    except KeyError:
        raise ValueError(
            f"unknown method {method!r}; expected one of {sorted(_TUNERS)}"
        ) from None
    seed_points = []
    if warm_start is not None:
        try:
            seed_points.append(space.encode(warm_start))
        except (KeyError, ValueError, IndexError):
            pass  # the stored config lies outside this (pruned) space
    screen = (
        SurrogateScreen(space, screen_ratio=screen_ratio, seed=seed)
        if surrogate
        else None
    )
    supervisor = _build_supervisor(
        cluster, workers=workers, node_faults=node_faults,
        straggler_pct=straggler_pct, seed=seed,
    )
    engine = BatchEngine(
        evaluator, workers=workers, surrogate=screen, cluster=supervisor
    )
    tuner = tuner_cls(
        evaluator,
        gamma=gamma,
        num_starting_points=num_starting_points,
        seed=seed,
        seed_points=seed_points,
        engine=engine,
    )
    try:
        tuning = tuner.tune(
            trials,
            num_seeds=num_seeds,
            checkpoint=checkpoint,
            checkpoint_every=checkpoint_every,
            resume=resume,
        )
    finally:
        engine.close()

    # Schedule implementation for the chosen point (Algorithm 1, line 8:
    # Schedule_for_graph — decide the graph-level inline placements).
    if tuning.found:
        config = space.decode(tuning.best_point)
        graph_config = _schedule_for_graph(graph, config, target, graph_config, evaluator)
        scheduled = lower(graph, config, target, graph_config)
        kernel_seconds = evaluator.model.estimate_seconds(scheduled)
        kernel_seconds += _materialization_seconds(graph, graph_config, device_spec)
        gflops = evaluator.flops / kernel_seconds / 1e9
    else:
        config = None
        scheduled = None
        kernel_seconds = float("inf")
        gflops = 0.0

    return OptimizeResult(
        device=device_spec.name,
        target=target,
        analysis=analysis,
        space_size=space.size,
        config=config,
        graph_config=graph_config,
        schedule=scheduled,
        gflops=gflops,
        kernel_seconds=kernel_seconds,
        tuning=tuning,
        evaluator=evaluator,
    )


def tune_workload(
    workload,
    device_spec,
    records=None,
    trials: int = 40,
    **kwargs,
) -> OptimizeResult:
    """Tune a :class:`~repro.ops.Workload` with RecordBook warm-starting.

    If ``records`` holds a best configuration for this (workload, device),
    the search starts from it; the run's outcome is appended back, so a
    record book monotonically improves across sessions.
    """
    from ..runtime.records import TuningRecord, workload_key

    output = workload.build()
    key = workload_key(workload.operator, workload.params, device_spec.name)
    warm = None
    if records is not None:
        best = records.best(key)
        if best is not None:
            warm = best.config
    result = optimize(
        output, device_spec, trials=trials, warm_start=warm, **kwargs
    )
    if records is not None and result.found:
        records.add(TuningRecord(
            key=key,
            config=result.config,
            gflops=result.gflops,
            trials=trials,
            seed=kwargs.get("seed", 0),
            signature=result.evaluator.op_signature(),
        ))
    if records is not None and result.tuning.throughput is not None:
        records.add_metrics({"key": key, **result.tuning.throughput})
    return result


@dataclass
class GraphOptimizeResult:
    """Algorithm 1 over a multi-node graph: one tuned schedule per
    non-inlinable node (reduction helpers and the root), plus the
    end-to-end time of running them in post order."""

    device: str
    target: str
    node_results: Dict[str, OptimizeResult] = field(default_factory=dict)
    node_order: List[str] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(r.kernel_seconds for r in self.node_results.values())

    @property
    def gflops(self) -> float:
        flops = sum(r.evaluator.flops for r in self.node_results.values())
        return flops / self.total_seconds / 1e9

    def summary(self) -> str:
        lines = [f"graph schedule on {self.device}: {len(self.node_order)} scheduled nodes"]
        for name in self.node_order:
            result = self.node_results[name]
            lines.append(
                f"  {name}: {result.kernel_seconds * 1e6:.1f} us "
                f"({result.gflops:.1f} GFLOPS)"
            )
        lines.append(f"  total: {self.total_seconds * 1e6:.1f} us")
        return "\n".join(lines)


def optimize_graph(
    output,
    device_spec,
    trials: int = 25,
    **kwargs,
) -> GraphOptimizeResult:
    """Optimize every schedulable node of a multi-node computation.

    Algorithm 1 lines 4-7 in full: the mini-graph is traversed in post
    order; elementwise helpers are inlined into their consumers, while
    nodes that cannot be inlined — reductions (softmax's row-max/row-sum,
    layernorm's mean/variance) and the root — each get their own schedule
    search on the same device.  The result reports per-node schedules and
    the end-to-end time.
    """
    from ..ir import Reduce

    graph = output if isinstance(output, MiniGraph) else get_graph(output)
    anchors = [
        op
        for op in graph.compute_ops
        if op is graph.main_op or isinstance(op.body, Reduce)
    ]
    result = GraphOptimizeResult(
        device=device_spec.name, target=target_of(device_spec)
    )
    for anchor in anchors:
        node_result = optimize(anchor.output, device_spec, trials=trials, **kwargs)
        result.node_results[anchor.name] = node_result
        result.node_order.append(anchor.name)
    return result
