"""User-facing optimization entry points."""

from .api import GraphOptimizeResult, OptimizeResult, optimize, optimize_graph, tune_workload

__all__ = ["GraphOptimizeResult", "OptimizeResult", "optimize", "optimize_graph", "tune_workload"]
