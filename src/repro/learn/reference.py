"""Reference (scalar) gradient-boosted trees: the ground truth the
vectorized implementation is property-tested against.

This is the original per-row / per-threshold implementation of
``repro.learn.gbt``, retained verbatim as an executable specification:
:class:`ReferenceRegressionTree` walks one row at a time through the node
tree and searches splits with an explicit feature x threshold double loop.
``repro.learn.gbt`` reimplements both as numpy array programs and must
produce **bit-identical** trees, predictions and checkpoints — the parity
suite (``tests/test_hotpath_parity.py``) holds the two implementations
against each other on random matrices.  Nothing in the library imports
this module for production work; it exists to keep "fast" honest.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _node_to_dict(node: _Node) -> Dict:
    if node.is_leaf:
        return {"value": node.value}
    return {
        "value": node.value,
        "feature": node.feature,
        "threshold": node.threshold,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(payload: Dict) -> _Node:
    node = _Node(value=payload["value"])
    if "feature" in payload:
        node.feature = payload["feature"]
        node.threshold = payload["threshold"]
        node.left = _node_from_dict(payload["left"])
        node.right = _node_from_dict(payload["right"])
    return node


class ReferenceRegressionTree:
    """CART regression tree with greedy variance-reduction splits."""

    def __init__(self, max_depth: int = 3, min_samples: int = 4, num_thresholds: int = 8):
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.num_thresholds = num_thresholds
        self._root: Optional[_Node] = None

    def fit(self, x: np.ndarray, y: np.ndarray) -> "ReferenceRegressionTree":
        self._root = self._build(x, y, depth=0)
        return self

    def _build(self, x: np.ndarray, y: np.ndarray, depth: int) -> _Node:
        node = _Node(value=float(y.mean()))
        if depth >= self.max_depth or len(y) < self.min_samples or np.ptp(y) == 0:
            return node
        best_gain = 0.0
        best = None
        base_sse = float(((y - y.mean()) ** 2).sum())
        for feature in range(x.shape[1]):
            column = x[:, feature]
            if np.ptp(column) == 0:
                continue
            quantiles = np.quantile(
                column, np.linspace(0.1, 0.9, self.num_thresholds)
            )
            for threshold in np.unique(quantiles):
                mask = column <= threshold
                if mask.sum() == 0 or mask.sum() == len(y):
                    continue
                left, right = y[mask], y[~mask]
                sse = float(((left - left.mean()) ** 2).sum()) + float(
                    ((right - right.mean()) ** 2).sum()
                )
                gain = base_sse - sse
                if gain > best_gain:
                    best_gain = gain
                    best = (feature, float(threshold), mask)
        if best is None:
            return node
        feature, threshold, mask = best
        node.feature = feature
        node.threshold = threshold
        node.left = self._build(x[mask], y[mask], depth + 1)
        node.right = self._build(x[~mask], y[~mask], depth + 1)
        return node

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        out = np.empty(len(x))
        for i, row in enumerate(x):
            node = self._root
            while not node.is_leaf:
                node = node.left if row[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    # -- checkpointing -----------------------------------------------------

    def get_state(self) -> Dict:
        """JSON-compatible snapshot of the fitted tree structure."""
        return {
            "max_depth": self.max_depth,
            "min_samples": self.min_samples,
            "num_thresholds": self.num_thresholds,
            "root": _node_to_dict(self._root) if self._root is not None else None,
        }

    def set_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`get_state` bit-exactly
        (thresholds and leaf values survive a JSON roundtrip unchanged)."""
        self.max_depth = state["max_depth"]
        self.min_samples = state["min_samples"]
        self.num_thresholds = state["num_thresholds"]
        root = state.get("root")
        self._root = _node_from_dict(root) if root is not None else None


class ReferenceGradientBoostedTrees:
    """Least-squares gradient boosting (the XGBoost role in AutoTVM)."""

    def __init__(self, num_rounds: int = 30, learning_rate: float = 0.3,
                 max_depth: int = 3, min_samples: int = 4):
        self.num_rounds = num_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples = min_samples
        self._trees: List[ReferenceRegressionTree] = []
        self._base: float = 0.0

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees) or self._base != 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "ReferenceGradientBoostedTrees":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self._trees = []
        self._base = float(y.mean()) if len(y) else 0.0
        residual = y - self._base
        for _ in range(self.num_rounds):
            if np.allclose(residual, 0):
                break
            tree = ReferenceRegressionTree(self.max_depth, self.min_samples).fit(x, residual)
            update = tree.predict(x)
            residual = residual - self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        out = np.full(len(x), self._base)
        for tree in self._trees:
            out += self.learning_rate * tree.predict(x)
        return out

    # -- checkpointing -----------------------------------------------------

    def get_state(self) -> Dict:
        """JSON-compatible snapshot of the whole fitted ensemble."""
        return {
            "num_rounds": self.num_rounds,
            "learning_rate": self.learning_rate,
            "max_depth": self.max_depth,
            "min_samples": self.min_samples,
            "base": self._base,
            "trees": [tree.get_state() for tree in self._trees],
        }

    def set_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`; predictions
        of the restored model are bit-identical to the original's."""
        self.num_rounds = state["num_rounds"]
        self.learning_rate = state["learning_rate"]
        self.max_depth = state["max_depth"]
        self.min_samples = state["min_samples"]
        self._base = state["base"]
        self._trees = []
        for tree_state in state["trees"]:
            tree = ReferenceRegressionTree()
            tree.set_state(tree_state)
            self._trees.append(tree)
