"""Gradient-boosted regression trees, from scratch in numpy.

A small XGBoost stand-in shared by the AutoTVM baseline's cost model [9]
and the online surrogate screen (``repro.explore.surrogate``):
least-squares boosting over depth-limited CART trees with quantile-sampled
split thresholds.  Deterministic given its inputs, and — because the
surrogate checkpoints alongside the Q-network — exactly serializable:
:meth:`GradientBoostedTrees.get_state` / :meth:`set_state` roundtrip the
fitted ensemble bit-identically through JSON.

Both halves of the hot path are array programs rather than Python loops:

* :meth:`RegressionTree.predict` flattens the fitted tree into parallel
  arrays (feature / threshold / left / right / value) and walks **all
  rows at once**, one tree level per iteration, instead of chasing nodes
  row by row.
* :meth:`RegressionTree.fit` replaces the feature x threshold double loop
  (one ``np.quantile`` + two ``mean()`` passes per candidate) with one
  stable argsort per *ensemble fit*, filtered down each tree by the split
  masks (stable filtering of a stable sort is the per-node stable sort):
  candidate thresholds come from an exact
  re-implementation of numpy's linear-interpolation quantile over the
  sorted columns, and split SSEs come from cumulative sums.

The contract — enforced by ``tests/test_hotpath_parity.py`` against the
retained scalar implementation in ``repro.learn.reference`` — is that the
fitted trees, the predictions and the checkpoints are **bit-identical**
to the original code.  Cumulative-sum SSEs round differently than the
scalar two-pass formula, so they are used only to *shortlist* candidate
splits: every candidate within a conservative error band of the
vectorized maximum is re-scored with the scalar formula verbatim, and the
scalar first-strictly-greater scan picks the winner.  The band almost
always holds a single candidate, so the re-score costs nothing; in
pathological near-tie cases it degrades gracefully toward the reference
loop instead of silently diverging from it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np


@dataclass
class _Node:
    feature: int = -1
    threshold: float = 0.0
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    value: float = 0.0

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _node_to_dict(node: _Node) -> Dict:
    if node.is_leaf:
        return {"value": node.value}
    return {
        "value": node.value,
        "feature": node.feature,
        "threshold": node.threshold,
        "left": _node_to_dict(node.left),
        "right": _node_to_dict(node.right),
    }


def _node_from_dict(payload: Dict) -> _Node:
    node = _Node(value=payload["value"])
    if "feature" in payload:
        node.feature = payload["feature"]
        node.threshold = payload["threshold"]
        node.left = _node_from_dict(payload["left"])
        node.right = _node_from_dict(payload["right"])
    return node


@dataclass
class _FlatTree:
    """The fitted tree compiled to parallel arrays for batched predict.

    ``feature[i] < 0`` marks node ``i`` as a leaf; internal nodes route
    rows with ``x[:, feature] <= threshold`` to ``left`` and the rest to
    ``right``.  ``depth`` bounds the level-by-level walk.
    """

    feature: np.ndarray     # intp, -1 for leaves
    threshold: np.ndarray   # float64
    left: np.ndarray        # intp, self-loop for leaves
    right: np.ndarray       # intp, self-loop for leaves
    value: np.ndarray       # float64
    depth: int


def _flatten(root: _Node) -> _FlatTree:
    nodes: List[_Node] = []
    depths: List[int] = []
    left: List[int] = []
    right: List[int] = []

    def build(node: _Node, depth: int) -> int:
        index = len(nodes)
        nodes.append(node)
        depths.append(depth)
        left.append(index)
        right.append(index)
        if not node.is_leaf:
            left[index] = build(node.left, depth + 1)
            right[index] = build(node.right, depth + 1)
        return index

    build(root, 0)
    feature = np.array(
        [n.feature if not n.is_leaf else -1 for n in nodes], dtype=np.intp
    )
    threshold = np.array([n.threshold for n in nodes], dtype=np.float64)
    value = np.array([n.value for n in nodes], dtype=np.float64)
    return _FlatTree(
        feature=feature,
        threshold=threshold,
        left=np.array(left, dtype=np.intp),
        right=np.array(right, dtype=np.intp),
        value=value,
        depth=max(depths) if depths else 0,
    )


def _column_quantiles(sorted_columns: np.ndarray, fractions: np.ndarray) -> np.ndarray:
    """numpy's default (linear / Hyndman-Fan 7) quantiles of pre-sorted
    columns, bit-identical to ``np.quantile(column, fractions)`` per
    column.  ``sorted_columns`` is (n, F); returns (T, F).

    Replicates numpy's ``_quantile`` arithmetic exactly: virtual index
    ``q * (n - 1)``, floor/ceil gather, and the two-sided ``_lerp``
    (``a + (b - a) * g`` below g = 0.5, ``b - (b - a) * (1 - g)`` above).
    """
    n = sorted_columns.shape[0]
    virtual = fractions * (n - 1)
    previous = np.floor(virtual)
    nxt = previous + 1
    above = virtual >= n - 1
    previous[above] = n - 1
    nxt[above] = n - 1
    previous = previous.astype(np.intp)
    nxt = nxt.astype(np.intp)
    gamma = (virtual - previous)[:, None]
    a = sorted_columns[previous, :]
    b = sorted_columns[nxt, :]
    diff = b - a
    result = a + diff * gamma
    upper = gamma >= 0.5
    np.subtract(b, diff * (1 - gamma), out=result, where=upper)
    return result


class RegressionTree:
    """CART regression tree with greedy variance-reduction splits."""

    def __init__(self, max_depth: int = 3, min_samples: int = 4, num_thresholds: int = 8):
        self.max_depth = max_depth
        self.min_samples = min_samples
        self.num_thresholds = num_thresholds
        self._root: Optional[_Node] = None
        self._flat: Optional[_FlatTree] = None
        self._fractions: Optional[np.ndarray] = None
        self._root_xstats: Optional[Tuple] = None

    def _x_split_stats(self, xs: np.ndarray, n: int) -> Tuple:
        """Candidate thresholds and left-side counts for sorted columns.

        Depends only on x — not on the regression target — so the root
        node's stats are shared across every round of a boosting fit.
        """
        if self._fractions is None or len(self._fractions) != self.num_thresholds:
            self._fractions = np.linspace(0.1, 0.9, self.num_thresholds)
        thresholds = _column_quantiles(xs, self._fractions)    # (T, F)
        counts = (xs[:, None, :] <= thresholds[None, :, :]).sum(axis=0)
        valid = (counts > 0) & (counts < n)
        k = np.clip(counts, 1, n - 1)
        return thresholds, counts, valid, k

    def fit(self, x: np.ndarray, y: np.ndarray,
            order: Optional[np.ndarray] = None,
            root_xstats: Optional[Tuple] = None) -> "RegressionTree":
        """Fit on ``(x, y)``.

        ``order`` is an optional (n, F) stable per-column argsort of ``x``
        — boosting fits every round on the same ``x``, so the ensemble
        computes it once and shares it across rounds.  Per-node sorted
        orders are then maintained by *filtering* the parent's order with
        the split mask: stable filtering of a stable sort keeps equal
        elements in ascending-row order, exactly what a fresh per-node
        stable argsort would produce, so the fitted tree is bit-identical
        to sorting from scratch at every node.
        """
        x = np.asarray(x)
        y = np.asarray(y)
        if order is None:
            order = np.argsort(x, axis=0, kind="stable")
        if root_xstats is None and len(y):
            columns = np.arange(x.shape[1], dtype=np.intp)[None, :]
            root_xstats = self._x_split_stats(x[order, columns], len(y))
        self._root_xstats = root_xstats
        rows = np.arange(len(y), dtype=np.intp)
        self._root = self._build_levels(x, y, rows, order)
        self._flat = _flatten(self._root)
        return self

    def _build_levels(self, x: np.ndarray, y: np.ndarray, rows: np.ndarray,
                      order: np.ndarray) -> _Node:
        """Level-order tree construction.

        Bit-identical to depth-first recursion — node values, split
        choices and child partitions only depend on each node's own rows
        — but iterative, so the hot loop stays flat.  (A fully padded
        sibling-batched split search was tried here and *lost*: at the
        row counts the surrogate trains on, the dense (siblings, rows,
        features) broadcasts cost more than the numpy dispatch they
        save.)
        """
        root = _Node()
        level = [(root, rows, order)]
        depth = 0
        n_features = x.shape[1]
        while level:
            nxt_level = []
            for node, node_rows, node_order in level:
                yv = y[node_rows]
                n = len(yv)
                node.value = float(np.add.reduce(yv) / n) if n else float(yv.mean())
                if depth >= self.max_depth or n < self.min_samples or np.ptp(yv) == 0:
                    continue
                best = self._find_split(
                    x, y, node_rows, node_order, yv,
                    xstats=self._root_xstats if depth == 0 else None,
                )
                if best is None:
                    continue
                feature, threshold = best
                mask = x[node_rows, feature] <= threshold
                node.feature = feature
                node.threshold = threshold
                node.left = _Node()
                node.right = _Node()
                member = np.zeros(x.shape[0], dtype=bool)
                member[node_rows[mask]] = True
                picked = member[node_order.T]
                left_order = node_order.T[picked].reshape(n_features, -1).T
                right_order = node_order.T[~picked].reshape(n_features, -1).T
                nxt_level.append((node.left, node_rows[mask], left_order))
                nxt_level.append((node.right, node_rows[~mask], right_order))
            level = nxt_level
            depth += 1
        return root

    def _pick_from_band(self, x: np.ndarray, rows: np.ndarray, yv: np.ndarray,
                        n: int, base_sse: float, thresholds: np.ndarray,
                        gains: np.ndarray, max_gain: float,
                        tolerance: float) -> Optional[Tuple[int, float]]:
        """Reference-exact winner among the shortlisted candidates: every
        candidate within ``tolerance`` of the vectorized maximum is
        re-scored with the scalar two-pass formula, scanned in the
        reference's (feature, then ascending threshold) order.

        ``np.add.reduce(v) / n`` below is numpy's own ``mean`` kernel
        (``_methods._mean`` is exactly ``umr_sum`` then a divide) minus
        the python-level dispatch, so the re-scored SSEs match the
        reference bit for bit.
        """
        band = np.argwhere(gains >= max_gain - tolerance)
        best_gain = 0.0
        best: Optional[Tuple[int, float]] = None
        for feature, t_index in band:
            threshold = float(thresholds[t_index, feature])
            column = x[rows, feature]
            mask = column <= threshold
            inside = int(np.count_nonzero(mask))
            if inside == 0 or inside == n:
                continue
            left, right = yv[mask], yv[~mask]
            ld = left - np.add.reduce(left) / inside
            rd = right - np.add.reduce(right) / (n - inside)
            exact = float(np.add.reduce(ld * ld)) + float(np.add.reduce(rd * rd))
            gain = base_sse - exact
            if gain > best_gain:
                best_gain = gain
                best = (int(feature), threshold)
        return best

    def _find_split(self, x: np.ndarray, y: np.ndarray, rows: np.ndarray,
                    order: np.ndarray, yv: np.ndarray,
                    xstats: Optional[Tuple] = None) -> Optional[Tuple[int, float]]:
        """Best (feature, threshold) by variance reduction, or None.

        Vectorized shortlist + scalar re-score: cumulative-sum SSEs over
        stably argsorted columns rank all feature x quantile candidates
        at once; every candidate within an error band of the maximum is
        then re-scored with the reference two-pass formula, and the
        reference's first-strictly-positive-improvement scan (feature
        order, then ascending threshold) picks among exact ties.
        """
        n = len(yv)
        dv = yv - np.add.reduce(yv) / n
        base_sse = float(np.add.reduce(dv * dv))
        columns = np.arange(x.shape[1], dtype=np.intp)[None, :]
        if xstats is None:
            xs = x[order, columns]
            xstats = self._x_split_stats(xs, n)
        thresholds, counts, valid, k = xstats
        if not valid.any():
            return None
        ys = y[order]
        csum = np.cumsum(ys, axis=0)
        csum2 = np.cumsum(ys * ys, axis=0)
        left_sum = csum[k - 1, columns]
        left_sum2 = csum2[k - 1, columns]
        right_count = n - k
        right_sum = csum[-1] - left_sum
        sse = (
            left_sum2
            - left_sum * left_sum / k
            + (csum2[-1] - left_sum2)
            - right_sum * right_sum / right_count
        )
        gains = np.where(valid, base_sse - sse, -np.inf).T     # (F, T)
        max_gain = gains.max()
        # Error band: cumulative sums accumulate O(n * eps) of the y**2
        # scale per candidate, so anything this close to the maximum (or
        # to the strict > 0 acceptance bound) must be settled by the
        # scalar formula.
        scale = float(csum2[-1].max()) + base_sse + 1.0
        tolerance = 1e-12 * n * scale + 1e-9 * base_sse
        if max_gain <= -tolerance:
            return None
        return self._pick_from_band(
            x, rows, yv, n, base_sse, thresholds, gains, max_gain, tolerance,
        )

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._root is None:
            raise RuntimeError("tree is not fitted")
        if self._flat is None:
            self._flat = _flatten(self._root)
        flat = self._flat
        x = np.asarray(x)
        index = np.zeros(len(x), dtype=np.intp)
        rows = np.arange(len(x))
        for _ in range(flat.depth):
            feature = flat.feature[index]
            internal = feature >= 0
            if not internal.any():
                break
            goes_left = x[rows, np.maximum(feature, 0)] <= flat.threshold[index]
            index = np.where(
                internal,
                np.where(goes_left, flat.left[index], flat.right[index]),
                index,
            )
        return flat.value[index]

    # -- checkpointing -----------------------------------------------------

    def get_state(self) -> Dict:
        """JSON-compatible snapshot of the fitted tree structure."""
        return {
            "max_depth": self.max_depth,
            "min_samples": self.min_samples,
            "num_thresholds": self.num_thresholds,
            "root": _node_to_dict(self._root) if self._root is not None else None,
        }

    def set_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`get_state` bit-exactly
        (thresholds and leaf values survive a JSON roundtrip unchanged)."""
        self.max_depth = state["max_depth"]
        self.min_samples = state["min_samples"]
        self.num_thresholds = state["num_thresholds"]
        root = state.get("root")
        self._root = _node_from_dict(root) if root is not None else None
        self._flat = _flatten(self._root) if self._root is not None else None


class GradientBoostedTrees:
    """Least-squares gradient boosting (the XGBoost role in AutoTVM)."""

    def __init__(self, num_rounds: int = 30, learning_rate: float = 0.3,
                 max_depth: int = 3, min_samples: int = 4):
        self.num_rounds = num_rounds
        self.learning_rate = learning_rate
        self.max_depth = max_depth
        self.min_samples = min_samples
        self._trees: List[RegressionTree] = []
        self._base: float = 0.0
        self._forest: Optional[_FlatTree] = None
        self._roots: Optional[np.ndarray] = None

    def _compile_forest(self) -> Optional[_FlatTree]:
        """Concatenate every tree's flat arrays into one forest.

        ``predict`` then routes all rows through all trees at once — one
        level-step per iteration over (rows x trees) index matrices —
        instead of walking the ensemble tree by tree.  Per-tree leaf
        values are still accumulated in boosting order, so predictions
        stay bit-identical to the sequential loop.
        """
        if self._forest is None and self._trees:
            flats = []
            for tree in self._trees:
                if tree._flat is None:
                    tree._flat = _flatten(tree._root)
                flats.append(tree._flat)
            offsets = np.cumsum([0] + [len(f.feature) for f in flats[:-1]])
            self._forest = _FlatTree(
                feature=np.concatenate([f.feature for f in flats]),
                threshold=np.concatenate([f.threshold for f in flats]),
                left=np.concatenate([f.left + o for f, o in zip(flats, offsets)]),
                right=np.concatenate([f.right + o for f, o in zip(flats, offsets)]),
                value=np.concatenate([f.value for f in flats]),
                depth=max(f.depth for f in flats),
            )
            self._roots = offsets.astype(np.intp)
        return self._forest

    @property
    def is_fitted(self) -> bool:
        return bool(self._trees) or self._base != 0.0

    def fit(self, x: np.ndarray, y: np.ndarray) -> "GradientBoostedTrees":
        x = np.asarray(x, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        self._trees = []
        self._forest = None
        self._base = float(y.mean()) if len(y) else 0.0
        residual = y - self._base
        # Every round fits on the same x: one stable argsort and one set of
        # root threshold stats serve all trees (each tree filters the order
        # down its nodes, see RegressionTree.fit).
        order = np.argsort(x, axis=0, kind="stable") if x.size else None
        root_xstats = None
        for _ in range(self.num_rounds):
            if np.allclose(residual, 0):
                break
            tree = RegressionTree(self.max_depth, self.min_samples).fit(
                x, residual, order=order, root_xstats=root_xstats
            )
            root_xstats = tree._root_xstats
            update = tree.predict(x)
            residual = residual - self.learning_rate * update
            self._trees.append(tree)
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=np.float64))
        out = np.full(len(x), self._base)
        forest = self._compile_forest()
        if forest is None:
            return out
        index = np.broadcast_to(self._roots, (len(x), len(self._roots))).copy()
        rows = np.arange(len(x))[:, None]
        for _ in range(forest.depth):
            feature = forest.feature[index]
            internal = feature >= 0
            if not internal.any():
                break
            goes_left = (
                x[rows, np.maximum(feature, 0)] <= forest.threshold[index]
            )
            index = np.where(
                internal,
                np.where(goes_left, forest.left[index], forest.right[index]),
                index,
            )
        leaf_values = forest.value[index]
        # Accumulate in boosting order — float addition is not
        # associative, so a vectorized row-sum would drift from the
        # sequential reference by ULPs.
        for t in range(leaf_values.shape[1]):
            out += self.learning_rate * leaf_values[:, t]
        return out

    # -- checkpointing -----------------------------------------------------

    def get_state(self) -> Dict:
        """JSON-compatible snapshot of the whole fitted ensemble."""
        return {
            "num_rounds": self.num_rounds,
            "learning_rate": self.learning_rate,
            "max_depth": self.max_depth,
            "min_samples": self.min_samples,
            "base": self._base,
            "trees": [tree.get_state() for tree in self._trees],
        }

    def set_state(self, state: Dict) -> None:
        """Restore a snapshot produced by :meth:`get_state`; predictions
        of the restored model are bit-identical to the original's."""
        self.num_rounds = state["num_rounds"]
        self.learning_rate = state["learning_rate"]
        self.max_depth = state["max_depth"]
        self.min_samples = state["min_samples"]
        self._base = state["base"]
        self._forest = None
        self._trees = []
        for tree_state in state["trees"]:
            tree = RegressionTree()
            tree.set_state(tree_state)
            self._trees.append(tree)
