"""Shared learned-model components.

Home of the in-repo machine-learning primitives that more than one
subsystem trains: the numpy gradient-boosted trees used both by the
AutoTVM baseline's cost model (``repro.baselines.autotvm``) and by the
online surrogate screen in front of real measurement
(``repro.explore.surrogate``).
"""

from .gbt import GradientBoostedTrees, RegressionTree
from .reference import ReferenceGradientBoostedTrees, ReferenceRegressionTree

__all__ = [
    "GradientBoostedTrees",
    "RegressionTree",
    "ReferenceGradientBoostedTrees",
    "ReferenceRegressionTree",
]
