"""Static analysis of tensor computations (front-end, §4.1).

Extracts the statistical information (loop counts, trip counts, order) and
structural information (graph shape) that the schedule-space generator
consumes.
"""

from __future__ import annotations

from ..graph import MiniGraph, get_graph
from ..ir import ComputeOp, Tensor, count_flops_per_point
from .info import AnalysisResult, StatisticalInfo, StructuralInfo


def analyze(output) -> AnalysisResult:
    """Run the static analyzer on the computation producing ``output``."""
    graph = output if isinstance(output, MiniGraph) else get_graph(output)
    result = AnalysisResult()
    for op in graph.post_order_traverse():
        if not isinstance(op, ComputeOp):
            continue
        result.node_order.append(op.name)
        result.statistical[op.name] = StatisticalInfo(
            num_spatial=len(op.axes),
            num_reduce=len(op.reduce_axes),
            spatial_trip_counts=tuple(a.extent for a in op.axes),
            reduce_trip_counts=tuple(a.extent for a in op.reduce_axes),
            order=tuple(a.name for a in op.all_axes),
        )
        result.structural[op.name] = StructuralInfo(
            num_nodes=graph.num_nodes,
            num_inputs=len(op.input_tensors),
            num_outputs=1,
            num_consumers=len(graph.consumers(op)),
        )
    if not result.node_order:
        raise ValueError("computation has no compute nodes to analyze")
    return result


def operation_flops(output: Tensor) -> int:
    """Total floating-point operations for the computation (the paper's
    FLOPs column in Table 3; a multiply-accumulate counts as 2)."""
    graph = get_graph(output)
    total = 0
    for op in graph.compute_ops:
        points = 1
        for axis in op.axes:
            points *= axis.extent
        reduce_trip = 1
        for axis in op.reduce_axes:
            reduce_trip *= axis.extent
        total += points * reduce_trip * count_flops_per_point(op.body)
    return total


def arithmetic_intensity(output: Tensor) -> float:
    """FLOPs per byte touched, assuming each tensor is read/written once.

    A coarse roofline coordinate used by space pruning to pick sensible
    default tile shapes for memory-bound vs compute-bound operators.
    """
    graph = get_graph(output)
    flops = operation_flops(output)
    bytes_touched = 0
    for op in graph.operations:
        bytes_touched += op.output.size * 4
    return flops / max(bytes_touched, 1)
