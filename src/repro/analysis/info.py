"""Statistical and structural information records (§4.1, Figure 3c)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class StatisticalInfo:
    """Per-node loop statistics.

    Fields follow the paper's notation: ``num_spatial`` (#sl),
    ``num_reduce`` (#rl), ``spatial_trip_counts`` (stc),
    ``reduce_trip_counts`` (rtc) and ``order`` (loop names outer-to-inner).
    """

    num_spatial: int
    num_reduce: int
    spatial_trip_counts: Tuple[int, ...]
    reduce_trip_counts: Tuple[int, ...]
    order: Tuple[str, ...]

    @property
    def iteration_space(self) -> int:
        """Total number of innermost-body executions for this node."""
        total = 1
        for t in self.spatial_trip_counts + self.reduce_trip_counts:
            total *= t
        return total


@dataclass(frozen=True)
class StructuralInfo:
    """Per-node graph-shape statistics: #in, #out, #cs plus graph #node."""

    num_nodes: int
    num_inputs: int
    num_outputs: int
    num_consumers: int


@dataclass
class AnalysisResult:
    """The full front-end analysis of one tensor computation."""

    statistical: Dict[str, StatisticalInfo] = field(default_factory=dict)
    structural: Dict[str, StructuralInfo] = field(default_factory=dict)
    node_order: List[str] = field(default_factory=list)

    @property
    def num_nodes(self) -> int:
        return len(self.node_order)

    def main(self) -> StatisticalInfo:
        """Statistics for the root node (last in post order)."""
        return self.statistical[self.node_order[-1]]

    def totals(self) -> Tuple[int, int]:
        """Graph-wide (#spatial, #reduce) loop counts, summed over compute
        nodes the way Table 3's "Analysis Results" column aggregates them
        (e.g. C2D with a padding node reports 8 spatial / 3 reduce)."""
        spatial = sum(s.num_spatial for s in self.statistical.values())
        reduce_ = sum(s.num_reduce for s in self.statistical.values())
        return spatial, reduce_
