"""Static schedule linter: prove legality before spending measurement budget.

FlexTensor's front-end prunes the schedule space with static structural
knowledge (§4.1–4.2), but hardware legality — thread counts, shared-memory
footprints, register pressure, PE/BRAM budgets — is equally a function of
``(op, config, device spec)`` alone: none of it needs lowering, compiling
or measuring to decide.  This module makes that knowledge a first-class
rule-based analyzer:

* :class:`Diagnostic` — one finding, with a stable rule ID (``GPU001``),
  a severity (``error`` means the evaluator is guaranteed to reject the
  point; ``warn`` means it is modeled as slow but legal), and a fix hint.
* :class:`ScheduleLinter` — runs every applicable rule for one
  ``(op, target, spec)`` against a :class:`~repro.schedule.NodeConfig`.

**Soundness contract** (enforced by ``tests/test_lint.py``): a config
receives an *error*-severity diagnostic **iff** the analytical performance
model rejects it (returns :data:`~repro.model.base.INVALID_TIME`) or
lowering fails.  The rule implementations below are therefore the single
source of truth for hardware limits — the models in :mod:`repro.model`
import the same helper functions rather than re-deriving the arithmetic.

Consumers: :func:`repro.space.build_space` uses error rules to shrink the
generated space up front, the :class:`~repro.runtime.BatchEngine` runs
the linter before its cache probe and bills rejected points at zero cost
(``MeasureStatus.ILLEGAL``), and ``python -m repro lint`` prints a
diagnostics report.  See ``docs/lint.md``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..schedule import (
    CPU_REDUCE_PARTS,
    CPU_SPATIAL_PARTS,
    FPGA_SPATIAL_PARTS,
    GPU_REDUCE_PARTS,
    GPU_SPATIAL_PARTS,
    NodeConfig,
    REORDER_REDUCE_INNER,
)

_DTYPE_BYTES = 4

ERROR = "error"
WARN = "warn"

#: Rule registry: id -> (short name, severity, one-line description).
#: Stable IDs — documented in docs/lint.md; tests pin them.
RULES: Dict[str, Tuple[str, str, str]] = {
    "GEN001": ("non-divisible-split", ERROR,
               "split factors of an axis do not multiply to its extent"),
    "GEN002": ("dead-knob", WARN,
               "a knob setting has no effect on the lowered schedule"),
    "GEN003": ("malformed-config", ERROR,
               "config shape does not match the operator/target (lowering "
               "would fail)"),
    "GPU001": ("threads-per-block", ERROR,
               "fused threadIdx extent exceeds the device block limit"),
    "GPU002": ("smem-footprint", ERROR,
               "shared-memory tile exceeds the per-block budget"),
    "GPU003": ("register-pressure", WARN,
               "register tile exceeds the per-thread budget (spills)"),
    "GPU004": ("zero-occupancy", ERROR,
               "no thread block fits on an SM under the resource limits"),
    "CPU001": ("vectorize-width", WARN,
               "innermost vectorized loop wastes SIMD lanes"),
    "CPU002": ("parallel-starvation", WARN,
               "parallel chunks leave physical cores idle"),
    "FPGA001": ("pe-budget", ERROR,
                "PE array exceeds the DSP budget"),
    "FPGA002": ("bram-footprint", ERROR,
                "line buffers exceed the BRAM budget"),
    "FPGA003": ("partition-clamped", WARN,
                "memory partition factor exceeds the device banks"),
    "TEN001": ("no-intrinsic-match", ERROR,
               "the op/target does not statically instantiate the named "
               "intrinsic (pattern, dtype, stride or extent mismatch)"),
    "TEN002": ("tile-misaligned", ERROR,
               "a covered loop's inner split factor is not a multiple of "
               "the intrinsic tile extent"),
    "TEN003": ("not-innermost", ERROR,
               "the reorder choice does not keep the intrinsic's covered "
               "loops contiguous and innermost"),
    "TEN004": ("dead-vectorize-under-tensorize", WARN,
               "vectorize has no effect when the intrinsic subsumes the "
               "innermost lanes"),
}


@dataclass(frozen=True)
class Diagnostic:
    """One linter finding against a schedule configuration."""

    rule: str           # stable ID, e.g. "GPU001"
    severity: str       # "error" | "warn"
    message: str        # what is wrong, with the offending numbers
    hint: str = ""      # how to fix it

    @property
    def name(self) -> str:
        """The rule's short name (``threads-per-block``)."""
        return RULES[self.rule][0]

    def to_dict(self) -> Dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "severity": self.severity,
            "message": self.message,
            "hint": self.hint,
        }

    def __str__(self):
        return f"{self.rule} {self.name} [{self.severity}]: {self.message}"


def _diag(rule: str, message: str, hint: str = "") -> Diagnostic:
    return Diagnostic(rule=rule, severity=RULES[rule][1], message=message, hint=hint)


# -- shared hardware-limit arithmetic ------------------------------------
#
# These helpers are the one source of truth for the static quantities the
# hardware models gate on.  repro.model.gpu / repro.model.fpga call them,
# so a linter verdict and a model rejection can never disagree.

def gpu_block_threads(config: NodeConfig) -> int:
    """Fused ``threadIdx.x`` extent: product of the thread split parts."""
    threads = 1
    for factors in config.spatial_factors:
        threads *= factors[2]
    return threads


def gpu_register_estimate(config: NodeConfig) -> int:
    """Per-thread register estimate of the GPU model (uncapped).

    A fixed overhead plus the accumulator tile (vthread x inner parts)
    plus one address register per spatial inner part.
    """
    acc_tile = 1
    for factors in config.spatial_factors:
        acc_tile *= factors[1] * factors[3]
    return 24 + acc_tile + sum(f[3] for f in config.spatial_factors)


def gpu_block_tile(op, config: NodeConfig) -> Dict:
    """Per-axis extent of one block's tile for one reduce-outer step."""
    tile: Dict = {}
    for axis, factors in zip(op.axes, config.spatial_factors):
        tile[axis] = factors[1] * factors[2] * factors[3]
    for axis, factors in zip(op.reduce_axes, config.reduce_factors):
        tile[axis] = factors[1]
    return tile


def gpu_smem_bytes(op, config: NodeConfig, tensors: Optional[Sequence] = None) -> int:
    """Shared-memory footprint of the cached input tiles (0 if uncached)."""
    from ..codegen import tile_footprint

    if tensors is None:
        tensors = op.input_tensors if config.use_shared else ()
    if not tensors:
        return 0
    tile = gpu_block_tile(op, config)
    return sum(tile_footprint(op, t, tile) * _DTYPE_BYTES for t in tensors)


def gpu_active_blocks(spec, threads_per_block: int, smem_bytes: int,
                      registers: int) -> int:
    """Blocks resident per SM under thread/smem/register occupancy limits.

    ``registers`` is the raw estimate; the hardware cap (beyond which the
    compiler spills instead of allocating) is applied here, exactly as the
    GPU model does before its occupancy computation.
    """
    registers = min(registers, spec.max_registers_per_thread)
    blocks_by_threads = spec.max_threads_per_sm // max(threads_per_block, 1)
    blocks_by_smem = (
        spec.shared_mem_per_sm // smem_bytes if smem_bytes else spec.max_blocks_per_sm
    )
    blocks_by_regs = spec.registers_per_sm // max(registers * threads_per_block, 1)
    return min(blocks_by_threads, blocks_by_smem, blocks_by_regs, spec.max_blocks_per_sm)


def fpga_num_pes(config: NodeConfig) -> int:
    """Fused PE-array extent: product of the PE split parts."""
    pes = 1
    for factors in config.spatial_factors:
        pes *= factors[1]
    return pes


def fpga_bram_bytes(op, config: NodeConfig) -> int:
    """BRAM footprint of the input line buffers for one pipeline round."""
    from ..codegen import tile_footprint

    pe_tile: Dict = {}
    for axis, factors in zip(op.axes, config.spatial_factors):
        pe_tile[axis] = factors[1]
    for axis in op.reduce_axes:
        pe_tile[axis] = axis.extent
    buffer_lines = max(config.fpga_buffer_lines, 1)
    total = 0
    for tensor in op.input_tensors:
        total += tile_footprint(op, tensor, pe_tile) * _DTYPE_BYTES * buffer_lines
    return total


def cpu_parallel_chunks(config: NodeConfig) -> int:
    """Chunks of the fused parallel outer loop (outer parts, fused depth)."""
    chunks = 1
    for factors in config.spatial_factors[: config.fuse_levels]:
        chunks *= factors[0]
    return chunks


def cpu_innermost_vector(op, config: NodeConfig) -> Optional[Tuple[str, int]]:
    """(kind, extent) of the loop CPU lowering vectorizes, or None.

    Mirrors ``_lower_cpu`` + ``_order_inner``: the innermost loop is the
    last reduce-inner part under ``REORDER_REDUCE_INNER`` (when the op
    reduces), otherwise the last spatial inner part.
    """
    if not config.vectorize:
        return None
    if config.reorder == REORDER_REDUCE_INNER and op.reduce_axes:
        return ("reduce", config.reduce_factors[-1][1])
    return ("spatial", config.spatial_factors[-1][2])


# -- the linter -----------------------------------------------------------

_PARTS = {
    "gpu": (GPU_SPATIAL_PARTS, GPU_REDUCE_PARTS),
    "cpu": (CPU_SPATIAL_PARTS, CPU_REDUCE_PARTS),
    "fpga": (FPGA_SPATIAL_PARTS, 1),
}


class ScheduleLinter:
    """Rule-based static analyzer for one ``(op, target, spec)``.

    ``ignore`` suppresses rules by ID (warnings in practice; suppressing
    an *error* rule breaks the soundness contract and is refused).
    """

    def __init__(self, op, target: str, spec, ignore: Iterable[str] = ()):
        if target not in _PARTS:
            raise ValueError(f"unknown target {target!r}")
        self.op = op
        self.target = target
        self.spec = spec
        self.ignore = frozenset(ignore)
        for rule in self.ignore:
            if rule not in RULES:
                raise ValueError(f"unknown lint rule {rule!r}")
            if RULES[rule][1] == ERROR:
                raise ValueError(
                    f"rule {rule} is error-severity and cannot be suppressed "
                    "(errors mirror hard hardware limits)"
                )

    # -- public API -------------------------------------------------------

    def lint(self, config: NodeConfig) -> List[Diagnostic]:
        """All diagnostics for ``config``, errors first."""
        diagnostics = self._structure(config)
        if not any(d.rule == "GEN003" for d in diagnostics):
            diagnostics.extend(self._divisibility(config))
            if self.target == "gpu":
                diagnostics.extend(self._gpu_rules(config))
            elif self.target == "cpu":
                diagnostics.extend(self._cpu_rules(config))
            else:
                diagnostics.extend(self._fpga_rules(config))
            diagnostics.extend(self._tensorize_rules(config))
            diagnostics.extend(self._dead_knobs(config))
        diagnostics = [d for d in diagnostics if d.rule not in self.ignore]
        diagnostics.sort(key=lambda d: (d.severity != ERROR, d.rule))
        return diagnostics

    def errors(self, config: NodeConfig) -> List[Diagnostic]:
        """Error-severity diagnostics only (the legality verdict)."""
        return [d for d in self.lint(config) if d.severity == ERROR]

    def is_legal(self, config: NodeConfig) -> bool:
        """True iff no error rule fires — by the soundness contract, true
        iff the evaluator would not statically reject the point."""
        return not self.errors(config)

    # -- rule groups ------------------------------------------------------

    def _structure(self, config: NodeConfig) -> List[Diagnostic]:
        """GEN003: shape mismatches that would make lowering raise."""
        op = self.op
        spatial_parts, reduce_parts = _PARTS[self.target]
        found: List[Diagnostic] = []
        if len(config.spatial_factors) != len(op.axes):
            found.append(_diag(
                "GEN003",
                f"config has {len(config.spatial_factors)} spatial splits, "
                f"op {op.name} has {len(op.axes)} spatial axes",
                "regenerate the config from this operator's schedule space",
            ))
        if len(config.reduce_factors) != len(op.reduce_axes):
            found.append(_diag(
                "GEN003",
                f"config has {len(config.reduce_factors)} reduce splits, "
                f"op {op.name} has {len(op.reduce_axes)} reduce axes",
                "regenerate the config from this operator's schedule space",
            ))
        for factors in config.spatial_factors:
            if len(factors) != spatial_parts:
                found.append(_diag(
                    "GEN003",
                    f"{self.target} lowering expects {spatial_parts}-part "
                    f"spatial splits, got {tuple(factors)}",
                    f"use {spatial_parts} factors per spatial axis",
                ))
        for factors in config.reduce_factors:
            if len(factors) != reduce_parts:
                found.append(_diag(
                    "GEN003",
                    f"{self.target} lowering expects {reduce_parts}-part "
                    f"reduce splits, got {tuple(factors)}",
                    f"use {reduce_parts} factors per reduce axis",
                ))
        if self.target == "cpu" and config.fuse_levels > len(op.axes):
            found.append(_diag(
                "GEN003",
                f"fuse_levels {config.fuse_levels} exceeds the "
                f"{len(op.axes)} spatial axes",
                f"clamp fuse_levels to {len(op.axes)}",
            ))
        return found

    def _divisibility(self, config: NodeConfig) -> List[Diagnostic]:
        """GEN001: splits must multiply back to their axis extent."""
        found: List[Diagnostic] = []
        pairs = list(zip(self.op.axes, config.spatial_factors))
        pairs += list(zip(self.op.reduce_axes, config.reduce_factors))
        for axis, factors in pairs:
            product = 1
            for f in factors:
                product *= f
            if product != axis.extent:
                found.append(_diag(
                    "GEN001",
                    f"split {tuple(factors)} of axis {axis.name} multiplies "
                    f"to {product}, extent is {axis.extent}",
                    "pick an ordered factorization of the extent "
                    "(divisible splits only, §4.2)",
                ))
        return found

    def _gpu_rules(self, config: NodeConfig) -> List[Diagnostic]:
        spec = self.spec
        found: List[Diagnostic] = []
        threads = gpu_block_threads(config)
        if threads > spec.max_threads_per_block:
            found.append(_diag(
                "GPU001",
                f"{threads} threads per block exceed the "
                f"{spec.max_threads_per_block} limit of {spec.name}",
                "shrink the thread split parts (their product is the "
                "fused threadIdx extent)",
            ))
        smem = gpu_smem_bytes(self.op, config)
        if smem > spec.shared_mem_per_block:
            found.append(_diag(
                "GPU002",
                f"shared-memory tile of {smem} B exceeds the "
                f"{spec.shared_mem_per_block} B per-block budget",
                "shrink the block tile (vthread/thread/inner parts and "
                "reduce-inner chunk) or disable shared-memory caching",
            ))
        registers = gpu_register_estimate(config)
        if registers > spec.max_registers_per_thread:
            found.append(_diag(
                "GPU003",
                f"~{registers} registers per thread exceed the "
                f"{spec.max_registers_per_thread} budget (modeled as "
                f"{registers / spec.max_registers_per_thread:.1f}x spill "
                "slowdown)",
                "shrink the vthread and inner split parts (the register "
                "tile is their product)",
            ))
        if gpu_active_blocks(spec, threads, smem, registers) == 0:
            found.append(_diag(
                "GPU004",
                f"no block fits on an SM: {threads} threads x "
                f"~{min(registers, spec.max_registers_per_thread)} registers "
                f"(+{smem} B smem) exceed every per-SM budget",
                "reduce threads per block or the register/shared tile",
            ))
        return found

    def _cpu_rules(self, config: NodeConfig) -> List[Diagnostic]:
        spec = self.spec
        found: List[Diagnostic] = []
        vector = cpu_innermost_vector(self.op, config)
        if vector is not None:
            kind, length = vector
            lanes = spec.vector_lanes
            if length % lanes:
                padded = -(-length // lanes) * lanes
                found.append(_diag(
                    "CPU001",
                    f"innermost {kind} loop of {length} iterations fills "
                    f"{length}/{padded} SIMD lanes ({spec.name} has "
                    f"{lanes} fp32 lanes)",
                    f"make the innermost split factor a multiple of {lanes}",
                ))
        chunks = cpu_parallel_chunks(config)
        if chunks < spec.num_cores:
            found.append(_diag(
                "CPU002",
                f"{chunks} parallel chunks starve {spec.num_cores} cores",
                "raise fuse_levels or the outer split factors so the fused "
                "parallel loop exposes at least one chunk per core",
            ))
        return found

    def _fpga_rules(self, config: NodeConfig) -> List[Diagnostic]:
        spec = self.spec
        found: List[Diagnostic] = []
        pes = fpga_num_pes(config)
        if pes > spec.max_pes:
            found.append(_diag(
                "FPGA001",
                f"{pes} PEs exceed the {spec.max_pes} the DSP budget of "
                f"{spec.name} allows",
                "shrink the PE split parts (their product is the PE array)",
            ))
        bram = fpga_bram_bytes(self.op, config)
        if bram > spec.bram_kb * 1024:
            found.append(_diag(
                "FPGA002",
                f"line buffers of {bram} B exceed the "
                f"{spec.bram_kb * 1024} B BRAM budget",
                "buffer fewer input lines or shrink the PE tile",
            ))
        if config.fpga_partition > spec.max_partitions:
            found.append(_diag(
                "FPGA003",
                f"partition factor {config.fpga_partition} exceeds the "
                f"{spec.max_partitions} banks of {spec.name} (clamped)",
                f"use a partition factor <= {spec.max_partitions}",
            ))
        return found

    def _tensorize_rules(self, config: NodeConfig) -> List[Diagnostic]:
        """TEN001-TEN004: intrinsic tensorization legality.

        The error rules delegate verbatim to
        :func:`repro.analysis.match.tensorize_rejections` — the same
        oracle ``schedule.lower`` raises on — so every TEN error is a
        proof the point cannot lower (the PR 3 soundness contract).
        """
        if not getattr(config, "tensorize", ""):
            return []
        from .match import tensorize_rejections

        found = [
            Diagnostic(rule=rule, severity=RULES[rule][1], message=message,
                       hint=hint)
            for rule, message, hint in
            tensorize_rejections(self.op, config, self.target)
        ]
        if not found and config.vectorize:
            found.append(_diag(
                "TEN004",
                f"vectorize is dead: {config.tensorize} replaces the "
                "innermost loops with one intrinsic call",
                "disable vectorize when tensorizing",
            ))
        return found

    def _dead_knobs(self, config: NodeConfig) -> List[Diagnostic]:
        """GEN002: knob settings with no effect on the lowered schedule.

        Mirrors the measurement-equivalence rules of
        :meth:`repro.space.ScheduleSpace.canonical_point`.
        """
        found: List[Diagnostic] = []
        if (
            self.target == "gpu"
            and config.vectorize
            and config.reorder == REORDER_REDUCE_INNER
            and self.op.reduce_axes
        ):
            found.append(_diag(
                "GEN002",
                "vectorize is dead: the reduce-inner reorder keeps a "
                "reduce loop innermost and only spatial loops vectorize",
                "disable vectorize or pick a reorder with a spatial "
                "innermost loop",
            ))
        if config.unroll_depth > 16:
            found.append(_diag(
                "GEN002",
                f"unroll depth {config.unroll_depth} is modeled identically "
                "to the smallest nonzero depth",
                "use unroll depth 16 (or 0 to disable)",
            ))
        if self.target in ("gpu", "fpga") and config.fuse_levels != 1:
            found.append(_diag(
                "GEN002",
                f"fuse_levels={config.fuse_levels} is a CPU-only knob and "
                f"is ignored by {self.target} lowering",
                "leave fuse_levels at 1 off-CPU",
            ))
        return found


def lint_config(op, config: NodeConfig, target: str, spec,
                ignore: Iterable[str] = ()) -> List[Diagnostic]:
    """One-shot convenience wrapper around :class:`ScheduleLinter`."""
    return ScheduleLinter(op, target, spec, ignore=ignore).lint(config)


def lint_point(space, point, spec, ignore: Iterable[str] = ()) -> List[Diagnostic]:
    """Lint a schedule-space point (decode + lint)."""
    linter = ScheduleLinter(space.op, space.target, spec, ignore=ignore)
    return linter.lint(space.decode(point))
