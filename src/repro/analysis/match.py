"""Static IR subtree matcher for intrinsic tensorization (ISSUE #8).

Decides whether the innermost loops of a :class:`~repro.ir.ComputeOp`
instantiate a registered intrinsic's compute pattern, and — given a
schedule configuration — whether the ``tensorize`` knob choice is legal.

The match is *structural unification*: the pattern's lane expression (an
ordinary :mod:`repro.ir` tree, see :mod:`repro.analysis.intrin`) is
unified against the op's inner body with

* commutative handling of ``+`` / ``*`` (operand order backtracks),
* tensor-binding capture with exact dtype constraints,
* positional axis binding — the pattern's covered spatial/reduce axes bind
  to the op's *last* spatial/reduce axes, which is exactly what lowering
  makes innermost,
* dependence verification via affine strides: a bound op axis must appear
  in a matched operand read iff the pattern axis appears in the pattern
  read (non-affine accesses never match),
* stride constraints: the intrinsic's loads dictate unit-stride
  requirements (``stride_mode``), and
* extent constraints: a covered op axis extent must be divisible by the
  pattern tile extent.

Legality is then split between the static match (config-independent,
memoized per op) and :func:`tensorize_rejections`, the **single source of
truth** consulted by both ``schedule.lower._annotate`` (raises
``LoweringError``) and the ``TEN`` lint rules in
:mod:`repro.analysis.lint`.  A TEN error diagnostic is therefore a proof
of lowering failure by construction — PR 3's soundness contract extends
to tensorization with zero new arithmetic to keep in sync.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..ir import (
    Add,
    BinaryOp,
    ComputeOp,
    Expr,
    FloatImm,
    IntImm,
    IterVar,
    Mul,
    Reduce,
    Tensor,
    TensorRef,
    stride_of,
)
from ..schedule import (
    REORDER_INTERLEAVED,
    REORDER_REDUCE_INNER,
    REORDER_SPATIAL_INNER,
    NodeConfig,
)
from .intrin import INTRINSICS, STRIDE_ALL, IntrinsicSpec

#: Inner (register-tile) spatial split part per target; reduce-inner is
#: part 1 on both.  FPGA has no intrinsic backend.
INNER_SPATIAL_PART = {"cpu": 2, "gpu": 3}
INNER_REDUCE_PART = 1


@dataclass(frozen=True)
class MatchResult:
    """A successful static match of an intrinsic against an op."""

    intrinsic: str
    #: (pattern tensor, op tensor) bindings captured by unification.
    tensor_bindings: Tuple[Tuple[Tensor, Tensor], ...]
    #: (pattern read, matched op read) pairs, in unification order.
    ref_pairs: Tuple[Tuple[TensorRef, TensorRef], ...]
    #: covered op spatial axes (a suffix of ``op.axes``).
    spatial_axes: Tuple[IterVar, ...]
    #: covered op reduce axes (a suffix of ``op.reduce_axes``).
    reduce_axes: Tuple[IterVar, ...]
    #: (pattern axis, op axis) pairs, spatial first.
    axis_pairs: Tuple[Tuple[IterVar, IterVar], ...]


def _unify(pattern: Expr, expr: Expr,
           binding: Dict[Tensor, Tensor],
           pairs: List[Tuple[TensorRef, TensorRef]]) -> bool:
    """Unify the pattern tree against an op expression, capturing tensor
    bindings.  Commutative ``+``/``*`` backtrack over operand order."""
    if isinstance(pattern, TensorRef):
        if not isinstance(expr, TensorRef):
            return False
        bound = binding.get(pattern.tensor)
        if bound is not None and bound is not expr.tensor:
            return False
        if expr.tensor.dtype != pattern.tensor.dtype:
            return False
        binding[pattern.tensor] = expr.tensor
        pairs.append((pattern, expr))
        return True
    if isinstance(pattern, (IntImm, FloatImm)):
        return type(expr) is type(pattern) and expr.value == pattern.value
    if isinstance(pattern, BinaryOp):
        if type(expr) is not type(pattern):
            return False
        orders = [(expr.a, expr.b)]
        if isinstance(pattern, (Add, Mul)):
            orders.append((expr.b, expr.a))
        for first, second in orders:
            trial_binding = dict(binding)
            trial_pairs = list(pairs)
            if _unify(pattern.a, first, trial_binding, trial_pairs) and _unify(
                pattern.b, second, trial_binding, trial_pairs
            ):
                binding.clear()
                binding.update(trial_binding)
                pairs[:] = trial_pairs
                return True
        return False
    # Patterns are built from reads, immediates and arithmetic only.
    return False


def _match(op: ComputeOp, intrin: IntrinsicSpec) -> Optional[MatchResult]:
    pattern_op = intrin.op
    if op.output.dtype != intrin.output.dtype:
        return None
    op_body = op.body
    if intrin.combiner:
        if not isinstance(op_body, Reduce) or op_body.combiner != intrin.combiner:
            return None
        op_inner = op_body.body
    else:
        if isinstance(op_body, Reduce):
            # A reduction-free lane pattern (FMA) tensorizes the multiply
            # inside a sum: the op's own accumulator is the add.
            if op_body.combiner != "sum":
                return None
            op_inner = op_body.body
        else:
            op_inner = op_body

    p_spatial = intrin.spatial_axes
    p_reduce = intrin.reduce_axes
    if len(op.axes) < len(p_spatial) or len(op.reduce_axes) < len(p_reduce):
        return None
    o_spatial = op.axes[len(op.axes) - len(p_spatial):]
    o_reduce = op.reduce_axes[len(op.reduce_axes) - len(p_reduce):]
    axis_pairs = tuple(zip(p_spatial, o_spatial)) + tuple(zip(p_reduce, o_reduce))

    # Tile-extent divisibility: some inner split must be able to align.
    for p_axis, o_axis in axis_pairs:
        if o_axis.extent % p_axis.extent:
            return None

    binding: Dict[Tensor, Tensor] = {}
    pairs: List[Tuple[TensorRef, TensorRef]] = []
    if not _unify(intrin.inner_body, op_inner, binding, pairs):
        return None

    # Dependence + stride verification per matched read.
    unit_refs = 0
    for p_ref, o_ref in pairs:
        has_unit = False
        for p_axis, o_axis in axis_pairs:
            p_stride = stride_of(p_ref.indices, p_ref.tensor.shape, p_axis)
            o_stride = stride_of(o_ref.indices, o_ref.tensor.shape, o_axis)
            if o_stride is None:
                return None  # non-affine in a covered axis
            p_used = p_stride is None or p_stride != 0
            if p_used != (o_stride != 0):
                return None  # dependence pattern differs from the intrinsic
            if p_used and p_stride is not None and abs(p_stride) == 1 \
                    and abs(o_stride) == 1:
                has_unit = True
        unit_refs += has_unit
    if intrin.stride_mode == STRIDE_ALL:
        if unit_refs < len(pairs):
            return None
    elif unit_refs == 0:
        return None

    return MatchResult(
        intrinsic=intrin.name,
        tensor_bindings=tuple(binding.items()),
        ref_pairs=tuple(pairs),
        spatial_axes=tuple(o_spatial),
        reduce_axes=tuple(o_reduce),
        axis_pairs=axis_pairs,
    )


# Static matches are pure functions of (op, intrinsic); memoize per op so
# the space builder, the linter and lowering all pay at most once.
_MATCH_CACHE: "weakref.WeakKeyDictionary[ComputeOp, Dict[str, Optional[MatchResult]]]" \
    = weakref.WeakKeyDictionary()


def match_intrinsic(op: ComputeOp, intrin: IntrinsicSpec) -> Optional[MatchResult]:
    """The static (config-independent) match verdict, memoized per op."""
    per_op = _MATCH_CACHE.get(op)
    if per_op is None:
        per_op = {}
        _MATCH_CACHE[op] = per_op
    if intrin.name not in per_op:
        per_op[intrin.name] = _match(op, intrin)
    return per_op[intrin.name]


def matching_intrinsics(op: ComputeOp, target: str) -> Tuple[str, ...]:
    """Registered intrinsic names that statically match ``op`` on ``target``."""
    return tuple(
        name
        for name in sorted(INTRINSICS)
        if INTRINSICS[name].target == target
        and match_intrinsic(op, INTRINSICS[name]) is not None
    )


def covered_inner_roles(op: ComputeOp, name: str, target: str) -> Tuple[Tuple, ...]:
    """Loop roles ``(kind, axis_index, part)`` the intrinsic consumes.

    These are the inner split parts of the matched axis suffix — the loops
    that lowering annotates ``TENSORIZE`` and that must sit innermost.
    """
    match = match_intrinsic(op, INTRINSICS[name])
    if match is None:
        return ()
    spatial_part = INNER_SPATIAL_PART[target]
    n_spatial, n_reduce = len(op.axes), len(op.reduce_axes)
    roles = [
        ("spatial", idx, spatial_part)
        for idx in range(n_spatial - len(match.spatial_axes), n_spatial)
    ]
    roles += [
        ("reduce", idx, INNER_REDUCE_PART)
        for idx in range(n_reduce - len(match.reduce_axes), n_reduce)
    ]
    return tuple(roles)


def inner_role_order(op: ComputeOp, config: NodeConfig, target: str) -> List[Tuple]:
    """Roles of the per-core/per-thread tile loops, outermost first.

    Replicates ``schedule.lower._order_inner`` over role tuples: the full
    lowered nest always ends with this list, so its suffix is the nest's
    innermost suffix.
    """
    spatial_part = INNER_SPATIAL_PART[target]
    reduce_outer = [("reduce", i, 0) for i in range(len(op.reduce_axes))]
    reduce_inner = [("reduce", i, INNER_REDUCE_PART)
                    for i in range(len(op.reduce_axes))]
    spatial_inner = [("spatial", i, spatial_part) for i in range(len(op.axes))]
    if config.reorder == REORDER_REDUCE_INNER:
        return reduce_outer + spatial_inner + reduce_inner
    if config.reorder == REORDER_SPATIAL_INNER:
        return reduce_outer + reduce_inner + spatial_inner
    if config.reorder == REORDER_INTERLEAVED:
        if spatial_inner:
            return (
                reduce_outer + spatial_inner[:-1] + reduce_inner
                + [spatial_inner[-1]]
            )
        return reduce_outer + reduce_inner
    raise ValueError(f"unknown reorder choice {config.reorder}")


def _inner_factor(config: NodeConfig, role: Tuple) -> int:
    kind, idx, part = role
    factors = config.spatial_factors if kind == "spatial" else config.reduce_factors
    return factors[idx][part]


def tensorize_rejections(
    op: ComputeOp, config: NodeConfig, target: str
) -> List[Tuple[str, str, str]]:
    """Why ``config.tensorize`` cannot be applied: ``(rule, message, hint)``.

    Empty iff lowering will apply the intrinsic.  This function is the one
    legality oracle: ``schedule.lower._annotate`` raises ``LoweringError``
    exactly when it is non-empty, and the TEN lint rules emit exactly its
    entries — so a TEN error diagnostic is a proof of lowering failure.

    Callers guarantee the config's split shape fits the op (the linter's
    GEN003 gate; lowering's ``_check_parts``).
    """
    name = getattr(config, "tensorize", "")
    if not name:
        return []
    intrin = INTRINSICS.get(name)
    if intrin is None:
        return [(
            "TEN001",
            f"unknown intrinsic {name!r}",
            f"choose one of {', '.join(sorted(INTRINSICS))} (or \"\")",
        )]
    if intrin.target != target:
        return [(
            "TEN001",
            f"intrinsic {name} is a {intrin.target} instruction; "
            f"this schedule lowers for {target}",
            "drop tensorize or tune for the intrinsic's target",
        )]
    match = match_intrinsic(op, intrin)
    if match is None:
        return [(
            "TEN001",
            f"op {op.name!r} does not instantiate {name}: its inner body, "
            "dtypes, access strides or axis extents fail unification with "
            "the intrinsic pattern",
            "tensorize only ops the matcher reports via matching_intrinsics()",
        )]
    found: List[Tuple[str, str, str]] = []
    covered = covered_inner_roles(op, name, target)
    for (p_axis, o_axis), role in zip(match.axis_pairs, covered):
        factor = _inner_factor(config, role)
        if factor % p_axis.extent:
            found.append((
                "TEN002",
                f"inner split of {o_axis.name} is {factor}, not a multiple "
                f"of the {name} tile extent {p_axis.extent}",
                f"make that inner split factor a positive multiple of "
                f"{p_axis.extent}",
            ))
    order = inner_role_order(op, config, target)
    suffix = order[len(order) - len(covered):]
    if set(suffix) != set(covered):
        inner_names = ", ".join(f"{k}[{i}].{p}" for k, i, p in suffix)
        found.append((
            "TEN003",
            f"{name} needs its {len(covered)} covered loops contiguous and "
            f"innermost, but reorder choice {config.reorder} ends the nest "
            f"with {inner_names}",
            "pick a reorder that keeps the intrinsic tile innermost",
        ))
    return found


__all__ = [
    "INNER_REDUCE_PART",
    "INNER_SPATIAL_PART",
    "MatchResult",
    "covered_inner_roles",
    "inner_role_order",
    "match_intrinsic",
    "matching_intrinsics",
    "tensorize_rejections",
]
