"""Declarative intrinsic registry for tensorization (ISSUE #8).

FlexTensor's schedule space stops at split/reorder/bind/unroll, but the
biggest hardware factors on the paper's targets come from tensorized
dot-product units (VNNI on Skylake-SP, mma fragments on Volta).  Following
TensorIR, each intrinsic is described *declaratively*: its compute pattern
is an ordinary :mod:`repro.ir` expression built with ``placeholder`` /
``compute`` / ``reduce_axis``, exactly like a workload definition.  The
matcher in :mod:`repro.analysis.match` then decides by structural
unification whether an op's innermost loops instantiate the pattern.

An :class:`IntrinsicSpec` also carries the constraint set that cannot be
read off the pattern expression alone:

* ``target`` — which lowering backend owns the instruction,
* ``rate`` — the datapath speedup the models bill over the scalar/SIMD
  compute baseline (GPU intrinsics additionally multiply the device's
  ``tensor_core_rate``; see :func:`repro.model.resources.tensorize_rate`),
* ``stride_mode`` — contiguity the instruction's loads require: ``"any"``
  means at least one matched operand must access a covered axis at unit
  stride (the packed side of a VNNI dot product), ``"all"`` means every
  matched operand needs a unit-stride covered axis (both mma fragment
  loads are contiguous in their minor dimension).

The pattern's axis *extents* are the instruction's tile shape: a covered
op loop must split into inner factors that are positive multiples of the
pattern extent (checked per-config by ``TEN002``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..ir import (
    ComputeOp,
    IterVar,
    Reduce,
    Tensor,
    compute,
    placeholder,
    reduce_axis,
    stride_of,
    sum_reduce,
)

STRIDE_ANY = "any"    # >= 1 matched operand reads a covered axis at unit stride
STRIDE_ALL = "all"    # every matched operand reads some covered axis at unit stride


@dataclass(frozen=True)
class IntrinsicSpec:
    """One hardware intrinsic: a compute pattern plus legality constraints."""

    name: str
    description: str
    target: str                   # "cpu" | "gpu"
    output: Tensor                # pattern ComputeOp output (ordinary ir)
    rate: float                   # compute-rate multiplier over the SIMD baseline
    stride_mode: str = STRIDE_ANY

    def __post_init__(self):
        if self.target not in ("cpu", "gpu"):
            raise ValueError(f"intrinsic target must be cpu or gpu, got {self.target!r}")
        if self.stride_mode not in (STRIDE_ANY, STRIDE_ALL):
            raise ValueError(f"unknown stride mode {self.stride_mode!r}")
        if self.rate <= 0:
            raise ValueError("intrinsic rate must be positive")
        if not isinstance(self.output.op, ComputeOp):
            raise ValueError("intrinsic pattern must be a ComputeOp output")

    @property
    def op(self) -> ComputeOp:
        """The pattern's compute op."""
        return self.output.op

    @property
    def inner_body(self):
        """The pattern body below any Reduce wrapper (the lane expression)."""
        body = self.op.body
        return body.body if isinstance(body, Reduce) else body

    @property
    def combiner(self) -> str:
        """Reduction combiner, or "" for reduction-free patterns."""
        body = self.op.body
        return body.combiner if isinstance(body, Reduce) else ""

    @property
    def reduce_axes(self) -> Tuple[IterVar, ...]:
        """Pattern reduce axes (the accumulation tile)."""
        return tuple(self.op.reduce_axes)

    @property
    def spatial_axes(self) -> Tuple[IterVar, ...]:
        """Pattern spatial axes that the lane expression actually reads.

        A unit-extent spatial axis that never appears in the body (the
        scalar output slot of a dot product) covers no op loop.
        """
        from ..ir import collect_tensor_refs

        refs = list(collect_tensor_refs(self.op.body))
        used = []
        for axis in self.op.axes:
            for ref in refs:
                stride = stride_of(ref.indices, ref.tensor.shape, axis)
                if stride is None or stride != 0:
                    used.append(axis)
                    break
        return tuple(used)

    @property
    def covered_axes(self) -> Tuple[IterVar, ...]:
        """All pattern axes a matched op must dedicate inner loops to."""
        return self.spatial_axes + self.reduce_axes

    def lane_count(self) -> int:
        """Elements one intrinsic call covers (product of covered extents)."""
        total = 1
        for axis in self.covered_axes:
            total *= axis.extent
        return total


def _dot4_vnni() -> IntrinsicSpec:
    x = placeholder((4,), name="vnni_x", dtype="int8")
    y = placeholder((4,), name="vnni_y", dtype="int8")
    r = reduce_axis(4, name="vnni_r")
    out = compute((1,), lambda i: sum_reduce(x[r] * y[r], r),
                  name="dot4_vnni", dtype="int32")
    return IntrinsicSpec(
        name="dot4_vnni",
        description="int8 x int8 -> int32 4-wide dot product (AVX-512 VNNI "
                    "vpdpbusd): four adjacent products accumulate in one "
                    "int32 lane at 4x the fp32 FMA rate",
        target="cpu",
        output=out,
        rate=4.0,
        stride_mode=STRIDE_ANY,
    )


def _fma_w8() -> IntrinsicSpec:
    s = placeholder((1,), name="fma_s", dtype="float32")
    y = placeholder((8,), name="fma_y", dtype="float32")
    out = compute((8,), lambda i: s[0] * y[i], name="fma_w8", dtype="float32")
    return IntrinsicSpec(
        name="fma_w8",
        description="width-8 fp32 fused multiply-add (broadcast scalar x "
                    "contiguous vector): both FMA pipes issue per cycle",
        target="cpu",
        output=out,
        rate=2.0,
        stride_mode=STRIDE_ANY,
    )


def _mma_16x16() -> IntrinsicSpec:
    a = placeholder((16, 16), name="mma_a", dtype="float32")
    b = placeholder((16, 16), name="mma_b", dtype="float32")
    r = reduce_axis(16, name="mma_r")
    out = compute((16, 16), lambda i, j: sum_reduce(a[i, r] * b[r, j], r),
                  name="mma_16x16", dtype="float32")
    return IntrinsicSpec(
        name="mma_16x16",
        description="16x16x16 mma fragment (wmma-style warp matrix multiply "
                    "accumulate); billed at the device tensor_core_rate",
        target="gpu",
        output=out,
        rate=1.0,
        stride_mode=STRIDE_ALL,
    )


#: The registry: stable names -> specs.  Iteration order is sorted-name so
#: knob choice lists and features are deterministic across processes.
INTRINSICS: Dict[str, IntrinsicSpec] = {
    spec.name: spec for spec in sorted(
        (_dot4_vnni(), _fma_w8(), _mma_16x16()), key=lambda s: s.name
    )
}

_FEATURE_INDEX = {name: float(i + 1) for i, name in enumerate(sorted(INTRINSICS))}


def intrinsic_feature(name: str) -> float:
    """Surrogate feature value of a ``tensorize`` knob choice.

    ``""`` (untensorized) encodes to 0.0; registered intrinsics get a
    stable positive ordinal from the sorted registry.  Unknown names (a
    hand-made config) encode like untensorized — the linter rejects them
    before any model sees them.
    """
    return _FEATURE_INDEX.get(name, 0.0)


__all__ = [
    "INTRINSICS",
    "IntrinsicSpec",
    "STRIDE_ALL",
    "STRIDE_ANY",
    "intrinsic_feature",
]
