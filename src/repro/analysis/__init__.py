"""Front-end static analysis (§4.1)."""

from .info import AnalysisResult, StatisticalInfo, StructuralInfo
from .static_analyzer import analyze, arithmetic_intensity, operation_flops

__all__ = [
    "AnalysisResult",
    "StatisticalInfo",
    "StructuralInfo",
    "analyze",
    "arithmetic_intensity",
    "operation_flops",
]
