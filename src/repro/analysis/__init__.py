"""Front-end static analysis (§4.1) and the static schedule linter."""

from .info import AnalysisResult, StatisticalInfo, StructuralInfo
from .lint import (
    RULES,
    Diagnostic,
    ScheduleLinter,
    lint_config,
    lint_point,
)
from .static_analyzer import analyze, arithmetic_intensity, operation_flops

__all__ = [
    "AnalysisResult",
    "Diagnostic",
    "RULES",
    "ScheduleLinter",
    "StatisticalInfo",
    "StructuralInfo",
    "analyze",
    "arithmetic_intensity",
    "lint_config",
    "lint_point",
    "operation_flops",
]
