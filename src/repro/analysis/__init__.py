"""Front-end static analysis (§4.1), the static schedule linter and the
intrinsic tensorization matcher."""

from .info import AnalysisResult, StatisticalInfo, StructuralInfo
from .intrin import INTRINSICS, IntrinsicSpec, intrinsic_feature
from .lint import (
    RULES,
    Diagnostic,
    ScheduleLinter,
    lint_config,
    lint_point,
)
from .match import (
    MatchResult,
    covered_inner_roles,
    inner_role_order,
    match_intrinsic,
    matching_intrinsics,
    tensorize_rejections,
)
from .static_analyzer import analyze, arithmetic_intensity, operation_flops

__all__ = [
    "AnalysisResult",
    "Diagnostic",
    "INTRINSICS",
    "IntrinsicSpec",
    "MatchResult",
    "RULES",
    "ScheduleLinter",
    "StatisticalInfo",
    "StructuralInfo",
    "analyze",
    "arithmetic_intensity",
    "covered_inner_roles",
    "inner_role_order",
    "intrinsic_feature",
    "lint_config",
    "lint_point",
    "match_intrinsic",
    "matching_intrinsics",
    "operation_flops",
    "tensorize_rejections",
]
