"""Terminal visualization helpers for tuning results.

Pure-text rendering (no plotting dependencies): convergence charts for
Figure-7-style curves, sparklines for sweeps, and aligned tables.  Used by
the examples and handy in notebooks/REPLs when inspecting tuning runs.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

Curve = Sequence[Tuple[float, float]]

_SPARKS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float]) -> str:
    """One-line bar chart: ``sparkline([1, 5, 3])`` -> ``'▁█▄'``."""
    values = list(values)
    if not values:
        return ""
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return _SPARKS[0] * len(values)
    return "".join(
        _SPARKS[min(int((v - low) / span * (len(_SPARKS) - 1) + 0.5), len(_SPARKS) - 1)]
        for v in values
    )


def best_at(curve: Curve, t: float) -> float:
    """Best performance achieved by time ``t`` on a convergence curve."""
    best = 0.0
    for clock, perf in curve:
        if clock > t:
            break
        best = perf
    return best


def convergence_chart(
    curves: Dict[str, Curve], width: int = 64, height: int = 12
) -> str:
    """ASCII chart of multiple convergence curves over a shared time axis.

    Each curve is a list of (simulated seconds, best-so-far performance);
    the first character of its name is the plot glyph.
    """
    curves = {name: list(curve) for name, curve in curves.items() if curve}
    if not curves:
        return "(no data)"
    t_max = max(curve[-1][0] for curve in curves.values())
    p_max = max(perf for curve in curves.values() for _, perf in curve)
    if p_max <= 0:
        return "(all curves at zero)"
    grid = [[" "] * width for _ in range(height)]
    for name, curve in curves.items():
        glyph = name[0]
        for col in range(width):
            t = (col + 1) / width * t_max
            perf = best_at(curve, t)
            row = height - 1 - int(perf / p_max * (height - 1))
            if grid[row][col] == " ":
                grid[row][col] = glyph
    lines = [f"best value (peak {p_max:.4g}) vs time (0..{t_max:.4g}s)"]
    lines.extend("|" + "".join(row) for row in grid)
    lines.append("+" + "-" * width)
    lines.append("legend: " + "  ".join(f"{name[0]}={name}" for name in curves))
    return "\n".join(lines)


def format_table(headers: Sequence, rows: Sequence[Sequence]) -> str:
    """Aligned plain-text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(row[i]) for row in cells) for i in range(len(headers))]
    lines = []
    for index, row in enumerate(cells):
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
        if index == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def summarize_sweep(
    labels: Sequence, values: Sequence[float], title: str = ""
) -> str:
    """A labelled sweep as 'title: <sparkline>  (best=label)'. """
    if not values:
        return f"{title}: (empty)"
    best = labels[max(range(len(values)), key=lambda i: values[i])]
    prefix = f"{title}: " if title else ""
    return f"{prefix}{sparkline(values)}  (best={best})"
