"""The mini-graph of a tensor computation (§4.1).

Nodes are nested-loop operations (:class:`~repro.ir.ComputeOp`) and leaves
are placeholders; edges carry tensors.  If node P's output tensor is read
by node Q, Q is a *consumer* of P.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from ..ir import ComputeOp, Operation, PlaceholderOp, Tensor


class MiniGraph:
    """A DAG of operations rooted at one or more output tensors."""

    def __init__(self, outputs: Sequence[Tensor]):
        if isinstance(outputs, Tensor):
            outputs = [outputs]
        self.outputs: Tuple[Tensor, ...] = tuple(outputs)
        if not self.outputs:
            raise ValueError("a mini-graph needs at least one output tensor")
        self._post_order: List[Operation] = []
        self._consumers: Dict[Operation, List[Operation]] = {}
        self._build()

    def _build(self) -> None:
        visited = set()

        def visit(op: Operation) -> None:
            if id(op) in visited:
                return
            visited.add(id(op))
            self._consumers.setdefault(op, [])
            for tensor in op.input_tensors:
                visit(tensor.op)
                self._consumers[tensor.op].append(op)
            self._post_order.append(op)

        for tensor in self.outputs:
            visit(tensor.op)

    # -- queries ---------------------------------------------------------

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """All operations in post order (inputs before consumers)."""
        return tuple(self._post_order)

    @property
    def compute_ops(self) -> Tuple[ComputeOp, ...]:
        """Only the nested-loop nodes, post order (Algorithm 1 line 2)."""
        return tuple(op for op in self._post_order if isinstance(op, ComputeOp))

    @property
    def placeholders(self) -> Tuple[PlaceholderOp, ...]:
        """The graph's input (leaf) operations."""
        return tuple(op for op in self._post_order if isinstance(op, PlaceholderOp))

    @property
    def num_nodes(self) -> int:
        """Number of mini-graph nodes, placeholders included (Table 3 #node
        counts GEMM as 3: op A, op B, and the GEMM node itself)."""
        return len(self._post_order)

    def consumers(self, op: Operation) -> Tuple[Operation, ...]:
        """Operations that read ``op``'s output tensor (#cs in §4.1)."""
        return tuple(self._consumers[op])

    def is_output(self, op: Operation) -> bool:
        """True when ``op`` produces one of the graph's output tensors."""
        return any(t.op is op for t in self.outputs)

    def post_order_traverse(self) -> Iterator[Operation]:
        """Algorithm 1, line 2: yield nodes bottom-up."""
        return iter(self._post_order)

    @property
    def main_op(self) -> ComputeOp:
        """The root compute node (the final output's producer).

        For single-output graphs this is the node whose schedule dominates
        performance; helper nodes (padding, expansion) are typically
        inlined into it.
        """
        op = self.outputs[0].op
        if not isinstance(op, ComputeOp):
            raise ValueError("graph output is a placeholder; nothing to schedule")
        return op

    def __repr__(self):
        names = " -> ".join(op.name for op in self._post_order)
        return f"MiniGraph({names})"


def get_graph(output) -> MiniGraph:
    """Build the mini-graph from output tensor(s) (Algorithm 1, line 1)."""
    return MiniGraph(output if isinstance(output, (list, tuple)) else [output])
