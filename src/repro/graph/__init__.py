"""Mini-graph construction and traversal."""

from .minigraph import MiniGraph, get_graph

__all__ = ["MiniGraph", "get_graph"]
